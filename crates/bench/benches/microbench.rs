//! Criterion microbenchmarks over the machinery behind every figure:
//! meta-tag probes (Fig 4), routine assembly/encode (the toolflow),
//! DRAM timing (the substrate), walker end-to-end throughput (Fig 14),
//! and the energy model (Figs 15/16).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use xcache_core::{MetaAccess, MetaKey, MetaTagArray, XCache, XCacheConfig};
use xcache_dsa::widx;
use xcache_energy::EnergyModel;
use xcache_isa::asm::assemble;
use xcache_mem::{DramConfig, DramModel, MemReq, MemoryPort};
use xcache_sim::{Cycle, Stats};
use xcache_workloads::{CsrMatrix, HashIndex, QueryClass, SparsePattern};

fn bench_metatag_probe(c: &mut Criterion) {
    let mut tags = MetaTagArray::new(1024, 8);
    let mut stats = Stats::new();
    for k in 0..4096u64 {
        let _ = tags.alloc(MetaKey(k), xcache_isa::StateId::DEFAULT, &mut stats);
    }
    let mut k = 0u64;
    c.bench_function("metatag_probe_hit_mix", |b| {
        b.iter(|| {
            k = (k + 97) % 8192;
            black_box(tags.probe(MetaKey(k), &mut stats))
        });
    });
}

fn bench_assembler(c: &mut Criterion) {
    c.bench_function("assemble_widx_walker", |b| {
        b.iter(|| black_box(widx::walker()));
    });
    let program = widx::walker();
    let actions: Vec<_> = program
        .routines
        .iter()
        .flat_map(|r| r.actions.clone())
        .collect();
    c.bench_function("encode_microcode", |b| {
        b.iter(|| black_box(xcache_isa::encode(&actions).expect("encodable")));
    });
}

fn bench_dram(c: &mut Criterion) {
    let setup = || {
        let mut d = DramModel::new(DramConfig::default());
        d.memory_mut().write_u64(0x40, 1);
        d
    };
    let roundtrip = |mut d: DramModel| {
        d.try_request(Cycle(0), MemReq::read(1, 0x40, 64))
            .expect("queued");
        let mut now = Cycle(0);
        loop {
            d.tick(now);
            if let Some(r) = d.take_response(now) {
                break black_box(r);
            }
            now = xcache_sim::fast_forward(now, d.next_event(now));
        }
    };
    // Skip on vs off on the same DRAM-latency-bound loop: the pair is the
    // headline fast-forwarding speedup measurement.
    c.bench_function("dram_read_roundtrip", |b| {
        b.iter_batched(setup, roundtrip, BatchSize::SmallInput);
    });
    c.bench_function("dram_read_roundtrip_no_skip", |b| {
        b.iter_batched(
            setup,
            |d| xcache_sim::with_skip(false, || roundtrip(d)),
            BatchSize::SmallInput,
        );
    });
}

fn bench_walker_throughput(c: &mut Criterion) {
    // End-to-end: 512 Zipf probes through a small Widx X-Cache.
    let mut preset = QueryClass::Q22.preset().scaled_down(50);
    preset.probes = 512;
    let workload = widx::WidxWorkload::from_preset(&preset, 7);
    let geometry = XCacheConfig {
        sets: 64,
        ways: 4,
        data_sectors: 256,
        ..XCacheConfig::widx()
    };
    c.bench_function("widx_xcache_512_probes", |b| {
        b.iter(|| black_box(widx::run_xcache(&workload, Some(geometry.clone()))));
    });
    c.bench_function("widx_xcache_512_probes_no_skip", |b| {
        b.iter(|| {
            xcache_sim::with_skip(false, || {
                black_box(widx::run_xcache(&workload, Some(geometry.clone())))
            })
        });
    });
}

fn bench_hit_pipeline(c: &mut Criterion) {
    // Steady-state hit servicing: one resident key, repeated loads.
    let program = assemble(
        r#"
        walker one
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid");
    let mut dram = DramModel::new(DramConfig::default());
    dram.memory_mut().write_u64(0x1000, 9);
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, program, dram).expect("valid");
    // Warm the entry.
    let mut now = Cycle(0);
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 0,
            key: MetaKey::new(0),
        },
    )
    .expect("queued");
    loop {
        xc.tick(now);
        if xc.take_response(now).is_some() {
            break;
        }
        now = xcache_sim::fast_forward(now, xc.next_event(now));
    }
    let mut id = 1u64;
    c.bench_function("xcache_hit_service", |b| {
        b.iter(|| {
            let _ = xc.try_access(
                now,
                MetaAccess::Load {
                    id,
                    key: MetaKey::new(0),
                },
            );
            id += 1;
            xc.tick(now);
            now = now.next();
            black_box(xc.take_response(now))
        });
    });
}

fn bench_workload_generators(c: &mut Criterion) {
    c.bench_function("rmat_generate_10k", |b| {
        b.iter(|| {
            black_box(CsrMatrix::generate(
                1024,
                1024,
                10_000,
                SparsePattern::RMat,
                1,
            ))
        });
    });
    c.bench_function("hashindex_build_10k", |b| {
        b.iter(|| black_box(HashIndex::build(10_000, 2.0)));
    });
    let m = CsrMatrix::generate(256, 256, 4_000, SparsePattern::RMat, 2);
    c.bench_function("spgemm_reference_multiply", |b| {
        b.iter(|| black_box(m.multiply(&m)));
    });
}

fn bench_energy_model(c: &mut Criterion) {
    let mut preset = QueryClass::Q22.preset().scaled_down(50);
    preset.probes = 256;
    let w = widx::WidxWorkload::from_preset(&preset, 7);
    let g = XCacheConfig {
        sets: 64,
        ways: 4,
        data_sectors: 256,
        ..XCacheConfig::widx()
    };
    let report = widx::run_xcache(&w, Some(g.clone()));
    let model = EnergyModel::new();
    c.bench_function("energy_breakdown", |b| {
        b.iter(|| black_box(model.xcache_energy(&report.stats, &g)));
    });
}

criterion_group!(
    benches,
    bench_metatag_probe,
    bench_assembler,
    bench_dram,
    bench_walker_throughput,
    bench_hit_pipeline,
    bench_workload_generators,
    bench_energy_model
);
criterion_main!(benches);
