//! Ablation: replacement policy of the comparison address cache
//! (LRU / FIFO / random) on the Widx probe stream.
//!
//! Not in the paper (it fixes LRU); this quantifies how much the §8
//! comparison depends on that choice.

use xcache_bench::{
    maybe_dump_table_json, render_table, scale, widx_geometry, widx_workload, Runner, Scenario,
};
use xcache_dsa::widx;
use xcache_workloads::QueryClass;

const HEADERS: [&str; 4] = ["policy", "addr-cache cyc", "addr DRAM", "X-Cache speedup"];

fn main() {
    let scale = scale();
    println!("Ablation 1: address-cache replacement policy, Widx TPC-H-19 (scale 1/{scale})\n");
    let w = widx_workload(QueryClass::Q19, scale, 7);
    let g = widx_geometry(scale);

    // Cell 0 is the X-Cache reference; the rest sweep the policy.
    let policies = [
        ("LRU", xcache_mem::ReplacementPolicy::Lru),
        ("FIFO", xcache_mem::ReplacementPolicy::Fifo),
        ("Random", xcache_mem::ReplacementPolicy::Random(42)),
    ];
    let mut cells = vec![Scenario::new("X-Cache reference", {
        let (w, g) = (&w, g.clone());
        move || widx::run_xcache(w, Some(g))
    })];
    for (name, policy) in policies {
        cells.push(Scenario::new(name, {
            let (w, g) = (&w, g.clone());
            move || {
                let mut cache_cfg = widx::matched_address_cache_config(&g);
                cache_cfg.policy = policy;
                widx::run_address_cache_with_policy(w, &g, cache_cfg)
            }
        }));
    }
    let mut results = Runner::from_env().run(cells);
    let x = results.remove(0);
    let rows: Vec<Vec<String>> = policies
        .iter()
        .zip(&results)
        .map(|((name, _), a)| {
            vec![
                (*name).to_owned(),
                a.cycles.to_string(),
                a.dram_accesses().to_string(),
                format!("{:.2}x", x.speedup_over(a)),
            ]
        })
        .collect();
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("abl01_replacement", &HEADERS, &rows);
    println!(
        "\nX-Cache reference: {} cycles, {} DRAM accesses",
        x.cycles,
        x.dram_accesses()
    );
}
