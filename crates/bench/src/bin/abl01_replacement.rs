//! Ablation: replacement policy of the comparison address cache
//! (LRU / FIFO / random) on the Widx probe stream.
//!
//! Not in the paper (it fixes LRU); this quantifies how much the §8
//! comparison depends on that choice.

use xcache_bench::{render_table, scale, widx_geometry, widx_workload};
use xcache_dsa::widx;
use xcache_workloads::QueryClass;

fn main() {
    let scale = scale();
    println!("Ablation 1: address-cache replacement policy, Widx TPC-H-19 (scale 1/{scale})\n");
    let w = widx_workload(QueryClass::Q19, scale, 7);
    let g = widx_geometry(scale);
    let x = widx::run_xcache(&w, Some(g.clone()));

    let mut rows = Vec::new();
    for (name, policy) in [
        ("LRU", xcache_mem::ReplacementPolicy::Lru),
        ("FIFO", xcache_mem::ReplacementPolicy::Fifo),
        ("Random", xcache_mem::ReplacementPolicy::Random(42)),
    ] {
        let mut cache_cfg = widx::matched_address_cache_config(&g);
        cache_cfg.policy = policy;
        let a = widx::run_address_cache_with_policy(&w, &g, cache_cfg);
        rows.push(vec![
            name.to_owned(),
            a.cycles.to_string(),
            a.dram_accesses().to_string(),
            format!("{:.2}x", x.speedup_over(&a)),
        ]);
    }
    print!(
        "{}",
        render_table(
            &["policy", "addr-cache cyc", "addr DRAM", "X-Cache speedup"],
            &rows
        )
    );
    println!("\nX-Cache reference: {} cycles, {} DRAM accesses", x.cycles, x.dram_accesses());
}
