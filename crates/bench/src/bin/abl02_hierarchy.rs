//! Ablation: the §6 hierarchy compositions on the Widx workload —
//! plain X-Cache over DRAM, MXA (X-Cache over an address cache), and MX
//! (a walker-less MetaL1 over the X-Cache).

use xcache_bench::{render_table, scale, widx_geometry, widx_workload};
use xcache_core::hierarchy::{MetaL1Config, MetaPort};
use xcache_core::{MetaAccess, MetaKey, XCache};
use xcache_dsa::common::apply_image;
use xcache_dsa::widx;
use xcache_mem::{AddressCache, DramConfig, DramModel, MainMemory};
use xcache_sim::Cycle;
use xcache_workloads::hashidx::NODE_BYTES;
use xcache_workloads::QueryClass;

fn main() {
    let scale = scale();
    println!("Ablation 2: hierarchy compositions (Widx TPC-H-19, scale 1/{scale})\n");
    let w = widx_workload(QueryClass::Q19, scale, 7);
    let g = widx_geometry(scale);

    // Plain X-Cache over DRAM (the Figure 14 configuration).
    let plain = widx::run_xcache(&w, Some(g.clone()));

    // MXA: the walker's DRAM traffic filters through an address cache.
    let layout = w.index.layout(0x10_0000);
    let mut mem = MainMemory::new();
    apply_image(&mut mem, &layout.segments);
    let dram = DramModel::with_memory(DramConfig::default(), mem.clone());
    let l2 = AddressCache::new(widx::matched_address_cache_config(&g), dram);
    let mut cfg = g.clone();
    cfg.hash_latency = w.hash_latency;
    cfg = cfg.with_params(vec![layout.bucket_base, NODE_BYTES, layout.buckets - 1]);
    let mut mxa = XCache::new(cfg.clone(), widx::walker(), l2).expect("mxa builds");
    let mxa_cycles = drive(&mut mxa, &w);

    // MX: a small walker-less L1 in front of the X-Cache.
    let dram = DramModel::with_memory(DramConfig::default(), mem);
    let l2 = XCache::new(cfg, widx::walker(), dram).expect("l2 builds");
    let mut mx = xcache_core::hierarchy::MetaL1::new(
        MetaL1Config {
            sets: 32,
            ways: 2,
            words_per_sector: 4,
            data_sectors: 64,
            hit_latency: 1,
            queue_depth: 16,
        },
        l2,
    );
    let mx_cycles = drive_meta(&mut mx, &w);

    let rows = vec![
        vec!["X-Cache over DRAM".to_owned(), plain.cycles.to_string(), "1.00x".to_owned()],
        vec![
            "MXA: X-Cache over A$".to_owned(),
            mxa_cycles.to_string(),
            format!("{:.2}x", plain.cycles as f64 / mxa_cycles as f64),
        ],
        vec![
            "MX: MetaL1 + X-Cache".to_owned(),
            mx_cycles.to_string(),
            format!("{:.2}x", plain.cycles as f64 / mx_cycles as f64),
        ],
    ];
    print!("{}", render_table(&["hierarchy", "cycles", "vs plain"], &rows));
    println!("\n(MXA filters walker refetches; MX adds a 1-cycle hit level for hot keys)");
}

fn drive<D: xcache_mem::MemoryPort>(xc: &mut XCache<D>, w: &widx::WidxWorkload) -> u64 {
    let mut now = Cycle(0);
    let (mut next, mut done) = (0usize, 0usize);
    let total = w.probes.len();
    while done < total {
        while next < total {
            let a = MetaAccess::Load {
                id: next as u64,
                key: MetaKey::new(w.probes[next]),
            };
            if xc.try_access(now, a).is_err() {
                break;
            }
            next += 1;
        }
        xc.tick(now);
        while xc.take_response(now).is_some() {
            done += 1;
        }
        now = now.next();
        assert!(now.raw() < 100_000_000, "mxa deadlock");
    }
    now.raw()
}

fn drive_meta<P: MetaPort>(p: &mut P, w: &widx::WidxWorkload) -> u64 {
    let mut now = Cycle(0);
    let (mut next, mut done) = (0usize, 0usize);
    let total = w.probes.len();
    while done < total {
        while next < total {
            let a = MetaAccess::Load {
                id: next as u64,
                key: MetaKey::new(w.probes[next]),
            };
            if p.try_access(now, a).is_err() {
                break;
            }
            next += 1;
        }
        p.tick(now);
        while p.take_response(now).is_some() {
            done += 1;
        }
        now = now.next();
        assert!(now.raw() < 100_000_000, "mx deadlock");
    }
    now.raw()
}
