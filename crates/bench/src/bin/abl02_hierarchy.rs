//! Ablation: the §6 hierarchy compositions on the Widx workload —
//! plain X-Cache over DRAM, MXA (X-Cache over an address cache), and MX
//! (a walker-less MetaL1 over the X-Cache).

use xcache_bench::{
    maybe_dump_table_json, render_table, scale, widx_geometry, widx_workload, Runner, Scenario,
};
use xcache_core::hierarchy::{MetaL1Config, MetaPort};
use xcache_core::{MetaAccess, MetaKey, XCache};
use xcache_dsa::common::apply_image;
use xcache_dsa::widx;
use xcache_mem::{AddressCache, DramConfig, DramModel, MainMemory};
use xcache_sim::Cycle;
use xcache_workloads::hashidx::NODE_BYTES;
use xcache_workloads::QueryClass;

const HEADERS: [&str; 3] = ["hierarchy", "cycles", "vs plain"];

fn main() {
    let scale = scale();
    println!("Ablation 2: hierarchy compositions (Widx TPC-H-19, scale 1/{scale})\n");
    let w = widx_workload(QueryClass::Q19, scale, 7);
    let g = widx_geometry(scale);

    // Each composition is one independent cell; every cell builds its own
    // memory image from the same (deterministic) workload.
    let cells = vec![
        // Plain X-Cache over DRAM (the Figure 14 configuration).
        Scenario::new("X-Cache over DRAM", {
            let (w, g) = (&w, g.clone());
            move || widx::run_xcache(w, Some(g)).cycles
        }),
        // MXA: the walker's DRAM traffic filters through an address cache.
        Scenario::new("MXA: X-Cache over A$", {
            let (w, g) = (&w, g.clone());
            move || {
                let (cfg, mem) = composed_config(w, &g);
                let dram = DramModel::with_memory(DramConfig::default(), mem);
                let l2 = AddressCache::new(widx::matched_address_cache_config(&g), dram);
                let mut mxa = XCache::new(cfg, widx::walker(), l2).expect("mxa builds");
                drive(&mut mxa, w)
            }
        }),
        // MX: a small walker-less L1 in front of the X-Cache.
        Scenario::new("MX: MetaL1 + X-Cache", {
            let (w, g) = (&w, g.clone());
            move || {
                let (cfg, mem) = composed_config(w, &g);
                let dram = DramModel::with_memory(DramConfig::default(), mem);
                let l2 = XCache::new(cfg, widx::walker(), dram).expect("l2 builds");
                let mut mx = xcache_core::hierarchy::MetaL1::new(
                    MetaL1Config {
                        sets: 32,
                        ways: 2,
                        words_per_sector: 4,
                        data_sectors: 64,
                        hit_latency: 1,
                        queue_depth: 16,
                    },
                    l2,
                );
                drive_meta(&mut mx, w)
            }
        }),
    ];
    let cycles = Runner::from_env().run(cells);
    let plain = cycles[0];

    let names = [
        "X-Cache over DRAM",
        "MXA: X-Cache over A$",
        "MX: MetaL1 + X-Cache",
    ];
    let rows: Vec<Vec<String>> = names
        .iter()
        .zip(&cycles)
        .map(|(name, &c)| {
            vec![
                (*name).to_owned(),
                c.to_string(),
                format!("{:.2}x", plain as f64 / c as f64),
            ]
        })
        .collect();
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("abl02_hierarchy", &HEADERS, &rows);
    println!("\n(MXA filters walker refetches; MX adds a 1-cycle hit level for hot keys)");
}

/// The walker-ready X-Cache config plus the populated backing memory for
/// the composed hierarchies.
fn composed_config(
    w: &widx::WidxWorkload,
    g: &xcache_core::XCacheConfig,
) -> (xcache_core::XCacheConfig, MainMemory) {
    let layout = w.index.layout(0x10_0000);
    let mut mem = MainMemory::new();
    apply_image(&mut mem, &layout.segments);
    let mut cfg = g.clone();
    cfg.hash_latency = w.hash_latency;
    let cfg = cfg.with_params(vec![layout.bucket_base, NODE_BYTES, layout.buckets - 1]);
    (cfg, mem)
}

fn drive<D: xcache_mem::MemoryPort>(xc: &mut XCache<D>, w: &widx::WidxWorkload) -> u64 {
    let mut now = Cycle(0);
    let (mut next, mut done) = (0usize, 0usize);
    let total = w.probes.len();
    while done < total {
        while next < total && xc.can_accept() {
            let a = MetaAccess::Load {
                id: next as u64,
                key: MetaKey::new(w.probes[next]),
            };
            xc.try_access(now, a).expect("can_accept checked");
            next += 1;
        }
        xc.tick(now);
        while xc.take_response(now).is_some() {
            done += 1;
        }
        now = if done >= total {
            now.next() // same end-cycle as the single-stepped loop
        } else {
            let mut wake = xc.next_event(now);
            if next < total && xc.can_accept() {
                wake = Some(now.next()); // more probes to issue next cycle
            }
            xcache_sim::fast_forward(now, wake)
        };
        assert!(now.raw() < 100_000_000, "mxa deadlock");
    }
    now.raw()
}

fn drive_meta<P: MetaPort>(p: &mut P, w: &widx::WidxWorkload) -> u64 {
    let mut now = Cycle(0);
    let (mut next, mut done) = (0usize, 0usize);
    let total = w.probes.len();
    while done < total {
        while next < total && p.can_accept() {
            let a = MetaAccess::Load {
                id: next as u64,
                key: MetaKey::new(w.probes[next]),
            };
            p.try_access(now, a).expect("can_accept checked");
            next += 1;
        }
        p.tick(now);
        while p.take_response(now).is_some() {
            done += 1;
        }
        now = if done >= total {
            now.next() // same end-cycle as the single-stepped loop
        } else {
            let mut wake = p.next_event(now);
            if next < total && p.can_accept() {
                wake = Some(now.next()); // more probes to issue next cycle
            }
            xcache_sim::fast_forward(now, wake)
        };
        assert!(now.raw() < 100_000_000, "mx deadlock");
    }
    now.raw()
}
