//! Ablation: chain-node side-caching (`insertm`) in the Widx walker.
//!
//! "X-Cache caches the actual nodes in the hash table and tags them with
//! the hash keys" (§5) — our walker side-inserts every chain node it
//! touches under that node's own key, at LRU priority. This harness
//! quantifies the design choice by running the same workload with a
//! walker that only caches the matched node.

use xcache_bench::{
    maybe_dump_table_json, pct, render_table, scale, widx_geometry, widx_workload, Runner, Scenario,
};
use xcache_dsa::widx;
use xcache_workloads::QueryClass;

const HEADERS: [&str; 6] = [
    "query",
    "with insertm",
    "hit rate",
    "without",
    "hit rate",
    "insertm gain",
];

fn main() {
    let scale = scale();
    println!("Ablation 3: insertm chain-node side-caching (scale 1/{scale})\n");
    let cells: Vec<Scenario<'_, Vec<String>>> = QueryClass::all()
        .into_iter()
        .map(|class| {
            Scenario::new(class.name(), move || {
                let w = widx_workload(class, scale, 7);
                let g = widx_geometry(scale);
                let with = widx::run_xcache(&w, Some(g.clone()));
                let without =
                    widx::run_xcache_with_walker(&w, Some(g), widx::walker_no_sideinsert());
                let hr = |r: &xcache_dsa::RunReport| {
                    r.stats.get("xcache.hit") as f64
                        / (r.stats.get("xcache.hit") + r.stats.get("xcache.miss")).max(1) as f64
                };
                vec![
                    class.name().to_owned(),
                    with.cycles.to_string(),
                    pct(hr(&with)),
                    without.cycles.to_string(),
                    pct(hr(&without)),
                    format!("{:.2}x", without.cycles as f64 / with.cycles as f64),
                ]
            })
        })
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("abl03_insertm", &HEADERS, &rows);
}
