//! Ablation: does a next-line prefetcher rescue the address-based cache?
//!
//! The paper's comparison point is "the best-performing address-based
//! cache"; this harness adds a tagged next-line prefetcher to it and
//! re-runs the Widx comparison. Pointer-chasing walks have no sequential
//! locality, so the prefetcher should not close the meta-tag gap — which
//! is the point of measuring it.

use xcache_bench::{
    maybe_dump_table_json, render_table, scale, widx_geometry, widx_workload, Runner, Scenario,
};
use xcache_dsa::widx;
use xcache_workloads::QueryClass;

const HEADERS: [&str; 5] = [
    "query",
    "addr cyc",
    "addr+prefetch cyc",
    "prefetch gain",
    "X-Cache vs addr+pf",
];

fn main() {
    let scale = scale();
    println!("Ablation 4: next-line prefetch on the address cache (scale 1/{scale})\n");
    let cells: Vec<Scenario<'_, Vec<String>>> = QueryClass::all()
        .into_iter()
        .map(|class| {
            Scenario::new(class.name(), move || {
                let w = widx_workload(class, scale, 7);
                let g = widx_geometry(scale);
                let x = widx::run_xcache(&w, Some(g.clone()));
                let base_cfg = widx::matched_address_cache_config(&g);
                let plain = widx::run_address_cache_with_policy(&w, &g, base_cfg.clone());
                let mut pf_cfg = base_cfg;
                pf_cfg.prefetch_next = true;
                let pf = widx::run_address_cache_with_policy(&w, &g, pf_cfg);
                vec![
                    class.name().to_owned(),
                    plain.cycles.to_string(),
                    pf.cycles.to_string(),
                    format!("{:.2}x", plain.cycles as f64 / pf.cycles as f64),
                    format!("{:.2}x", x.speedup_over(&pf)),
                ]
            })
        })
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("abl04_prefetch", &HEADERS, &rows);
    println!("\n(pointer chases have no next-line locality; the gap should persist)");
}
