//! Perf-trajectory baseline: runs a small *fixed* scenario set (immune to
//! `XCACHE_SCALE`) once with idle-cycle fast-forwarding and once without,
//! and writes `BENCH_baseline.json` with wall-clock times, simulated
//! cycles, and the skip/no-skip speedup per scenario. The committed copy
//! at the repo root gives future changes a perf record to compare against.
//!
//! Both modes run inline on the main thread (`with_skip` is thread-local)
//! and every observable is re-checked to agree between modes, so the file
//! doubles as one more differential check.
//!
//! Usage: `cargo run --release --bin bench_baseline [-- <output path>]
//!        [-- --check <committed baseline>]`
//!
//! With `--check`, the run additionally compares the controller-bound
//! scenarios' `cycles_per_sec_skip` against the committed baseline file
//! and exits nonzero on a >10% throughput regression. Absolute rates are
//! machine-dependent, so the check only guards against regressions, not
//! missed improvements.

use std::time::Instant;

use xcache_bench::{machine_factor, meta_json, note_sim_cycles, widx_geometry, widx_workload};
use xcache_core::{shards_from_env, XCacheConfig};
use xcache_dsa::{graphpulse, spgemm, widx};
use xcache_mem::{DramConfig, DramModel, MemReq, MemoryPort};
use xcache_sim::{
    prof_reset, prof_snapshot, with_par_mode, with_par_threads, with_skip, Cycle, ParMode,
    ProfEntry,
};
use xcache_workloads::QueryClass;

/// Observables of one scenario run, compared across modes.
type Outcome = (u64, u64); // (cycles, checksum)

struct Measurement {
    name: &'static str,
    sim_cycles: u64,
    wall_ms_skip: f64,
    wall_ms_no_skip: f64,
    /// Per-stage wall-time attribution over the skip-mode runs; empty
    /// unless `XCACHE_PROF=1`.
    prof: Vec<ProfEntry>,
}

impl Measurement {
    fn speedup(&self) -> f64 {
        if self.wall_ms_skip > 0.0 {
            self.wall_ms_no_skip / self.wall_ms_skip
        } else {
            0.0
        }
    }

    fn cycles_per_sec_skip(&self) -> u64 {
        if self.wall_ms_skip > 0.0 {
            (self.sim_cycles as f64 * 1000.0 / self.wall_ms_skip) as u64
        } else {
            0
        }
    }
}

/// Times `f` in one skip mode: best of `reps` runs (minimum wall time
/// rejects scheduler noise), plus the outcome for cross-mode comparison.
fn time_mode(skip: bool, reps: u32, f: &dyn Fn() -> Outcome) -> (f64, Outcome) {
    let mut best = f64::INFINITY;
    let mut outcome = (0, 0);
    for _ in 0..reps {
        let start = Instant::now();
        outcome = with_skip(skip, f);
        best = best.min(start.elapsed().as_secs_f64() * 1000.0);
    }
    (best, outcome)
}

fn measure(name: &'static str, f: &dyn Fn() -> Outcome) -> Measurement {
    prof_reset();
    let (wall_ms_skip, fast) = time_mode(true, 3, f);
    let prof = prof_snapshot();
    let (wall_ms_no_skip, slow) = time_mode(false, 3, f);
    assert_eq!(
        fast, slow,
        "{name}: skip and no-skip runs diverged — fast-forwarding is unsound"
    );
    note_sim_cycles(fast.0);
    eprintln!(
        "{name}: {} cycles, {wall_ms_skip:.2} ms skip vs {wall_ms_no_skip:.2} ms no-skip ({:.2}x)",
        fast.0,
        wall_ms_no_skip / wall_ms_skip.max(1e-9)
    );
    if !prof.is_empty() {
        let total: u64 = prof.iter().map(|e| e.1).sum();
        for &(stage, ns, calls) in &prof {
            eprintln!(
                "    {stage}: {:.1}% ({:.2} ms, {calls} calls)",
                ns as f64 * 100.0 / total.max(1) as f64,
                ns as f64 / 1e6
            );
        }
    }
    Measurement {
        name,
        sim_cycles: fast.0,
        wall_ms_skip,
        wall_ms_no_skip,
        prof,
    }
}

/// Per-scenario profiling attribution as a JSON fragment, or an empty
/// string when `XCACHE_PROF` is off (keeps the default output stable).
fn prof_json(prof: &[ProfEntry]) -> String {
    if prof.is_empty() {
        return String::new();
    }
    let total: u64 = prof.iter().map(|e| e.1).sum();
    let stages = prof
        .iter()
        .map(|&(stage, ns, calls)| {
            format!(
                "{{\"stage\":\"{stage}\",\"share\":{:.4},\"total_ns\":{ns},\"calls\":{calls}}}",
                ns as f64 / total.max(1) as f64
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    format!(",\"prof\":[{stages}]")
}

/// A chain of dependent DRAM read round-trips: the canonical
/// DRAM-latency-bound loop where fast-forwarding pays the most (the
/// engine idles for the full access latency between events).
fn dram_roundtrips() -> Outcome {
    let mut dram = DramModel::new(DramConfig::default());
    for slot in 0..64u64 {
        dram.memory_mut().write_u64(slot * 8, slot * 31 + 7);
    }
    let mut now = Cycle(0);
    let mut checksum = 0u64;
    for i in 0..1_000u64 {
        dram.try_request(now, MemReq::read(i, (i % 64) * 8, 8))
            .expect("dram queue empty between round-trips");
        loop {
            dram.tick(now);
            if let Some(r) = dram.take_response(now) {
                let v = u64::from_le_bytes(r.data[..8].try_into().expect("8 bytes"));
                checksum = checksum.wrapping_mul(31).wrapping_add(v);
                break;
            }
            now = xcache_sim::fast_forward(now, dram.next_event(now));
        }
        now = now.next();
    }
    (now.raw(), checksum)
}

/// Scenarios whose wall time is dominated by controller work (trigger
/// scan, X-Routine dispatch, data RAM) rather than by the DRAM model —
/// the ones the perf-trajectory check guards.
const CONTROLLER_BOUND: [&str; 2] = ["widx_q19_xcache", "spgemm_gustavson_xcache"];

/// Extracts `cycles_per_sec_skip` for one scenario from a baseline JSON
/// file without a JSON dependency: the writer emits one object per line
/// with fixed key order, so a substring scan is reliable.
fn scenario_rate(json: &str, name: &str) -> Option<u64> {
    let tag = format!("\"name\":\"{name}\"");
    let rest = &json[json.find(&tag)? + tag.len()..];
    let key = "\"cycles_per_sec_skip\":";
    let rest = &rest[rest.find(key)? + key.len()..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Extracts the recorded `machine_factor` from a baseline's meta
/// envelope, `None` for baselines written before the field existed (the
/// check then falls back to comparing raw rates).
fn baseline_machine_factor(json: &str) -> Option<f64> {
    let key = "\"machine_factor\":";
    let rest = &json[json.find(key)? + key.len()..];
    let s: String = rest
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.')
        .collect();
    s.parse().ok()
}

fn main() {
    let mut out_path = String::from("BENCH_baseline.json");
    let mut check_against: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        if arg == "--check" {
            check_against = Some(argv.next().unwrap_or_else(|| "BENCH_baseline.json".into()));
        } else {
            out_path = arg;
        }
    }

    let widx_q19 = widx_workload(QueryClass::Q19, 40, 7);
    let widx_geom = widx_geometry(40);
    // Fig 7's worst case: 95% of the index off-chip, so nearly every probe
    // waits out a DRAM access.
    let offchip = {
        let w = widx_workload(QueryClass::Q22, 40, 7);
        let resident = (w.index.len() as u64 * 5 / 100).max(16);
        let sets = 128usize;
        let g = XCacheConfig {
            sets,
            ways: (resident as usize / sets).max(1),
            data_sectors: 128,
            ..XCacheConfig::widx()
        };
        (w, g)
    };
    let spgemm_w = spgemm::SpgemmWorkload::paper_like(spgemm::Algorithm::Gustavson, 40, 7);
    let spgemm_g = xcache_bench::spgemm_geometry(40);
    let gp_w = graphpulse::GraphPulseWorkload {
        graph: xcache_workloads::Graph::from_adjacency(xcache_workloads::CsrMatrix::generate(
            256,
            256,
            1024,
            xcache_workloads::SparsePattern::RMat,
            5,
        )),
        iterations: 2,
    };
    let gp_g = xcache_bench::graphpulse_geometry(256);

    // Sharded topology rows: the same cells at `XCACHE_SHARDS` (default 4)
    // shards, once on the sequential reference engine and once on the
    // worker pool at 4 threads. Byte-identical outcomes between the two
    // are asserted below; the wall-clock ratio is the parallel speedup
    // (≥ 1 only when the host has that many physical cores).
    let shards = shards_from_env(4);
    let par_threads = 4usize;

    let report = |r: xcache_dsa::RunReport| (r.cycles, r.checksum);
    let measurements = [
        measure("dram_read_roundtrip_x1000", &dram_roundtrips),
        measure("widx_q19_xcache", &|| {
            report(widx::run_xcache(&widx_q19, Some(widx_geom.clone())))
        }),
        measure("widx_q22_offchip95_xcache", &|| {
            report(widx::run_xcache(&offchip.0, Some(offchip.1.clone())))
        }),
        measure("spgemm_gustavson_xcache", &|| {
            report(spgemm::run_xcache(&spgemm_w, Some(spgemm_g.clone())))
        }),
        measure("graphpulse_xcache", &|| {
            report(graphpulse::run_xcache(&gp_w, Some(gp_g.clone())))
        }),
        measure("widx_q19_sharded4_seq", &|| {
            report(with_par_mode(ParMode::Seq, || {
                widx::run_xcache_sharded(&widx_q19, Some(widx_geom.clone()), shards)
            }))
        }),
        measure("widx_q19_sharded4_par", &|| {
            report(with_par_mode(ParMode::Par, || {
                with_par_threads(par_threads, || {
                    widx::run_xcache_sharded(&widx_q19, Some(widx_geom.clone()), shards)
                })
            }))
        }),
        measure("spgemm_gustavson_sharded4_seq", &|| {
            report(with_par_mode(ParMode::Seq, || {
                spgemm::run_xcache_sharded(&spgemm_w, Some(spgemm_g.clone()), shards)
            }))
        }),
        measure("spgemm_gustavson_sharded4_par", &|| {
            report(with_par_mode(ParMode::Par, || {
                with_par_threads(par_threads, || {
                    spgemm::run_xcache_sharded(&spgemm_w, Some(spgemm_g.clone()), shards)
                })
            }))
        }),
        measure("graphpulse_sharded4_par", &|| {
            report(with_par_mode(ParMode::Par, || {
                with_par_threads(par_threads, || {
                    graphpulse::run_xcache_sharded(&gp_w, Some(gp_g.clone()), shards)
                })
            }))
        }),
    ];

    for (seq_name, par_name) in [
        ("widx_q19_sharded4_seq", "widx_q19_sharded4_par"),
        (
            "spgemm_gustavson_sharded4_seq",
            "spgemm_gustavson_sharded4_par",
        ),
    ] {
        let row = |n: &str| {
            measurements
                .iter()
                .find(|m| m.name == n)
                .expect("sharded row is measured")
        };
        let (s, p) = (row(seq_name), row(par_name));
        assert_eq!(
            s.sim_cycles, p.sim_cycles,
            "{seq_name} and {par_name} diverged — parallel time is not deterministic"
        );
        eprintln!(
            "sharded par-over-seq {}: {:.2}x at {par_threads} threads ({} host cores)",
            seq_name.trim_end_matches("_seq"),
            s.wall_ms_skip / p.wall_ms_skip.max(1e-9),
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        );
    }

    let mut body = String::from("[\n");
    for (i, m) in measurements.iter().enumerate() {
        body.push_str(&format!(
            "  {{\"name\":\"{}\",\"sim_cycles\":{},\"wall_ms_skip\":{:.3},\"wall_ms_no_skip\":{:.3},\"speedup\":{:.2},\"cycles_per_sec_skip\":{}{}}}{}\n",
            m.name,
            m.sim_cycles,
            m.wall_ms_skip,
            m.wall_ms_no_skip,
            m.speedup(),
            m.cycles_per_sec_skip(),
            prof_json(&m.prof),
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    body.push(']');
    // Same envelope shape as `results/*.json`: meta on its own line so
    // diffs can drop the machine-dependent fields with `grep -v '^"meta"'`.
    let out = format!(
        "{{\n\"meta\": {},\n\"baseline\": {body}\n}}\n",
        meta_json("bench_baseline")
    );
    std::fs::write(&out_path, out).expect("write baseline json");
    eprintln!("(wrote {out_path})");

    // Guards that fast-forwarding still pays off where it should — a
    // DRAM-latency-bound loop is mostly idle cycles. The floor is 2x,
    // not higher: the ratio's denominator is the *busy*-cycle path, so
    // every busy-path optimization (thin LTO, memoized DRAM next_event,
    // macro-step execution) legitimately compresses it — ~3.6x at PR 6,
    // ~2.7x now, with the skip-side absolute wall time unchanged.
    let dram_bound = &measurements[0];
    assert!(
        dram_bound.speedup() >= 2.0,
        "expected >= 2x wall-clock speedup on the DRAM-latency-bound \
         scenario, measured {:.2}x",
        dram_bound.speedup()
    );

    if let Some(baseline_path) = check_against {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read {baseline_path}: {e}"));
        // Normalize both sides by their machine factor so a baseline
        // recorded on a faster or slower host doesn't turn into a phantom
        // regression (or mask a real one). Baselines that predate the
        // field are compared raw, as before.
        let (old_mf, new_mf) = match baseline_machine_factor(&baseline) {
            Some(mf) if mf > 0.0 => (mf, machine_factor()),
            _ => (1.0, 1.0),
        };
        let mut failed = false;
        for name in CONTROLLER_BOUND {
            let old = scenario_rate(&baseline, name)
                .unwrap_or_else(|| panic!("{baseline_path} has no cycles_per_sec_skip for {name}"));
            let new = measurements
                .iter()
                .find(|m| m.name == name)
                .expect("checked scenario is measured")
                .cycles_per_sec_skip();
            let ratio = (new as f64 / new_mf) / (old.max(1) as f64 / old_mf);
            eprintln!(
                "check {name}: {new} vs baseline {old} c/s \
                 ({ratio:.2}x machine-normalized, factors {new_mf:.3}/{old_mf:.3})"
            );
            if ratio < 0.9 {
                eprintln!("FAIL: {name} regressed more than 10% vs {baseline_path}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!("(perf-trajectory check passed vs {baseline_path})");
    }
}
