//! Analytical predictions without simulation: replays the paper's
//! scenario cells (and a handful of fuzz seeds) through the
//! `xcache-oracle` model and prints the predicted hit/miss/eviction
//! profile per cell — the numbers a sweep-pruning pass ranks on.
//!
//! With `XCACHE_JSON` set, the predictions are also written to
//! `results/bench_oracle.json` in the same self-describing metadata
//! envelope as every other bench dump, so trajectory tooling can diff
//! oracle predictions across commits exactly like measured results.
//!
//! ```text
//! XCACHE_JSON=1 cargo run --release --bin bench_oracle
//! ```

use std::fmt::Write as _;
use std::time::Instant;

use xcache_bench::crossval::{
    fuzz_oracle_ops, oracle_geometry, spgemm_fixture, spgemm_oracle_ops, widx_fixture,
    widx_oracle_ops,
};
use xcache_bench::fuzz::DEFAULT_ACCESSES;
use xcache_bench::{maybe_dump_custom_json, render_table};
use xcache_core::XCacheConfig;
use xcache_dsa::spgemm::Algorithm;
use xcache_oracle::{CacheModel, Prediction};

struct Cell {
    name: String,
    p: Prediction,
}

fn main() {
    let started = Instant::now();
    let mut cells: Vec<Cell> = Vec::new();

    let (w, g) = widx_fixture();
    cells.push(Cell {
        name: "widx-q19".into(),
        p: CacheModel::replay(oracle_geometry(&g), &widx_oracle_ops(&w)),
    });
    for alg in [Algorithm::Gustavson, Algorithm::OuterProduct] {
        let (w, g) = spgemm_fixture(alg);
        cells.push(Cell {
            name: format!("spgemm-{}", alg.name().to_lowercase()),
            p: CacheModel::replay(oracle_geometry(&g), &spgemm_oracle_ops(&w, &g)),
        });
    }
    for seed in 0..8 {
        cells.push(Cell {
            name: format!("fuzz-{seed}"),
            p: CacheModel::replay(
                oracle_geometry(&XCacheConfig::test_tiny()),
                &fuzz_oracle_ops(seed, DEFAULT_ACCESSES),
            ),
        });
    }

    let headers = [
        "cell", "loads", "hits", "misses", "hit%", "allocs", "evicts", "faults", "insertm",
    ];
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                c.p.loads.to_string(),
                c.p.hits.to_string(),
                c.p.misses.to_string(),
                format!("{:.1}", c.p.hit_rate() * 100.0),
                c.p.meta_allocs.to_string(),
                c.p.meta_evictions.to_string(),
                c.p.walker_faults.to_string(),
                c.p.insertm.to_string(),
            ]
        })
        .collect();
    println!("analytical oracle predictions (no simulation)\n");
    print!("{}", render_table(&headers, &rows));
    println!(
        "\n{} cells predicted in {:.1} ms",
        cells.len(),
        started.elapsed().as_secs_f64() * 1000.0
    );

    let mut body = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            body,
            "  {{\"cell\":\"{}\",\"loads\":{},\"hits\":{},\"misses\":{},\"hit_rate\":{:.6},\"store_hits\":{},\"store_misses\":{},\"meta_allocs\":{},\"meta_evictions\":{},\"capacity_evictions\":{},\"walker_faults\":{},\"insertm\":{},\"insertm_skips\":{}}}{}",
            c.name,
            c.p.loads,
            c.p.hits,
            c.p.misses,
            c.p.hit_rate(),
            c.p.store_hits,
            c.p.store_misses,
            c.p.meta_allocs,
            c.p.meta_evictions,
            c.p.capacity_evictions,
            c.p.walker_faults,
            c.p.insertm,
            c.p.insertm_skips,
            if i + 1 < cells.len() { ",\n" } else { "\n" }
        );
    }
    body.push(']');
    maybe_dump_custom_json("bench_oracle", "predictions", &body);
}
