//! CI chaos smoke: seeded fault injection, watchdog recovery, and the
//! determinism contract under faults.
//!
//! For `XCACHE_CHAOS_SEEDS` generated walker programs (default 25), runs
//! each under its derived fault plan with the chaos watchdog budget and
//! checks the liveness/conservation invariants, then replays each seed
//! skip-vs-step and the whole batch at 1-vs-2 runner jobs demanding
//! byte-identical reports. The DSA chaos cells — Widx fig04 in both
//! disciplines, GraphPulse, and the sharded-topology trio (Widx, SpGEMM,
//! GraphPulse under bank-conflict storms and crossbar link delays) — run
//! the same two differentials; the Widx and SpGEMM cells additionally
//! enforce the functional oracle under timing-only faults, and the
//! sharded cells assert termination with exactly-once completion.
//!
//! On failure, violating runs — including every harvested `StallReport`
//! — are written under `results/chaos/` for artifact upload.
//!
//! Environment:
//!
//! * `XCACHE_CHAOS_SEEDS` — number of program seeds (default 25).
//! * `XCACHE_CHAOS_BASE_SEED` — first seed (default 0).
//! * `XCACHE_FAULT_SEED` — chaos seed the per-run plans derive from
//!   (default `0xFA01`).
//! * `XCACHE_SCALE` — DSA cell scale divisor (as for the figure bins).
//! * `XCACHE_XCACHED_BIN` — path to the `xcached` binary for the
//!   service-level cell (defaults to a sibling of this binary; the cell
//!   is skipped with a notice when neither exists).

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

use xcache_bench::chaos::{
    cell_has_violation, chaos_jobs_differential, chaos_skip_differential,
    dsa_chaos_jobs_differential, dsa_chaos_skip_differential, ChaosCell,
};
use xcache_bench::fuzz::DEFAULT_ACCESSES;

fn main() -> ExitCode {
    let count = xcache_bench::env_u64_or("XCACHE_CHAOS_SEEDS", 25);
    let base = xcache_bench::env_u64_or("XCACHE_CHAOS_BASE_SEED", 0);
    let fault_seed = xcache_bench::env_u64_or("XCACHE_FAULT_SEED", 0xFA01);
    let scale = xcache_bench::scale();
    let seeds: Vec<u64> = (base..base + count).collect();
    println!(
        "chaos smoke: {count} seeded walker programs (seeds {base}..{}), fault seed \
         {fault_seed:#x}, {DEFAULT_ACCESSES} accesses each",
        base + count
    );

    let mut failures = 0usize;
    let mut artifact = String::new();

    // Per-seed invariants + skip differential (the skip run's report
    // carries the invariant verdict and the harvested stall reports).
    let mut stalls = 0usize;
    let mut clean = 0usize;
    for &seed in &seeds {
        match chaos_skip_differential(seed, fault_seed, DEFAULT_ACCESSES) {
            Ok(report) => {
                stalls += report.stall_reports.len();
                if report.ok() {
                    clean += 1;
                } else {
                    failures += 1;
                    for v in &report.violations {
                        eprintln!("FAIL seed {seed}: {v}");
                    }
                    let _ = writeln!(artifact, "seed {seed}: {}", report.stats_json());
                    for s in &report.stall_reports {
                        let _ = writeln!(artifact, "  stall: {s}");
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {e}");
                let _ = writeln!(artifact, "{e}");
            }
        }
    }
    println!(
        "chaos invariants: {clean}/{count} seeds clean, skip-vs-step byte-identical, \
         {stalls} stall report(s) recovered by the watchdog"
    );

    match chaos_jobs_differential(&seeds, fault_seed, DEFAULT_ACCESSES) {
        Ok(_) => println!("chaos jobs=1 vs jobs=2 differential: {count}/{count} seeds agree"),
        Err(e) => {
            failures += 1;
            eprintln!("FAIL {e}");
            let _ = writeln!(artifact, "{e}");
        }
    }

    // DSA cells: skip differential (inline) + jobs differential.
    match dsa_chaos_skip_differential(scale, 42, fault_seed) {
        Ok(cells) => {
            for (rendered, cell) in cells.iter().zip(ChaosCell::ALL) {
                if cell_has_violation(rendered) {
                    failures += 1;
                    eprintln!("FAIL dsa cell {}: {rendered}", cell.name());
                    let _ = writeln!(artifact, "dsa cell {}: {rendered}", cell.name());
                } else {
                    println!("dsa chaos cell {}: clean, skip-vs-step agree", cell.name());
                }
            }
        }
        Err(e) => {
            failures += 1;
            eprintln!("FAIL {e}");
            let _ = writeln!(artifact, "{e}");
        }
    }
    match dsa_chaos_jobs_differential(scale, 42, fault_seed) {
        Ok(_) => println!("dsa chaos cells: jobs=1 vs jobs=2 agree"),
        Err(e) => {
            failures += 1;
            eprintln!("FAIL {e}");
            let _ = writeln!(artifact, "{e}");
        }
    }

    // Service-level cell: a small sweep through a real `xcached`
    // process with the fault plan armed. Failed cells must surface
    // structurally in the result and the job must terminate with
    // exactly one `job_done` event; the drained server must exit 0.
    match service_chaos_cell(scale, fault_seed) {
        Ok(Some(summary)) => println!("service chaos cell: {summary}"),
        Ok(None) => {
            println!("service chaos cell: skipped (xcached not built; set XCACHE_XCACHED_BIN)")
        }
        Err(e) => {
            failures += 1;
            eprintln!("FAIL service cell: {e}");
            let _ = writeln!(artifact, "service cell: {e}");
        }
    }

    if failures > 0 {
        if fs::create_dir_all("results/chaos").is_ok() {
            let path = "results/chaos/violations.txt";
            if fs::write(path, &artifact).is_ok() {
                eprintln!("chaos smoke: wrote failing runs to {path}");
            }
        }
        eprintln!("chaos smoke: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("chaos smoke: all invariants and differentials hold under injected faults");
    ExitCode::SUCCESS
}

/// Finds the `xcached` binary: `XCACHE_XCACHED_BIN`, else a sibling of
/// this binary (both live in `target/<profile>/`).
fn find_xcached() -> Option<std::path::PathBuf> {
    if let Ok(p) = std::env::var("XCACHE_XCACHED_BIN") {
        let p = std::path::PathBuf::from(p);
        return p.exists().then_some(p);
    }
    let sibling = std::env::current_exe().ok()?.with_file_name("xcached");
    sibling.exists().then_some(sibling)
}

/// One blocking HTTP/1.1 exchange (`Connection: close`); returns
/// `(status, body)`. Lives here because `xcache-serve` depends on this
/// crate — the smoke drives the server purely over the wire.
fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    use std::io::{Read as _, Write as _};
    let mut s = std::net::TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    s.set_read_timeout(Some(std::time::Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let b = body.unwrap_or("");
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{b}",
        b.len()
    );
    s.write_all(req.as_bytes())
        .map_err(|e| format!("send: {e}"))?;
    let mut resp = String::new();
    s.read_to_string(&mut resp)
        .map_err(|e| format!("recv: {e}"))?;
    let status: u16 = resp
        .split_whitespace()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| format!("bad response: {}", resp.lines().next().unwrap_or("")))?;
    let body = resp
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_owned())
        .unwrap_or_default();
    Ok((status, body))
}

/// Submits a fig18 sweep (with one injected cell failure) to a real
/// `xcached` under the armed fault plan, checks structural failure
/// reporting and exactly-once termination, then drains the server and
/// requires exit status 0. `Ok(None)` when the binary is not built.
fn service_chaos_cell(scale: u32, fault_seed: u64) -> Result<Option<String>, String> {
    use std::io::BufRead as _;

    let Some(bin) = find_xcached() else {
        return Ok(None);
    };
    let state_dir = std::env::temp_dir().join(format!("xcache-chaos-svc-{}", std::process::id()));
    let _ = fs::remove_dir_all(&state_dir);

    let mut child = std::process::Command::new(&bin)
        .env("XCACHE_ADDR", "127.0.0.1:0")
        .env("XCACHE_STATE_DIR", &state_dir)
        .env("XCACHE_FAULT_SPEC", "dram_delay=0.05:12,port_stall=0.02")
        .env("XCACHE_FAULT_SEED", fault_seed.to_string())
        .stderr(std::process::Stdio::piped())
        .stdout(std::process::Stdio::null())
        .spawn()
        .map_err(|e| format!("spawn {}: {e}", bin.display()))?;

    // The daemon prints its bound address (port 0 request) on stderr.
    let stderr = child.stderr.take().ok_or("no stderr pipe")?;
    let mut reader = std::io::BufReader::new(stderr);
    let mut first = String::new();
    reader
        .read_line(&mut first)
        .map_err(|e| format!("read xcached stderr: {e}"))?;
    let addr = first
        .split("listening on ")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .ok_or_else(|| format!("no listen address in `{}`", first.trim()))?
        .to_owned();
    // Keep the pipe drained so the child never blocks on stderr.
    std::thread::spawn(move || {
        let mut sink = String::new();
        use std::io::Read as _;
        let _ = reader.read_to_string(&mut sink);
    });

    let run = || -> Result<String, String> {
        let spec = format!(
            "{{\"id\":\"chaos\",\"grid\":\"fig18\",\"scale\":{},\"seed\":7,\"fail_cells\":[\"widx 8/2\"]}}",
            scale.max(20)
        );
        let (status, body) = http_call(&addr, "POST", "/jobs", Some(&spec))?;
        if status != 202 {
            return Err(format!("submit: HTTP {status}: {body}"));
        }
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(300);
        let result = loop {
            let (status, body) = http_call(&addr, "GET", "/jobs/chaos/result", None)?;
            if status == 200 {
                break body;
            }
            if std::time::Instant::now() > deadline {
                return Err(format!("job did not finish (last: HTTP {status}: {body})"));
            }
            std::thread::sleep(std::time::Duration::from_millis(200));
        };
        if !result.contains("\"label\":\"widx 8/2\",\"status\":\"failed\"")
            || !result.contains("injected failure")
        {
            return Err(format!(
                "injected cell failure not reported structurally: {result}"
            ));
        }
        let done_cells = result.matches("\"status\":\"done\"").count();
        if done_cells != 7 {
            return Err(format!(
                "expected 7 done cells alongside the failure, got {done_cells}: {result}"
            ));
        }

        // Event log: the job terminated exactly once, every cell
        // reported exactly once.
        let (status, events) = http_call(&addr, "GET", "/jobs/chaos/events?mode=updates", None)?;
        if status != 200 {
            return Err(format!("events: HTTP {status}"));
        }
        let job_done = events.matches("\"event\":\"job_done\"").count();
        if job_done != 1 {
            return Err(format!(
                "job_done emitted {job_done} times (want exactly 1)"
            ));
        }
        let cell_done = events.matches("\"event\":\"cell_done\"").count();
        if cell_done != 8 {
            return Err(format!("cell_done emitted {cell_done} times (want 8)"));
        }
        Ok(format!(
            "8-cell sweep under armed faults: 7 done, 1 structural failure, \
             job_done exactly once ({} events)",
            events.lines().count()
        ))
    };
    let outcome = run();

    let (drain_status, _) = http_call(&addr, "POST", "/drain", None).unwrap_or((0, String::new()));
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    let exit = loop {
        match child.try_wait() {
            Ok(Some(status)) => break status,
            Ok(None) if std::time::Instant::now() > deadline => {
                let _ = child.kill();
                return Err("xcached did not exit within 30s of drain".into());
            }
            Ok(None) => std::thread::sleep(std::time::Duration::from_millis(100)),
            Err(e) => return Err(format!("wait xcached: {e}")),
        }
    };
    let _ = fs::remove_dir_all(&state_dir);

    let summary = outcome?;
    if drain_status != 200 {
        return Err(format!("drain: HTTP {drain_status}"));
    }
    if !exit.success() {
        return Err(format!("drained xcached exited with {exit}"));
    }
    Ok(Some(summary))
}
