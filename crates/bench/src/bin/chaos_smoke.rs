//! CI chaos smoke: seeded fault injection, watchdog recovery, and the
//! determinism contract under faults.
//!
//! For `XCACHE_CHAOS_SEEDS` generated walker programs (default 25), runs
//! each under its derived fault plan with the chaos watchdog budget and
//! checks the liveness/conservation invariants, then replays each seed
//! skip-vs-step and the whole batch at 1-vs-2 runner jobs demanding
//! byte-identical reports. The DSA chaos cells — Widx fig04 in both
//! disciplines, GraphPulse, and the sharded-topology trio (Widx, SpGEMM,
//! GraphPulse under bank-conflict storms and crossbar link delays) — run
//! the same two differentials; the Widx and SpGEMM cells additionally
//! enforce the functional oracle under timing-only faults, and the
//! sharded cells assert termination with exactly-once completion.
//!
//! On failure, violating runs — including every harvested `StallReport`
//! — are written under `results/chaos/` for artifact upload.
//!
//! Environment:
//!
//! * `XCACHE_CHAOS_SEEDS` — number of program seeds (default 25).
//! * `XCACHE_CHAOS_BASE_SEED` — first seed (default 0).
//! * `XCACHE_FAULT_SEED` — chaos seed the per-run plans derive from
//!   (default `0xFA01`).
//! * `XCACHE_SCALE` — DSA cell scale divisor (as for the figure bins).

use std::fmt::Write as _;
use std::fs;
use std::process::ExitCode;

use xcache_bench::chaos::{
    cell_has_violation, chaos_jobs_differential, chaos_skip_differential,
    dsa_chaos_jobs_differential, dsa_chaos_skip_differential, ChaosCell,
};
use xcache_bench::fuzz::DEFAULT_ACCESSES;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let count = env_u64("XCACHE_CHAOS_SEEDS", 25);
    let base = env_u64("XCACHE_CHAOS_BASE_SEED", 0);
    let fault_seed = env_u64("XCACHE_FAULT_SEED", 0xFA01);
    let scale = xcache_bench::scale();
    let seeds: Vec<u64> = (base..base + count).collect();
    println!(
        "chaos smoke: {count} seeded walker programs (seeds {base}..{}), fault seed \
         {fault_seed:#x}, {DEFAULT_ACCESSES} accesses each",
        base + count
    );

    let mut failures = 0usize;
    let mut artifact = String::new();

    // Per-seed invariants + skip differential (the skip run's report
    // carries the invariant verdict and the harvested stall reports).
    let mut stalls = 0usize;
    let mut clean = 0usize;
    for &seed in &seeds {
        match chaos_skip_differential(seed, fault_seed, DEFAULT_ACCESSES) {
            Ok(report) => {
                stalls += report.stall_reports.len();
                if report.ok() {
                    clean += 1;
                } else {
                    failures += 1;
                    for v in &report.violations {
                        eprintln!("FAIL seed {seed}: {v}");
                    }
                    let _ = writeln!(artifact, "seed {seed}: {}", report.stats_json());
                    for s in &report.stall_reports {
                        let _ = writeln!(artifact, "  stall: {s}");
                    }
                }
            }
            Err(e) => {
                failures += 1;
                eprintln!("FAIL {e}");
                let _ = writeln!(artifact, "{e}");
            }
        }
    }
    println!(
        "chaos invariants: {clean}/{count} seeds clean, skip-vs-step byte-identical, \
         {stalls} stall report(s) recovered by the watchdog"
    );

    match chaos_jobs_differential(&seeds, fault_seed, DEFAULT_ACCESSES) {
        Ok(_) => println!("chaos jobs=1 vs jobs=2 differential: {count}/{count} seeds agree"),
        Err(e) => {
            failures += 1;
            eprintln!("FAIL {e}");
            let _ = writeln!(artifact, "{e}");
        }
    }

    // DSA cells: skip differential (inline) + jobs differential.
    match dsa_chaos_skip_differential(scale, 42, fault_seed) {
        Ok(cells) => {
            for (rendered, cell) in cells.iter().zip(ChaosCell::ALL) {
                if cell_has_violation(rendered) {
                    failures += 1;
                    eprintln!("FAIL dsa cell {}: {rendered}", cell.name());
                    let _ = writeln!(artifact, "dsa cell {}: {rendered}", cell.name());
                } else {
                    println!("dsa chaos cell {}: clean, skip-vs-step agree", cell.name());
                }
            }
        }
        Err(e) => {
            failures += 1;
            eprintln!("FAIL {e}");
            let _ = writeln!(artifact, "{e}");
        }
    }
    match dsa_chaos_jobs_differential(scale, 42, fault_seed) {
        Ok(_) => println!("dsa chaos cells: jobs=1 vs jobs=2 agree"),
        Err(e) => {
            failures += 1;
            eprintln!("FAIL {e}");
            let _ = writeln!(artifact, "{e}");
        }
    }

    if failures > 0 {
        if fs::create_dir_all("results/chaos").is_ok() {
            let path = "results/chaos/violations.txt";
            if fs::write(path, &artifact).is_ok() {
                eprintln!("chaos smoke: wrote failing runs to {path}");
            }
        }
        eprintln!("chaos smoke: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("chaos smoke: all invariants and differentials hold under injected faults");
    ExitCode::SUCCESS
}
