//! Differential cross-validation smoke: the cycle-level simulator vs the
//! analytical `xcache-oracle` model.
//!
//! Runs `XCACHE_CROSSVAL_SEEDS` fuzz seeds (default 50) through both the
//! serially-driven (**Exact**) and pipelined (**Bounded**) classes, plus
//! the paper's Widx and SpGEMM scenario cells, and fails if any cell
//! disagrees beyond its declared tolerance (see
//! `xcache_bench::crossval`). On failure the full per-cell comparison is
//! written to `results/crossval/disagreements.txt` so CI can upload it
//! as an artifact.
//!
//! ```text
//! XCACHE_CROSSVAL_SEEDS=100 cargo run --release --bin crossval_smoke
//! ```

use std::process::ExitCode;

use xcache_bench::crossval::{self, CellReport, Tolerance};
use xcache_bench::fuzz::DEFAULT_ACCESSES;

fn main() -> ExitCode {
    let seeds = crossval::crossval_seeds();
    println!("cross-validating {seeds} fuzz seeds (serial + pipelined) + scenario cells\n");

    let reports = crossval::run_suite(seeds, DEFAULT_ACCESSES);

    let mut failed: Vec<&CellReport> = Vec::new();
    let mut exact = 0usize;
    let mut bounded = 0usize;
    for r in &reports {
        match r.tolerance {
            Tolerance::Exact => exact += 1,
            Tolerance::Bounded { .. } => bounded += 1,
        }
        if !r.ok() {
            failed.push(r);
        }
    }

    println!(
        "{} cells ({exact} exact, {bounded} bounded): {} agree, {} disagree",
        reports.len(),
        reports.len() - failed.len(),
        failed.len()
    );

    if failed.is_empty() {
        // A compact digest of the bounded cells so the log shows how much
        // headroom the declared tolerances actually have.
        for r in &reports {
            if let Tolerance::Bounded { .. } = r.tolerance {
                let worst = r
                    .comparisons
                    .iter()
                    .map(|c| c.sim.abs_diff(c.oracle))
                    .max()
                    .unwrap_or(0);
                if !r.name.starts_with("fuzz-") {
                    println!(
                        "  {:<16} worst |Δ| {} of budget {} over {} loads",
                        r.name,
                        worst,
                        r.budget(),
                        r.loads
                    );
                }
            }
        }
        println!("\ncross-validation OK");
        return ExitCode::SUCCESS;
    }

    let mut artifact = String::new();
    for r in &failed {
        let text = r.render();
        eprint!("{text}");
        artifact.push_str(&text);
        artifact.push('\n');
    }
    let dir = std::path::Path::new("results/crossval");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join("disagreements.txt");
        if std::fs::write(&path, &artifact).is_ok() {
            eprintln!("(wrote {})", path.display());
        }
    }
    eprintln!(
        "\ncross-validation FAILED: {} cell(s) out of tolerance",
        failed.len()
    );
    ExitCode::FAILURE
}
