//! Figure 4: load-to-use latency, address tags vs meta-tags.
//!
//! Paper shape target: meta-tags give markedly lower load-to-use latency —
//! the address-tagged design walks (hash + bucket + chain) even when the
//! element is cache-resident.

use xcache_bench::{
    maybe_dump_table_json, note_sim_cycles, render_table, scale, spgemm_geometry, widx_geometry,
    widx_workload, Runner, Scenario,
};
use xcache_dsa::{spgemm, widx, RunReport};
use xcache_workloads::QueryClass;

const HEADERS: [&str; 8] = [
    "Workload",
    "meta mean",
    "meta p50",
    "meta min",
    "addr mean",
    "addr p50",
    "addr min",
    "addr/meta",
];

/// A table row from one (X-Cache, address-cache) run pair.
fn row(name: &str, x: &RunReport, a: &RunReport) -> Vec<String> {
    let x_mean = x.stats.get("xcache.load_to_use.sum") as f64
        / x.stats.get("xcache.load_to_use.count").max(1) as f64;
    let a_mean = a.stats.get("engine.task_latency.sum") as f64
        / a.stats.get("engine.task_latency.count").max(1) as f64;
    vec![
        name.to_owned(),
        format!("{x_mean:.0}"),
        x.stats.get("xcache.load_to_use.p50").to_string(),
        x.stats.get("xcache.load_to_use.min").to_string(),
        format!("{a_mean:.0}"),
        a.stats.get("engine.task_latency.p50").to_string(),
        a.stats.get("engine.task_latency.min").to_string(),
        format!("{:.2}x", a_mean / x_mean),
    ]
}

fn main() {
    let scale = scale();
    println!("Figure 4: load-to-use latency, address tags vs meta-tags (scale 1/{scale})\n");
    let mut cells: Vec<Scenario<'_, Vec<String>>> = QueryClass::all()
        .into_iter()
        .map(|class| {
            Scenario::new(class.name(), move || {
                let w = widx_workload(class, scale, 7);
                let g = widx_geometry(scale);
                let x = widx::run_xcache(&w, Some(g.clone()));
                let a = widx::run_address_cache(&w, Some(g));
                note_sim_cycles(x.cycles + a.cycles);
                row(class.name(), &x, &a)
            })
        })
        .collect();
    // SpGEMM row fetch (the paper's other Figure 4 family): meta-tag =
    // row id vs row_ptr + per-block address walks.
    cells.push(Scenario::new("Gamma rows", move || {
        let w = spgemm::SpgemmWorkload::paper_like(spgemm::Algorithm::Gustavson, scale * 4, 7);
        let g = spgemm_geometry(scale);
        let x = spgemm::run_xcache(&w, Some(g.clone()));
        let a = spgemm::run_address_cache(&w, Some(g));
        note_sim_cycles(x.cycles + a.cycles);
        row("Gamma rows", &x, &a)
    }));
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig04_load_to_use", &HEADERS, &rows);
    println!("\n(latencies in cycles; the meta-tag min is the pipelined 3-cycle hit path)");
}
