//! Figure 4: load-to-use latency, address tags vs meta-tags.
//!
//! Paper shape target: meta-tags give markedly lower load-to-use latency —
//! the address-tagged design walks (hash + bucket + chain) even when the
//! element is cache-resident.

use xcache_bench::{render_table, scale, spgemm_geometry, widx_geometry, widx_workload};
use xcache_dsa::{spgemm, widx};
use xcache_workloads::QueryClass;

fn main() {
    let scale = scale();
    println!("Figure 4: load-to-use latency, address tags vs meta-tags (scale 1/{scale})\n");
    let mut rows = Vec::new();
    for class in QueryClass::all() {
        let w = widx_workload(class, scale, 7);
        let g = widx_geometry(scale);
        let x = widx::run_xcache(&w, Some(g.clone()));
        let a = widx::run_address_cache(&w, Some(g));
        let xs = &x.stats;
        let as_ = &a.stats;
        let x_mean = xs.get("xcache.load_to_use.sum") as f64
            / xs.get("xcache.load_to_use.count").max(1) as f64;
        let a_mean = as_.get("engine.task_latency.sum") as f64
            / as_.get("engine.task_latency.count").max(1) as f64;
        rows.push(vec![
            class.name().to_owned(),
            format!("{x_mean:.0}"),
            xs.get("xcache.load_to_use.p50").to_string(),
            xs.get("xcache.load_to_use.min").to_string(),
            format!("{a_mean:.0}"),
            as_.get("engine.task_latency.p50").to_string(),
            as_.get("engine.task_latency.min").to_string(),
            format!("{:.2}x", a_mean / x_mean),
        ]);
    }
    // SpGEMM row fetch (the paper's other Figure 4 family): meta-tag =
    // row id vs row_ptr + per-block address walks.
    let w = spgemm::SpgemmWorkload::paper_like(spgemm::Algorithm::Gustavson, scale * 4, 7);
    let g = spgemm_geometry(scale);
    let x = spgemm::run_xcache(&w, Some(g.clone()));
    let a = spgemm::run_address_cache(&w, Some(g));
    let x_mean = x.stats.get("xcache.load_to_use.sum") as f64
        / x.stats.get("xcache.load_to_use.count").max(1) as f64;
    let a_mean = a.stats.get("engine.task_latency.sum") as f64
        / a.stats.get("engine.task_latency.count").max(1) as f64;
    rows.push(vec![
        "Gamma rows".to_owned(),
        format!("{x_mean:.0}"),
        x.stats.get("xcache.load_to_use.p50").to_string(),
        x.stats.get("xcache.load_to_use.min").to_string(),
        format!("{a_mean:.0}"),
        a.stats.get("engine.task_latency.p50").to_string(),
        a.stats.get("engine.task_latency.min").to_string(),
        format!("{:.2}x", a_mean / x_mean),
    ]);

    print!(
        "{}",
        render_table(
            &[
                "Workload",
                "meta mean",
                "meta p50",
                "meta min",
                "addr mean",
                "addr p50",
                "addr min",
                "addr/meta",
            ],
            &rows
        )
    );
    println!("\n(latencies in cycles; the meta-tag min is the pipelined 3-cycle hit path)");
}
