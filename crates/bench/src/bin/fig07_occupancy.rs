//! Figure 7: controller occupancy, coroutine vs blocking-thread walkers,
//! as the fraction of data residing off-chip grows.
//!
//! Occupancy = #active-regs x size-bytes x lifetime-cycles. Paper shape
//! target: threads show orders-of-magnitude higher occupancy, growing
//! with the off-chip fraction (long-latency transactions pin whole
//! hardware contexts).

use xcache_bench::{
    maybe_dump_table_json, note_sim_cycles, render_table, scale, widx_workload, Runner, Scenario,
};
use xcache_core::{WalkerDiscipline, XCacheConfig};
use xcache_dsa::widx;
use xcache_workloads::QueryClass;

const HEADERS: [&str; 6] = [
    "off-chip",
    "coroutine occ (x1e4)",
    "thread occ (x1e4)",
    "thread/coro",
    "coro cyc",
    "thread cyc",
];

fn main() {
    let scale = scale();
    println!("Figure 7: walker occupancy, coroutine vs thread (scale 1/{scale})\n");
    let w = widx_workload(QueryClass::Q22, scale, 7);
    let keys = w.index.len();
    let cells: Vec<Scenario<'_, Vec<String>>> = [20u32, 40, 60, 80, 95]
        .into_iter()
        .map(|offchip_pct| {
            let w = &w;
            Scenario::new(format!("{offchip_pct}% off-chip"), move || {
                // Size the meta-tag array so (100 - offchip)% of the keys fit.
                let resident = (keys as u64 * u64::from(100 - offchip_pct) / 100).max(16);
                // Fixed power-of-two sets; associativity carries the capacity so
                // every sweep point is distinct (ways need not be a power of two).
                let sets = 128usize;
                let ways = (resident as usize / sets).max(1);
                let geometry = |discipline| XCacheConfig {
                    sets,
                    ways,
                    data_sectors: (sets * ways).max(64),
                    discipline,
                    ..XCacheConfig::widx()
                };
                let coro = widx::run_xcache(w, Some(geometry(WalkerDiscipline::Coroutine)));
                let thread = widx::run_xcache(w, Some(geometry(WalkerDiscipline::BlockingThread)));
                note_sim_cycles(coro.cycles + thread.cycles);
                let occ_c = coro.stats.get("xcache.occupancy_reg_byte_cycles");
                let occ_t = thread.stats.get("xcache.occupancy_reg_byte_cycles");
                vec![
                    format!("{offchip_pct}%"),
                    format!("{:.1}", occ_c as f64 / 1e4),
                    format!("{:.1}", occ_t as f64 / 1e4),
                    format!("{:.0}x", occ_t as f64 / occ_c.max(1) as f64),
                    coro.cycles.to_string(),
                    thread.cycles.to_string(),
                ]
            })
        })
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig07_occupancy", &HEADERS, &rows);
    println!("\n(paper: threads ~1000x higher occupancy, growing with off-chip fraction)");
}
