//! Figure 14: X-Cache speedup over the hardwired DSA baselines and over
//! same-geometry address-based caches, plus the memory-access axis.
//!
//! Paper shape targets: X-Cache competitive with every baseline DSA (up to
//! 1.54x on Widx); 1.7x average over address caches; 2-8x fewer memory
//! accesses (≈6.5x fewer DRAM accesses from nested walks).

use xcache_bench::{geomean, maybe_dump_table_json, render_table, run_all_dsas, scale};

const HEADERS: [&str; 9] = [
    "DSA / input",
    "X-Cache cyc",
    "Baseline cyc",
    "AddrCache cyc",
    "vs base",
    "vs addr",
    "X$ DRAM",
    "A$ DRAM",
    "DRAM ratio",
];

fn main() {
    let scale = scale();
    println!("Figure 14: runtime and memory accesses (scale 1/{scale})\n");
    // The DSA sweep is the scenario grid; `run_all_dsas` executes it
    // through the shared parallel runner.
    let runs = run_all_dsas(scale, 7);
    xcache_bench::maybe_dump_json("fig14_speedup", &runs);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                r.xcache.cycles.to_string(),
                r.baseline.cycles.to_string(),
                r.addr.cycles.to_string(),
                format!("{:.2}x", r.speedup_vs_baseline()),
                format!("{:.2}x", r.speedup_vs_addr()),
                r.xcache.dram_accesses().to_string(),
                r.addr.dram_accesses().to_string(),
                format!("{:.2}x", r.dram_ratio()),
            ]
        })
        .collect();
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig14_speedup_table", &HEADERS, &rows);
    let gmean_addr = geomean(runs.iter().map(xcache_bench::DsaRun::speedup_vs_addr));
    let gmean_base = geomean(runs.iter().map(xcache_bench::DsaRun::speedup_vs_baseline));
    println!();
    println!("Geomean speedup vs address cache : {gmean_addr:.2}x (paper: 1.7x)");
    println!(
        "Geomean speedup vs baseline DSA  : {gmean_base:.2}x (paper: ~1x, up to 1.54x on Widx)"
    );
}
