//! Figure 15: total power, X-Cache vs address-based cache, per DSA.
//!
//! Paper shape target: address-based caches consume 26-79% more power
//! than X-Cache (walking eliminated, fewer on-chip accesses).

use xcache_bench::{maybe_dump_table_json, pct, render_table, run_all_dsas, scale};
use xcache_energy::EnergyModel;

const HEADERS: [&str; 4] = [
    "DSA / input",
    "X-Cache [mW]",
    "AddrCache [mW]",
    "addr overhead",
];

fn main() {
    let scale = scale();
    println!("Figure 15: total power breakdown (scale 1/{scale}, lower is better)\n");
    let model = EnergyModel::new();
    // The DSA sweep runs through the shared parallel runner; the energy
    // model is applied to the collected reports afterwards.
    let runs = run_all_dsas(scale, 7);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let x = model.xcache_energy(&r.xcache.stats, &r.geometry);
            let a = model.address_cache_energy(&r.addr.stats, 64);
            let x_mw = x.avg_power_mw(r.xcache.cycles);
            let a_mw = a.avg_power_mw(r.addr.cycles);
            vec![
                r.name.clone(),
                format!("{:.3}", x_mw),
                format!("{:.3}", a_mw),
                pct((a_mw - x_mw) / x_mw),
            ]
        })
        .collect();
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig15_power_total", &HEADERS, &rows);
    println!("\n(paper: address caches consume 26-79% more power than X-Cache)");
}
