//! Figure 16: breakdown of RAM and controller power within X-Cache.
//!
//! Paper shape targets: data storage dominates (66-89%); meta-tags are
//! 1.5-6.6% of the data RAM energy; the controller (walking + routines +
//! registers) is ~24% of the total; the routine RAM — the price of
//! programmability — is under 4.2%.

use xcache_bench::{maybe_dump_table_json, pct, render_table, run_all_dsas, scale};
use xcache_energy::EnergyModel;

const HEADERS: [&str; 8] = [
    "DSA / input",
    "Data RAM",
    "Meta-tags",
    "Rtn RAM",
    "X-Reg",
    "Exec+AGEN",
    "Controller",
    "tags/data",
];

fn main() {
    let scale = scale();
    println!("Figure 16: X-Cache RAM + controller power breakdown (scale 1/{scale})\n");
    let model = EnergyModel::new();
    // The DSA sweep runs through the shared parallel runner; the energy
    // model is applied to the collected reports afterwards.
    let runs = run_all_dsas(scale, 7);
    let rows: Vec<Vec<String>> = runs
        .iter()
        .map(|r| {
            let b = model.xcache_energy(&r.xcache.stats, &r.geometry);
            vec![
                r.name.clone(),
                pct(b.fraction(b.data_ram_pj)),
                pct(b.fraction(b.meta_tag_pj)),
                pct(b.fraction(b.routine_ram_pj)),
                pct(b.fraction(b.xreg_pj)),
                pct(b.fraction(b.action_logic_pj + b.agen_pj)),
                pct(b.fraction(b.controller_pj())),
                pct(b.meta_tag_pj / b.data_ram_pj.max(1e-12)),
            ]
        })
        .collect();
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig16_power_breakdown", &HEADERS, &rows);
    println!("\n(paper: data 66-89%; tags 1.5-6.6% of data; controller ~24%; routine RAM <4.2%)");
}
