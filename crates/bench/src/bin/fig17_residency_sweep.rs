//! Figure 17: X-Cache runtime vs the Widx baseline across on-chip data
//! residency (TPC-H-22).
//!
//! Paper shape target: as the resident fraction (and hence hit rate)
//! rises, the meta-tag advantage grows — hits skip hashing and walking
//! entirely, while the baseline walks regardless.

use xcache_bench::crossval::{oracle_geometry, widx_oracle_ops};
use xcache_bench::{maybe_dump_table_json, pct, render_table, scale, Runner, Scenario};
use xcache_core::XCacheConfig;
use xcache_dsa::widx;
use xcache_oracle::CacheModel;
use xcache_workloads::QueryClass;

const HEADERS: [&str; 5] = [
    "% on-chip",
    "hit rate",
    "X-Cache cyc",
    "Widx cyc",
    "speedup",
];

fn main() {
    let scale = scale();
    println!("Figure 17: runtime vs % data on-chip, Widx TPC-H-22 (scale 1/{scale})\n");
    // High join selectivity (2% absent probes): the sweep isolates the
    // residency effect, as in the paper's figure.
    let mut preset = QueryClass::Q22.preset().scaled_down(scale as usize);
    preset.probes = (preset.probes * 3).max(2_000);
    preset.miss_rate = 0.02;
    let w = xcache_dsa::widx::WidxWorkload::from_preset(&preset, 7);
    let keys = w.index.len();
    // The access plan depends only on the index layout, not the cache
    // geometry — derive it once and replay it per sweep point for the
    // pruning estimate (predicted DRAM-walking misses: the cells where
    // simulation has the most to say).
    let oracle_ops = widx_oracle_ops(&w);
    let geometry_for = |resident_pct: u32| {
        let resident = (keys as u64 * u64::from(resident_pct) / 100).max(16);
        // Fixed power-of-two sets; associativity carries the capacity so
        // every sweep point is distinct (ways need not be a power of two).
        let sets = 128usize;
        let ways = (resident as usize / sets).max(1);
        XCacheConfig {
            sets,
            ways,
            data_sectors: (sets * ways).max(64),
            ..XCacheConfig::widx()
        }
    };
    let cells: Vec<Scenario<'_, Vec<String>>> = [10u32, 25, 50, 75, 100]
        .into_iter()
        .map(|resident_pct| {
            let w = &w;
            let predicted =
                CacheModel::replay(oracle_geometry(&geometry_for(resident_pct)), &oracle_ops);
            Scenario::new(format!("{resident_pct}% resident"), move || {
                let g = geometry_for(resident_pct);
                let x = widx::run_xcache(w, Some(g.clone()));
                let b = widx::run_baseline(w, Some(g));
                let hit_rate = x.stats.get("xcache.hit") as f64
                    / (x.stats.get("xcache.hit") + x.stats.get("xcache.miss")).max(1) as f64;
                vec![
                    format!("{resident_pct}%"),
                    pct(hit_rate),
                    x.cycles.to_string(),
                    b.cycles.to_string(),
                    format!("{:.2}x", x.speedup_over(&b)),
                ]
            })
            .with_estimate(predicted.misses as f64)
        })
        .collect();
    let total = cells.len();
    let rows: Vec<Vec<String>> = Runner::from_env()
        .run_pruned(cells)
        .into_iter()
        .flatten()
        .collect();
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig17_residency_sweep", &HEADERS, &rows);
    if rows.len() < total {
        println!(
            "\n({} of {total} cells pruned by XCACHE_ESTIMATE_FRAC; \
             ranked by oracle-predicted misses)",
            total - rows.len()
        );
    }
    println!("\n(paper: the meta-tag advantage grows with residency/hit rate)");
}
