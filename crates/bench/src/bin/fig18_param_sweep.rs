//! Figure 18: sweeping #Active and #Exe for GraphPulse (p2p-Gnutella08)
//! and Widx (TPC-H-22).
//!
//! Paper shape target: GraphPulse gains up to ~2x from more controller
//! parallelism (event handling is routine-throughput-bound); Widx gains
//! at most ~10% (DRAM-bound, and hits already bypass the walkers).

use xcache_bench::{
    graphpulse_geometry, maybe_dump_table_json, render_table, scale, widx_geometry, widx_workload,
    Runner, Scenario,
};
use xcache_core::XCacheConfig;
use xcache_dsa::{graphpulse, widx};
use xcache_workloads::{CsrMatrix, Graph, GraphPreset, QueryClass, SparsePattern};

const GRID: [(usize, usize); 4] = [(4, 1), (8, 2), (16, 4), (32, 8)];
const HEADERS: [&str; 3] = ["#Active/#Exe", "cycles", "speedup vs 4/1"];

/// Cycle counts into display rows, with cell 0 as the speedup base.
fn rows_vs_first(cycles: &[u64]) -> Vec<Vec<String>> {
    let base = cycles[0];
    GRID.iter()
        .zip(cycles)
        .map(|(&(active, exe), &c)| {
            vec![
                format!("{active}/{exe}"),
                c.to_string(),
                format!("{:.2}x", base as f64 / c as f64),
            ]
        })
        .collect()
}

fn main() {
    let scale = scale();
    println!("Figure 18: sweeping #Active / #Exe (scale 1/{scale})\n");
    let runner = Runner::from_env();

    // --- GraphPulse: p2p-Gnutella08-shaped PageRank ---
    let (n, e) = GraphPreset::P2pGnutella08.dims();
    let n = (n / scale).max(64);
    let e = (e / scale as usize).max(256);
    let gw = graphpulse::GraphPulseWorkload {
        graph: Graph::from_adjacency(CsrMatrix::generate(n, n, e, SparsePattern::RMat, 7)),
        iterations: 2,
    };
    let cells: Vec<Scenario<'_, u64>> = GRID
        .into_iter()
        .map(|(active, exe)| {
            let gw = &gw;
            Scenario::new(format!("graphpulse {active}/{exe}"), move || {
                let g = XCacheConfig {
                    active,
                    exe,
                    ..graphpulse_geometry(n)
                };
                graphpulse::run_xcache(gw, Some(g)).cycles
            })
        })
        .collect();
    let rows = rows_vs_first(&runner.run(cells));
    println!("GraphPulse p2p-Gnutella08:");
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig18_param_sweep_graphpulse", &HEADERS, &rows);

    // --- Widx: TPC-H-22 ---
    let ww = widx_workload(QueryClass::Q22, scale, 7);
    let cells: Vec<Scenario<'_, u64>> = GRID
        .into_iter()
        .map(|(active, exe)| {
            let ww = &ww;
            Scenario::new(format!("widx {active}/{exe}"), move || {
                let g = XCacheConfig {
                    active,
                    exe,
                    ..widx_geometry(scale)
                };
                widx::run_xcache(ww, Some(g)).cycles
            })
        })
        .collect();
    let rows = rows_vs_first(&runner.run(cells));
    println!("\nWidx TPC-H-22:");
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig18_param_sweep_widx", &HEADERS, &rows);
    println!("\n(paper: GraphPulse up to ~2x; Widx <=10%)");
}
