//! Figure 18: sweeping #Active and #Exe for GraphPulse (p2p-Gnutella08)
//! and Widx (TPC-H-22).
//!
//! Paper shape target: GraphPulse gains up to ~2x from more controller
//! parallelism (event handling is routine-throughput-bound); Widx gains
//! at most ~10% (DRAM-bound, and hits already bypass the walkers).

use xcache_bench::{graphpulse_geometry, render_table, scale, widx_geometry, widx_workload};
use xcache_core::XCacheConfig;
use xcache_dsa::{graphpulse, widx};
use xcache_workloads::{CsrMatrix, Graph, GraphPreset, QueryClass, SparsePattern};

fn main() {
    let scale = scale();
    println!("Figure 18: sweeping #Active / #Exe (scale 1/{scale})\n");

    // --- GraphPulse: p2p-Gnutella08-shaped PageRank ---
    let (n, e) = GraphPreset::P2pGnutella08.dims();
    let n = (n / scale).max(64);
    let e = (e / scale as usize).max(256);
    let gw = graphpulse::GraphPulseWorkload {
        graph: Graph::from_adjacency(CsrMatrix::generate(n, n, e, SparsePattern::RMat, 7)),
        iterations: 2,
    };
    let mut rows = Vec::new();
    let mut base_cycles = None;
    for (active, exe) in [(4, 1), (8, 2), (16, 4), (32, 8)] {
        let g = XCacheConfig {
            active,
            exe,
            ..graphpulse_geometry(n)
        };
        let r = graphpulse::run_xcache(&gw, Some(g));
        let base = *base_cycles.get_or_insert(r.cycles);
        rows.push(vec![
            format!("{active}/{exe}"),
            r.cycles.to_string(),
            format!("{:.2}x", base as f64 / r.cycles as f64),
        ]);
    }
    println!("GraphPulse p2p-Gnutella08:");
    print!(
        "{}",
        render_table(&["#Active/#Exe", "cycles", "speedup vs 4/1"], &rows)
    );

    // --- Widx: TPC-H-22 ---
    let ww = widx_workload(QueryClass::Q22, scale, 7);
    let mut rows = Vec::new();
    let mut base_cycles = None;
    for (active, exe) in [(4, 1), (8, 2), (16, 4), (32, 8)] {
        let g = XCacheConfig {
            active,
            exe,
            ..widx_geometry(scale)
        };
        let r = widx::run_xcache(&ww, Some(g));
        let base = *base_cycles.get_or_insert(r.cycles);
        rows.push(vec![
            format!("{active}/{exe}"),
            r.cycles.to_string(),
            format!("{:.2}x", base as f64 / r.cycles as f64),
        ]);
    }
    println!("\nWidx TPC-H-22:");
    print!(
        "{}",
        render_table(&["#Active/#Exe", "cycles", "speedup vs 4/1"], &rows)
    );
    println!("\n(paper: GraphPulse up to ~2x; Widx <=10%)");
}
