//! Figure 19: FPGA synthesis (register and logic utilisation breakdown),
//! at the paper's synthesis point #Exe=4, #Active=8 on a Cyclone IV.

use xcache_bench::{maybe_dump_table_json, pct, render_table, Runner, Scenario};
use xcache_energy::area::{fpga_utilization, reference_config};

const HEADERS: [&str; 5] = ["Component", "Regs", "Reg %", "Logic", "Logic %"];

fn main() {
    println!("Figure 19: FPGA synthesis breakdown (#Exe=4, #Active=8)\n");
    let r = fpga_utilization(&reference_config());
    // One cell per synthesised component (the model is cheap; the grid
    // form keeps this binary on the same runner path as the sweeps).
    let cells: Vec<Scenario<'_, Vec<String>>> = r
        .components
        .iter()
        .map(|c| {
            let (total_regs, total_logic) = (r.total_regs, r.total_logic);
            Scenario::new(c.name, move || {
                vec![
                    c.name.to_owned(),
                    format!("{:.0}", c.regs),
                    pct(c.regs / total_regs),
                    format!("{:.0}", c.logic),
                    pct(c.logic / total_logic),
                ]
            })
        })
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("fig19_fpga_synthesis", &HEADERS, &rows);
    println!();
    println!("Total registers        : {:.0}", r.total_regs);
    println!("Total logic elements   : {:.0}", r.total_logic);
    println!(
        "Cyclone IV EP4CGX150 utilisation: {}",
        pct(r.device_logic_fraction)
    );
}
