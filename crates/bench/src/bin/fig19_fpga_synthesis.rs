//! Figure 19: FPGA synthesis (register and logic utilisation breakdown),
//! at the paper's synthesis point #Exe=4, #Active=8 on a Cyclone IV.

use xcache_bench::{pct, render_table};
use xcache_energy::area::{fpga_utilization, reference_config};

fn main() {
    println!("Figure 19: FPGA synthesis breakdown (#Exe=4, #Active=8)\n");
    let r = fpga_utilization(&reference_config());
    let rows: Vec<Vec<String>> = r
        .components
        .iter()
        .map(|c| {
            vec![
                c.name.to_owned(),
                format!("{:.0}", c.regs),
                pct(c.regs / r.total_regs),
                format!("{:.0}", c.logic),
                pct(c.logic / r.total_logic),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["Component", "Regs", "Reg %", "Logic", "Logic %"],
            &rows
        )
    );
    println!();
    println!("Total registers        : {:.0}", r.total_regs);
    println!("Total logic elements   : {:.0}", r.total_logic);
    println!(
        "Cyclone IV EP4CGX150 utilisation: {}",
        pct(r.device_logic_fraction)
    );
}
