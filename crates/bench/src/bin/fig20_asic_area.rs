//! Figure 20: ASIC layout (45 nm, OpenROAD flow in the paper; calibrated
//! analytical model here) at #Exe=4, #Active=8.

use xcache_bench::{maybe_dump_table_json, Runner, Scenario};
use xcache_core::XCacheConfig;
use xcache_energy::area::{asic_area, reference_config};

const HEADERS: [&str; 4] = ["DSA", "data KiB", "RAM mm^2", "controller mm^2"];

fn main() {
    println!("Figure 20: ASIC layout, 45 nm (#Exe=4, #Active=8)\n");
    let a = asic_area(&reference_config());
    println!("Controller area (no RAMs): {:.3} mm^2", a.controller_mm2);
    println!("Controller cells         : {:.0}", a.controller_cells);
    println!("RAM area (data + tags)   : {:.3} mm^2", a.ram_mm2);
    println!();
    println!("Per-DSA geometry RAM areas:");
    // One cell per DSA geometry, through the shared runner.
    let cells: Vec<Scenario<'_, Vec<String>>> = [
        ("Widx", XCacheConfig::widx()),
        ("DASX", XCacheConfig::dasx()),
        ("SpArch", XCacheConfig::sparch()),
        ("Gamma", XCacheConfig::gamma()),
        ("GraphPulse", XCacheConfig::graphpulse()),
    ]
    .into_iter()
    .map(|(name, cfg)| {
        Scenario::new(name, move || {
            let r = asic_area(&cfg);
            vec![
                name.to_owned(),
                (cfg.data_capacity_bytes() / 1024).to_string(),
                format!("{:.3}", r.ram_mm2),
                format!("{:.3}", r.controller_mm2),
            ]
        })
    })
    .collect();
    let rows = Runner::from_env().run(cells);
    for row in &rows {
        println!(
            "  {:<11} data {:>7} KiB -> RAM {} mm^2, controller {} mm^2",
            row[0], row[1], row[2], row[3]
        );
    }
    maybe_dump_table_json("fig20_asic_area", &HEADERS, &rows);
}
