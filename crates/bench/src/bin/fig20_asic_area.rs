//! Figure 20: ASIC layout (45 nm, OpenROAD flow in the paper; calibrated
//! analytical model here) at #Exe=4, #Active=8.

use xcache_core::XCacheConfig;
use xcache_energy::area::{asic_area, reference_config};

fn main() {
    println!("Figure 20: ASIC layout, 45 nm (#Exe=4, #Active=8)\n");
    let a = asic_area(&reference_config());
    println!("Controller area (no RAMs): {:.3} mm^2", a.controller_mm2);
    println!("Controller cells         : {:.0}", a.controller_cells);
    println!("RAM area (data + tags)   : {:.3} mm^2", a.ram_mm2);
    println!();
    println!("Per-DSA geometry RAM areas:");
    for (name, cfg) in [
        ("Widx", XCacheConfig::widx()),
        ("DASX", XCacheConfig::dasx()),
        ("SpArch", XCacheConfig::sparch()),
        ("Gamma", XCacheConfig::gamma()),
        ("GraphPulse", XCacheConfig::graphpulse()),
    ] {
        let r = asic_area(&cfg);
        println!(
            "  {:<11} data {:>7} KiB -> RAM {:.3} mm^2, controller {:.3} mm^2",
            name,
            cfg.data_capacity_bytes() / 1024,
            r.ram_mm2,
            r.controller_mm2
        );
    }
}
