//! CI fuzz smoke: seeded walker programs, skip-vs-step differential.
//!
//! Generates `XCACHE_FUZZ_SEEDS` walker programs (default 200), runs each
//! on its synthetic workload with idle-cycle fast-forwarding on and off,
//! and demands byte-identical stats JSON; runs each under the macro-step
//! engine vs the micro-step reference (`XCACHE_EXEC`) with the same
//! demand; then replays the whole batch through the scenario runner at
//! one and two worker threads and demands the per-seed results agree.
//! Any divergence prints both renderings and exits nonzero.
//!
//! Environment:
//!
//! * `XCACHE_FUZZ_SEEDS` — number of seeds (default 200).
//! * `XCACHE_FUZZ_BASE_SEED` — first seed (default 0), for re-running a
//!   failing window locally.

use std::process::ExitCode;

use xcache_bench::fuzz::{
    exec_differential, jobs_differential, skip_differential, DEFAULT_ACCESSES,
};

fn main() -> ExitCode {
    let count = xcache_bench::env_u64_or("XCACHE_FUZZ_SEEDS", 200);
    let base = xcache_bench::env_u64_or("XCACHE_FUZZ_BASE_SEED", 0);
    let seeds: Vec<u64> = (base..base + count).collect();
    println!(
        "fuzz smoke: {count} seeded walker programs (seeds {base}..{}), {DEFAULT_ACCESSES} accesses each",
        base + count
    );

    let mut failures = 0usize;
    for &seed in &seeds {
        if let Err(e) = skip_differential(seed, DEFAULT_ACCESSES) {
            eprintln!("FAIL {e}");
            failures += 1;
        }
    }
    println!(
        "skip-vs-step differential: {}/{count} seeds byte-identical",
        count as usize - failures
    );

    let mut exec_failures = 0usize;
    for &seed in &seeds {
        if let Err(e) = exec_differential(seed, DEFAULT_ACCESSES) {
            eprintln!("FAIL {e}");
            exec_failures += 1;
        }
    }
    println!(
        "macro-vs-micro differential: {}/{count} seeds byte-identical",
        count as usize - exec_failures
    );
    failures += exec_failures;

    match jobs_differential(&seeds, DEFAULT_ACCESSES) {
        Ok(_) => println!("jobs=1 vs jobs=2 differential: {count}/{count} seeds byte-identical"),
        Err(e) => {
            eprintln!("FAIL {e}");
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!("fuzz smoke: {failures} failure(s)");
        return ExitCode::FAILURE;
    }
    println!("fuzz smoke: all differentials agree");
    ExitCode::SUCCESS
}
