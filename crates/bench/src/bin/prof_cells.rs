//! Profiling driver: runs one controller-bound cell in a loop so an
//! external profiler (gprofng, perf) gets a long, steady sample of the
//! per-tick hot path. Usage: `prof_cells <widx|spgemm> [iters]`.

use xcache_bench::{widx_geometry, widx_workload};
use xcache_dsa::{spgemm, widx};
use xcache_workloads::QueryClass;

fn main() {
    let mut args = std::env::args().skip(1);
    let which = args.next().unwrap_or_else(|| "widx".into());
    let iters: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(10);
    match which.as_str() {
        "widx" => {
            let w = widx_workload(QueryClass::Q19, 40, 7);
            let g = widx_geometry(40);
            let mut sink = 0u64;
            for _ in 0..iters {
                sink = sink.wrapping_add(widx::run_xcache(&w, Some(g.clone())).cycles);
            }
            println!("widx ok ({sink})");
        }
        "spgemm" => {
            let w = spgemm::SpgemmWorkload::paper_like(spgemm::Algorithm::Gustavson, 40, 7);
            let g = xcache_bench::spgemm_geometry(40);
            let mut sink = 0u64;
            for _ in 0..iters {
                sink = sink.wrapping_add(spgemm::run_xcache(&w, Some(g.clone())).cycles);
            }
            println!("spgemm ok ({sink})");
        }
        other => {
            eprintln!("unknown cell {other}; use widx or spgemm");
            std::process::exit(2);
        }
    }
}
