//! CI shard smoke: the sharded topology's determinism surface.
//!
//! Runs one sharded simulation per DSA family (Widx TPC-H Q19, Gamma
//! Gustavson SpGEMM, GraphPulse PageRank) at `XCACHE_SHARDS` shards and
//! prints/dumps every observable — end cycle, result checksum, and a
//! digest over the full counter map. CI executes the binary across the
//! parallel-execution matrix (`XCACHE_PAR=seq|par` × worker-thread
//! counts × runner job counts) and diffs the JSON dumps: any divergence
//! in any cell fails the build, because parallel simulated time must be
//! byte-identical to the sequential reference.
//!
//! Environment: `XCACHE_SHARDS` (default 4), `XCACHE_PAR`,
//! `XCACHE_PAR_THREADS`, `XCACHE_JOBS`, `XCACHE_SCALE`, `XCACHE_JSON`.

use xcache_bench::{
    graphpulse_geometry, maybe_dump_table_json, note_sim_cycles, render_table, scale,
    spgemm_geometry, widx_geometry, widx_workload, Runner, Scenario,
};
use xcache_core::{shards_from_env, splitmix64};
use xcache_dsa::{graphpulse, spgemm, widx, RunReport};
use xcache_workloads::QueryClass;

const HEADERS: [&str; 6] = [
    "Cell",
    "cycles",
    "checksum",
    "counters",
    "bank.remote",
    "dram.reads",
];

/// Order-independent fold over the full counter map: one diverging
/// counter anywhere changes the digest, so the CI diff covers every
/// statistic without a column per counter.
fn counter_digest(r: &RunReport) -> u64 {
    r.stats.counters.iter().fold(0u64, |acc, (k, v)| {
        let mut h = splitmix64(*v);
        for b in k.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        acc.wrapping_add(h)
    })
}

fn row(name: &str, r: &RunReport) -> Vec<String> {
    note_sim_cycles(r.cycles);
    vec![
        name.to_owned(),
        r.cycles.to_string(),
        r.checksum.to_string(),
        format!("{:016x}", counter_digest(r)),
        r.stats.get("bank.remote").to_string(),
        r.stats.get("dram.reads").to_string(),
    ]
}

fn main() {
    let scale = scale();
    let shards = shards_from_env(4);
    println!("Shard smoke: {shards}-shard topology determinism surface (scale 1/{scale})\n");

    let cells: Vec<Scenario<'_, Vec<String>>> = vec![
        Scenario::new("Widx Q19", move || {
            let w = widx_workload(QueryClass::Q19, scale, 7);
            let g = widx_geometry(scale);
            row("Widx Q19", &widx::run_xcache_sharded(&w, Some(g), shards))
        }),
        Scenario::new("Gustavson", move || {
            let w = spgemm::SpgemmWorkload::paper_like(spgemm::Algorithm::Gustavson, scale, 7);
            let g = spgemm_geometry(scale);
            row(
                "Gustavson",
                &spgemm::run_xcache_sharded(&w, Some(g), shards),
            )
        }),
        Scenario::new("GraphPulse", move || {
            let (n, e) = xcache_workloads::GraphPreset::P2pGnutella08.dims();
            let n = (n / scale).max(64);
            let e = (e / scale as usize).max(256);
            let w = graphpulse::GraphPulseWorkload {
                graph: xcache_workloads::Graph::from_adjacency(
                    xcache_workloads::CsrMatrix::generate(
                        n,
                        n,
                        e,
                        xcache_workloads::SparsePattern::RMat,
                        7,
                    ),
                ),
                iterations: 2,
            };
            let g = graphpulse_geometry(n);
            row(
                "GraphPulse",
                &graphpulse::run_xcache_sharded(&w, Some(g), shards),
            )
        }),
    ];

    let rows = Runner::default().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("shard_smoke", &HEADERS, &rows);
}
