//! Table 1: X-Cache vs. state-of-the-art storage idioms.

use xcache_bench::{maybe_dump_table_json, render_table, Runner, Scenario};
use xcache_core::TAXONOMY;

const HEADERS: [&str; 6] = [
    "Property",
    "Caches",
    "Scratch+DMA",
    "Scratch+AE",
    "FIFOs",
    "X-Cache",
];

fn main() {
    println!("Table 1: X-Cache vs. state-of-the-art storage idioms\n");
    let cells: Vec<Scenario<'_, Vec<String>>> = TAXONOMY
        .iter()
        .map(|r| {
            Scenario::new(r.property, move || {
                vec![
                    r.property.to_owned(),
                    r.caches.to_owned(),
                    r.scratch_dma.to_owned(),
                    r.scratch_ae.to_owned(),
                    r.fifos.to_owned(),
                    r.xcache.to_owned(),
                ]
            })
        })
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("tab01_taxonomy", &HEADERS, &rows);
}
