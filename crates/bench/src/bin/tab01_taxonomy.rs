//! Table 1: X-Cache vs. state-of-the-art storage idioms.

use xcache_bench::render_table;
use xcache_core::TAXONOMY;

fn main() {
    println!("Table 1: X-Cache vs. state-of-the-art storage idioms\n");
    let rows: Vec<Vec<String>> = TAXONOMY
        .iter()
        .map(|r| {
            vec![
                r.property.to_owned(),
                r.caches.to_owned(),
                r.scratch_dma.to_owned(),
                r.scratch_ae.to_owned(),
                r.fifos.to_owned(),
                r.xcache.to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["Property", "Caches", "Scratch+DMA", "Scratch+AE", "FIFOs", "X-Cache"],
            &rows
        )
    );
}
