//! Table 2: X-Cache features benefiting DSAs.

use xcache_bench::render_table;
use xcache_dsa::{Coupling, FEATURES};

fn main() {
    println!("Table 2: X-Cache features benefiting DSAs\n");
    let rows: Vec<Vec<String>> = FEATURES
        .iter()
        .map(|f| {
            vec![
                f.dsa.to_owned(),
                f.tag.to_owned(),
                if f.preload { "Yes" } else { "No" }.to_owned(),
                match f.coupling {
                    Coupling::Coupled => "Coupled",
                    Coupling::Decoupled => "Decoupl.",
                }
                .to_owned(),
                f.data.to_owned(),
                f.data_structure.to_owned(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["DSA", "Tag", "Preload", "Coupling", "Data", "DS"], &rows)
    );
}
