//! Table 2: X-Cache features benefiting DSAs.

use xcache_bench::{maybe_dump_table_json, render_table, Runner, Scenario};
use xcache_dsa::{Coupling, FEATURES};

const HEADERS: [&str; 6] = ["DSA", "Tag", "Preload", "Coupling", "Data", "DS"];

fn main() {
    println!("Table 2: X-Cache features benefiting DSAs\n");
    let cells: Vec<Scenario<'_, Vec<String>>> = FEATURES
        .iter()
        .map(|f| {
            Scenario::new(f.dsa, move || {
                vec![
                    f.dsa.to_owned(),
                    f.tag.to_owned(),
                    if f.preload { "Yes" } else { "No" }.to_owned(),
                    match f.coupling {
                        Coupling::Coupled => "Coupled",
                        Coupling::Decoupled => "Decoupl.",
                    }
                    .to_owned(),
                    f.data.to_owned(),
                    f.data_structure.to_owned(),
                ]
            })
        })
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("tab02_features", &HEADERS, &rows);
}
