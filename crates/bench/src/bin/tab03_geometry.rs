//! Table 3: X-Cache design parameters per DSA.

use xcache_bench::render_table;
use xcache_core::XCacheConfig;

fn main() {
    println!("Table 3: X-Cache design parameters per DSA\n");
    let presets: [(&str, XCacheConfig); 5] = [
        ("Widx", XCacheConfig::widx()),
        ("DASX(Hash)", XCacheConfig::dasx()),
        ("SpArch", XCacheConfig::sparch()),
        ("Gamma", XCacheConfig::gamma()),
        ("GraphPulse", XCacheConfig::graphpulse()),
    ];
    let rows: Vec<Vec<String>> = presets
        .iter()
        .map(|(name, c)| {
            vec![
                (*name).to_owned(),
                c.active.to_string(),
                c.exe.to_string(),
                c.ways.to_string(),
                c.sets.to_string(),
                c.words_per_sector.to_string(),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["DSA", "#Active", "#Exe", "#Way", "#Set", "#Word"], &rows)
    );
}
