//! Table 3: X-Cache design parameters per DSA.

use xcache_bench::{maybe_dump_table_json, render_table, Runner, Scenario};
use xcache_core::XCacheConfig;

const HEADERS: [&str; 6] = ["DSA", "#Active", "#Exe", "#Way", "#Set", "#Word"];

fn main() {
    println!("Table 3: X-Cache design parameters per DSA\n");
    let presets: [(&str, XCacheConfig); 5] = [
        ("Widx", XCacheConfig::widx()),
        ("DASX(Hash)", XCacheConfig::dasx()),
        ("SpArch", XCacheConfig::sparch()),
        ("Gamma", XCacheConfig::gamma()),
        ("GraphPulse", XCacheConfig::graphpulse()),
    ];
    let cells: Vec<Scenario<'_, Vec<String>>> = presets
        .into_iter()
        .map(|(name, c)| {
            Scenario::new(name, move || {
                vec![
                    name.to_owned(),
                    c.active.to_string(),
                    c.exe.to_string(),
                    c.ways.to_string(),
                    c.sets.to_string(),
                    c.words_per_sector.to_string(),
                ]
            })
        })
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("tab03_geometry", &HEADERS, &rows);
}
