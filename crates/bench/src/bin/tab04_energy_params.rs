//! Table 4: energy parameters (timing: 1 GHz).

use xcache_bench::{maybe_dump_table_json, render_table, Runner, Scenario};
use xcache_energy::EnergyParams;

const HEADERS: [&str; 2] = ["Component", "Energy [pJ]"];

fn main() {
    println!("Table 4: Power usage per bit [pJ] (timing: 1 GHz)\n");
    let p = EnergyParams::paper_table4();
    let entries: Vec<(&str, String)> = vec![
        ("Register", format!("{:.1e}", p.register_pj_per_bit)),
        ("Add", format!("{:.1e}", p.add_pj_per_bit)),
        ("Mul", format!("{}", p.mul_pj_per_bit)),
        ("Bitwise Op", format!("{:.1e}", p.bitwise_pj_per_bit)),
        ("Shift", format!("{:.1e}", p.shift_pj_per_bit)),
        ("Tag", format!("{} / Byte", p.tag_pj_per_byte)),
        ("L1 Cache", format!("{} / 32 Bytes", p.l1_pj_per_32b)),
    ];
    let cells: Vec<Scenario<'_, Vec<String>>> = entries
        .into_iter()
        .map(|(name, value)| Scenario::new(name, move || vec![name.to_owned(), value]))
        .collect();
    let rows = Runner::from_env().run(cells);
    print!("{}", render_table(&HEADERS, &rows));
    maybe_dump_table_json("tab04_energy_params", &HEADERS, &rows);
}
