//! Table 4: energy parameters (timing: 1 GHz).

use xcache_bench::render_table;
use xcache_energy::EnergyParams;

fn main() {
    println!("Table 4: Power usage per bit [pJ] (timing: 1 GHz)\n");
    let p = EnergyParams::paper_table4();
    let rows = vec![
        vec!["Register".to_owned(), format!("{:.1e}", p.register_pj_per_bit)],
        vec!["Add".to_owned(), format!("{:.1e}", p.add_pj_per_bit)],
        vec!["Mul".to_owned(), format!("{}", p.mul_pj_per_bit)],
        vec!["Bitwise Op".to_owned(), format!("{:.1e}", p.bitwise_pj_per_bit)],
        vec!["Shift".to_owned(), format!("{:.1e}", p.shift_pj_per_bit)],
        vec!["Tag".to_owned(), format!("{} / Byte", p.tag_pj_per_byte)],
        vec!["L1 Cache".to_owned(), format!("{} / 32 Bytes", p.l1_pj_per_32b)],
    ];
    print!("{}", render_table(&["Component", "Energy [pJ]"], &rows));
}
