//! Chaos harness: the fuzz/differential machinery re-run under seeded
//! fault plans with a tightened watchdog budget.
//!
//! Two layers, both replayable byte-for-byte from `(seed, fault_seed)`:
//!
//! * **Fuzz-program chaos** ([`run_fuzz_chaos`]) — the PR-3 generated
//!   walker programs run under the aggressive [`DEFAULT_CHAOS_SPEC`]
//!   (fill drops, delays, ECC flips, port/response stalls, meta-tag
//!   misfires). There is no functional oracle for a faulted run, so the
//!   checks are *liveness and conservation* invariants: every access is
//!   answered exactly once, the run terminates well inside its cycle
//!   bound (the watchdog converts stuck walks into retries or contained
//!   kills), and `walker_launch == walker_retire + walker_fault +
//!   walker_replay` at quiescence. [`chaos_skip_differential`] and
//!   [`chaos_jobs_differential`] then demand the usual byte-identity
//!   under fast-forwarding on/off and 1-vs-2 runner jobs — with faults
//!   armed, which is exactly when per-tick randomness would betray
//!   itself.
//!
//! * **DSA chaos cells** ([`dsa_chaos_cells`]) — the fig04 Widx workload
//!   (coroutine and blocking-thread disciplines, fig07's axis) under the
//!   timing-only [`DSA_TIMING_SPEC`]: delays and stalls may reshape the
//!   schedule but must not change what the walks compute, so the oracle
//!   checksum still binds and is checked. The GraphPulse cell runs the
//!   full [`DEFAULT_CHAOS_SPEC`]; its walker never touches DRAM (event
//!   payloads live on-chip), so most kinds are structurally inert there
//!   and the cell asserts termination under an armed plan plus the
//!   skip/jobs byte-identity. Three cells run the 4-shard topology under
//!   [`SHARD_CHAOS_SPEC`], which adds the bank-conflict-storm and
//!   crossbar link-delay kinds — still timing-only — so the
//!   differentials exercise fault determinism *through the parallel-time
//!   machinery*: sharded Widx (fig04 workload) and sharded SpGEMM
//!   (Gustavson), where the oracle checksum binds and is enforced, and
//!   sharded GraphPulse, where on-chip-only event state makes the
//!   checksum unenforceable and the cell asserts termination with
//!   exactly-once completion instead.
//!
//! The `chaos_smoke` binary drives both layers over `XCACHE_CHAOS_SEEDS`
//! seeds in CI and dumps violating runs (with their harvested
//! [`StallReport`](xcache_sim::StallReport)s) under `results/chaos/`.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::Arc;

use xcache_core::{splitmix64, WalkerDiscipline, XCache, XCacheConfig};
use xcache_dsa::{graphpulse, widx};
use xcache_isa::gen;
use xcache_isa::{EventId, StateId};
use xcache_mem::{DramConfig, DramModel, MainMemory, MemoryPort};
use xcache_sim::{
    with_fault_plan, with_skip, with_watchdog_budget, Cycle, FaultPlan, StatsSnapshot,
};
use xcache_workloads::QueryClass;

use crate::fuzz::{access_stream, FUZZ_BASE, WINDOW_BYTES};
use crate::runner::{Runner, Scenario};
use crate::{graphpulse_geometry, note_sim_cycles, widx_geometry, widx_workload};

/// The aggressive spec for fuzz-program chaos: every fault kind armed at
/// rates that fire several times per 96-access run without drowning it.
pub const DEFAULT_CHAOS_SPEC: &str = "dram_drop=0.02,dram_delay=0.03:40,dram_ecc=0.01,\
     port_stall=0.02:6,resp_stall=0.02:24,meta_misfire=0.01";

/// Timing-only spec for the oracle-checked Widx cells: no drops, flips,
/// or misfires, so the faulted run must still compute the exact oracle
/// checksum — schedule perturbations may never change results.
pub const DSA_TIMING_SPEC: &str = "dram_delay=0.02:48,port_stall=0.02:4,resp_stall=0.02:24";

/// Timing-only spec for the sharded Widx cell: the single-instance
/// delays plus the sharded-topology kinds — `bank_conflict_storm`
/// inflates bank service latency, `link_delay` holds crossbar messages
/// on the wire. Neither changes data, so the oracle checksum binds.
pub const SHARD_CHAOS_SPEC: &str = "dram_delay=0.02:48,port_stall=0.02:4,resp_stall=0.02:24,\
     bank_conflict_storm=0.05:24,link_delay=0.08:8";

/// Shard count for the sharded chaos cell.
pub const CHAOS_SHARDS: usize = 4;

/// Watchdog budget for chaos runs: far above any legitimate wait in the
/// fuzz/DSA workloads (hundreds of cycles), far below the runs' cycle
/// bounds, so a dropped fill costs one retry round-trip instead of a
/// million-cycle default budget.
pub const CHAOS_WATCHDOG_BUDGET: u64 = 10_000;

/// Everything observable about one fault-injected fuzz run.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Program/workload seed (as in [`crate::fuzz`]).
    pub seed: u64,
    /// Chaos seed the per-run [`FaultPlan`] derives from.
    pub fault_seed: u64,
    /// End cycle of the run (after the quiescence drain).
    pub cycles: u64,
    /// Order-independent fold of every response (found flag + payload).
    pub checksum: u64,
    /// Rendered [`StallReport`](xcache_sim::StallReport)s the watchdog
    /// emitted — expected non-empty whenever a fill was dropped.
    pub stall_reports: Vec<String>,
    /// Invariant violations; an empty list is a passing run.
    pub violations: Vec<String>,
    /// Merged controller + DRAM counters.
    pub stats: StatsSnapshot,
}

impl ChaosReport {
    /// Whether every invariant held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Canonical JSON rendering — the byte string the differentials
    /// compare (stall-report text included, so report content is part of
    /// the determinism contract).
    #[must_use]
    pub fn stats_json(&self) -> String {
        let mut out = format!(
            "{{\"seed\":{},\"fault_seed\":{},\"cycles\":{},\"checksum\":{},\"stalls\":[",
            self.seed, self.fault_seed, self.cycles, self.checksum
        );
        for (i, s) in self.stall_reports.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{s:?}");
        }
        out.push_str("],\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{v:?}");
        }
        out.push_str("],\"counters\":{");
        for (i, (k, v)) in self.stats.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("}}");
        out
    }
}

/// The per-run fault plan: one spec, seeded from the chaos seed mixed
/// with a per-run salt so plans differ across runs of a batch while
/// staying fully reproducible from `(fault_seed, salt)`.
fn plan_for(spec: &str, fault_seed: u64, salt: u64) -> Arc<FaultPlan> {
    let seed = splitmix64(fault_seed ^ splitmix64(salt));
    Arc::new(FaultPlan::parse(spec, seed).expect("chaos spec parses"))
}

/// Runs the program generated from `seed` over its synthetic workload
/// (exactly [`crate::fuzz::run_seed`]'s setup) under the
/// [`DEFAULT_CHAOS_SPEC`] fault plan and the chaos watchdog budget,
/// checking liveness and conservation instead of a functional oracle.
///
/// The fault-plan and watchdog overrides are applied *inside* this
/// function, so it is safe to call from runner worker threads.
#[must_use]
pub fn run_fuzz_chaos(seed: u64, fault_seed: u64, accesses: usize) -> ChaosReport {
    let plan = plan_for(DEFAULT_CHAOS_SPEC, fault_seed, seed);
    with_fault_plan(Some(plan), || {
        with_watchdog_budget(CHAOS_WATCHDOG_BUDGET, || {
            chaos_drive(seed, fault_seed, accesses)
        })
    })
}

#[allow(clippy::too_many_lines)]
fn chaos_drive(seed: u64, fault_seed: u64, accesses: usize) -> ChaosReport {
    let program = gen::generate(seed);
    let has_store = program
        .table
        .lookup(StateId::DEFAULT, EventId::UPDATE)
        .is_some();
    let stream = access_stream(seed, accesses, has_store);

    let mut mem = MainMemory::new();
    let mut x = seed;
    for w in 0..WINDOW_BYTES / 8 {
        x = splitmix64(x);
        mem.write_u64(FUZZ_BASE + w * 8, x);
    }
    let dram = DramModel::with_memory(DramConfig::test_tiny(), mem);
    let cfg = XCacheConfig::test_tiny().with_params(vec![FUZZ_BASE]);
    let mut xc = XCache::new(cfg, program, dram).expect("generated program is verifier-clean");

    let mut violations = Vec::new();
    let mut responses: HashMap<u64, u64> = HashMap::new();
    let mut now = Cycle(0);
    let mut next = 0usize;
    let mut done = 0usize;
    let mut checksum = 0u64;
    let total = stream.len();
    let max_cycles = 2_000 * total as u64 + 1_000_000;
    while done < total {
        while next < total && xc.can_accept() {
            xc.try_access(now, stream[next])
                .expect("can_accept checked");
            next += 1;
        }
        xc.tick(now);
        while let Some(resp) = xc.take_response(now) {
            *responses.entry(resp.id).or_insert(0) += 1;
            checksum = checksum
                .wrapping_add(splitmix64(resp.id ^ u64::from(resp.found)))
                .wrapping_add(resp.data.iter().fold(0u64, |a, &w| a.wrapping_add(w)));
            done += 1;
        }
        if done >= total {
            break;
        }
        let mut wake = xc.next_event(now);
        if next < total && xc.can_accept() {
            wake = Some(now.next());
        }
        now = xcache_sim::fast_forward(now, wake);
        if now.raw() >= max_cycles {
            violations.push(format!(
                "hung: {done}/{total} accesses answered after {max_cycles} cycles \
                 (watchdog failed to keep the run live)"
            ));
            break;
        }
    }

    // Quiesce: no walk may outlive its access stream, and nothing may
    // answer twice. Single-stepped, so both skip modes drain identically.
    let mut spins = 0u32;
    while xc.busy() || xc.downstream().busy() {
        now = now.next();
        xc.tick(now);
        while let Some(resp) = xc.take_response(now) {
            *responses.entry(resp.id).or_insert(0) += 1;
            violations.push(format!(
                "stray response for access {} after the stream completed",
                resp.id
            ));
        }
        spins += 1;
        if spins > 200_000 {
            violations.push("instance never quiesced after the stream completed".into());
            break;
        }
    }

    let mut dups: Vec<(u64, u64)> = responses
        .iter()
        .filter(|&(_, &n)| n > 1)
        .map(|(&id, &n)| (id, n))
        .collect();
    dups.sort_unstable();
    for (id, n) in dups {
        violations.push(format!("access {id} answered {n} times"));
    }

    let launched = xc.stats().get("xcache.walker_launch");
    let retired = xc.stats().get("xcache.walker_retire");
    let faulted = xc.stats().get("xcache.walker_fault");
    let replayed = xc.stats().get("xcache.walker_replay");
    if launched != retired + faulted + replayed {
        violations.push(format!(
            "walker conservation violated: {launched} launched != \
             {retired} retired + {faulted} faulted + {replayed} replayed"
        ));
    }

    let stall_reports = xc.stall_reports().iter().map(ToString::to_string).collect();
    let mut stats = xc.stats().clone();
    stats.merge(xc.downstream().stats());
    ChaosReport {
        seed,
        fault_seed,
        cycles: now.raw(),
        checksum,
        stall_reports,
        violations,
        stats: stats.snapshot(),
    }
}

/// Runs `seed` under chaos with fast-forwarding on and off and demands
/// byte-identical reports. Returns the (shared) fast report — including
/// its invariant verdict — on agreement.
///
/// `with_skip` is thread-local: call this on the thread that owns the
/// comparison (never through the multi-threaded [`Runner`]).
///
/// # Errors
///
/// Returns `Err` with both renderings when the runs diverge.
pub fn chaos_skip_differential(
    seed: u64,
    fault_seed: u64,
    accesses: usize,
) -> Result<ChaosReport, String> {
    let fast = with_skip(true, || run_fuzz_chaos(seed, fault_seed, accesses));
    let slow = with_skip(false, || run_fuzz_chaos(seed, fault_seed, accesses));
    let (fj, sj) = (fast.stats_json(), slow.stats_json());
    if fj == sj {
        Ok(fast)
    } else {
        Err(format!(
            "seed {seed} (fault seed {fault_seed}): chaos skip and no-skip runs diverged\n  \
             skip:    {fj}\n  no-skip: {sj}"
        ))
    }
}

/// Runs every seed under chaos through the [`Runner`] at one and two
/// worker threads and demands the per-seed JSON vectors agree.
///
/// # Errors
///
/// Returns `Err` naming the first diverging seed otherwise.
pub fn chaos_jobs_differential(
    seeds: &[u64],
    fault_seed: u64,
    accesses: usize,
) -> Result<Vec<String>, String> {
    let grid = || {
        seeds
            .iter()
            .map(|&seed| {
                Scenario::new(format!("chaos seed {seed}"), move || {
                    run_fuzz_chaos(seed, fault_seed, accesses).stats_json()
                })
            })
            .collect::<Vec<_>>()
    };
    let seq = Runner::with_jobs(1).run(grid());
    let par = Runner::with_jobs(2).run(grid());
    for ((s, p), seed) in seq.iter().zip(&par).zip(seeds) {
        if s != p {
            return Err(format!(
                "seed {seed}: chaos jobs=1 and jobs=2 runs diverged\n  jobs=1: {s}\n  jobs=2: {p}"
            ));
        }
    }
    Ok(seq)
}

/// One DSA scenario run under chaos.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosCell {
    /// The fig04 workload (Widx TPC-H Q19), coroutine discipline, under
    /// [`DSA_TIMING_SPEC`]; the oracle checksum is enforced.
    WidxFig04,
    /// The same workload under the blocking-thread discipline (fig07's
    /// ablation axis), same spec and oracle check.
    WidxBlockingThread,
    /// The fig14 GraphPulse PageRank cell under the full
    /// [`DEFAULT_CHAOS_SPEC`]; termination and determinism only.
    GraphPulse,
    /// The fig04 workload on the [`CHAOS_SHARDS`]-shard topology under
    /// [`SHARD_CHAOS_SPEC`] (bank conflict storms + crossbar link
    /// delays); timing-only, so the oracle checksum is enforced.
    WidxSharded,
    /// SpGEMM (Gustavson) on the sharded topology under
    /// [`SHARD_CHAOS_SPEC`]. The product checksum folds exact small-int
    /// f64 MACs order-independently, so timing-only faults must leave it
    /// equal to the oracle — enforced, like the sharded Widx cell.
    SpgemmSharded,
    /// GraphPulse PageRank on the sharded topology under
    /// [`SHARD_CHAOS_SPEC`]. Event payloads live on-chip, so a watchdog
    /// kill legitimately drops in-flight upserts — the checksum does not
    /// bind (same rationale as the non-sharded GraphPulse cell); the cell
    /// asserts termination plus the skip/jobs byte-identity.
    GraphPulseSharded,
}

impl ChaosCell {
    /// Every cell, in declaration order. New cells append: the per-cell
    /// fault-plan salt is `cell as u64 + 1`, so insertion in the middle
    /// would silently reshuffle every later cell's fault schedule.
    pub const ALL: [ChaosCell; 6] = [
        ChaosCell::WidxFig04,
        ChaosCell::WidxBlockingThread,
        ChaosCell::GraphPulse,
        ChaosCell::WidxSharded,
        ChaosCell::SpgemmSharded,
        ChaosCell::GraphPulseSharded,
    ];

    /// Stable label (also the determinism-diff key).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ChaosCell::WidxFig04 => "widx-fig04",
            ChaosCell::WidxBlockingThread => "widx-blocking-thread",
            ChaosCell::GraphPulse => "graphpulse",
            ChaosCell::WidxSharded => "widx-sharded",
            ChaosCell::SpgemmSharded => "spgemm-sharded",
            ChaosCell::GraphPulseSharded => "graphpulse-sharded",
        }
    }
}

/// Canonical rendering of one DSA chaos cell (same shape as
/// [`ChaosReport::stats_json`], keyed by cell name).
fn render_cell(
    cell: ChaosCell,
    run: Result<&xcache_dsa::RunReport, &str>,
    oracle_violation: Option<String>,
) -> String {
    let mut out = format!("{{\"cell\":\"{}\"", cell.name());
    match run {
        Ok(r) => {
            let _ = write!(out, ",\"cycles\":{},\"checksum\":{}", r.cycles, r.checksum);
            out.push_str(",\"violations\":[");
            if let Some(v) = &oracle_violation {
                let _ = write!(out, "{v:?}");
            }
            out.push_str("],\"counters\":{");
            for (i, (k, v)) in r.stats.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":{v}");
            }
            out.push_str("}}");
        }
        Err(e) => {
            let _ = write!(out, ",\"violations\":[{e:?}]}}");
        }
    }
    out
}

/// Whether a rendered cell (from [`run_dsa_chaos_cell`]) recorded any
/// violation.
#[must_use]
pub fn cell_has_violation(rendered: &str) -> bool {
    !rendered.contains("\"violations\":[]")
}

/// Runs one DSA scenario under its chaos plan and returns the canonical
/// rendering. Overrides are applied inside, so this is safe from runner
/// worker threads; determinism differentials compare the returned
/// strings byte-for-byte.
#[must_use]
pub fn run_dsa_chaos_cell(cell: ChaosCell, scale: u32, seed: u64, fault_seed: u64) -> String {
    match cell {
        ChaosCell::WidxFig04 => {
            widx_chaos(cell, scale, seed, fault_seed, WalkerDiscipline::Coroutine)
        }
        ChaosCell::WidxBlockingThread => widx_chaos(
            cell,
            scale,
            seed,
            fault_seed,
            WalkerDiscipline::BlockingThread,
        ),
        ChaosCell::GraphPulse => graphpulse_chaos(scale, seed, fault_seed),
        ChaosCell::WidxSharded => widx_sharded_chaos(cell, scale, seed, fault_seed),
        ChaosCell::SpgemmSharded => spgemm_sharded_chaos(cell, scale, seed, fault_seed),
        ChaosCell::GraphPulseSharded => graphpulse_sharded_chaos(cell, scale, seed, fault_seed),
    }
}

/// The sharded Widx chaos cell: the fig04 workload across
/// [`CHAOS_SHARDS`] controller instances with bank-conflict storms on
/// the shared banked DRAM and delays on the crossbar links. The plan is
/// armed *outside* the horizon runner, so worker threads inherit it
/// through the parallel-time machinery — exactly the path where a
/// thread-dependent fault decision would break byte-identity.
fn widx_sharded_chaos(cell: ChaosCell, scale: u32, seed: u64, fault_seed: u64) -> String {
    let w = widx_workload(QueryClass::Q19, scale, seed);
    let g = widx_geometry(scale);
    let plan = plan_for(SHARD_CHAOS_SPEC, fault_seed, cell as u64 + 1);
    let out = with_fault_plan(Some(plan), || {
        with_watchdog_budget(CHAOS_WATCHDOG_BUDGET, || {
            widx::run_xcache_sharded_chaos(&w, Some(g), CHAOS_SHARDS)
        })
    });
    match out {
        Ok(r) => {
            note_sim_cycles(r.cycles);
            // Timing-only faults must not change what the walks compute.
            let oracle = w.oracle_checksum();
            let violation = (r.checksum != oracle).then(|| {
                format!(
                    "timing-only faults changed sharded results: checksum {} != oracle {oracle}",
                    r.checksum
                )
            });
            render_cell(cell, Ok(&r), violation)
        }
        Err(e) => render_cell(cell, Err(&e), None),
    }
}

/// The sharded SpGEMM chaos cell: Gustavson A×B across [`CHAOS_SHARDS`]
/// controller instances under the timing-only [`SHARD_CHAOS_SPEC`].
/// Every A-element must be answered exactly once (the sharded driver's
/// in-flight map panics on a duplicate and the run only completes when
/// all elements retire), and because the product checksum folds exact
/// integer-valued f64 MACs order-independently, bank-conflict storms and
/// link delays must leave it equal to the oracle.
fn spgemm_sharded_chaos(cell: ChaosCell, scale: u32, seed: u64, fault_seed: u64) -> String {
    use xcache_dsa::spgemm::{self, Algorithm, SpgemmWorkload};

    let w = SpgemmWorkload::paper_like(Algorithm::Gustavson, scale, seed);
    let g = crate::spgemm_geometry(scale);
    let plan = plan_for(SHARD_CHAOS_SPEC, fault_seed, cell as u64 + 1);
    let out = with_fault_plan(Some(plan), || {
        with_watchdog_budget(CHAOS_WATCHDOG_BUDGET, || {
            spgemm::run_xcache_sharded_chaos(&w, Some(g), CHAOS_SHARDS)
        })
    });
    match out {
        Ok(r) => {
            note_sim_cycles(r.cycles);
            let oracle = w.oracle_checksum();
            let violation = (r.checksum != oracle).then(|| {
                format!(
                    "timing-only faults changed sharded spgemm product: checksum {} != oracle {oracle}",
                    r.checksum
                )
            });
            render_cell(cell, Ok(&r), violation)
        }
        Err(e) => render_cell(cell, Err(&e), None),
    }
}

/// The sharded GraphPulse chaos cell: PageRank event processing across
/// [`CHAOS_SHARDS`] instances under [`SHARD_CHAOS_SPEC`]. Termination
/// (every issued upsert answered exactly once — the sharded driver's
/// requeue accounting errors out otherwise) is the property under test;
/// the checksum is *not* enforced because accumulated ranks live only
/// on-chip, so a watchdog-killed walker legitimately loses events.
fn graphpulse_sharded_chaos(cell: ChaosCell, scale: u32, seed: u64, fault_seed: u64) -> String {
    let (n, e) = xcache_workloads::GraphPreset::P2pGnutella08.dims();
    let n = (n / scale).max(64);
    let e = (e / scale as usize).max(256);
    let w = graphpulse::GraphPulseWorkload {
        graph: xcache_workloads::Graph::from_adjacency(xcache_workloads::CsrMatrix::generate(
            n,
            n,
            e,
            xcache_workloads::SparsePattern::RMat,
            seed,
        )),
        iterations: 2,
    };
    let g = graphpulse_geometry(n);
    let plan = plan_for(SHARD_CHAOS_SPEC, fault_seed, cell as u64 + 1);
    let out = with_fault_plan(Some(plan), || {
        with_watchdog_budget(CHAOS_WATCHDOG_BUDGET, || {
            graphpulse::run_xcache_sharded_chaos(&w, Some(g), CHAOS_SHARDS)
        })
    });
    match out {
        Ok(r) => {
            note_sim_cycles(r.cycles);
            render_cell(cell, Ok(&r), None)
        }
        Err(e) => render_cell(cell, Err(&e), None),
    }
}

fn widx_chaos(
    cell: ChaosCell,
    scale: u32,
    seed: u64,
    fault_seed: u64,
    discipline: WalkerDiscipline,
) -> String {
    let w = widx_workload(QueryClass::Q19, scale, seed);
    let mut g = widx_geometry(scale);
    g.discipline = discipline;
    let plan = plan_for(DSA_TIMING_SPEC, fault_seed, cell as u64 + 1);
    let out = with_fault_plan(Some(plan), || {
        with_watchdog_budget(CHAOS_WATCHDOG_BUDGET, || {
            widx::run_xcache_chaos(&w, Some(g))
        })
    });
    match out {
        Ok(r) => {
            note_sim_cycles(r.cycles);
            // Timing-only faults must not change what the walks compute.
            let oracle = w.oracle_checksum();
            let violation = (r.checksum != oracle).then(|| {
                format!(
                    "timing-only faults changed results: checksum {} != oracle {oracle}",
                    r.checksum
                )
            });
            render_cell(cell, Ok(&r), violation)
        }
        Err(e) => render_cell(cell, Err(&e), None),
    }
}

fn graphpulse_chaos(scale: u32, seed: u64, fault_seed: u64) -> String {
    let (n, e) = xcache_workloads::GraphPreset::P2pGnutella08.dims();
    let n = (n / scale).max(64);
    let e = (e / scale as usize).max(256);
    let w = graphpulse::GraphPulseWorkload {
        graph: xcache_workloads::Graph::from_adjacency(xcache_workloads::CsrMatrix::generate(
            n,
            n,
            e,
            xcache_workloads::SparsePattern::RMat,
            seed,
        )),
        iterations: 2,
    };
    let g = graphpulse_geometry(n);
    let plan = plan_for(
        DEFAULT_CHAOS_SPEC,
        fault_seed,
        ChaosCell::GraphPulse as u64 + 1,
    );
    let out = with_fault_plan(Some(plan), || {
        with_watchdog_budget(CHAOS_WATCHDOG_BUDGET, || {
            graphpulse::run_xcache_chaos(&w, Some(g))
        })
    });
    match out {
        Ok(r) => {
            note_sim_cycles(r.cycles);
            render_cell(ChaosCell::GraphPulse, Ok(&r), None)
        }
        Err(e) => render_cell(ChaosCell::GraphPulse, Err(&e), None),
    }
}

/// The DSA chaos sweep as a scenario grid (one cell per
/// [`ChaosCell::ALL`] entry).
#[must_use]
pub fn dsa_chaos_cells(scale: u32, seed: u64, fault_seed: u64) -> Vec<Scenario<'static, String>> {
    ChaosCell::ALL
        .iter()
        .map(|&cell| {
            Scenario::new(format!("chaos {}", cell.name()), move || {
                run_dsa_chaos_cell(cell, scale, seed, fault_seed)
            })
        })
        .collect()
}

/// Runs every DSA chaos cell with fast-forwarding on and off (inline, on
/// this thread) and demands byte-identical renderings.
///
/// # Errors
///
/// Returns `Err` with both renderings on the first diverging cell.
pub fn dsa_chaos_skip_differential(
    scale: u32,
    seed: u64,
    fault_seed: u64,
) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for cell in ChaosCell::ALL {
        let fast = with_skip(true, || run_dsa_chaos_cell(cell, scale, seed, fault_seed));
        let slow = with_skip(false, || run_dsa_chaos_cell(cell, scale, seed, fault_seed));
        if fast != slow {
            return Err(format!(
                "cell {}: chaos skip and no-skip runs diverged\n  skip:    {fast}\n  no-skip: {slow}",
                cell.name()
            ));
        }
        out.push(fast);
    }
    Ok(out)
}

/// Runs the DSA chaos grid at one and two runner jobs and demands the
/// renderings agree.
///
/// # Errors
///
/// Returns `Err` naming the first diverging cell otherwise.
pub fn dsa_chaos_jobs_differential(
    scale: u32,
    seed: u64,
    fault_seed: u64,
) -> Result<Vec<String>, String> {
    let seq = Runner::with_jobs(1).run(dsa_chaos_cells(scale, seed, fault_seed));
    let par = Runner::with_jobs(2).run(dsa_chaos_cells(scale, seed, fault_seed));
    for ((s, p), cell) in seq.iter().zip(&par).zip(ChaosCell::ALL) {
        if s != p {
            return Err(format!(
                "cell {}: chaos jobs=1 and jobs=2 runs diverged\n  jobs=1: {s}\n  jobs=2: {p}",
                cell.name()
            ));
        }
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_chaos_runs_are_deterministic_and_clean() {
        let a = run_fuzz_chaos(3, 7, 48);
        let b = run_fuzz_chaos(3, 7, 48);
        assert_eq!(a, b);
        assert_eq!(a.stats_json(), b.stats_json());
        assert!(a.ok(), "violations: {:?}", a.violations);
        assert!(a.cycles > 0);
    }

    #[test]
    fn fault_seed_reaches_the_run() {
        // Across a handful of fault seeds the injected-fault counters
        // must differ somewhere — the plan is actually armed.
        let fired: Vec<u64> = (0..4)
            .map(|fs| {
                let r = run_fuzz_chaos(3, fs, 96);
                r.stats
                    .counters
                    .iter()
                    .filter(|(k, _)| k.contains(".fault."))
                    .map(|(_, v)| *v)
                    .sum()
            })
            .collect();
        assert!(
            fired.iter().any(|&n| n > 0),
            "no fault ever fired across fault seeds: {fired:?}"
        );
    }

    #[test]
    fn chaos_skip_differential_agrees() {
        let r = chaos_skip_differential(11, 5, 48).expect("skip modes agree under faults");
        assert!(r.ok(), "violations: {:?}", r.violations);
    }

    #[test]
    fn chaos_jobs_differential_agrees() {
        let out = chaos_jobs_differential(&[1, 2, 3], 9, 32).expect("job counts agree");
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn widx_chaos_cell_is_deterministic_and_oracle_clean() {
        let a = run_dsa_chaos_cell(ChaosCell::WidxFig04, 64, 1, 2);
        let b = run_dsa_chaos_cell(ChaosCell::WidxFig04, 64, 1, 2);
        assert_eq!(a, b);
        assert!(!cell_has_violation(&a), "cell violated: {a}");
    }

    #[test]
    fn sharded_chaos_cell_is_deterministic_across_par_modes() {
        use xcache_sim::{with_par_mode, with_par_threads, ParMode};
        let seq = with_par_mode(ParMode::Seq, || {
            run_dsa_chaos_cell(ChaosCell::WidxSharded, 64, 1, 2)
        });
        let par = with_par_mode(ParMode::Par, || {
            with_par_threads(2, || run_dsa_chaos_cell(ChaosCell::WidxSharded, 64, 1, 2))
        });
        assert_eq!(seq, par, "sharded chaos diverged between seq and par");
        assert!(!cell_has_violation(&seq), "cell violated: {seq}");
    }

    #[test]
    fn new_sharded_cells_terminate_exactly_once_under_chaos() {
        // SpGEMM: a completed run means every A-element was answered
        // exactly once (the sharded driver panics on duplicates and only
        // finishes when all retire); the product checksum must survive
        // timing-only faults.
        let spgemm = run_dsa_chaos_cell(ChaosCell::SpgemmSharded, 64, 1, 2);
        assert!(!cell_has_violation(&spgemm), "cell violated: {spgemm}");
        assert!(
            spgemm.contains("\"cycles\":"),
            "run did not terminate: {spgemm}"
        );
        // GraphPulse: termination under the same spec; the checksum is
        // deliberately unenforced (on-chip-only upsert state), so a clean
        // cell is exactly "terminated with no violations recorded".
        let gp = run_dsa_chaos_cell(ChaosCell::GraphPulseSharded, 64, 1, 2);
        assert!(!cell_has_violation(&gp), "cell violated: {gp}");
        assert!(gp.contains("\"cycles\":"), "run did not terminate: {gp}");
    }

    #[test]
    fn sharded_chaos_faults_reach_bank_and_link() {
        // Across a handful of fault seeds the sharded-topology kinds
        // must fire somewhere — the spec actually arms them.
        let fired: Vec<(u64, u64)> = (0..4)
            .map(|fs| {
                let r = run_dsa_chaos_cell(ChaosCell::WidxSharded, 64, 1, fs);
                let grab = |key: &str| {
                    r.split(&format!("\"{key}\":"))
                        .nth(1)
                        .and_then(|s| {
                            s.split(|c: char| !c.is_ascii_digit())
                                .next()
                                .and_then(|d| d.parse().ok())
                        })
                        .unwrap_or(0)
                };
                (
                    grab("bank.fault.conflict_storm"),
                    grab("shard.link_fault_delays"),
                )
            })
            .collect();
        assert!(
            fired.iter().any(|&(b, _)| b > 0),
            "no bank conflict storm ever fired: {fired:?}"
        );
        assert!(
            fired.iter().any(|&(_, l)| l > 0),
            "no link delay ever fired: {fired:?}"
        );
    }
}
