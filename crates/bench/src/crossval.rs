//! Differential cross-validation: the cycle-level simulator against the
//! analytical `xcache-oracle` model.
//!
//! The two implementations share no code — the simulator executes walker
//! microcode over event-driven time; the oracle replays a pure access
//! stream against the documented replacement semantics. Agreement is
//! therefore evidence that *both* implement the spec, and a divergence
//! localises a bug to whichever side broke its contract.
//!
//! Two tolerance classes, declared per cell and enforced here:
//!
//! * **Exact** — serially-driven simulation (one access retired before
//!   the next is issued). With no concurrency there is nothing the
//!   oracle abstracts away, so *every* comparable counter must match
//!   exactly, for any replacement state: aggregate hits/misses, stores,
//!   meta allocations and evictions, and the per-set counters exported by
//!   `MetaTagArray`. The trace buffer is tapped as a third opinion on the
//!   same run.
//! * **Bounded** — pipelined driving (the real harnesses). Concurrency
//!   changes what the hit-side counters *mean*: an access arriving while
//!   a same-key walker is in flight attaches as a **waiter**
//!   (`xcache.waiter`), answered either inline (counted once) or by
//!   replaying through the front-end at retire (counted a second time as
//!   a hit) — under SpGEMM's column-sorted stream the waiter path takes
//!   the *majority* of loads. The miss side has no such ambiguity (one
//!   launch per counted miss), so bounded cells compare the miss/launch
//!   population and the walker-side structural counters (allocations,
//!   evictions, side-inserts, faults) under a declared tolerance
//!   fraction (budget `ceil(frac × loads)`); since the drivers answer
//!   every access exactly once, predicting the misses pins down the hits
//!   too. Residual divergence is real concurrency: waiters coalescing
//!   onto *faulting* walkers (the oracle re-misses each repeat) and
//!   replacement decisions reordered around resource stalls.
//!
//! The `crossval_smoke` binary runs fuzz seeds (`XCACHE_CROSSVAL_SEEDS`,
//! default 50) through both classes plus the paper's Widx and SpGEMM
//! scenario cells, and writes a per-cell disagreement report under
//! `results/crossval/` on failure.

use std::fmt::Write as _;

use xcache_core::{splitmix64, MetaAccess, XCache, XCacheConfig};
use xcache_isa::{effects, gen};
use xcache_mem::{DramConfig, DramModel, MainMemory};
use xcache_oracle::{CacheModel, MissPlan, OracleGeometry, OracleOp, Prediction, SideInsert};
use xcache_sim::{Cycle, TraceKind};

use crate::fuzz::{access_stream, FUZZ_BASE, WINDOW_BYTES};
use crate::runner::{Runner, Scenario};

/// How closely a cell's simulator counters must match the oracle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Tolerance {
    /// Every compared counter must match exactly (serial driving).
    Exact,
    /// Per-metric absolute disagreement up to `ceil(frac × loads)` is
    /// accepted (pipelined driving).
    Bounded {
        /// Accepted disagreement as a fraction of the replayed loads.
        frac: f64,
    },
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Metric name (the simulator counter it came from).
    pub metric: &'static str,
    /// Simulator value.
    pub sim: u64,
    /// Oracle prediction.
    pub oracle: u64,
}

/// Outcome of cross-validating one cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// Cell label (stable; keys the disagreement artifact).
    pub name: String,
    /// Tolerance class the cell declared.
    pub tolerance: Tolerance,
    /// Loads replayed (the tolerance denominator).
    pub loads: u64,
    /// Every compared metric, in comparison order.
    pub comparisons: Vec<Comparison>,
    /// Tolerance violations; empty = the cell passes.
    pub disagreements: Vec<String>,
}

impl CellReport {
    fn new(name: impl Into<String>, tolerance: Tolerance, loads: u64) -> Self {
        CellReport {
            name: name.into(),
            tolerance,
            loads,
            comparisons: Vec::new(),
            disagreements: Vec::new(),
        }
    }

    /// Whether every compared metric was within tolerance.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.disagreements.is_empty()
    }

    /// The per-metric disagreement budget this cell's tolerance allows.
    #[must_use]
    pub fn budget(&self) -> u64 {
        match self.tolerance {
            Tolerance::Exact => 0,
            Tolerance::Bounded { frac } => (frac * self.loads as f64).ceil() as u64,
        }
    }

    fn check(&mut self, metric: &'static str, sim: u64, oracle: u64) {
        let budget = self.budget();
        if sim.abs_diff(oracle) > budget {
            self.disagreements.push(format!(
                "{}: {metric} sim={sim} oracle={oracle} |Δ|={} > budget {budget}",
                self.name,
                sim.abs_diff(oracle)
            ));
        }
        self.comparisons.push(Comparison {
            metric,
            sim,
            oracle,
        });
    }

    /// Requires `sim == oracle` regardless of the cell's tolerance —
    /// for invariants that concurrency cannot perturb (conservation).
    fn check_invariant(&mut self, metric: &'static str, sim: u64, oracle: u64) {
        if sim != oracle {
            self.disagreements.push(format!(
                "{}: invariant {metric} sim={sim} oracle={oracle} (must match exactly)",
                self.name
            ));
        }
        self.comparisons.push(Comparison {
            metric,
            sim,
            oracle,
        });
    }

    /// Human-readable rendering (one line per metric plus the verdict) —
    /// what the disagreement artifact records.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!(
            "cell {} ({:?}, {} loads, budget {}):\n",
            self.name,
            self.tolerance,
            self.loads,
            self.budget()
        );
        for c in &self.comparisons {
            let _ = writeln!(
                out,
                "  {:<18} sim={:<8} oracle={:<8} |Δ|={}",
                c.metric,
                c.sim,
                c.oracle,
                c.sim.abs_diff(c.oracle)
            );
        }
        for d in &self.disagreements {
            let _ = writeln!(out, "  DISAGREE {d}");
        }
        out
    }
}

/// The oracle geometry corresponding to a simulator configuration.
#[must_use]
pub fn oracle_geometry(cfg: &XCacheConfig) -> OracleGeometry {
    OracleGeometry {
        sets: cfg.sets,
        ways: cfg.ways,
        data_sectors: cfg.data_sectors as u64,
    }
}

/// The oracle ops for fuzz seed `seed`: the generated program's install
/// size is read off its microcode by [`effects::extract`] — the analysis
/// refuses programs with register-sized fills, which the generator never
/// emits.
#[must_use]
pub fn fuzz_oracle_ops(seed: u64, accesses: usize) -> Vec<OracleOp> {
    let program = gen::generate(seed);
    let fx = effects::extract(&program);
    let sectors = u32::try_from(
        fx.install_sectors
            .expect("generated fill routines have immediate allocD sizes"),
    )
    .expect("sector count fits");
    assert!(
        !fx.has_side_inserts,
        "generated programs do not side-insert; the plan below would be wrong"
    );
    access_stream(seed, accesses, fx.has_store_handler)
        .iter()
        .map(|a| match a {
            MetaAccess::Load { key, .. } => OracleOp::Load {
                key: key.raw(),
                plan: MissPlan::install(sectors),
            },
            MetaAccess::Store { key, .. } => OracleOp::Store { key: key.raw() },
            MetaAccess::Take { key, .. } => OracleOp::Take { key: key.raw() },
        })
        .collect()
}

/// The oracle ops for a Widx workload: each probe's plan is derived by
/// walking [`xcache_workloads::HashIndex::chain`] exactly as the walker
/// does — side-insert every node visited before the match (one sector
/// each: a 32-byte node), install one sector on a match, fault on an
/// empty bucket (no side-inserts) or an exhausted chain (every node
/// side-inserted).
#[must_use]
pub fn widx_oracle_ops(w: &xcache_dsa::widx::WidxWorkload) -> Vec<OracleOp> {
    w.probes
        .iter()
        .map(|&key| {
            let chain = w.index.chain(key);
            let mut side_inserts = Vec::new();
            for &(node_key, _) in chain {
                if node_key == key {
                    return OracleOp::Load {
                        key,
                        plan: MissPlan::Install {
                            sectors: 1,
                            side_inserts,
                        },
                    };
                }
                side_inserts.push(SideInsert {
                    key: node_key,
                    sectors: 1,
                });
            }
            OracleOp::Load {
                key,
                plan: MissPlan::Fault { side_inserts },
            }
        })
        .collect()
}

/// The oracle ops for a SpGEMM workload under `cfg`: one load per
/// A-element in dataflow order, keyed by the B row it needs; the plan
/// mirrors the row walker's `setup` routine — fault on an empty row or
/// one at/above the bypass threshold, else install `ceil(row_bytes / 32)`
/// sectors.
#[must_use]
pub fn spgemm_oracle_ops(
    w: &xcache_dsa::spgemm::SpgemmWorkload,
    cfg: &XCacheConfig,
) -> Vec<OracleOp> {
    let sector_bytes = cfg.sector_bytes();
    let max_row_bytes = (cfg.data_capacity_bytes() / 8).max(sector_bytes * 4);
    w.element_stream()
        .iter()
        .map(|&(_, k, _)| {
            let (s, e) = w.b.row_range(k);
            let row_bytes = (e - s) as u64 * 16;
            let key = u64::from(k);
            if row_bytes == 0 || row_bytes >= max_row_bytes {
                OracleOp::Load {
                    key,
                    plan: MissPlan::fault(),
                }
            } else {
                OracleOp::Load {
                    key,
                    plan: MissPlan::install(
                        u32::try_from(row_bytes.div_ceil(sector_bytes)).expect("row fits"),
                    ),
                }
            }
        })
        .collect()
}

/// Everything the serial driver observes about one run.
struct SerialRun {
    stats: xcache_sim::StatsSnapshot,
    per_set: Vec<xcache_core::SetCounters>,
    trace_hits: u64,
    trace_misses: u64,
    trace_dropped: u64,
}

/// Drives fuzz seed `seed` strictly serially: one access in flight, the
/// response taken before the next is issued. Identical setup to
/// [`crate::fuzz::run_seed`] otherwise.
fn run_fuzz_serial(seed: u64, accesses: usize) -> SerialRun {
    let program = gen::generate(seed);
    let fx = effects::extract(&program);
    let stream = access_stream(seed, accesses, fx.has_store_handler);

    let mut mem = MainMemory::new();
    let mut x = seed;
    for w in 0..WINDOW_BYTES / 8 {
        x = splitmix64(x);
        mem.write_u64(FUZZ_BASE + w * 8, x);
    }
    let dram = DramModel::with_memory(DramConfig::test_tiny(), mem);
    let cfg = XCacheConfig::test_tiny().with_params(vec![FUZZ_BASE]);
    let mut xc = XCache::new(cfg, program, dram).expect("generated program is verifier-clean");
    // Every event kind lands in the buffer (yields, wakes, DRAM traffic,
    // retires — not just hits/misses), so size it generously: the tap is
    // only a valid hit/miss tally while nothing has been dropped.
    xc.enable_trace(accesses * 64 + 1024);

    let mut now = Cycle(0);
    for access in stream {
        assert!(xc.can_accept(), "idle instance must accept");
        xc.try_access(now, access).expect("can_accept checked");
        let deadline = now.raw() + 1_000_000;
        loop {
            xc.tick(now);
            if xc.take_response(now).is_some() {
                break;
            }
            let wake = xc.next_event(now);
            now = xcache_sim::fast_forward(now, wake);
            assert!(now.raw() < deadline, "serial fuzz seed {seed} deadlocked");
        }
        now = now.next();
    }
    let trace = xc.trace();
    let (trace_hits, trace_misses, trace_dropped) = (
        trace.count_of_kind(TraceKind::Hit),
        trace.count_of_kind(TraceKind::Miss),
        trace.dropped(),
    );
    SerialRun {
        per_set: xc.meta_set_counters().to_vec(),
        trace_hits,
        trace_misses,
        trace_dropped,
        stats: xc.stats().snapshot(),
    }
}

/// Cross-validates fuzz seed `seed` serially — the **Exact** class:
/// aggregate counters, the per-set export, and the trace tap must all
/// match the oracle prediction with zero tolerance.
#[must_use]
pub fn fuzz_serial_cell(seed: u64, accesses: usize) -> CellReport {
    let ops = fuzz_oracle_ops(seed, accesses);
    let oracle = CacheModel::replay(oracle_geometry(&XCacheConfig::test_tiny()), &ops);
    let sim = run_fuzz_serial(seed, accesses);

    let mut report = CellReport::new(
        format!("fuzz-serial seed {seed}"),
        Tolerance::Exact,
        oracle.loads,
    );
    compare_common(&mut report, &sim.stats, &oracle);
    // Serial driving leaves nothing in flight when the next access
    // arrives, so the waiter path must never trigger.
    report.check_invariant("xcache.waiter", sim.stats.get("xcache.waiter"), 0);
    // Trace tap: a third opinion from the sim's own event stream.
    report.check_invariant("trace.dropped", sim.trace_dropped, 0);
    report.check("trace.hit", sim.trace_hits, oracle.hits);
    report.check("trace.miss", sim.trace_misses, oracle.misses);
    // Per-set counters: the oracle must predict the exact distribution.
    for (set, (s, o)) in sim.per_set.iter().zip(&oracle.per_set).enumerate() {
        if (s.hits, s.allocs, s.evictions) != (o.hits, o.allocs, o.evictions) {
            report.disagreements.push(format!(
                "{}: set {set} sim (h={},a={},e={}) oracle (h={},a={},e={})",
                report.name, s.hits, s.allocs, s.evictions, o.hits, o.allocs, o.evictions
            ));
        }
    }
    report
}

/// Compares the counters both sides define, honouring the cell tolerance.
fn compare_common(report: &mut CellReport, sim: &xcache_sim::StatsSnapshot, oracle: &Prediction) {
    report.check("xcache.hit", sim.get("xcache.hit"), oracle.hits);
    report.check("xcache.miss", sim.get("xcache.miss"), oracle.misses);
    report.check(
        "xcache.store_hit",
        sim.get("xcache.store_hit"),
        oracle.store_hits,
    );
    report.check(
        "xcache.store_miss",
        sim.get("xcache.store_miss"),
        oracle.store_misses,
    );
    report.check(
        "xcache.meta_alloc",
        sim.get("xcache.meta_alloc"),
        oracle.meta_allocs,
    );
    report.check(
        "xcache.meta_evict",
        sim.get("xcache.meta_evict"),
        oracle.meta_evictions,
    );
    report.check("xcache.insertm", sim.get("xcache.insertm"), oracle.insertm);
    report.check(
        "xcache.insertm_skip",
        sim.get("xcache.insertm_skip"),
        oracle.insertm_skips,
    );
    report.check(
        "xcache.capacity_evict",
        sim.get("xcache.capacity_evict"),
        oracle.capacity_evictions,
    );
    report.check(
        "xcache.walker_fault",
        sim.get("xcache.walker_fault"),
        oracle.walker_faults,
    );
}

/// Compares a pipelined run against the oracle.
///
/// The hit-side counters are not oracle-comparable under pipelining:
/// an access coalescing onto an in-flight same-key walker counts as
/// `xcache.waiter`, and a waiter still unanswered when its walker
/// retires *replays* through the front-end and counts a second time as
/// a hit — so `hit + waiter` systematically overcounts by however many
/// waiters replayed, which no counter isolates. (Exactly-once answering
/// is enforced by the harness drivers themselves: their in-flight maps
/// panic on a duplicate or missing response.) The miss side has no such
/// ambiguity — a walker launches exactly once per counted miss — so the
/// comparison anchors on the miss/launch population and the walker-side
/// structural counters, which also pin down the hit side: the drivers
/// answer every access exactly once, so predicting the misses *is*
/// predicting the hits.
fn compare_pipelined(
    report: &mut CellReport,
    sim: &xcache_sim::StatsSnapshot,
    oracle: &Prediction,
) {
    let degraded = sim.get("xcache.degraded_load") + sim.get("xcache.degraded_store");
    report.check_invariant("degraded", degraded, 0);
    report.check(
        "miss-launched",
        sim.get("xcache.miss") + sim.get("xcache.store_miss") + sim.get("xcache.take_miss"),
        oracle.misses + oracle.store_misses + oracle.take_misses,
    );
    report.check(
        "xcache.meta_alloc",
        sim.get("xcache.meta_alloc"),
        oracle.meta_allocs,
    );
    report.check(
        "xcache.meta_evict",
        sim.get("xcache.meta_evict"),
        oracle.meta_evictions,
    );
    report.check("xcache.insertm", sim.get("xcache.insertm"), oracle.insertm);
    report.check(
        "xcache.insertm_skip",
        sim.get("xcache.insertm_skip"),
        oracle.insertm_skips,
    );
    report.check(
        "xcache.capacity_evict",
        sim.get("xcache.capacity_evict"),
        oracle.capacity_evictions,
    );
    report.check(
        "xcache.walker_fault",
        sim.get("xcache.walker_fault"),
        oracle.walker_faults,
    );
}

/// Tolerance for pipelined fuzz runs. The fuzz cells deliberately stress
/// divergence: a tiny cache (`test_tiny`), a ~32-key universe, and deep
/// pipelining mean coalescing routinely changes which keys get evicted,
/// so miss counts genuinely drift (measured ≤ 17.8% of loads over the CI
/// seed range — against < 0.2% on the realistically-sized paper cells).
/// The serial class carries the exact guarantee; this bound catches
/// gross regressions in either backend.
pub const FUZZ_PIPELINED_FRAC: f64 = 0.25;

/// Cross-validates fuzz seed `seed` through the *pipelined* driver
/// ([`crate::fuzz::run_seed`], the one the differential harnesses use) —
/// the **Bounded** class, plus exact conservation (generated programs
/// cannot fault, so every access is answered exactly once).
#[must_use]
pub fn fuzz_pipelined_cell(seed: u64, accesses: usize) -> CellReport {
    let ops = fuzz_oracle_ops(seed, accesses);
    let oracle = CacheModel::replay(oracle_geometry(&XCacheConfig::test_tiny()), &ops);
    let sim = crate::fuzz::run_seed(seed, accesses);

    let mut report = CellReport::new(
        format!("fuzz-pipelined seed {seed}"),
        Tolerance::Bounded {
            frac: FUZZ_PIPELINED_FRAC,
        },
        oracle.loads,
    );
    compare_pipelined(&mut report, &sim.stats, &oracle);
    report
}

/// Tolerance for the pipelined Widx cell. Probes coalescing onto
/// faulting walkers re-miss in the oracle but not the sim, and
/// side-insert placement shifts with launch order; measured divergence
/// on the paper-shaped workload is 0.07% of probes.
pub const WIDX_FRAC: f64 = 0.01;

/// The Widx cross-validation fixture: a TPC-H Q19-shaped index with Zipf
/// probes, and a geometry small enough that capacity pressure exercises
/// evictions. Shared by the harness and the `bench_oracle` predictor.
#[must_use]
pub fn widx_fixture() -> (xcache_dsa::widx::WidxWorkload, XCacheConfig) {
    use xcache_workloads::QueryClass;

    let mut preset = QueryClass::Q19.preset().scaled_down(10);
    preset.probes = 9_000;
    preset.miss_rate = 0.05;
    let w = xcache_dsa::widx::WidxWorkload::from_preset(&preset, 7);
    let g = XCacheConfig {
        sets: 128,
        ways: 4,
        data_sectors: 512,
        ..XCacheConfig::widx()
    };
    (w, g)
}

/// Cross-validates the Widx scenario cell (TPC-H-shaped index, Zipf
/// probes) against the chain-walk oracle plan — **Bounded**.
#[must_use]
pub fn widx_cell() -> CellReport {
    let (w, g) = widx_fixture();
    let oracle = CacheModel::replay(oracle_geometry(&g), &widx_oracle_ops(&w));
    let sim = xcache_dsa::widx::run_xcache(&w, Some(g));

    let mut report = CellReport::new(
        "widx-q19",
        Tolerance::Bounded { frac: WIDX_FRAC },
        oracle.loads,
    );
    compare_pipelined(&mut report, &sim.stats, &oracle);
    report
}

/// Tolerance for the pipelined SpGEMM cells. Same-row repeats coalesce
/// onto in-flight walkers (nearly always, under the column-sorted
/// stream); repeats of *faulting* rows re-miss in the oracle but
/// coalesce in the sim. Measured divergence on the RMat test matrix is
/// ≤ 0.14% of loads.
pub const SPGEMM_FRAC: f64 = 0.01;

/// The SpGEMM cross-validation fixture: A×A on an RMat matrix (the
/// dsa-crate test shape) with a geometry small enough that oversized
/// rows hit the bypass threshold. Shared by the harness and the
/// `bench_oracle` predictor.
#[must_use]
pub fn spgemm_fixture(
    algorithm: xcache_dsa::spgemm::Algorithm,
) -> (xcache_dsa::spgemm::SpgemmWorkload, XCacheConfig) {
    use xcache_workloads::{CsrMatrix, SparsePattern};

    let a = CsrMatrix::generate(96, 96, 700, SparsePattern::RMat, 11);
    let w = xcache_dsa::spgemm::SpgemmWorkload {
        b: a.clone(),
        a,
        algorithm,
    };
    let g = XCacheConfig {
        sets: 32,
        ways: 4,
        active: 8,
        exe: 4,
        data_sectors: 512,
        ..XCacheConfig::sparch()
    };
    (w, g)
}

/// Cross-validates one SpGEMM scenario cell (A×A on an RMat matrix, the
/// dsa-crate test shape) against the row-walk oracle plan — **Bounded**.
#[must_use]
pub fn spgemm_cell(algorithm: xcache_dsa::spgemm::Algorithm) -> CellReport {
    let (w, g) = spgemm_fixture(algorithm);
    let oracle = CacheModel::replay(oracle_geometry(&g), &spgemm_oracle_ops(&w, &g));
    let sim = xcache_dsa::spgemm::run_xcache(&w, Some(g));

    let mut report = CellReport::new(
        format!("spgemm-{}", algorithm.name().to_lowercase()),
        Tolerance::Bounded { frac: SPGEMM_FRAC },
        oracle.loads,
    );
    compare_pipelined(&mut report, &sim.stats, &oracle);
    report
}

/// Fuzz-seed count from `XCACHE_CROSSVAL_SEEDS` (default 50). A
/// malformed or zero value prints the structured error and exits 2.
#[must_use]
pub fn crossval_seeds() -> u64 {
    xcache_sim::exit2(xcache_sim::env_parse_map("XCACHE_CROSSVAL_SEEDS", |s| {
        let v: u64 = s.parse().map_err(|e| format!("{e}"))?;
        if v == 0 {
            return Err("seed count must be >= 1".into());
        }
        Ok(v)
    }))
    .unwrap_or(50)
}

/// The full suite: `seeds` fuzz seeds through both classes, plus the
/// paper's Widx and SpGEMM cells. Cells are independent and run through
/// the [`Runner`].
#[must_use]
pub fn run_suite(seeds: u64, accesses: usize) -> Vec<CellReport> {
    use xcache_dsa::spgemm::Algorithm;

    let mut cells: Vec<Scenario<'static, CellReport>> = Vec::new();
    for seed in 0..seeds {
        cells.push(Scenario::new(
            format!("crossval fuzz-serial {seed}"),
            move || fuzz_serial_cell(seed, accesses),
        ));
        cells.push(Scenario::new(
            format!("crossval fuzz-pipelined {seed}"),
            move || fuzz_pipelined_cell(seed, accesses),
        ));
    }
    cells.push(Scenario::new("crossval widx-q19", widx_cell));
    cells.push(Scenario::new("crossval spgemm-gamma", || {
        spgemm_cell(Algorithm::Gustavson)
    }));
    cells.push(Scenario::new("crossval spgemm-sparch", || {
        spgemm_cell(Algorithm::OuterProduct)
    }));
    Runner::from_env().run(cells)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The oracle's Fibonacci set hash must be the simulator's — pinned
    /// across the crate boundary so neither side can drift silently.
    #[test]
    fn set_hash_pins_to_the_simulator() {
        let cfg = XCacheConfig::test_tiny().with_params(vec![FUZZ_BASE]);
        let sets = cfg.sets;
        let dram = DramModel::new(DramConfig::test_tiny());
        let xc = XCache::new(cfg, gen::generate(0), dram).expect("valid");
        let model = CacheModel::new(OracleGeometry {
            sets,
            ways: 2,
            data_sectors: 4,
        });
        let mut x = 0xD1CEu64;
        for _ in 0..1000 {
            x = splitmix64(x);
            assert_eq!(
                xc.meta_set_index(xcache_core::MetaKey::new(x)),
                model.set_index(x),
                "set hash diverged for key {x:#x}"
            );
        }
    }

    #[test]
    fn serial_fuzz_seeds_agree_exactly() {
        for seed in 0..8 {
            let r = fuzz_serial_cell(seed, 64);
            assert!(r.ok(), "{}", r.render());
        }
    }

    #[test]
    fn pipelined_fuzz_seeds_agree_within_tolerance() {
        for seed in 0..8 {
            let r = fuzz_pipelined_cell(seed, 64);
            assert!(r.ok(), "{}", r.render());
        }
    }

    #[test]
    fn widx_cell_agrees_within_tolerance() {
        let r = widx_cell();
        assert!(r.ok(), "{}", r.render());
        assert!(r.loads > 0);
    }

    #[test]
    fn spgemm_cells_agree_within_tolerance() {
        for alg in [
            xcache_dsa::spgemm::Algorithm::Gustavson,
            xcache_dsa::spgemm::Algorithm::OuterProduct,
        ] {
            let r = spgemm_cell(alg);
            assert!(r.ok(), "{}", r.render());
        }
    }

    #[test]
    fn widx_oracle_ops_mirror_the_chain_walk() {
        use xcache_workloads::HashIndex;
        let mut index = HashIndex::new(8);
        index.insert(1, 100);
        index.insert(2, 200);
        let w = xcache_dsa::widx::WidxWorkload {
            index,
            probes: vec![1, 3],
            hash_latency: 4,
        };
        let ops = widx_oracle_ops(&w);
        assert_eq!(ops.len(), 2);
        match &ops[0] {
            OracleOp::Load {
                key: 1,
                plan:
                    MissPlan::Install {
                        sectors: 1,
                        side_inserts,
                    },
            } => {
                // Probe 1 walks its chain; any non-matching head nodes
                // become side-inserts with one sector each.
                assert!(side_inserts.iter().all(|si| si.sectors == 1 && si.key != 1));
            }
            other => panic!("unexpected plan for resident key: {other:?}"),
        }
        match &ops[1] {
            OracleOp::Load {
                key: 3,
                plan: MissPlan::Fault { side_inserts },
            } => {
                assert!(side_inserts.iter().all(|si| si.key != 3));
            }
            other => panic!("missing key must fault: {other:?}"),
        }
    }

    #[test]
    fn report_budget_and_rendering() {
        let mut r = CellReport::new("demo", Tolerance::Bounded { frac: 0.1 }, 100);
        assert_eq!(r.budget(), 10);
        r.check("m", 105, 100); // within budget
        assert!(r.ok());
        r.check("m2", 120, 100); // over budget
        assert!(!r.ok());
        let text = r.render();
        assert!(text.contains("DISAGREE"));
        assert!(text.contains("m2"));
    }
}
