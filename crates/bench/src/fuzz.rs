//! Seeded fuzz/differential harness over generated walker programs.
//!
//! [`gen::generate`](xcache_isa::gen::generate) produces verifier-clean
//! walker programs from a `u64` seed; this module executes them on a
//! synthetic workload and checks the simulator's two central invariances
//! against them:
//!
//! * **skip differential** — idle-cycle fast-forwarding on vs off must
//!   leave every observable byte-identical ([`skip_differential`]);
//! * **scheduler differential** — the timing-wheel scheduler vs the
//!   fold-based reference (`XCACHE_SCHED=scan`) must steer simulated time
//!   identically ([`sched_differential`]);
//! * **exec differential** — the macro-step engine (fused
//!   superinstructions, batched dispatch, epoch-aggregated stats) vs the
//!   micro-step reference (`XCACHE_EXEC=micro`) must leave every
//!   observable byte-identical ([`exec_differential`]);
//! * **jobs differential** — running a batch of seeds through the
//!   [`Runner`] at one vs two worker threads must produce identical
//!   per-seed results ([`jobs_differential`]).
//!
//! "Byte-identical" is literal: each run is flattened to a canonical JSON
//! string ([`FuzzReport::stats_json`]) — seed, end cycle, response
//! checksum, and the full counter map — and the strings are compared.
//!
//! The shipped walkers only exercise the program shapes their DSAs need;
//! the generator covers the rest of the ISA envelope (hash prologues,
//! guarded hops, chained fills of varying width, store handlers), so this
//! is where event-driven-time or scheduling regressions that the curated
//! differential tests miss get caught. The `fuzz_smoke` binary runs the
//! same checks over `XCACHE_FUZZ_SEEDS` seeds (default 200) in CI.

use std::fmt::Write as _;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use xcache_core::{splitmix64, MetaAccess, MetaKey, XCache, XCacheConfig};
use xcache_isa::gen;
use xcache_isa::{EventId, StateId};
use xcache_mem::{DramConfig, DramModel, MainMemory};
use xcache_sim::{
    with_exec_mode, with_sched_mode, with_skip, Cycle, ExecMode, SchedMode, StatsSnapshot,
};

use crate::runner::{Runner, Scenario};

/// Base of the 64 KiB window bound to the generated program's `base`
/// parameter — every address a generated program can compute lands in
/// `[FUZZ_BASE, FUZZ_BASE + WINDOW_BYTES)`.
pub(crate) const FUZZ_BASE: u64 = 0x10_0000;
pub(crate) const WINDOW_BYTES: u64 = 64 * 1024;

/// Accesses per seed — enough to mix hits, misses, and (when the program
/// has an `Update` handler) stores, while keeping a 200-seed CI run fast.
pub const DEFAULT_ACCESSES: usize = 96;

/// Everything observable about one seeded run.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzReport {
    /// Generator seed the program and workload derive from.
    pub seed: u64,
    /// End cycle of the run.
    pub cycles: u64,
    /// Order-independent fold of every response (found flag + payload).
    pub checksum: u64,
    /// Merged controller + DRAM counters.
    pub stats: StatsSnapshot,
}

impl FuzzReport {
    /// Canonical JSON rendering — the byte string the differentials
    /// compare. Counters live in a `BTreeMap`, so the key order (and
    /// therefore the rendering) is deterministic.
    #[must_use]
    pub fn stats_json(&self) -> String {
        let mut out = format!(
            "{{\"seed\":{},\"cycles\":{},\"checksum\":{},\"counters\":{{",
            self.seed, self.cycles, self.checksum
        );
        for (i, (k, v)) in self.stats.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("}}");
        out
    }
}

/// The synthetic workload for one seed: a key stream over a small
/// universe (so meta-tag hits occur) with stores mixed in when the
/// program declares an `Update` handler. Derived from `seed` through an
/// independent RNG stream so workload draws can't perturb program shape.
pub(crate) fn access_stream(seed: u64, accesses: usize, has_store: bool) -> Vec<MetaAccess> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xACCE_55ED);
    let universe = (accesses as u64 / 3).max(8);
    (0..accesses as u64)
        .map(|id| {
            let key = MetaKey::new(rng.gen_range(0..universe));
            if has_store && rng.gen_bool(0.25) {
                MetaAccess::Store {
                    id,
                    key,
                    payload: [rng.gen(), seed],
                }
            } else {
                MetaAccess::Load { id, key }
            }
        })
        .collect()
}

/// Runs the program generated from `seed` over its synthetic workload and
/// returns the full observable state of the run.
///
/// The memory window is filled with `splitmix64` words (also derived from
/// `seed`), so peeked fill payloads vary and hop chains fan out across
/// the window instead of collapsing onto address zero.
///
/// # Panics
///
/// Panics if the generated program is rejected by the load-time verifier
/// gate (the generator guarantees it is not) or the run deadlocks.
#[must_use]
pub fn run_seed(seed: u64, accesses: usize) -> FuzzReport {
    let program = gen::generate(seed);
    let has_store = program
        .table
        .lookup(StateId::DEFAULT, EventId::UPDATE)
        .is_some();
    let stream = access_stream(seed, accesses, has_store);

    let mut mem = MainMemory::new();
    let mut x = seed;
    for w in 0..WINDOW_BYTES / 8 {
        x = splitmix64(x);
        mem.write_u64(FUZZ_BASE + w * 8, x);
    }
    let dram = DramModel::with_memory(DramConfig::test_tiny(), mem);
    let cfg = XCacheConfig::test_tiny().with_params(vec![FUZZ_BASE]);
    let mut xc = XCache::new(cfg, program, dram).expect("generated program is verifier-clean");

    let mut now = Cycle(0);
    let mut next = 0usize;
    let mut done = 0usize;
    let mut checksum = 0u64;
    let total = stream.len();
    let max_cycles = 2_000 * total as u64 + 1_000_000;
    while done < total {
        while next < total && xc.can_accept() {
            xc.try_access(now, stream[next])
                .expect("can_accept checked");
            next += 1;
        }
        xc.tick(now);
        while let Some(resp) = xc.take_response(now) {
            checksum = checksum
                .wrapping_add(splitmix64(resp.id ^ u64::from(resp.found)))
                .wrapping_add(resp.data.iter().fold(0u64, |a, &w| a.wrapping_add(w)));
            done += 1;
        }
        now = if done >= total {
            now.next()
        } else {
            let mut wake = xc.next_event(now);
            if next < total && xc.can_accept() {
                wake = Some(now.next());
            }
            xcache_sim::fast_forward(now, wake)
        };
        assert!(now.raw() < max_cycles, "fuzz seed {seed} deadlocked");
    }
    let mut stats = xc.stats().clone();
    stats.merge(xc.downstream().stats());
    FuzzReport {
        seed,
        cycles: now.raw(),
        checksum,
        stats: stats.snapshot(),
    }
}

/// Runs `seed` with fast-forwarding on and off and demands byte-identical
/// reports. Returns the (shared) canonical JSON on agreement, or a
/// description of the divergence.
///
/// `with_skip` is thread-local: call this on the thread that owns the
/// comparison (never through the multi-threaded [`Runner`]).
///
/// # Errors
///
/// Returns `Err` with both renderings when the runs diverge.
pub fn skip_differential(seed: u64, accesses: usize) -> Result<String, String> {
    let fast = with_skip(true, || run_seed(seed, accesses));
    let slow = with_skip(false, || run_seed(seed, accesses));
    let (fast, slow) = (fast.stats_json(), slow.stats_json());
    if fast == slow {
        Ok(fast)
    } else {
        Err(format!(
            "seed {seed}: skip and no-skip runs diverged\n  skip:    {fast}\n  no-skip: {slow}"
        ))
    }
}

/// Runs `seed` under the timing-wheel scheduler and under the fold-based
/// reference scheduler (`XCACHE_SCHED=scan`) — both with fast-forwarding
/// on, where the schedulers actually steer time — and demands
/// byte-identical reports. Returns the canonical JSON on agreement.
///
/// Like [`skip_differential`], this uses the thread-local override, so
/// call it on the thread that owns the comparison.
///
/// # Errors
///
/// Returns `Err` with both renderings when the runs diverge.
pub fn sched_differential(seed: u64, accesses: usize) -> Result<String, String> {
    let wheel = with_sched_mode(SchedMode::Wheel, || {
        with_skip(true, || run_seed(seed, accesses))
    });
    let scan = with_sched_mode(SchedMode::Scan, || {
        with_skip(true, || run_seed(seed, accesses))
    });
    let (wheel, scan) = (wheel.stats_json(), scan.stats_json());
    if wheel == scan {
        Ok(wheel)
    } else {
        Err(format!(
            "seed {seed}: wheel and scan schedulers diverged\n  wheel: {wheel}\n  scan:  {scan}"
        ))
    }
}

/// Runs `seed` under the macro-step engine (fused superinstructions,
/// batched walker dispatch, epoch-aggregated stats) and under the
/// micro-step reference (`XCACHE_EXEC=micro`) and demands byte-identical
/// reports — the fusion pass and the batching layer must be pure
/// plumbing. Returns the canonical JSON on agreement.
///
/// Like [`skip_differential`], this uses the thread-local override, so
/// call it on the thread that owns the comparison.
///
/// # Errors
///
/// Returns `Err` with both renderings when the runs diverge.
pub fn exec_differential(seed: u64, accesses: usize) -> Result<String, String> {
    let mac = with_exec_mode(ExecMode::Macro, || run_seed(seed, accesses));
    let mic = with_exec_mode(ExecMode::Micro, || run_seed(seed, accesses));
    let (mac, mic) = (mac.stats_json(), mic.stats_json());
    if mac == mic {
        Ok(mac)
    } else {
        Err(format!(
            "seed {seed}: macro and micro engines diverged\n  macro: {mac}\n  micro: {mic}"
        ))
    }
}

/// Runs every seed through the [`Runner`] at one and two worker threads
/// and demands the per-seed JSON vectors agree. Returns the canonical
/// renderings on agreement.
///
/// # Errors
///
/// Returns `Err` naming the first diverging seed otherwise.
pub fn jobs_differential(seeds: &[u64], accesses: usize) -> Result<Vec<String>, String> {
    let grid = || {
        seeds
            .iter()
            .map(|&seed| {
                Scenario::new(format!("fuzz seed {seed}"), move || {
                    run_seed(seed, accesses).stats_json()
                })
            })
            .collect::<Vec<_>>()
    };
    let seq = Runner::with_jobs(1).run(grid());
    let par = Runner::with_jobs(2).run(grid());
    for ((s, p), seed) in seq.iter().zip(&par).zip(seeds) {
        if s != p {
            return Err(format!(
                "seed {seed}: jobs=1 and jobs=2 runs diverged\n  jobs=1: {s}\n  jobs=2: {p}"
            ));
        }
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_are_deterministic_per_seed() {
        let a = run_seed(3, 48);
        let b = run_seed(3, 48);
        assert_eq!(a, b);
        assert_eq!(a.stats_json(), b.stats_json());
        assert!(a.cycles > 0);
    }

    #[test]
    fn stream_mixes_loads_and_stores_only_when_supported() {
        let stores = |s: &[MetaAccess]| {
            s.iter()
                .filter(|a| matches!(a, MetaAccess::Store { .. }))
                .count()
        };
        assert_eq!(stores(&access_stream(1, 64, false)), 0);
        assert!(stores(&access_stream(1, 64, true)) > 4);
    }

    #[test]
    fn stats_json_is_flat_and_ordered() {
        let r = run_seed(5, 32);
        let j = r.stats_json();
        assert!(j.starts_with("{\"seed\":5,"));
        assert!(j.contains("\"counters\":{"));
        assert!(j.ends_with("}}"));
        // Counter keys appear in BTreeMap (sorted) order.
        let keys: Vec<&str> = r.stats.counters.keys().map(String::as_str).collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }
}
