//! # xcache-bench
//!
//! The experiment harness: one binary per table and figure of the paper
//! (`fig04_*` … `fig20_*`, `tab01_*` … `tab04_*` under `src/bin/`), plus
//! Criterion microbenchmarks under `benches/`.
//!
//! Every harness prints the same rows/series the paper reports. Absolute
//! numbers differ (our substrate is a Rust cycle simulator, not the
//! authors' RTL + DRAMsim2 testbed); EXPERIMENTS.md records paper-vs-
//! measured for each one.
//!
//! ## Scale and parallelism
//!
//! Harnesses default to a reduced scale so the whole suite runs in
//! minutes. Set `XCACHE_SCALE=1` for paper-sized inputs (slow) or a larger
//! divisor for quicker smoke runs; `scale()` reads it.
//!
//! Every binary declares its parameter grid as [`Scenario`]s and executes
//! them through the [`Runner`], which parallelises across independent
//! cells (`XCACHE_JOBS` worker threads, default: all cores) while keeping
//! each simulation deterministic and the output order fixed — the printed
//! tables and JSON dumps are byte-identical at any job count.

pub mod chaos;
pub mod crossval;
pub mod fuzz;
pub mod runner;

pub use runner::{
    jobs_from_env, merge_snapshots, try_jobs_from_env, Cell, CellOutcome, CellStatus,
    CheckpointPolicy, CheckpointStore, MemStore, Runner, Scenario,
};

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use xcache_core::XCacheConfig;
use xcache_dsa::widx::WidxWorkload;
use xcache_workloads::QueryClass;

static SIM_CYCLES: AtomicU64 = AtomicU64::new(0);

/// The process-wide wall-clock anchor for the meta envelope's `wall_ms`.
/// First caller wins; `scale()` and `Runner::run` both touch it, so the
/// clock effectively starts at the top of every harness `main`.
pub(crate) fn start_instant() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Credits simulated cycles to the process-wide tally that the JSON meta
/// envelope reports as `sim_cycles` / `sim_cycles_per_sec`. Scenario cells
/// call this once per finished run.
pub fn note_sim_cycles(cycles: u64) {
    let _ = start_instant();
    SIM_CYCLES.fetch_add(cycles, Ordering::Relaxed);
}

/// Wall-clock milliseconds since the harness started and the simulated
/// cycles credited so far — the timing fields of the meta envelope.
#[must_use]
pub fn timing_totals() -> (u64, u64) {
    let wall_ms = start_instant().elapsed().as_millis() as u64;
    (wall_ms, SIM_CYCLES.load(Ordering::Relaxed))
}

/// Single-core integer throughput of this machine, measured once per
/// process: billions of `splitmix64` steps per second over a serial
/// dependency chain, best of 5 reps so scheduler noise biases low, not
/// high. Recorded in every JSON meta envelope as `machine_factor`, so
/// throughput numbers taken on different machines can be normalized
/// before being compared (`cycles_per_sec / machine_factor`) — raw
/// cycles/sec drifts with the host CPU, which used to make the
/// perf-trajectory `--check` flag noisy across machines.
#[must_use]
pub fn machine_factor() -> f64 {
    static FACTOR: OnceLock<f64> = OnceLock::new();
    *FACTOR.get_or_init(|| {
        const ITERS: u64 = 1 << 21;
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let start = Instant::now();
            let mut x = 0x9E37_79B9_7F4A_7C15u64;
            for _ in 0..ITERS {
                x = xcache_core::splitmix64(x);
            }
            std::hint::black_box(x);
            best = best.min(start.elapsed().as_secs_f64());
        }
        (ITERS as f64 / best) / 1e9
    })
}

/// Workload scale divisor. `1` = paper-sized. Default 10.
///
/// Read from `XCACHE_SCALE`; a malformed or zero value prints the
/// structured error and exits 2 (see [`try_scale`]).
#[must_use]
pub fn scale() -> u32 {
    xcache_sim::exit2(try_scale())
}

/// [`scale`] as a structured result, for callers (the scenario service)
/// that must reject a bad knob instead of exiting.
///
/// # Errors
///
/// Returns an [`xcache_sim::EnvError`] for an unparsable or zero value.
pub fn try_scale() -> Result<u32, xcache_sim::EnvError> {
    let _ = start_instant();
    Ok(xcache_sim::env_parse_map("XCACHE_SCALE", |s| {
        let v: u32 = s.parse().map_err(|e| format!("{e}"))?;
        if v == 0 {
            return Err("scale divisor must be >= 1".into());
        }
        Ok(v)
    })?
    .unwrap_or(10))
}

/// A `u64` environment knob with a default — the smoke binaries' seed
/// counters and friends. Malformed values print the structured error and
/// exit 2 instead of silently falling back.
#[must_use]
pub fn env_u64_or(var: &str, default: u64) -> u64 {
    xcache_sim::exit2(xcache_sim::env_parse::<u64>(var)).unwrap_or(default)
}

/// Renders an aligned text table.
#[must_use]
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            let _ = write!(line, "{:<w$}  ", c, w = widths[i]);
        }
        line.trim_end().to_owned()
    };
    let headers_owned: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    let _ = writeln!(out, "{}", fmt_row(&headers_owned, &widths));
    let _ = writeln!(
        out,
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        let _ = writeln!(out, "{}", fmt_row(row, &widths));
    }
    out
}

/// The standard Widx workload at the harness scale: paper-shaped TPC-H
/// query class with enough probes to amortise compulsory misses.
#[must_use]
pub fn widx_workload(class: QueryClass, scale: u32, seed: u64) -> WidxWorkload {
    let mut preset = class.preset().scaled_down(scale as usize);
    preset.probes = (preset.probes * 3).max(2_000);
    WidxWorkload::from_preset(&preset, seed)
}

/// A Widx geometry scaled with the workload so hit rates sit in the
/// paper's regime (hot set resident, tail missing).
#[must_use]
pub fn widx_geometry(scale: u32) -> XCacheConfig {
    let full = XCacheConfig::widx();
    if scale <= 1 {
        return full;
    }
    let sets = (full.sets / scale as usize).next_power_of_two().max(64);
    XCacheConfig {
        sets,
        data_sectors: sets * full.ways,
        ..full
    }
}

/// One DSA evaluated in all three storage configurations (a Figure 14
/// cluster).
#[derive(Debug, Clone)]
pub struct DsaRun {
    /// Cluster label as the paper prints it (e.g. `Widx TPC-H-19`).
    pub name: String,
    /// The geometry used (also sizes the matched address cache).
    pub geometry: XCacheConfig,
    /// X-Cache configuration results.
    pub xcache: xcache_dsa::RunReport,
    /// Address-based cache with ideal walker.
    pub addr: xcache_dsa::RunReport,
    /// Hardwired DSA baseline.
    pub baseline: xcache_dsa::RunReport,
}

impl DsaRun {
    /// X-Cache speedup over the address cache.
    #[must_use]
    pub fn speedup_vs_addr(&self) -> f64 {
        self.xcache.speedup_over(&self.addr)
    }

    /// X-Cache speedup over the hardwired baseline.
    #[must_use]
    pub fn speedup_vs_baseline(&self) -> f64 {
        self.xcache.speedup_over(&self.baseline)
    }

    /// Address-cache DRAM accesses relative to X-Cache (Figure 14's
    /// memory-access axis).
    #[must_use]
    pub fn dram_ratio(&self) -> f64 {
        self.addr.dram_accesses() as f64 / self.xcache.dram_accesses().max(1) as f64
    }

    /// Total simulated cycles across the cluster's three runs — what the
    /// cell credits to the meta envelope via [`note_sim_cycles`].
    #[must_use]
    pub fn sim_cycles(&self) -> u64 {
        self.xcache.cycles + self.addr.cycles + self.baseline.cycles
    }
}

/// The full DSA sweep as a scenario grid: every evaluated DSA in all
/// three storage configurations at `scale`. Each cell is one DSA cluster
/// (its three runs), so cells are independent and the runner can execute
/// them in parallel.
#[must_use]
pub fn dsa_scenarios(scale: u32, seed: u64) -> Vec<Scenario<'static, DsaRun>> {
    use xcache_dsa::{dasx, graphpulse, spgemm, widx};

    let mut cells = Vec::new();

    // Widx: TPC-H queries 19/20/22.
    for class in QueryClass::all() {
        let name = format!("Widx {}", class.name());
        cells.push(Scenario::new(name.clone(), move || {
            let w = widx_workload(class, scale, seed);
            let g = widx_geometry(scale);
            let run = DsaRun {
                name,
                geometry: g.clone(),
                xcache: widx::run_xcache(&w, Some(g.clone())),
                addr: widx::run_address_cache(&w, Some(g.clone())),
                baseline: widx::run_baseline(&w, Some(g)),
            };
            note_sim_cycles(run.sim_cycles());
            run
        }));
    }

    // DASX on the same dataset (Q22 class, §7.2).
    cells.push(Scenario::new("DASX", move || {
        let w = dasx::DasxWorkload::from_preset(
            &{
                let mut p = QueryClass::Q22.preset().scaled_down(scale as usize);
                p.probes = (p.probes * 3).max(2_000);
                p
            },
            seed,
        );
        let mut g = widx_geometry(scale);
        g.exe = XCacheConfig::dasx().exe;
        let run = DsaRun {
            name: "DASX".into(),
            geometry: g.clone(),
            xcache: dasx::run_xcache(&w, Some(g.clone())),
            addr: dasx::run_address_cache(&w, Some(g.clone())),
            baseline: dasx::run_baseline(&w, Some(g)),
        };
        note_sim_cycles(run.sim_cycles());
        run
    }));

    // GraphPulse: p2p-Gnutella08-shaped graph, PageRank.
    cells.push(Scenario::new("GraphPulse p2p-08", move || {
        let (n, e) = xcache_workloads::GraphPreset::P2pGnutella08.dims();
        let n = (n / scale).max(64);
        let e = (e / scale as usize).max(256);
        let w = graphpulse::GraphPulseWorkload {
            graph: xcache_workloads::Graph::from_adjacency(xcache_workloads::CsrMatrix::generate(
                n,
                n,
                e,
                xcache_workloads::SparsePattern::RMat,
                seed,
            )),
            iterations: 2,
        };
        let g = graphpulse_geometry(n);
        let run = DsaRun {
            name: "GraphPulse p2p-08".into(),
            geometry: g.clone(),
            xcache: graphpulse::run_xcache(&w, Some(g.clone())),
            addr: graphpulse::run_address_cache(&w, Some(g)),
            // A single-port hardwired coalescing queue (one event per
            // cycle enters a bin), GraphPulse's dedicated structure.
            baseline: graphpulse::run_baseline(&w, 1),
        };
        note_sim_cycles(run.sim_cycles());
        run
    }));

    // SpArch and Gamma: A x A on a p2p-Gnutella31-shaped matrix.
    for alg in [
        spgemm::Algorithm::OuterProduct,
        spgemm::Algorithm::Gustavson,
    ] {
        cells.push(Scenario::new(format!("{} p2p-31", alg.name()), move || {
            let w = spgemm::SpgemmWorkload::paper_like(alg, scale, seed);
            let g = spgemm_geometry(scale);
            let run = DsaRun {
                name: format!("{} p2p-31", alg.name()),
                geometry: g.clone(),
                xcache: spgemm::run_xcache(&w, Some(g.clone())),
                addr: spgemm::run_address_cache(&w, Some(g.clone())),
                baseline: spgemm::run_baseline(&w, Some(g)),
            };
            note_sim_cycles(run.sim_cycles());
            run
        }));
    }

    cells
}

/// Runs every evaluated DSA in all three configurations at `scale`
/// (Figure 14's full sweep; Figures 15/16 reuse the reports). Cells run
/// through the [`Runner`], one per DSA cluster.
#[must_use]
pub fn run_all_dsas(scale: u32, seed: u64) -> Vec<DsaRun> {
    Runner::from_env().run(dsa_scenarios(scale, seed))
}

/// GraphPulse geometry scaled to a vertex count (direct-mapped, like
/// Table 3, sized so the working set fits with batching headroom).
#[must_use]
pub fn graphpulse_geometry(vertices: u32) -> XCacheConfig {
    let sets = (vertices as usize * 2).next_power_of_two().max(64);
    XCacheConfig {
        sets,
        ways: 1,
        data_sectors: sets,
        ..XCacheConfig::graphpulse()
    }
}

/// SpArch/Gamma geometry at harness scale.
#[must_use]
pub fn spgemm_geometry(scale: u32) -> XCacheConfig {
    let full = XCacheConfig::sparch();
    if scale <= 1 {
        return full;
    }
    let sets = (full.sets / scale as usize).next_power_of_two().max(32);
    XCacheConfig {
        sets,
        data_sectors: sets * full.ways * 4,
        ..full
    }
}

/// Geometric mean of an iterator of (positive) ratios; `0.0` when empty.
#[must_use]
pub fn geomean(vals: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = vals.fold((0.0, 0u32), |(s, n), v| (s + v.ln(), n + 1));
    if n == 0 {
        0.0
    } else {
        (sum / f64::from(n)).exp()
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The checked-out commit (short SHA), or `"unknown"` outside a git
/// checkout.
#[must_use]
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|| "unknown".into())
}

/// Run metadata recorded in every JSON dump: enough to reproduce the run
/// (scale divisor, job count, commit) and to identify the format, plus the
/// timing fields (`wall_ms`, `sim_cycles`, `sim_cycles_per_sec`) that give
/// every dump a perf trajectory. `parallel_fallbacks` counts silent
/// `Par`-pool degradations to sequential execution — nonzero means the
/// run's wall times came from a machine that couldn't actually go
/// parallel, so its throughput numbers undersell the code. The timing
/// fields are machine-dependent; comparisons across runs must ignore the
/// meta line (it sits on its own line in the envelope precisely so
/// `grep -v '^"meta"'` drops it).
#[must_use]
pub fn meta_json(name: &str) -> String {
    let (wall_ms, sim_cycles) = timing_totals();
    let per_sec = sim_cycles
        .saturating_mul(1000)
        .checked_div(wall_ms)
        .unwrap_or(0);
    format!(
        "{{\"schema\":\"xcache-bench/2\",\"experiment\":\"{}\",\"scale\":{},\"jobs\":{},\"machine_factor\":{:.3},\"git_sha\":\"{}\",\"wall_ms\":{wall_ms},\"sim_cycles\":{sim_cycles},\"sim_cycles_per_sec\":{per_sec},\"parallel_fallbacks\":{}}}",
        json_escape(name),
        scale(),
        jobs_from_env(),
        machine_factor(),
        json_escape(&git_sha()),
        xcache_sim::parallel_fallbacks()
    )
}

/// Writes `{"meta": ..., "<key>": <body>}` to `results/<name>.json` when
/// `XCACHE_JSON` is set. Every dump goes through here so all of them
/// carry the same self-describing metadata envelope.
fn write_results_json(name: &str, key: &str, body: &str) {
    if std::env::var("XCACHE_JSON").is_err() {
        return;
    }
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let out = format!(
        "{{\n\"meta\": {},\n\"{key}\": {body}\n}}\n",
        meta_json(name)
    );
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        eprintln!("(wrote {})", path.display());
    }
}

/// Writes a caller-rendered JSON `body` under `"<key>"` to
/// `results/<name>.json` when `XCACHE_JSON` is set, wrapped in the same
/// metadata envelope as every other dump. For binaries (the oracle
/// predictor, the cross-validation harness) whose body shape is neither a
/// table nor a [`DsaRun`] set.
pub fn maybe_dump_custom_json(name: &str, key: &str, body: &str) {
    write_results_json(name, key, body);
}

/// Serialises a rendered table (headers + rows) to `results/<name>.json`
/// when `XCACHE_JSON` is set — the machine-readable twin of what the
/// binary printed, wrapped in the metadata envelope.
pub fn maybe_dump_table_json(name: &str, headers: &[&str], rows: &[Vec<String>]) {
    let mut body = String::from("{\"headers\": [");
    for (i, h) in headers.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        let _ = write!(body, "\"{}\"", json_escape(h));
    }
    body.push_str("], \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        body.push_str("  [");
        for (j, cell) in row.iter().enumerate() {
            if j > 0 {
                body.push(',');
            }
            let _ = write!(body, "\"{}\"", json_escape(cell));
        }
        let _ = write!(body, "]{}", if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    body.push_str("]}");
    write_results_json(name, "table", &body);
}

/// Serialises a set of [`DsaRun`]s to `results/<name>.json` when
/// `XCACHE_JSON` is set — a machine-readable companion to the printed
/// tables (flat JSON, hand-rendered; the workspace has no serde_json).
/// The envelope always records run metadata (scale, jobs, git SHA) plus
/// an `aggregate` section with the X-Cache counters merged across runs.
pub fn maybe_dump_json(name: &str, runs: &[DsaRun]) {
    if std::env::var("XCACHE_JSON").is_err() {
        return;
    }
    let counters_json = |snap: &xcache_sim::StatsSnapshot| {
        let mut counters = String::from("{");
        for (j, (k, v)) in snap.counters.iter().enumerate() {
            if j > 0 {
                counters.push(',');
            }
            let _ = write!(counters, "\"{}\":{v}", json_escape(k));
        }
        counters.push('}');
        counters
    };
    let mut body = String::from("[\n");
    for (i, r) in runs.iter().enumerate() {
        let report = |rep: &xcache_dsa::RunReport| {
            format!(
                "{{\"label\":\"{}\",\"cycles\":{},\"checksum\":{},\"counters\":{}}}",
                json_escape(&rep.label),
                rep.cycles,
                rep.checksum,
                counters_json(&rep.stats)
            )
        };
        let _ = writeln!(
            body,
            "  {{\"name\":\"{}\",\"xcache\":{},\"addr\":{},\"baseline\":{}}}{}",
            json_escape(&r.name),
            report(&r.xcache),
            report(&r.addr),
            report(&r.baseline),
            if i + 1 < runs.len() { "," } else { "" }
        );
    }
    let aggregate = merge_snapshots(runs.iter().map(|r| &r.xcache.stats));
    let _ = write!(
        body,
        "],\n\"aggregate\": {{\"xcache_counters\": {}}}",
        counters_json(&aggregate)
    );
    // `body` already carries the closing bracket of `runs` plus the
    // aggregate key, so it slots into the envelope as `"runs": [...],
    // "aggregate": {...}`.
    write_results_json(name, "runs", &body);
}

/// Formats a ratio as `1.23x`.
#[must_use]
pub fn ratio(num: f64, den: f64) -> String {
    if den == 0.0 {
        "n/a".into()
    } else {
        format!("{:.2}x", num / den)
    }
}

/// Formats a fraction as `12.3%`.
#[must_use]
pub fn pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns_columns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" and "1" start at the same offset.
        let col = lines[0].find("value").unwrap();
        assert_eq!(lines[2].chars().nth(col), Some('1'));
    }

    #[test]
    fn scale_defaults_to_ten() {
        // (Env not set in the test environment.)
        if std::env::var("XCACHE_SCALE").is_err() {
            assert_eq!(scale(), 10);
        }
    }

    #[test]
    fn widx_geometry_scales_down() {
        let g = widx_geometry(10);
        assert!(g.sets < XCacheConfig::widx().sets);
        assert!(g.sets.is_power_of_two());
        assert_eq!(g.data_sectors, g.sets * g.ways);
    }

    #[test]
    fn machine_factor_is_positive_and_cached() {
        let a = machine_factor();
        assert!(a > 0.001 && a < 1000.0, "implausible calibration: {a}");
        // OnceLock-cached: the second call returns the identical value.
        assert!((machine_factor() - a).abs() < f64::EPSILON);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio(17.0, 10.0), "1.70x");
        assert_eq!(ratio(1.0, 0.0), "n/a");
        assert_eq!(pct(0.123), "12.3%");
    }

    #[test]
    fn geomean_of_ratios() {
        assert!((geomean([2.0, 8.0].into_iter()) - 4.0).abs() < 1e-12);
        assert!((geomean([1.7].into_iter()) - 1.7).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(json_escape("x\ny"), "x\\u000ay");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn meta_json_is_self_describing() {
        let m = meta_json("figNN");
        for key in [
            "\"schema\"",
            "\"experiment\"",
            "\"scale\"",
            "\"jobs\"",
            "\"machine_factor\"",
            "\"git_sha\"",
            "\"wall_ms\"",
            "\"sim_cycles\"",
            "\"sim_cycles_per_sec\"",
        ] {
            assert!(m.contains(key), "missing {key} in {m}");
        }
        assert!(m.contains("\"figNN\""));
    }

    /// Parallel and sequential execution of real simulator cells must
    /// produce byte-identical rows and identical merged stats — the
    /// property the whole harness relies on for `XCACHE_JOBS`.
    #[test]
    fn parallel_simulation_cells_match_sequential() {
        use xcache_dsa::widx;

        let grid = || {
            [1u64, 2, 3, 4]
                .into_iter()
                .map(|seed| {
                    Scenario::new(format!("seed {seed}"), move || {
                        let mut preset = QueryClass::Q19.preset().scaled_down(400);
                        preset.probes = 300;
                        let w = WidxWorkload::from_preset(&preset, seed);
                        let g = widx_geometry(40);
                        let r = widx::run_xcache(&w, Some(g));
                        (
                            vec![
                                seed.to_string(),
                                r.cycles.to_string(),
                                r.checksum.to_string(),
                            ],
                            r.stats,
                        )
                    })
                })
                .collect::<Vec<_>>()
        };
        let seq = Runner::with_jobs(1).run(grid());
        let par = Runner::with_jobs(4).run(grid());
        let rows = |v: &[(Vec<String>, xcache_sim::StatsSnapshot)]| {
            v.iter().map(|(r, _)| r.clone()).collect::<Vec<_>>()
        };
        assert_eq!(rows(&seq), rows(&par));
        let headers = ["seed", "cycles", "checksum"];
        assert_eq!(
            render_table(&headers, &rows(&seq)),
            render_table(&headers, &rows(&par))
        );
        let merged_seq = merge_snapshots(seq.iter().map(|(_, s)| s));
        let merged_par = merge_snapshots(par.iter().map(|(_, s)| s));
        assert_eq!(merged_seq, merged_par);
    }
}
