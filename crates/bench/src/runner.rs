//! The parallel scenario runner every experiment binary routes through.
//!
//! A figure or table is a *grid* of independent cells: each cell runs one
//! (deterministic, single-threaded) simulation and produces a row, a
//! report, or a cycle count. Binaries declare the grid as a list of
//! [`Scenario`]s; the [`Runner`] executes the cells — in parallel across
//! `XCACHE_JOBS` worker threads — and returns the results *in declaration
//! order*, so the rendered tables and JSON dumps are byte-identical
//! whatever the job count or completion order.
//!
//! Parallelism lives only here, between cells. No simulation is ever
//! split across threads, so per-cell results are bit-exact regardless of
//! scheduling.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

use xcache_sim::StatsSnapshot;

/// One cell of an experiment grid: a label (for progress reporting) and
/// the closure that computes it.
///
/// The closure may borrow from the enclosing scope (shared workloads are
/// built once and borrowed by every cell); the runner executes it on a
/// scoped worker thread.
pub struct Scenario<'a, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'a>,
    estimate: Option<f64>,
}

impl<'a, T> Scenario<'a, T> {
    /// Declares a cell.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'a) -> Self {
        Scenario {
            label: label.into(),
            run: Box::new(run),
            estimate: None,
        }
    }

    /// Attaches an analytical interest estimate (higher = more worth
    /// simulating); [`Runner::run_pruned`] ranks cells by it. Typically an
    /// `xcache-oracle` prediction — e.g. the predicted miss count of the
    /// cell's access stream. Cells without an estimate always run.
    #[must_use]
    pub fn with_estimate(mut self, estimate: f64) -> Self {
        self.estimate = Some(estimate);
        self
    }

    /// The cell's estimate, if one was attached.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }

    /// The cell's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Worker-thread count from `XCACHE_JOBS`.
///
/// Defaults to the machine's available parallelism; `XCACHE_JOBS=1`
/// forces sequential in-thread execution. A malformed or zero value
/// prints the structured error and exits 2 (see [`try_jobs_from_env`]).
#[must_use]
pub fn jobs_from_env() -> usize {
    xcache_sim::exit2(try_jobs_from_env())
}

/// [`jobs_from_env`] as a structured result, for callers (the scenario
/// service) that must reject a bad knob instead of exiting.
///
/// # Errors
///
/// Returns an [`xcache_sim::EnvError`] for an unparsable or zero value.
pub fn try_jobs_from_env() -> Result<usize, xcache_sim::EnvError> {
    Ok(xcache_sim::env_parse_map("XCACHE_JOBS", |s| {
        let v: usize = s.parse().map_err(|e| format!("{e}"))?;
        if v == 0 {
            return Err("worker count must be >= 1".into());
        }
        Ok(v)
    })?
    .unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    }))
}

/// Executes a grid of [`Scenario`]s across a pool of worker threads.
pub struct Runner {
    jobs: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runner {
    /// A runner sized by `XCACHE_JOBS` (see [`jobs_from_env`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_jobs(jobs_from_env())
    }

    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// The worker count this runner was built with.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every cell and returns the results in declaration order.
    ///
    /// With one job the cells run inline on the calling thread; otherwise
    /// scoped workers pull cells from a shared index and store results by
    /// cell position, so the output order never depends on scheduling.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell.
    pub fn run<T: Send>(&self, cells: Vec<Scenario<'_, T>>) -> Vec<T> {
        // Anchor the meta envelope's wall clock no later than the first
        // grid execution.
        let _ = crate::start_instant();
        let n = cells.len();
        let verbose = std::env::var("XCACHE_VERBOSE").is_ok();
        let jobs = self.jobs.min(n.max(1));
        if jobs <= 1 {
            return cells
                .into_iter()
                .enumerate()
                .map(|(i, c)| {
                    if verbose {
                        eprintln!("[runner] {}/{n} {}", i + 1, c.label);
                    }
                    (c.run)()
                })
                .collect();
        }
        let tasks: Vec<Mutex<Option<Scenario<'_, T>>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = tasks[i]
                        .lock()
                        .expect("task lock")
                        .take()
                        .expect("each cell is claimed once");
                    if verbose {
                        eprintln!("[runner] {}/{n} {}", i + 1, cell.label);
                    }
                    let value = (cell.run)();
                    *slots[i].lock().expect("slot lock") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every cell completed")
            })
            .collect()
    }
}

/// The sweep-pruning fraction from `XCACHE_ESTIMATE_FRAC`, if set.
///
/// Must be a finite value in `(0, 1]`; unset means "run everything". A
/// malformed or out-of-range value prints the structured error and
/// exits 2 (see [`try_estimate_frac_from_env`]).
#[must_use]
pub fn estimate_frac_from_env() -> Option<f64> {
    xcache_sim::exit2(try_estimate_frac_from_env())
}

/// [`estimate_frac_from_env`] as a structured result, for callers (the
/// scenario service) that must reject a bad knob instead of exiting.
///
/// # Errors
///
/// Returns an [`xcache_sim::EnvError`] when the value is unparsable,
/// non-finite, or outside `(0, 1]`.
pub fn try_estimate_frac_from_env() -> Result<Option<f64>, xcache_sim::EnvError> {
    xcache_sim::env_parse_map("XCACHE_ESTIMATE_FRAC", |s| {
        let f: f64 = s.parse().map_err(|e| format!("{e}"))?;
        if !f.is_finite() || f <= 0.0 || f > 1.0 {
            return Err(format!("fraction {f} outside (0, 1]"));
        }
        Ok(f)
    })
}

impl Runner {
    /// [`Runner::run`] with oracle-guided sweep pruning: among the cells
    /// carrying an [`estimate`](Scenario::with_estimate), only the top
    /// `ceil(frac × n)` by estimate are simulated (ties and order broken
    /// by declaration position, so the selection is deterministic); cells
    /// without an estimate always run. Results come back in declaration
    /// order, `None` marking pruned cells.
    ///
    /// An executed cell runs the *identical* closure `run` would have run,
    /// so its result is byte-identical to the full sweep's — the property
    /// `tests/estimate_prune.rs` pins.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any executed cell.
    pub fn run_pruned_frac<T: Send>(
        &self,
        cells: Vec<Scenario<'_, T>>,
        frac: f64,
    ) -> Vec<Option<T>> {
        let frac = frac.clamp(0.0, 1.0);
        let n = cells.len();
        // Rank the estimated cells (descending estimate, declaration
        // order breaking ties) and keep the top fraction.
        let mut ranked: Vec<(usize, f64)> = cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.estimate().map(|e| (i, e)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let keep_count = (frac * ranked.len() as f64).ceil() as usize;
        let mut keep = vec![false; n];
        for (i, _) in ranked.iter().take(keep_count) {
            keep[*i] = true;
        }
        let mut selected = Vec::new();
        let mut positions = Vec::new();
        for (i, c) in cells.into_iter().enumerate() {
            if c.estimate().is_none() || keep[i] {
                selected.push(c);
                positions.push(i);
            }
        }
        let results = self.run(selected);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (pos, value) in positions.into_iter().zip(results) {
            out[pos] = Some(value);
        }
        out
    }

    /// [`Runner::run_pruned_frac`] with the fraction taken from
    /// `XCACHE_ESTIMATE_FRAC` (see [`estimate_frac_from_env`]); without it
    /// every cell runs.
    pub fn run_pruned<T: Send>(&self, cells: Vec<Scenario<'_, T>>) -> Vec<Option<T>> {
        let frac = estimate_frac_from_env().unwrap_or(1.0);
        self.run_pruned_frac(cells, frac)
    }
}

// ---------------------------------------------------------------------------
// Checkpointed execution: the durable-sweep path the scenario service
// (`crates/serve`) builds on.
// ---------------------------------------------------------------------------

/// One cell of a *checkpointed* sweep.
///
/// Unlike [`Scenario`], the closure is `Fn` (an attempt that times out,
/// panics, or returns an error can be retried) and the result is a JSON
/// payload string (cell results must serialize into the sweep journal).
/// Simulations are deterministic, so a retried attempt reproduces the
/// original payload byte for byte.
pub struct Cell<'a> {
    label: String,
    run: Box<dyn Fn() -> Result<String, String> + Send + Sync + 'a>,
}

impl<'a> Cell<'a> {
    /// Declares a restartable cell.
    pub fn new(
        label: impl Into<String>,
        run: impl Fn() -> Result<String, String> + Send + Sync + 'a,
    ) -> Self {
        Cell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The cell's label — the journal key, unique within a sweep.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Terminal (or not-yet-terminal) state of one checkpointed cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CellStatus {
    /// The cell completed; the payload is its JSON result.
    Done(String),
    /// Every attempt failed; the reason is a structured description of
    /// the last failure. A failed cell does not poison the sweep.
    Failed(String),
    /// The cell was never completed this run (cancelled before it was
    /// claimed, or its last attempt was interrupted by a drain). Pending
    /// cells are *not* committed to the store, so a resumed run
    /// re-executes them.
    Pending,
}

/// Cell-granular result of a checkpointed run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellOutcome {
    /// Declaration position in the sweep grid.
    pub index: usize,
    /// The cell's label.
    pub label: String,
    /// Terminal state.
    pub status: CellStatus,
    /// Attempts made *by this process* (0 when reused from the store).
    pub attempts: u32,
    /// `true` when the result was replayed from the store instead of
    /// executed — the resume path.
    pub reused: bool,
}

impl CellOutcome {
    /// Whether the cell reached a terminal state (done or failed).
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        !matches!(self.status, CellStatus::Pending)
    }
}

/// Durable completion log a checkpointed run replays from and commits
/// to. Implementations must make [`commit`](CheckpointStore::commit)
/// durable before returning (the service's journal fsyncs); [`MemStore`]
/// is the in-memory stand-in for tests and overhead measurement.
pub trait CheckpointStore: Sync {
    /// The already-recorded terminal result for `label`, if any:
    /// `Ok(payload)` for a completed cell, `Err(reason)` for one that
    /// exhausted its retries in a previous run.
    fn lookup(&self, label: &str) -> Option<Result<String, String>>;

    /// Durably records a terminal outcome. Called at most once per cell
    /// per run, before the result is published to the caller.
    fn commit(&self, outcome: &CellOutcome);

    /// Streaming hook: an attempt on `label` is starting.
    fn started(&self, _index: usize, _label: &str, _attempt: u32) {}
}

/// An in-memory [`CheckpointStore`]: a plain map, no durability. Used by
/// tests and by the checkpoint-overhead benchmark as the zero-cost
/// reference.
#[derive(Default)]
pub struct MemStore {
    cells: Mutex<std::collections::HashMap<String, Result<String, String>>>,
}

impl MemStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-populates a completed cell (simulating a previous run).
    pub fn preload(&self, label: &str, result: Result<String, String>) {
        self.cells
            .lock()
            .expect("mem store lock")
            .insert(label.to_owned(), result);
    }
}

impl CheckpointStore for MemStore {
    fn lookup(&self, label: &str) -> Option<Result<String, String>> {
        self.cells
            .lock()
            .expect("mem store lock")
            .get(label)
            .cloned()
    }

    fn commit(&self, outcome: &CellOutcome) {
        let result = match &outcome.status {
            CellStatus::Done(p) => Ok(p.clone()),
            CellStatus::Failed(r) => Err(r.clone()),
            CellStatus::Pending => return,
        };
        self.cells
            .lock()
            .expect("mem store lock")
            .insert(outcome.label.clone(), result);
    }
}

/// Per-cell robustness policy for a checkpointed run.
#[derive(Debug, Clone, Copy)]
pub struct CheckpointPolicy {
    /// Extra attempts after the first (so `retries = 2` means up to
    /// three executions).
    pub retries: u32,
    /// Base backoff between attempts; doubles per retry, capped at 5 s.
    pub backoff_ms: u64,
    /// Wall-clock deadline per attempt (`XCACHE_CELL_TIMEOUT_MS` in the
    /// service). `None` = unbounded. The deadline is host-level only: it
    /// never reaches into the simulation, whose own liveness guard is
    /// the cycle watchdog.
    pub timeout_ms: Option<u64>,
}

impl Default for CheckpointPolicy {
    fn default() -> Self {
        CheckpointPolicy {
            retries: 2,
            backoff_ms: 50,
            timeout_ms: None,
        }
    }
}

/// Renders a panic payload into the structured failure reason.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("cell panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("cell panicked: {s}")
    } else {
        "cell panicked".into()
    }
}

impl Runner {
    /// Runs a sweep with durable per-cell checkpointing: cells already
    /// terminal in `store` are replayed without execution; the rest run
    /// across the worker pool with per-attempt wall deadlines, bounded
    /// retry with exponential backoff, and panic containment. Terminal
    /// outcomes are committed to `store` *before* being published, so a
    /// process killed at any instant resumes by re-running exactly the
    /// cells whose completion never reached the store.
    ///
    /// Setting `cancel` drains the run: in-flight attempts finish (and
    /// commit), unclaimed cells come back [`CellStatus::Pending`].
    ///
    /// Results arrive in declaration order regardless of scheduling, so
    /// an output assembled from them — or from the store — is
    /// byte-identical to an uninterrupted run's.
    pub fn run_with_checkpoint(
        &self,
        cells: Vec<Cell<'_>>,
        store: &dyn CheckpointStore,
        policy: &CheckpointPolicy,
        cancel: &AtomicBool,
    ) -> Vec<CellOutcome> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::mpsc;
        use std::sync::Arc;
        use std::time::Duration;

        let _ = crate::start_instant();
        let n = cells.len();
        let jobs = self.jobs.min(n.max(1));
        let labels: Vec<String> = cells.iter().map(|c| c.label().to_owned()).collect();
        let tasks: Vec<Mutex<Option<Cell<'_>>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let slots: Vec<Mutex<Option<CellOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);

        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    if cancel.load(Ordering::SeqCst) {
                        break;
                    }
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = Arc::new(
                        tasks[i]
                            .lock()
                            .expect("task lock")
                            .take()
                            .expect("each cell is claimed once"),
                    );
                    let label = cell.label().to_owned();

                    // Resume path: a terminal result in the store is
                    // authoritative; never re-execute.
                    if let Some(prior) = store.lookup(&label) {
                        let status = match prior {
                            Ok(p) => CellStatus::Done(p),
                            Err(r) => CellStatus::Failed(r),
                        };
                        *slots[i].lock().expect("slot lock") = Some(CellOutcome {
                            index: i,
                            label,
                            status,
                            attempts: 0,
                            reused: true,
                        });
                        continue;
                    }

                    let mut attempts = 0u32;
                    let mut outcome: Option<CellOutcome> = None;
                    while attempts <= policy.retries {
                        attempts += 1;
                        store.started(i, &label, attempts);
                        let result = match policy.timeout_ms {
                            None => {
                                let cell = Arc::clone(&cell);
                                catch_unwind(AssertUnwindSafe(move || (cell.run)()))
                                    .unwrap_or_else(|p| Err(panic_reason(p)))
                            }
                            Some(ms) => {
                                // The attempt runs on its own thread so a
                                // wall-clock overrun can be abandoned; the
                                // Arc keeps the cell alive for any
                                // straggler still executing.
                                let (tx, rx) = mpsc::channel();
                                let runner = Arc::clone(&cell);
                                s.spawn(move || {
                                    let r = catch_unwind(AssertUnwindSafe(|| (runner.run)()))
                                        .unwrap_or_else(|p| Err(panic_reason(p)));
                                    let _ = tx.send(r);
                                });
                                match rx.recv_timeout(Duration::from_millis(ms)) {
                                    Ok(r) => r,
                                    Err(_) => {
                                        Err(format!("cell deadline exceeded ({ms} ms wall clock)"))
                                    }
                                }
                            }
                        };
                        match result {
                            Ok(payload) => {
                                outcome = Some(CellOutcome {
                                    index: i,
                                    label: label.clone(),
                                    status: CellStatus::Done(payload),
                                    attempts,
                                    reused: false,
                                });
                                break;
                            }
                            Err(reason) => {
                                if attempts > policy.retries {
                                    outcome = Some(CellOutcome {
                                        index: i,
                                        label: label.clone(),
                                        status: CellStatus::Failed(format!(
                                            "{reason} (after {attempts} attempts)"
                                        )),
                                        attempts,
                                        reused: false,
                                    });
                                    break;
                                }
                                if cancel.load(Ordering::SeqCst) {
                                    // Drain requested mid-retry: leave the
                                    // cell pending (uncommitted) so the
                                    // resumed run re-executes it.
                                    break;
                                }
                                let backoff = policy
                                    .backoff_ms
                                    .saturating_mul(1 << (attempts - 1).min(16))
                                    .min(5_000);
                                std::thread::sleep(Duration::from_millis(backoff));
                            }
                        }
                    }
                    if let Some(out) = outcome {
                        // Durability before visibility: the store commit
                        // (journal append + fsync) happens before the
                        // result is published.
                        store.commit(&out);
                        *slots[i].lock().expect("slot lock") = Some(out);
                    }
                });
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                m.into_inner()
                    .expect("slot lock")
                    .unwrap_or_else(|| CellOutcome {
                        index: i,
                        label: labels[i].clone(),
                        status: CellStatus::Pending,
                        attempts: 0,
                        reused: false,
                    })
            })
            .collect()
    }
}

/// Merges per-cell counter snapshots into one suite-level snapshot
/// (counters add; derived histogram counters add too, which keeps
/// `.sum`/`.count` meaningful while `.p50`-style entries become sums —
/// use the per-cell snapshots for percentiles).
pub fn merge_snapshots<'a, I>(snaps: I) -> StatsSnapshot
where
    I: IntoIterator<Item = &'a StatsSnapshot>,
{
    let mut out = StatsSnapshot::default();
    for s in snaps {
        for (k, v) in &s.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic, order-sensitive per-cell computation: a SplitMix64
    /// chain seeded by the cell parameter.
    fn chain(seed: u64, steps: u64) -> u64 {
        let mut x = seed;
        let mut acc = 0u64;
        for _ in 0..steps {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            acc = acc.wrapping_add(z ^ (z >> 31));
        }
        acc
    }

    fn grid<'a>() -> Vec<Scenario<'a, Vec<String>>> {
        (0..16u64)
            .map(|i| {
                Scenario::new(format!("cell {i}"), move || {
                    vec![i.to_string(), chain(i, 10_000 + i * 997).to_string()]
                })
            })
            .collect()
    }

    #[test]
    fn results_follow_declaration_order() {
        let rows = Runner::with_jobs(4).run(grid());
        assert_eq!(rows.len(), 16);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], i.to_string());
        }
    }

    #[test]
    fn parallel_equals_sequential_byte_for_byte() {
        let seq = Runner::with_jobs(1).run(grid());
        let par = Runner::with_jobs(8).run(grid());
        assert_eq!(seq, par);
        // The rendered artefacts are identical too.
        let headers = ["cell", "value"];
        assert_eq!(
            crate::render_table(&headers, &seq),
            crate::render_table(&headers, &par)
        );
    }

    #[test]
    fn cells_may_borrow_shared_state() {
        let shared: Vec<u64> = (1..=100).collect();
        let cells: Vec<Scenario<'_, u64>> = (0..8usize)
            .map(|i| {
                Scenario::new(format!("sum {i}"), {
                    let shared = &shared;
                    move || shared.iter().skip(i).sum()
                })
            })
            .collect();
        let sums = Runner::with_jobs(3).run(cells);
        assert_eq!(sums[0], 5050);
        assert!(sums.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn jobs_clamp_to_one() {
        assert_eq!(Runner::with_jobs(0).jobs(), 1);
    }

    #[test]
    fn merge_snapshots_adds_counters() {
        let mut a = StatsSnapshot::default();
        a.counters.insert("x".into(), 3);
        a.counters.insert("y".into(), 1);
        let mut b = StatsSnapshot::default();
        b.counters.insert("x".into(), 4);
        let m = merge_snapshots([&a, &b]);
        assert_eq!(m.get("x"), 7);
        assert_eq!(m.get("y"), 1);
    }

    #[test]
    fn labels_are_kept() {
        let s = Scenario::new("hello", || 1u32);
        assert_eq!(s.label(), "hello");
        assert_eq!(s.estimate(), None);
        assert_eq!(s.with_estimate(0.5).estimate(), Some(0.5));
    }

    #[test]
    fn pruning_keeps_top_fraction_and_unestimated_cells() {
        let grid = || {
            vec![
                Scenario::new("low", || 1u32).with_estimate(1.0),
                Scenario::new("no-estimate", || 2u32),
                Scenario::new("high", || 3u32).with_estimate(9.0),
                Scenario::new("mid", || 4u32).with_estimate(5.0),
            ]
        };
        // frac 0.34 of 3 estimated cells -> ceil(1.02) = 2 kept.
        let pruned = Runner::with_jobs(2).run_pruned_frac(grid(), 0.34);
        assert_eq!(pruned, vec![None, Some(2), Some(3), Some(4)]);
        // frac 1.0 runs everything and matches a plain run.
        let full = Runner::with_jobs(2).run_pruned_frac(grid(), 1.0);
        assert_eq!(full, vec![Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn checkpoint_run_commits_and_orders_results() {
        let store = MemStore::new();
        let cells: Vec<Cell<'_>> = (0..6u64)
            .map(|i| {
                Cell::new(format!("c{i}"), move || {
                    Ok(format!("{{\"v\":{}}}", chain(i, 500)))
                })
            })
            .collect();
        let outcomes = Runner::with_jobs(3).run_with_checkpoint(
            cells,
            &store,
            &CheckpointPolicy::default(),
            &AtomicBool::new(false),
        );
        assert_eq!(outcomes.len(), 6);
        for (i, o) in outcomes.iter().enumerate() {
            assert_eq!(o.index, i);
            assert_eq!(o.label, format!("c{i}"));
            assert_eq!(o.attempts, 1);
            assert!(!o.reused);
            assert_eq!(
                o.status,
                CellStatus::Done(format!("{{\"v\":{}}}", chain(i as u64, 500)))
            );
            assert_eq!(
                store.lookup(&o.label),
                Some(Ok(format!("{{\"v\":{}}}", chain(i as u64, 500))))
            );
        }
    }

    #[test]
    fn checkpoint_resume_skips_completed_cells() {
        let store = MemStore::new();
        store.preload("c0", Ok("{\"v\":0}".into()));
        store.preload("c2", Err("prior failure".into()));
        let executed = AtomicUsize::new(0);
        let cells: Vec<Cell<'_>> = (0..4)
            .map(|i| {
                let executed = &executed;
                Cell::new(format!("c{i}"), move || {
                    executed.fetch_add(1, Ordering::SeqCst);
                    Ok(format!("{{\"v\":{i}}}"))
                })
            })
            .collect();
        let outcomes = Runner::with_jobs(2).run_with_checkpoint(
            cells,
            &store,
            &CheckpointPolicy::default(),
            &AtomicBool::new(false),
        );
        // Only the two cells absent from the store executed.
        assert_eq!(executed.load(Ordering::SeqCst), 2);
        assert!(outcomes[0].reused && outcomes[2].reused);
        assert_eq!(outcomes[0].status, CellStatus::Done("{\"v\":0}".into()));
        assert_eq!(
            outcomes[2].status,
            CellStatus::Failed("prior failure".into())
        );
        assert_eq!(outcomes[1].status, CellStatus::Done("{\"v\":1}".into()));
        assert_eq!(outcomes[3].status, CellStatus::Done("{\"v\":3}".into()));
    }

    #[test]
    fn checkpoint_retries_then_succeeds_and_exhausts() {
        let store = MemStore::new();
        let flaky_calls = AtomicUsize::new(0);
        let cells = vec![
            Cell::new("flaky", || {
                if flaky_calls.fetch_add(1, Ordering::SeqCst) < 2 {
                    Err("transient".into())
                } else {
                    Ok("{\"ok\":true}".into())
                }
            }),
            Cell::new("hopeless", || Err("always broken".into())),
            Cell::new("panicky", || panic!("boom {}", 42)),
        ];
        let policy = CheckpointPolicy {
            retries: 2,
            backoff_ms: 1,
            timeout_ms: None,
        };
        let outcomes = Runner::with_jobs(1).run_with_checkpoint(
            cells,
            &store,
            &policy,
            &AtomicBool::new(false),
        );
        assert_eq!(outcomes[0].status, CellStatus::Done("{\"ok\":true}".into()));
        assert_eq!(outcomes[0].attempts, 3);
        match &outcomes[1].status {
            CellStatus::Failed(r) => {
                assert!(r.contains("always broken"), "{r}");
                assert!(r.contains("3 attempts"), "{r}");
            }
            other => panic!("expected failure, got {other:?}"),
        }
        match &outcomes[2].status {
            CellStatus::Failed(r) => {
                assert!(r.contains("panicked") && r.contains("boom 42"), "{r}")
            }
            other => panic!("expected failure, got {other:?}"),
        }
        // Failures are committed too — a resumed run must not retry a
        // cell that already exhausted its budget.
        assert!(store.lookup("hopeless").unwrap().is_err());
    }

    #[test]
    fn checkpoint_deadline_fails_slow_cells() {
        let store = MemStore::new();
        let cells = vec![
            Cell::new("slow", || {
                std::thread::sleep(std::time::Duration::from_millis(400));
                Ok("{}".into())
            }),
            Cell::new("fast", || Ok("{\"fast\":1}".into())),
        ];
        let policy = CheckpointPolicy {
            retries: 0,
            backoff_ms: 1,
            timeout_ms: Some(40),
        };
        let outcomes = Runner::with_jobs(2).run_with_checkpoint(
            cells,
            &store,
            &policy,
            &AtomicBool::new(false),
        );
        match &outcomes[0].status {
            CellStatus::Failed(r) => assert!(r.contains("deadline exceeded"), "{r}"),
            other => panic!("expected deadline failure, got {other:?}"),
        }
        assert_eq!(outcomes[1].status, CellStatus::Done("{\"fast\":1}".into()));
    }

    #[test]
    fn checkpoint_cancel_leaves_unclaimed_cells_pending() {
        let store = MemStore::new();
        let cancel = AtomicBool::new(false);
        let cells: Vec<Cell<'_>> = (0..5)
            .map(|i| {
                let cancel = &cancel;
                Cell::new(format!("c{i}"), move || {
                    // The first executed cell requests a drain; in-flight
                    // work still completes and commits.
                    cancel.store(true, Ordering::SeqCst);
                    Ok(format!("{{\"v\":{i}}}"))
                })
            })
            .collect();
        let outcomes = Runner::with_jobs(1).run_with_checkpoint(
            cells,
            &store,
            &CheckpointPolicy::default(),
            &cancel,
        );
        assert_eq!(outcomes[0].status, CellStatus::Done("{\"v\":0}".into()));
        assert!(store.lookup("c0").is_some());
        for o in &outcomes[1..] {
            assert_eq!(o.status, CellStatus::Pending, "{}", o.label);
            assert!(store.lookup(&o.label).is_none());
        }
    }

    #[test]
    fn pruning_breaks_estimate_ties_by_declaration_order() {
        let grid = vec![
            Scenario::new("a", || 1u32).with_estimate(5.0),
            Scenario::new("b", || 2u32).with_estimate(5.0),
            Scenario::new("c", || 3u32).with_estimate(5.0),
        ];
        let pruned = Runner::with_jobs(1).run_pruned_frac(grid, 0.5);
        assert_eq!(pruned, vec![Some(1), Some(2), None]);
    }
}
