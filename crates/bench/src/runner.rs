//! The parallel scenario runner every experiment binary routes through.
//!
//! A figure or table is a *grid* of independent cells: each cell runs one
//! (deterministic, single-threaded) simulation and produces a row, a
//! report, or a cycle count. Binaries declare the grid as a list of
//! [`Scenario`]s; the [`Runner`] executes the cells — in parallel across
//! `XCACHE_JOBS` worker threads — and returns the results *in declaration
//! order*, so the rendered tables and JSON dumps are byte-identical
//! whatever the job count or completion order.
//!
//! Parallelism lives only here, between cells. No simulation is ever
//! split across threads, so per-cell results are bit-exact regardless of
//! scheduling.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use xcache_sim::StatsSnapshot;

/// One cell of an experiment grid: a label (for progress reporting) and
/// the closure that computes it.
///
/// The closure may borrow from the enclosing scope (shared workloads are
/// built once and borrowed by every cell); the runner executes it on a
/// scoped worker thread.
pub struct Scenario<'a, T> {
    label: String,
    run: Box<dyn FnOnce() -> T + Send + 'a>,
    estimate: Option<f64>,
}

impl<'a, T> Scenario<'a, T> {
    /// Declares a cell.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> T + Send + 'a) -> Self {
        Scenario {
            label: label.into(),
            run: Box::new(run),
            estimate: None,
        }
    }

    /// Attaches an analytical interest estimate (higher = more worth
    /// simulating); [`Runner::run_pruned`] ranks cells by it. Typically an
    /// `xcache-oracle` prediction — e.g. the predicted miss count of the
    /// cell's access stream. Cells without an estimate always run.
    #[must_use]
    pub fn with_estimate(mut self, estimate: f64) -> Self {
        self.estimate = Some(estimate);
        self
    }

    /// The cell's estimate, if one was attached.
    #[must_use]
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }

    /// The cell's label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Worker-thread count from `XCACHE_JOBS`.
///
/// Defaults to the machine's available parallelism; invalid or zero
/// values fall back to the default. `XCACHE_JOBS=1` forces sequential
/// in-thread execution.
#[must_use]
pub fn jobs_from_env() -> usize {
    std::env::var("XCACHE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&v| v >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Executes a grid of [`Scenario`]s across a pool of worker threads.
pub struct Runner {
    jobs: usize,
}

impl Default for Runner {
    fn default() -> Self {
        Self::from_env()
    }
}

impl Runner {
    /// A runner sized by `XCACHE_JOBS` (see [`jobs_from_env`]).
    #[must_use]
    pub fn from_env() -> Self {
        Self::with_jobs(jobs_from_env())
    }

    /// A runner with an explicit worker count (clamped to at least 1).
    #[must_use]
    pub fn with_jobs(jobs: usize) -> Self {
        Runner { jobs: jobs.max(1) }
    }

    /// The worker count this runner was built with.
    #[must_use]
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs every cell and returns the results in declaration order.
    ///
    /// With one job the cells run inline on the calling thread; otherwise
    /// scoped workers pull cells from a shared index and store results by
    /// cell position, so the output order never depends on scheduling.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any cell.
    pub fn run<T: Send>(&self, cells: Vec<Scenario<'_, T>>) -> Vec<T> {
        // Anchor the meta envelope's wall clock no later than the first
        // grid execution.
        let _ = crate::start_instant();
        let n = cells.len();
        let verbose = std::env::var("XCACHE_VERBOSE").is_ok();
        let jobs = self.jobs.min(n.max(1));
        if jobs <= 1 {
            return cells
                .into_iter()
                .enumerate()
                .map(|(i, c)| {
                    if verbose {
                        eprintln!("[runner] {}/{n} {}", i + 1, c.label);
                    }
                    (c.run)()
                })
                .collect();
        }
        let tasks: Vec<Mutex<Option<Scenario<'_, T>>>> =
            cells.into_iter().map(|c| Mutex::new(Some(c))).collect();
        let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..jobs {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let cell = tasks[i]
                        .lock()
                        .expect("task lock")
                        .take()
                        .expect("each cell is claimed once");
                    if verbose {
                        eprintln!("[runner] {}/{n} {}", i + 1, cell.label);
                    }
                    let value = (cell.run)();
                    *slots[i].lock().expect("slot lock") = Some(value);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("every cell completed")
            })
            .collect()
    }
}

/// The sweep-pruning fraction from `XCACHE_ESTIMATE_FRAC`, if set.
///
/// Values are clamped to `(0, 1]`; unset, unparsable, or non-positive
/// values mean "run everything".
#[must_use]
pub fn estimate_frac_from_env() -> Option<f64> {
    std::env::var("XCACHE_ESTIMATE_FRAC")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|f| f.is_finite() && *f > 0.0)
        .map(|f| f.min(1.0))
}

impl Runner {
    /// [`Runner::run`] with oracle-guided sweep pruning: among the cells
    /// carrying an [`estimate`](Scenario::with_estimate), only the top
    /// `ceil(frac × n)` by estimate are simulated (ties and order broken
    /// by declaration position, so the selection is deterministic); cells
    /// without an estimate always run. Results come back in declaration
    /// order, `None` marking pruned cells.
    ///
    /// An executed cell runs the *identical* closure `run` would have run,
    /// so its result is byte-identical to the full sweep's — the property
    /// `tests/estimate_prune.rs` pins.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any executed cell.
    pub fn run_pruned_frac<T: Send>(
        &self,
        cells: Vec<Scenario<'_, T>>,
        frac: f64,
    ) -> Vec<Option<T>> {
        let frac = frac.clamp(0.0, 1.0);
        let n = cells.len();
        // Rank the estimated cells (descending estimate, declaration
        // order breaking ties) and keep the top fraction.
        let mut ranked: Vec<(usize, f64)> = cells
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.estimate().map(|e| (i, e)))
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        let keep_count = (frac * ranked.len() as f64).ceil() as usize;
        let mut keep = vec![false; n];
        for (i, _) in ranked.iter().take(keep_count) {
            keep[*i] = true;
        }
        let mut selected = Vec::new();
        let mut positions = Vec::new();
        for (i, c) in cells.into_iter().enumerate() {
            if c.estimate().is_none() || keep[i] {
                selected.push(c);
                positions.push(i);
            }
        }
        let results = self.run(selected);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for (pos, value) in positions.into_iter().zip(results) {
            out[pos] = Some(value);
        }
        out
    }

    /// [`Runner::run_pruned_frac`] with the fraction taken from
    /// `XCACHE_ESTIMATE_FRAC` (see [`estimate_frac_from_env`]); without it
    /// every cell runs.
    pub fn run_pruned<T: Send>(&self, cells: Vec<Scenario<'_, T>>) -> Vec<Option<T>> {
        let frac = estimate_frac_from_env().unwrap_or(1.0);
        self.run_pruned_frac(cells, frac)
    }
}

/// Merges per-cell counter snapshots into one suite-level snapshot
/// (counters add; derived histogram counters add too, which keeps
/// `.sum`/`.count` meaningful while `.p50`-style entries become sums —
/// use the per-cell snapshots for percentiles).
pub fn merge_snapshots<'a, I>(snaps: I) -> StatsSnapshot
where
    I: IntoIterator<Item = &'a StatsSnapshot>,
{
    let mut out = StatsSnapshot::default();
    for s in snaps {
        for (k, v) in &s.counters {
            *out.counters.entry(k.clone()).or_insert(0) += v;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic, order-sensitive per-cell computation: a SplitMix64
    /// chain seeded by the cell parameter.
    fn chain(seed: u64, steps: u64) -> u64 {
        let mut x = seed;
        let mut acc = 0u64;
        for _ in 0..steps {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            acc = acc.wrapping_add(z ^ (z >> 31));
        }
        acc
    }

    fn grid<'a>() -> Vec<Scenario<'a, Vec<String>>> {
        (0..16u64)
            .map(|i| {
                Scenario::new(format!("cell {i}"), move || {
                    vec![i.to_string(), chain(i, 10_000 + i * 997).to_string()]
                })
            })
            .collect()
    }

    #[test]
    fn results_follow_declaration_order() {
        let rows = Runner::with_jobs(4).run(grid());
        assert_eq!(rows.len(), 16);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row[0], i.to_string());
        }
    }

    #[test]
    fn parallel_equals_sequential_byte_for_byte() {
        let seq = Runner::with_jobs(1).run(grid());
        let par = Runner::with_jobs(8).run(grid());
        assert_eq!(seq, par);
        // The rendered artefacts are identical too.
        let headers = ["cell", "value"];
        assert_eq!(
            crate::render_table(&headers, &seq),
            crate::render_table(&headers, &par)
        );
    }

    #[test]
    fn cells_may_borrow_shared_state() {
        let shared: Vec<u64> = (1..=100).collect();
        let cells: Vec<Scenario<'_, u64>> = (0..8usize)
            .map(|i| {
                Scenario::new(format!("sum {i}"), {
                    let shared = &shared;
                    move || shared.iter().skip(i).sum()
                })
            })
            .collect();
        let sums = Runner::with_jobs(3).run(cells);
        assert_eq!(sums[0], 5050);
        assert!(sums.windows(2).all(|w| w[0] > w[1]));
    }

    #[test]
    fn jobs_clamp_to_one() {
        assert_eq!(Runner::with_jobs(0).jobs(), 1);
    }

    #[test]
    fn merge_snapshots_adds_counters() {
        let mut a = StatsSnapshot::default();
        a.counters.insert("x".into(), 3);
        a.counters.insert("y".into(), 1);
        let mut b = StatsSnapshot::default();
        b.counters.insert("x".into(), 4);
        let m = merge_snapshots([&a, &b]);
        assert_eq!(m.get("x"), 7);
        assert_eq!(m.get("y"), 1);
    }

    #[test]
    fn labels_are_kept() {
        let s = Scenario::new("hello", || 1u32);
        assert_eq!(s.label(), "hello");
        assert_eq!(s.estimate(), None);
        assert_eq!(s.with_estimate(0.5).estimate(), Some(0.5));
    }

    #[test]
    fn pruning_keeps_top_fraction_and_unestimated_cells() {
        let grid = || {
            vec![
                Scenario::new("low", || 1u32).with_estimate(1.0),
                Scenario::new("no-estimate", || 2u32),
                Scenario::new("high", || 3u32).with_estimate(9.0),
                Scenario::new("mid", || 4u32).with_estimate(5.0),
            ]
        };
        // frac 0.34 of 3 estimated cells -> ceil(1.02) = 2 kept.
        let pruned = Runner::with_jobs(2).run_pruned_frac(grid(), 0.34);
        assert_eq!(pruned, vec![None, Some(2), Some(3), Some(4)]);
        // frac 1.0 runs everything and matches a plain run.
        let full = Runner::with_jobs(2).run_pruned_frac(grid(), 1.0);
        assert_eq!(full, vec![Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn pruning_breaks_estimate_ties_by_declaration_order() {
        let grid = vec![
            Scenario::new("a", || 1u32).with_estimate(5.0),
            Scenario::new("b", || 2u32).with_estimate(5.0),
            Scenario::new("c", || 3u32).with_estimate(5.0),
        ];
        let pruned = Runner::with_jobs(1).run_pruned_frac(grid, 0.5);
        assert_eq!(pruned, vec![Some(1), Some(2), None]);
    }
}
