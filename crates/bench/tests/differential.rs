//! Differential tests for idle-cycle fast-forwarding: every observable of
//! a run — end cycle, result checksum, all counters, and the
//! histogram-derived statistics — must be byte-identical with skipping on
//! and off. The scenarios mirror the Figure 4 (load-to-use) and Figure 7
//! (occupancy sweep) harness cells at reduced scale.
//!
//! `with_skip` is thread-local, so every scenario closure runs directly on
//! the test thread — never through the multi-threaded `Runner`.

use xcache_bench::{widx_geometry, widx_workload};
use xcache_core::{WalkerDiscipline, XCacheConfig};
use xcache_dsa::{graphpulse, spgemm, widx, RunReport};
use xcache_sim::with_skip;
use xcache_workloads::QueryClass;

/// Runs `f` once with fast-forwarding and once without, and asserts the
/// reports agree on every observable.
fn assert_skip_invariant(label: &str, f: impl Fn() -> RunReport) {
    let fast = with_skip(true, &f);
    let slow = with_skip(false, &f);
    assert_eq!(
        fast.cycles, slow.cycles,
        "{label}: end cycle diverged (skip {} vs no-skip {})",
        fast.cycles, slow.cycles
    );
    assert_eq!(fast.checksum, slow.checksum, "{label}: checksum diverged");
    assert_eq!(fast.label, slow.label, "{label}: outcome label diverged");
    for (name, fast_v) in &fast.stats.counters {
        let slow_v = slow.stats.get(name);
        assert_eq!(
            *fast_v, slow_v,
            "{label}: counter {name} diverged (skip {fast_v} vs no-skip {slow_v})"
        );
    }
    assert_eq!(
        fast.stats.counters, slow.stats.counters,
        "{label}: counter sets diverged"
    );
}

/// A Figure 4-sized Widx workload small enough for a test.
fn small_widx(class: QueryClass) -> widx::WidxWorkload {
    let mut preset = class.preset().scaled_down(400);
    preset.probes = 400;
    widx::WidxWorkload::from_preset(&preset, 7)
}

#[test]
fn fig04_widx_xcache_skip_invariant() {
    for class in QueryClass::all() {
        let w = small_widx(class);
        let g = widx_geometry(40);
        assert_skip_invariant(class.name(), || widx::run_xcache(&w, Some(g.clone())));
    }
}

#[test]
fn fig04_widx_address_cache_skip_invariant() {
    let w = small_widx(QueryClass::Q19);
    let g = widx_geometry(40);
    assert_skip_invariant("Q19 addr", || widx::run_address_cache(&w, Some(g.clone())));
}

#[test]
fn fig04_spgemm_skip_invariant() {
    let a = xcache_workloads::CsrMatrix::generate(
        96,
        96,
        700,
        xcache_workloads::SparsePattern::RMat,
        11,
    );
    let w = spgemm::SpgemmWorkload {
        b: a.clone(),
        a,
        algorithm: spgemm::Algorithm::Gustavson,
    };
    let g = XCacheConfig {
        sets: 32,
        ways: 4,
        active: 8,
        exe: 4,
        data_sectors: 512,
        ..XCacheConfig::sparch()
    };
    assert_skip_invariant("Gamma rows", || spgemm::run_xcache(&w, Some(g.clone())));
    assert_skip_invariant("Gamma rows addr", || {
        spgemm::run_address_cache(&w, Some(g.clone()))
    });
}

#[test]
fn fig07_occupancy_sweep_skip_invariant() {
    let w = widx_workload(QueryClass::Q22, 400, 7);
    let keys = w.index.len();
    // The sweep's extremes: mostly-resident and mostly-off-chip.
    for offchip_pct in [20u32, 95] {
        let resident = (keys as u64 * u64::from(100 - offchip_pct) / 100).max(16);
        let sets = 128usize;
        let ways = (resident as usize / sets).max(1);
        for discipline in [
            WalkerDiscipline::Coroutine,
            WalkerDiscipline::BlockingThread,
        ] {
            let g = XCacheConfig {
                sets,
                ways,
                data_sectors: (sets * ways).max(64),
                discipline,
                ..XCacheConfig::widx()
            };
            let label = format!("{offchip_pct}% {discipline:?}");
            assert_skip_invariant(&label, || widx::run_xcache(&w, Some(g.clone())));
        }
    }
}

#[test]
fn graphpulse_skip_invariant() {
    let w = graphpulse::GraphPulseWorkload {
        graph: xcache_workloads::Graph::from_adjacency(xcache_workloads::CsrMatrix::generate(
            128,
            128,
            512,
            xcache_workloads::SparsePattern::RMat,
            5,
        )),
        iterations: 2,
    };
    let sets = 256usize;
    let g = XCacheConfig {
        sets,
        ways: 1,
        data_sectors: sets,
        ..XCacheConfig::graphpulse()
    };
    assert_skip_invariant("GraphPulse", || graphpulse::run_xcache(&w, Some(g.clone())));
    assert_skip_invariant("GraphPulse addr", || {
        graphpulse::run_address_cache(&w, Some(g.clone()))
    });
}
