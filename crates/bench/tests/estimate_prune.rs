//! Regression: an oracle-pruned sweep must be byte-identical to the full
//! sweep on every cell both executed — pruning may *skip* cells, never
//! *perturb* them.
//!
//! Cells are real pipelined fuzz simulations rendered to their canonical
//! JSON (`FuzzReport::stats_json`), ranked by the analytical oracle's
//! predicted miss count — the way `XCACHE_ESTIMATE_FRAC` is meant to be
//! used: predict every cell for microseconds, simulate only the cells the
//! model ranks interesting.

use xcache_bench::crossval::{fuzz_oracle_ops, oracle_geometry};
use xcache_bench::fuzz;
use xcache_bench::{Runner, Scenario};
use xcache_core::XCacheConfig;
use xcache_oracle::CacheModel;

const ACCESSES: usize = 64;

fn predicted_misses(seed: u64) -> f64 {
    let p = CacheModel::replay(
        oracle_geometry(&XCacheConfig::test_tiny()),
        &fuzz_oracle_ops(seed, ACCESSES),
    );
    p.misses as f64
}

fn cells() -> Vec<Scenario<'static, String>> {
    (0..6u64)
        .map(|seed| {
            Scenario::new(format!("estimate fuzz {seed}"), move || {
                fuzz::run_seed(seed, ACCESSES).stats_json()
            })
            .with_estimate(predicted_misses(seed))
        })
        .collect()
}

#[test]
fn pruned_sweep_is_byte_identical_on_shared_cells() {
    let runner = Runner::with_jobs(2);
    let full = runner.run_pruned_frac(cells(), 1.0);
    let pruned = runner.run_pruned_frac(cells(), 0.5);

    assert!(full.iter().all(Option::is_some), "frac 1.0 runs every cell");
    let ran: usize = pruned.iter().filter(|c| c.is_some()).count();
    assert_eq!(ran, 3, "frac 0.5 of 6 estimated cells keeps ceil(3)");

    for (i, (p, f)) in pruned.iter().zip(&full).enumerate() {
        if let Some(p) = p {
            assert_eq!(
                Some(p),
                f.as_ref(),
                "cell {i}: pruned and full sweeps diverged"
            );
        }
    }
}

#[test]
fn pruning_keeps_the_highest_predicted_cells() {
    let estimates: Vec<f64> = (0..6).map(predicted_misses).collect();
    let pruned = Runner::with_jobs(2).run_pruned_frac(cells(), 0.5);

    let mut ranked: Vec<usize> = (0..6).collect();
    ranked.sort_by(|&a, &b| estimates[b].partial_cmp(&estimates[a]).expect("finite"));
    for (rank, &i) in ranked.iter().enumerate() {
        assert_eq!(
            pruned[i].is_some(),
            rank < 3,
            "cell {i} (rank {rank}, estimate {}) on the wrong side of the cut",
            estimates[i]
        );
    }
}

#[test]
fn estimate_frac_env_is_parsed_and_validated() {
    use xcache_bench::runner::try_estimate_frac_from_env;
    // Sole test touching the variable, so no cross-test interference.
    std::env::set_var("XCACHE_ESTIMATE_FRAC", "0.5");
    assert_eq!(try_estimate_frac_from_env(), Ok(Some(0.5)));
    // Out-of-range and malformed values are structured errors now, not
    // silent clamps (the service rejects the job; CLIs exit 2).
    for bad in ["1.5", "0", "-0.25", "junk", "NaN"] {
        std::env::set_var("XCACHE_ESTIMATE_FRAC", bad);
        let err = try_estimate_frac_from_env().expect_err(bad);
        assert!(
            err.to_string().contains("XCACHE_ESTIMATE_FRAC"),
            "error for {bad:?} names the variable: {err}"
        );
    }
    std::env::remove_var("XCACHE_ESTIMATE_FRAC");
    assert_eq!(try_estimate_frac_from_env(), Ok(None));
}
