//! Differential tests over generated walker programs: the debug-build
//! slice of what the `fuzz_smoke` binary runs at 200 seeds in CI.
//!
//! `with_skip` is thread-local, so the skip differential runs directly on
//! the test thread; the jobs differential goes through the `Runner` at
//! both worker counts (its cells never touch `with_skip`).

use proptest::prelude::*;
use xcache_bench::fuzz::{
    exec_differential, jobs_differential, run_seed, sched_differential, skip_differential,
};

/// Seeds per in-tree test run — small enough for a debug build, spread
/// over a couple of windows so both generator shapes (hashed, store
/// handler) appear.
const SEEDS: std::ops::Range<u64> = 0..20;

#[test]
fn skip_and_step_runs_are_byte_identical() {
    for seed in SEEDS {
        skip_differential(seed, 48).unwrap();
    }
}

#[test]
fn wheel_and_scan_schedulers_are_byte_identical() {
    for seed in SEEDS {
        sched_differential(seed, 48).unwrap();
    }
}

#[test]
fn macro_and_micro_engines_are_byte_identical() {
    for seed in SEEDS {
        exec_differential(seed, 48).unwrap();
    }
}

proptest! {
    // Each case runs a generated program twice (wheel + scan), so keep the
    // case count near the deterministic seed window's size; the strategy
    // still explores seeds far outside `SEEDS` and varies the workload
    // length enough to shift which cycles the schedulers must agree on.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wheel_matches_scan_on_arbitrary_seeds(seed in any::<u64>(), accesses in 8usize..96) {
        if let Err(e) = sched_differential(seed, accesses) {
            panic!("{e}");
        }
    }

    /// Superinstruction fusion is semantics-preserving: for
    /// generator-produced verifier-clean programs, the fused macro-step
    /// engine and the unfused micro-step reference must agree on every
    /// register/memory effect — the response checksum folds every
    /// returned payload word, and the counter map folds every
    /// architectural event, so byte-equal JSON means byte-equal effects.
    #[test]
    fn fused_matches_unfused_on_arbitrary_seeds(seed in any::<u64>(), accesses in 8usize..96) {
        if let Err(e) = exec_differential(seed, accesses) {
            panic!("{e}");
        }
    }
}

#[test]
fn one_and_two_job_batches_are_byte_identical() {
    let seeds: Vec<u64> = SEEDS.collect();
    let jsons = jobs_differential(&seeds, 48).unwrap();
    assert_eq!(jsons.len(), seeds.len());
    // Each run did real work: every report carries controller counters.
    for (seed, json) in seeds.iter().zip(&jsons) {
        assert!(
            json.contains("xcache."),
            "seed {seed}: no controller counters in {json}"
        );
    }
}

#[test]
fn generated_runs_touch_the_hit_and_miss_paths() {
    // Across a window of seeds, the synthetic key stream (small universe,
    // repeated keys) must exercise both outcomes — otherwise the
    // differential is only covering the miss pipeline.
    let (mut hits, mut misses) = (0u64, 0u64);
    for seed in SEEDS {
        let r = run_seed(seed, 48);
        hits += r.stats.get("xcache.hit");
        misses += r.stats.get("xcache.miss");
    }
    assert!(hits > 0, "no meta-tag hits across the seed window");
    assert!(misses > 0, "no walker launches across the seed window");
}
