//! Smoke tests for the harness binaries that run instantly (the static
//! tables and the synthesis model): they must execute and print the
//! paper's headline values. The measurement harnesses are exercised at
//! scale by `tests/integration_dsas.rs` through their library entry
//! points; run the binaries themselves via `results/` capture.

use std::process::Command;

fn run(bin: &str) -> String {
    let out = Command::new(bin).output().expect("binary runs");
    assert!(
        out.status.success(),
        "{bin} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn tab01_prints_the_taxonomy() {
    let out = run(env!("CARGO_BIN_EXE_tab01_taxonomy"));
    assert!(out.contains("Programmable"));
    assert!(out.contains("Scratch+DMA"));
    assert!(out.contains("Meta-to-Addr"));
}

#[test]
fn tab02_prints_all_five_dsas() {
    let out = run(env!("CARGO_BIN_EXE_tab02_features"));
    for dsa in ["Widx", "DASX", "GraphPulse", "SpArch", "Gamma"] {
        assert!(out.contains(dsa), "missing {dsa}");
    }
}

#[test]
fn tab03_prints_table3_geometries() {
    let out = run(env!("CARGO_BIN_EXE_tab03_geometry"));
    assert!(out.contains("131072"), "GraphPulse sets");
    assert!(out.contains("1024"), "Widx sets");
}

#[test]
fn tab04_prints_table4_constants() {
    let out = run(env!("CARGO_BIN_EXE_tab04_energy_params"));
    assert!(out.contains("44.8"));
    assert!(out.contains("2.7"));
    assert!(out.contains("12.6"));
}

#[test]
fn fig19_reproduces_the_reference_breakdown() {
    let out = run(env!("CARGO_BIN_EXE_fig19_fpga_synthesis"));
    assert!(out.contains("X-Reg"));
    assert!(out.contains("Action Exec."));
    assert!(out.contains("3457"), "total registers");
    assert!(out.contains("6985"), "total logic");
}

#[test]
fn fig20_reproduces_the_reference_layout() {
    let out = run(env!("CARGO_BIN_EXE_fig20_asic_area"));
    assert!(out.contains("0.110"), "controller mm^2");
    assert!(out.contains("65000"), "cells");
}
