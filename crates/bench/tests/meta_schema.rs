//! Schema regression for the bench JSON meta envelope.
//!
//! Every `results/*.json` dump — and therefore every `BENCH_*.json`
//! trajectory file — carries the envelope rendered by
//! `xcache_bench::meta_json`. Downstream tooling diffs those files across
//! commits by key, so the envelope is a wire format: fields must not be
//! renamed, re-typed, or reordered silently. This test pins the exact key
//! sequence and each field's JSON shape; changing the envelope must come
//! here and bump `schema`.

use xcache_bench::meta_json;

/// Splits a flat (non-nested) JSON object into `(key, raw value)` pairs
/// in document order. The envelope is flat by construction, so a
/// comma/colon scanner outside string literals is a complete parser.
fn fields(flat: &str) -> Vec<(String, String)> {
    let inner = flat
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("envelope is a JSON object");
    let mut out = Vec::new();
    let mut depth_in_string = false;
    let mut escaped = false;
    let mut current = String::new();
    let mut parts: Vec<String> = Vec::new();
    for c in inner.chars() {
        if depth_in_string {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                depth_in_string = false;
            }
            current.push(c);
            continue;
        }
        match c {
            '"' => {
                depth_in_string = true;
                current.push(c);
            }
            ',' => {
                parts.push(std::mem::take(&mut current));
            }
            '{' | '[' => panic!("envelope must stay flat, found nesting in {flat}"),
            _ => current.push(c),
        }
    }
    parts.push(current);
    for part in parts {
        let (k, v) = part.split_once(':').expect("key:value");
        let key = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .expect("quoted key")
            .to_string();
        out.push((key, v.trim().to_string()));
    }
    out
}

fn is_json_string(v: &str) -> bool {
    v.len() >= 2 && v.starts_with('"') && v.ends_with('"')
}

fn is_unsigned_integer(v: &str) -> bool {
    !v.is_empty() && v.chars().all(|c| c.is_ascii_digit())
}

#[test]
fn meta_envelope_key_order_and_types_are_pinned() {
    let meta = meta_json("schema-probe");
    let fields = fields(&meta);

    let keys: Vec<&str> = fields.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "schema",
            "experiment",
            "scale",
            "jobs",
            "machine_factor",
            "git_sha",
            "wall_ms",
            "sim_cycles",
            "sim_cycles_per_sec",
            "parallel_fallbacks",
        ],
        "meta envelope keys drifted — bump the schema version and update \
         trajectory tooling before changing this"
    );

    let value = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .expect("key present")
    };

    assert_eq!(value("schema"), "\"xcache-bench/2\"");
    assert_eq!(value("experiment"), "\"schema-probe\"");
    assert!(is_json_string(value("git_sha")), "git_sha must be a string");
    for numeric in [
        "scale",
        "jobs",
        "wall_ms",
        "sim_cycles",
        "sim_cycles_per_sec",
        "parallel_fallbacks",
    ] {
        assert!(
            is_unsigned_integer(value(numeric)),
            "{numeric} must be an unsigned integer, got {}",
            value(numeric)
        );
    }
    // machine_factor is a fixed-point decimal with exactly three places
    // ({:.3}); trajectory diffs rely on the stable rendering.
    let mf = value("machine_factor");
    let (int_part, frac_part) = mf
        .split_once('.')
        .expect("machine_factor has a decimal point");
    assert!(is_unsigned_integer(int_part), "machine_factor integer part");
    assert_eq!(frac_part.len(), 3, "machine_factor renders {{:.3}}");
    assert!(is_unsigned_integer(frac_part), "machine_factor fraction");
}

#[test]
fn meta_envelope_escapes_experiment_names() {
    let meta = meta_json("quo\"te");
    assert!(
        meta.contains("\"experiment\":\"quo\\\"te\""),
        "experiment names must be JSON-escaped: {meta}"
    );
    // The envelope must still parse as a flat object afterwards.
    let fields = fields(&meta);
    assert_eq!(fields[1].0, "experiment");
}
