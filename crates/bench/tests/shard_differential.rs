//! Differential tests for the sharded topology: a sharded run must be
//! byte-identical across `XCACHE_PAR` execution modes, worker-thread
//! counts, and `Runner` job counts, and must keep the skip/no-skip
//! invariant end to end. The routing proptest pins [`owner_of`] down as
//! a partition of the key space, and a geometry proptest checks that
//! per-shard configs stay well-formed.
//!
//! `with_par_mode`/`with_par_threads`/`with_skip` are thread-local, so
//! cells that need an override set it *inside* the scenario closure —
//! the `Runner`'s worker threads inherit nothing from the test thread.

use proptest::prelude::*;
use xcache_bench::{widx_geometry, Runner, Scenario};
use xcache_core::{owner_of, shard_geometry, MetaKey, XCacheConfig};
use xcache_dsa::{graphpulse, spgemm, widx, RunReport};
use xcache_sim::{with_par_mode, with_par_threads, with_skip, ParMode};
use xcache_workloads::QueryClass;

/// Every observable of a run, for byte-identity comparison.
fn fingerprint(r: &RunReport) -> (u64, u64, String, Vec<(String, u64)>) {
    let mut counters: Vec<(String, u64)> = r
        .stats
        .counters
        .iter()
        .map(|(k, v)| (k.clone(), *v))
        .collect();
    counters.sort();
    (r.cycles, r.checksum, r.label.clone(), counters)
}

fn small_widx() -> widx::WidxWorkload {
    let mut preset = QueryClass::Q19.preset().scaled_down(400);
    preset.probes = 400;
    widx::WidxWorkload::from_preset(&preset, 7)
}

fn small_spgemm() -> spgemm::SpgemmWorkload {
    let a = xcache_workloads::CsrMatrix::generate(
        64,
        64,
        420,
        xcache_workloads::SparsePattern::RMat,
        11,
    );
    spgemm::SpgemmWorkload {
        b: a.clone(),
        a,
        algorithm: spgemm::Algorithm::Gustavson,
    }
}

fn spgemm_geometry() -> XCacheConfig {
    XCacheConfig {
        sets: 32,
        ways: 4,
        active: 8,
        exe: 4,
        data_sectors: 512,
        ..XCacheConfig::sparch()
    }
}

fn small_graphpulse() -> graphpulse::GraphPulseWorkload {
    graphpulse::GraphPulseWorkload {
        graph: xcache_workloads::Graph::from_adjacency(xcache_workloads::CsrMatrix::generate(
            96,
            96,
            400,
            xcache_workloads::SparsePattern::RMat,
            5,
        )),
        iterations: 2,
    }
}

/// The tentpole determinism contract: one sharded simulation, every
/// execution strategy — sequential reference, parallel with 2 and 4
/// workers, and each of those inside a 1-job and a 2-job `Runner` grid —
/// produces the same bytes.
#[test]
fn sharded_run_identical_across_par_modes_and_runner_jobs() {
    let w = small_widx();
    let g = widx_geometry(40);
    let reference = fingerprint(&with_par_mode(ParMode::Seq, || {
        widx::run_xcache_sharded(&w, Some(g.clone()), 4)
    }));

    for jobs in [1usize, 2] {
        let cells: Vec<Scenario<'_, RunReport>> = [ParMode::Seq, ParMode::Par, ParMode::Par]
            .into_iter()
            .zip([1usize, 2, 4])
            .map(|(mode, threads)| {
                let (w, g) = (&w, &g);
                Scenario::new(format!("{mode:?} x{threads}"), move || {
                    with_par_mode(mode, || {
                        with_par_threads(threads, || {
                            widx::run_xcache_sharded(w, Some(g.clone()), 4)
                        })
                    })
                })
            })
            .collect();
        for (i, report) in Runner::with_jobs(jobs).run(cells).iter().enumerate() {
            assert_eq!(
                fingerprint(report),
                reference,
                "widx sharded cell {i} diverged from the sequential reference at {jobs} jobs"
            );
        }
    }
}

/// Sequential/parallel identity for the other two accelerators, at a
/// shard count that does not divide the workload evenly.
#[test]
fn sharded_spgemm_and_graphpulse_agree_across_modes() {
    let w = small_spgemm();
    let g = spgemm_geometry();
    let seq = fingerprint(&with_par_mode(ParMode::Seq, || {
        spgemm::run_xcache_sharded(&w, Some(g.clone()), 3)
    }));
    let par = fingerprint(&with_par_mode(ParMode::Par, || {
        with_par_threads(2, || spgemm::run_xcache_sharded(&w, Some(g.clone()), 3))
    }));
    assert_eq!(seq, par, "sharded spgemm diverged between seq and par");

    let w = small_graphpulse();
    let sets = 128usize;
    let g = XCacheConfig {
        sets,
        ways: 1,
        data_sectors: sets,
        ..XCacheConfig::graphpulse()
    };
    let seq = fingerprint(&with_par_mode(ParMode::Seq, || {
        graphpulse::run_xcache_sharded(&w, Some(g.clone()), 3)
    }));
    let par = fingerprint(&with_par_mode(ParMode::Par, || {
        with_par_threads(4, || graphpulse::run_xcache_sharded(&w, Some(g.clone()), 3))
    }));
    assert_eq!(seq, par, "sharded graphpulse diverged between seq and par");
}

/// Idle-cycle fast-forwarding stays an invariant under sharding: the
/// horizon-synchronized runs agree on every observable with skipping on
/// and off, for all three accelerators.
#[test]
fn sharded_skip_invariant() {
    let widx_w = small_widx();
    let widx_g = widx_geometry(40);
    let spgemm_w = small_spgemm();
    let spgemm_g = spgemm_geometry();
    let gp_w = small_graphpulse();
    let gp_g = XCacheConfig {
        sets: 128,
        ways: 1,
        data_sectors: 128,
        ..XCacheConfig::graphpulse()
    };
    type NamedRun<'a> = (&'a str, Box<dyn Fn() -> RunReport + 'a>);
    let runs: Vec<NamedRun<'_>> = vec![
        (
            "widx",
            Box::new(|| widx::run_xcache_sharded(&widx_w, Some(widx_g.clone()), 4)),
        ),
        (
            "spgemm",
            Box::new(|| spgemm::run_xcache_sharded(&spgemm_w, Some(spgemm_g.clone()), 4)),
        ),
        (
            "graphpulse",
            Box::new(|| graphpulse::run_xcache_sharded(&gp_w, Some(gp_g.clone()), 4)),
        ),
    ];
    for (label, run) in &runs {
        let fast = fingerprint(&with_skip(true, run));
        let slow = fingerprint(&with_skip(false, run));
        assert_eq!(fast, slow, "{label}: sharded skip/no-skip runs diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// `owner_of` is a partition of the key space: every key has exactly
    /// one owner, the owner is in range, the mapping is deterministic,
    /// and one shard degenerates to the identity routing.
    #[test]
    fn owner_of_partitions_the_key_space(raw in any::<u64>(), shards in 1usize..9) {
        let owner = owner_of(MetaKey::new(raw), shards);
        prop_assert!(owner < shards, "owner {owner} out of range for {shards} shards");
        prop_assert_eq!(owner, owner_of(MetaKey::new(raw), shards), "routing is not deterministic");
        if shards == 1 {
            prop_assert_eq!(owner, 0);
        }
    }

    /// Per-shard geometries stay well-formed: power-of-two set count, at
    /// least one set, and enough data sectors to back every meta entry.
    #[test]
    fn shard_geometry_stays_well_formed(shards in 1usize..9) {
        let base = widx_geometry(40);
        let cfg = shard_geometry(&base, shards);
        prop_assert!(cfg.sets >= 1);
        prop_assert!(cfg.sets.is_power_of_two());
        prop_assert!(cfg.data_sectors >= cfg.sets * cfg.ways);
        if shards == 1 {
            prop_assert_eq!(cfg.sets, base.sets);
            prop_assert_eq!(cfg.data_sectors, base.data_sectors);
        }
    }
}

/// The interleaved routing spreads consecutive keys: over a dense key
/// range every shard owns a non-trivial slice, and the per-shard slices
/// are disjoint and cover the range (each key is counted exactly once).
#[test]
fn owner_of_spreads_dense_key_ranges() {
    const KEYS: u64 = 1024;
    for shards in 1usize..=8 {
        let mut buckets = vec![0u64; shards];
        for raw in 0..KEYS {
            buckets[owner_of(MetaKey::new(raw), shards)] += 1;
        }
        assert_eq!(buckets.iter().sum::<u64>(), KEYS);
        let floor = KEYS / (shards as u64 * 4);
        for (s, count) in buckets.iter().enumerate() {
            assert!(
                *count >= floor.max(1),
                "shard {s}/{shards} owns only {count} of {KEYS} dense keys"
            );
        }
    }
}
