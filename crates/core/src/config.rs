//! X-Cache generator configuration (the Chisel generator's parameters,
//! Figure 13 / Table 3).

/// How walkers share the controller pipeline — the Choice-3 ablation (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkerDiscipline {
    /// Walkers are coroutines: they yield the pipeline at long-latency
    /// events and are rescheduled on wakeup (the X-Cache design).
    Coroutine,
    /// Walkers are blocking threads: each occupies an executor lane for its
    /// entire lifetime, including memory stalls (the prior-work baseline
    /// the paper compares against in Figure 7).
    BlockingThread,
}

/// Geometry and behavioural parameters of one X-Cache instance.
///
/// Field names follow the paper: `#Active` is the number of X-register
/// files (bounding concurrent walkers and therefore memory-level
/// parallelism), `#Exe` the executor-stage lanes, `#Way`/`#Set` the
/// meta-tag geometry, and `#Word` the words striped per sector (`wlen`).
#[derive(Debug, Clone, PartialEq)]
pub struct XCacheConfig {
    /// `#Active`: concurrent walkers / X-register files.
    pub active: usize,
    /// `#Exe`: executor lanes (actions retired per cycle; also the number
    /// of resident routines).
    pub exe: usize,
    /// `#Way`: meta-tag associativity.
    pub ways: usize,
    /// `#Set`: meta-tag sets (power of two).
    pub sets: usize,
    /// `#Word`: 8-byte words per data-RAM sector.
    pub words_per_sector: usize,
    /// Total sectors in the data RAM. Defaults (via presets) to
    /// `sets × ways × 2` so that average entries of 1–2 sectors fit.
    pub data_sectors: usize,
    /// Load-to-use latency of a meta-tag hit ("fully pipelined, 3-cycle
    /// load-to-use", §4.2).
    pub hit_latency: u64,
    /// Latency of the DSA hash functional unit (60 for Widx string keys).
    pub hash_latency: u64,
    /// Width of an X-register file in registers (per walker); must cover
    /// the walker program's `regs` declaration.
    pub xregs_per_walker: usize,
    /// Full hardware-context size charged per *thread* in
    /// [`WalkerDiscipline::BlockingThread`] mode (a classic RISC pipeline
    /// context, cf. Widx's enhanced RISC cores).
    pub thread_context_regs: usize,
    /// Coroutine vs. blocking-thread controller.
    pub discipline: WalkerDiscipline,
    /// DSA-specific parameters, referenced by `Operand::Param(i)`.
    pub params: Vec<u64>,
    /// Depth of the datapath-side access queue.
    pub access_queue_depth: usize,
    /// Depth of the datapath-side response queue.
    pub resp_queue_depth: usize,
}

impl Default for XCacheConfig {
    fn default() -> Self {
        XCacheConfig {
            active: 16,
            exe: 2,
            ways: 8,
            sets: 1024,
            words_per_sector: 4,
            data_sectors: 1024 * 8 * 2,
            hit_latency: 3,
            hash_latency: 1,
            xregs_per_walker: 8,
            thread_context_regs: 32,
            discipline: WalkerDiscipline::Coroutine,
            params: Vec::new(),
            access_queue_depth: 16,
            resp_queue_depth: 64,
        }
    }
}

impl XCacheConfig {
    /// Table 3 geometry for Widx (16 active, 2 exe, 8 way, 1024 set,
    /// 4 words). Widx hashes string keys at 60 cycles.
    #[must_use]
    pub fn widx() -> Self {
        XCacheConfig {
            active: 16,
            exe: 2,
            ways: 8,
            sets: 1024,
            words_per_sector: 4,
            data_sectors: 1024 * 8 * 2,
            hash_latency: 60,
            ..Self::default()
        }
    }

    /// Table 3 geometry for DASX (hash): 16/4/8/1024/4.
    #[must_use]
    pub fn dasx() -> Self {
        XCacheConfig {
            active: 16,
            exe: 4,
            ways: 8,
            sets: 1024,
            words_per_sector: 4,
            data_sectors: 1024 * 8 * 2,
            hash_latency: 12,
            ..Self::default()
        }
    }

    /// Table 3 geometry for SpArch: 32/4/8/512/4.
    #[must_use]
    pub fn sparch() -> Self {
        XCacheConfig {
            active: 32,
            exe: 4,
            ways: 8,
            sets: 512,
            words_per_sector: 4,
            data_sectors: 512 * 8 * 4, // rows span multiple sectors
            ..Self::default()
        }
    }

    /// Table 3 geometry for Gamma: 32/4/8/512/4.
    #[must_use]
    pub fn gamma() -> Self {
        Self::sparch()
    }

    /// Table 3 geometry for GraphPulse: 16/4/1/131072/8 (direct-mapped —
    /// "in the case of GraphPulse a direct-mapped cache suffices", §7.1).
    #[must_use]
    pub fn graphpulse() -> Self {
        XCacheConfig {
            active: 16,
            exe: 4,
            ways: 1,
            sets: 131_072,
            words_per_sector: 8,
            data_sectors: 131_072,
            ..Self::default()
        }
    }

    /// A small geometry for unit tests.
    #[must_use]
    pub fn test_tiny() -> Self {
        XCacheConfig {
            active: 4,
            exe: 2,
            ways: 2,
            sets: 8,
            words_per_sector: 4,
            data_sectors: 64,
            hit_latency: 3,
            hash_latency: 4,
            xregs_per_walker: 6,
            ..Self::default()
        }
    }

    /// Number of meta-tag entries.
    #[must_use]
    pub fn meta_entries(&self) -> usize {
        self.sets * self.ways
    }

    /// Bytes per data-RAM sector.
    #[must_use]
    pub fn sector_bytes(&self) -> u64 {
        self.words_per_sector as u64 * 8
    }

    /// Total data-RAM capacity in bytes.
    #[must_use]
    pub fn data_capacity_bytes(&self) -> u64 {
        self.data_sectors as u64 * self.sector_bytes()
    }

    /// Returns `self` with a parameter vector installed (builder-style).
    #[must_use]
    pub fn with_params(mut self, params: Vec<u64>) -> Self {
        self.params = params;
        self
    }

    /// Returns `self` with a walker discipline installed (builder-style).
    #[must_use]
    pub fn with_discipline(mut self, discipline: WalkerDiscipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Validates geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.active == 0 {
            return Err("active (#Active) must be nonzero".into());
        }
        if self.exe == 0 {
            return Err("exe (#Exe) must be nonzero".into());
        }
        if self.ways == 0 {
            return Err("ways must be nonzero".into());
        }
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err("sets must be a nonzero power of two".into());
        }
        if self.words_per_sector == 0 {
            return Err("words_per_sector must be nonzero".into());
        }
        if self.data_sectors == 0 {
            return Err("data_sectors must be nonzero".into());
        }
        if self.xregs_per_walker == 0 {
            return Err("xregs_per_walker must be nonzero".into());
        }
        if self.access_queue_depth == 0 || self.resp_queue_depth == 0 {
            return Err("queue depths must be nonzero".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table3() {
        let w = XCacheConfig::widx();
        assert_eq!(
            (w.active, w.exe, w.ways, w.sets, w.words_per_sector),
            (16, 2, 8, 1024, 4)
        );
        let d = XCacheConfig::dasx();
        assert_eq!(
            (d.active, d.exe, d.ways, d.sets, d.words_per_sector),
            (16, 4, 8, 1024, 4)
        );
        let s = XCacheConfig::sparch();
        assert_eq!(
            (s.active, s.exe, s.ways, s.sets, s.words_per_sector),
            (32, 4, 8, 512, 4)
        );
        assert_eq!(XCacheConfig::gamma(), XCacheConfig::sparch());
        let g = XCacheConfig::graphpulse();
        assert_eq!(
            (g.active, g.exe, g.ways, g.sets, g.words_per_sector),
            (16, 4, 1, 131_072, 8)
        );
    }

    #[test]
    fn derived_quantities() {
        let c = XCacheConfig::test_tiny();
        assert_eq!(c.meta_entries(), 16);
        assert_eq!(c.sector_bytes(), 32);
        assert_eq!(c.data_capacity_bytes(), 64 * 32);
    }

    #[test]
    fn validation_rejects_bad_fields() {
        let mut c = XCacheConfig::default();
        assert!(c.validate().is_ok());
        c.sets = 3;
        assert!(c.validate().is_err());
        c.sets = 4;
        c.exe = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_helpers() {
        let c = XCacheConfig::test_tiny()
            .with_params(vec![7, 8])
            .with_discipline(WalkerDiscipline::BlockingThread);
        assert_eq!(c.params, vec![7, 8]);
        assert_eq!(c.discipline, WalkerDiscipline::BlockingThread);
    }
}
