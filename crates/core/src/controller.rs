//! The programmable X-Cache controller (§4, Figure 8).
//!
//! The controller is a two-part pipeline:
//!
//! * **Front-end** ("the event loop"): monitors the datapath access queue,
//!   the DRAM response port and the internal event queue, and *wakes one
//!   walker per cycle*. Meta-tag hits bypass the walkers entirely through a
//!   dedicated read port with a pipelined `hit_latency` load-to-use.
//! * **Back-end**: `#Exe` executor lanes run woken routines one action per
//!   lane per cycle; routines end by yielding (coroutine goes dormant, lane
//!   freed) or retiring.
//!
//! The walker *discipline* is configurable for the §3.3 ablation:
//! coroutines release their lane at every yield; blocking threads hold a
//! lane from launch to retirement, including all memory stalls (Figure 7).

use std::collections::{HashMap, VecDeque};

use bytes::Bytes;

use xcache_isa::{
    Action, ActionCategory, AluOp, Cond, EventId, Operand, RoutineId, StateId, WalkerProgram,
};
use xcache_mem::{MemReq, MemoryPort};
use xcache_sim::{Cycle, MsgQueue, Stats, TraceBuffer, TraceKind};

use crate::{
    config::WalkerDiscipline, dataram::DataRam, metatag::EntryRef, metatag::MetaTagArray,
    xreg::XRegPool, MetaAccess, MetaKey, MetaResp, XCacheConfig,
};

/// Error constructing an [`XCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The geometry failed validation.
    BadConfig(String),
    /// The walker program failed validation.
    BadProgram(String),
    /// The program needs more X-registers than the geometry provides.
    RegistersExceeded {
        /// Registers the program declares.
        needed: u8,
        /// Registers per walker in the geometry.
        available: usize,
    },
    /// The program references parameter `idx` but only `provided` exist.
    MissingParam {
        /// Referenced parameter index.
        idx: u8,
        /// Number of parameters configured.
        provided: usize,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::BadConfig(e) => write!(f, "invalid configuration: {e}"),
            BuildError::BadProgram(e) => write!(f, "invalid walker program: {e}"),
            BuildError::RegistersExceeded { needed, available } => write!(
                f,
                "program needs {needed} X-registers but the geometry provides {available}"
            ),
            BuildError::MissingParam { idx, provided } => write!(
                f,
                "program references param p{idx} but only {provided} parameter(s) configured"
            ),
        }
    }
}

impl std::error::Error for BuildError {}

/// Number of payload words carried with an event.
const MSG_WORDS: usize = 4;

/// Cycles a lane may stall on a structural hazard before the walker faults
/// (deadlock backstop; counted in `xcache.walker_timeout`).
const STALL_LIMIT: u32 = 100_000;

/// Trigger-stage scheduling window: how many pending accesses the
/// front-end examines per cycle when the head cannot make progress.
const SCHED_WINDOW: usize = 8;

/// Cycles a routine may spin on an *allocation* hazard (a resource held by
/// another walker) before the walk is aborted and its access replayed
/// through the trigger stage. Allocation hazards are deadlock-prone — two
/// stalled routines can hold all executor lanes — so they resolve by
/// replay, unlike queue-full stalls which always drain.
const HAZARD_RETRY: u32 = 64;

#[derive(Debug)]
struct Walker {
    key: MetaKey,
    entry: Option<EntryRef>,
    state: StateId,
    probe_hit: bool,
    pending: VecDeque<(EventId, [u64; MSG_WORDS])>,
    msg: [u64; MSG_WORDS],
    fill_data: Option<Bytes>,
    origin: MetaAccess,
    responded: bool,
    /// The walker allocated its meta entry (vs. attached to an existing
    /// one on a store hit); faults may only invalidate owned entries.
    owns_entry: bool,
    waiters: Vec<MetaAccess>,
    launched_at: Cycle,
    gen: u32,
    in_lane: bool,
}

#[derive(Debug, Clone, Copy)]
struct Lane {
    slot: usize,
    routine: RoutineId,
    pc: usize,
    /// Thread discipline: lane is held while the walker waits for events.
    waiting: bool,
    stall_cycles: u32,
}

enum Outcome {
    Advance,
    Jump(usize),
    Stall,
    /// Stalled on a resource held by another walker (see [`HAZARD_RETRY`]).
    StallHazard,
    YieldLane,
    FreeLane,
}

/// A generated domain-specific cache instance.
///
/// Generic over its miss-path memory level `D`: a
/// [`DramModel`](xcache_mem::DramModel) directly, an
/// [`AddressCache`](xcache_mem::AddressCache) (the MXA hierarchy of §6), or
/// a [`PortHandle`](xcache_mem::PortHandle) sharing DRAM with a stream
/// engine (MXS).
#[derive(Debug)]
pub struct XCache<D> {
    cfg: XCacheConfig,
    program: WalkerProgram,
    tags: MetaTagArray,
    data: DataRam,
    xregs: XRegPool,
    access_q: MsgQueue<MetaAccess>,
    replay_q: VecDeque<MetaAccess>,
    /// The trigger-stage window (drained from `access_q`/`replay_q`).
    pending: VecDeque<MetaAccess>,
    resp_q: MsgQueue<MetaResp>,
    /// Overflow buffer for responses produced while `resp_q` is full
    /// (e.g. a walker answering many waiters at once); drained in FIFO
    /// order ahead of new responses, so nothing is ever dropped.
    resp_spill: VecDeque<(u64, MetaResp)>,
    walkers: Vec<Option<Walker>>,
    /// Per-slot generation counters, persisting across walker reuse so
    /// that stale DRAM responses never wake the wrong walker.
    slot_gens: Vec<u32>,
    /// key → walker slot, held from launch to retirement (prevents
    /// duplicate walkers; queues waiters).
    launching: HashMap<MetaKey, usize>,
    lanes: Vec<Option<Lane>>,
    /// Delayed internal events: (due, slot, gen, event, payload).
    delayed: Vec<(Cycle, usize, u32, EventId, [u64; MSG_WORDS])>,
    inflight: HashMap<u64, (usize, u32)>,
    issue_times: HashMap<u64, Cycle>,
    next_req_id: u64,
    wake_rr: usize,
    downstream: D,
    stats: Stats,
    trace: TraceBuffer,
}

impl<D: MemoryPort> XCache<D> {
    /// Generates an X-Cache instance from a geometry, a compiled walker
    /// program, and the memory level below.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the geometry is invalid, the program
    /// fails validation, or the program's resource needs (X-registers,
    /// parameters) exceed what the geometry provides.
    pub fn new(
        cfg: XCacheConfig,
        program: WalkerProgram,
        downstream: D,
    ) -> Result<Self, BuildError> {
        cfg.validate().map_err(BuildError::BadConfig)?;
        program.validate().map_err(|errs| {
            BuildError::BadProgram(
                errs.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            )
        })?;
        if usize::from(program.regs) > cfg.xregs_per_walker {
            return Err(BuildError::RegistersExceeded {
                needed: program.regs,
                available: cfg.xregs_per_walker,
            });
        }
        // Every referenced parameter must be configured.
        for r in &program.routines {
            for a in &r.actions {
                for op in action_operands(a) {
                    if let Operand::Param(i) = op {
                        if usize::from(i) >= cfg.params.len() {
                            return Err(BuildError::MissingParam {
                                idx: i,
                                provided: cfg.params.len(),
                            });
                        }
                    }
                }
            }
        }
        // Coroutines charge only the walker's declared X-registers for its
        // lifetime; blocking threads additionally pay for their statically
        // allocated hardware contexts every cycle (see `tick`).
        let charged = usize::from(program.regs.max(1));
        Ok(XCache {
            tags: MetaTagArray::new(cfg.sets, cfg.ways),
            data: DataRam::new(cfg.data_sectors, cfg.words_per_sector),
            xregs: XRegPool::new(cfg.active, cfg.xregs_per_walker, charged),
            access_q: MsgQueue::new("xcache.access", cfg.access_queue_depth, 1),
            replay_q: VecDeque::new(),
            pending: VecDeque::new(),
            resp_q: MsgQueue::new("xcache.resp", cfg.resp_queue_depth, cfg.hit_latency.max(1)),
            resp_spill: VecDeque::new(),
            walkers: (0..cfg.active).map(|_| None).collect(),
            slot_gens: vec![0; cfg.active],
            launching: HashMap::new(),
            lanes: vec![None; cfg.exe],
            delayed: Vec::new(),
            inflight: HashMap::new(),
            issue_times: HashMap::new(),
            next_req_id: 1,
            wake_rr: 0,
            downstream,
            stats: Stats::new(),
            trace: TraceBuffer::disabled(),
            program,
            cfg,
        })
    }

    /// The geometry in effect.
    #[must_use]
    pub fn config(&self) -> &XCacheConfig {
        &self.cfg
    }

    /// The loaded walker program.
    #[must_use]
    pub fn program(&self) -> &WalkerProgram {
        &self.program
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The memory level below.
    #[must_use]
    pub fn downstream(&self) -> &D {
        &self.downstream
    }

    /// The memory level below, mutably (workload setup).
    pub fn downstream_mut(&mut self) -> &mut D {
        &mut self.downstream
    }

    /// Enables bounded tracing for debugging and the figure narratives.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceBuffer::with_capacity(capacity);
    }

    /// The trace buffer.
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Meta-tag hit ratio so far, or `None` before any access.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let h = self.stats.get("xcache.hit");
        let m = self.stats.get("xcache.miss");
        (h + m > 0).then(|| h as f64 / (h + m) as f64)
    }

    /// Offers a meta access from the datapath.
    ///
    /// # Errors
    ///
    /// Returns the access back when the queue is full this cycle.
    pub fn try_access(&mut self, now: Cycle, access: MetaAccess) -> Result<(), MetaAccess> {
        match self.access_q.push(now, access) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.stats.incr("xcache.access_stall");
                Err(e.0)
            }
        }
    }

    /// Removes one datapath response ready at `now`, if any.
    pub fn take_response(&mut self, now: Cycle) -> Option<MetaResp> {
        self.resp_q.pop(now)
    }

    /// Whether any work is outstanding anywhere in the instance.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.access_q.is_empty()
            || !self.replay_q.is_empty()
            || !self.pending.is_empty()
            || !self.resp_q.is_empty()
            || !self.resp_spill.is_empty()
            || !self.delayed.is_empty()
            || self.walkers.iter().any(Option::is_some)
            || self.downstream.busy()
    }

    /// Advances the instance (and its downstream level) one cycle.
    pub fn tick(&mut self, now: Cycle) {
        if self.cfg.discipline == WalkerDiscipline::BlockingThread {
            // Thread contexts are statically partitioned hardware: every
            // context's full register file is occupied every cycle,
            // whether walking or stalled — "resources are allocated/freed
            // at a coarse granularity" (§3.3).
            self.stats.add(
                "xcache.occupancy_reg_byte_cycles",
                (self.cfg.thread_context_regs * 8 * self.cfg.active) as u64,
            );
        }
        self.downstream.tick(now);
        self.drain_resp_spill(now);
        self.collect_fills(now);
        self.deliver_delayed(now);
        let mut wake_budget = 1usize;
        self.process_access(now, &mut wake_budget);
        if wake_budget > 0 {
            self.wake_one(now);
        }
        self.execute(now);
    }

    // ------------------------------------------------------------------
    // Front-end
    // ------------------------------------------------------------------

    fn collect_fills(&mut self, now: Cycle) {
        while let Some(resp) = self.downstream.take_response(now) {
            let Some((slot, gen)) = self.inflight.remove(&resp.id.0) else {
                continue; // stale (walker faulted); drop
            };
            let Some(w) = self.walkers[slot].as_mut() else {
                continue;
            };
            if w.gen != gen {
                continue;
            }
            let mut payload = [0u64; MSG_WORDS];
            for (i, chunk) in resp.data.chunks(8).take(MSG_WORDS).enumerate() {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                payload[i] = u64::from_le_bytes(b);
            }
            w.fill_data = Some(resp.data.clone());
            w.pending.push_back((EventId::FILL, payload));
            self.stats.incr("xcache.fill_resp");
            self.trace.emit(
                now,
                TraceKind::DramResp,
                "xcache",
                format!("slot {slot} addr {:#x}", resp.addr),
            );
        }
    }

    fn deliver_delayed(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, slot, gen, ev, payload) = self.delayed.swap_remove(i);
                if let Some(w) = self.walkers[slot].as_mut() {
                    if w.gen == gen {
                        w.pending.push_back((ev, payload));
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    /// Processes at most one datapath access per cycle.
    ///
    /// Meta hits are "handled by a dedicated read port … fully pipelined"
    /// (§4.2), so a miss that cannot launch a walker this cycle (no free
    /// X-register file) must not block younger hits. The trigger stage
    /// therefore scans a bounded window of the pending accesses and serves
    /// the first one that can make progress, never reordering two accesses
    /// to the same key.
    fn process_access(&mut self, now: Cycle, wake_budget: &mut usize) {
        // Refill the trigger-stage window from the replay queue (waiters
        // released by a retiring walker) then the datapath queue.
        while self.pending.len() < self.cfg.access_queue_depth {
            if let Some(a) = self.replay_q.pop_front() {
                self.pending.push_back(a);
            } else if let Some(a) = self.access_q.pop(now) {
                self.pending.push_back(a);
            } else {
                break;
            }
        }

        let window = self.pending.len().min(SCHED_WINDOW);
        let mut seen_keys: Vec<MetaKey> = Vec::with_capacity(window);
        let mut serve: Option<usize> = None;
        for i in 0..window {
            let access = self.pending[i];
            let key = access.key();
            if seen_keys.contains(&key) {
                continue; // per-key order preserved
            }
            seen_keys.push(key);
            if self.can_serve(&access, wake_budget) {
                serve = Some(i);
                break;
            }
        }
        let Some(i) = serve else {
            if !self.pending.is_empty() {
                self.stats.incr("xcache.launch_stall");
            }
            return;
        };
        let access = self.pending.remove(i).expect("index in window");
        self.serve_access(now, access, wake_budget);
    }

    /// Whether `access` can make progress this cycle (trigger-stage hazard
    /// check — "routines are not triggered until all the hazard conditions
    /// are eliminated", §4.1 ③).
    fn can_serve(&mut self, access: &MetaAccess, wake_budget: &usize) -> bool {
        let key = access.key();
        if let Some(_slot) = self.launching.get(&key) {
            // Loads attach as waiters (always possible); stores/takes must
            // wait for the walker to finish.
            return matches!(access, MetaAccess::Load { .. });
        }
        let hit = self.tags.peek(key).is_some();
        match access {
            MetaAccess::Load { .. } if hit => true,
            MetaAccess::Take { .. } => true, // hit or definitive not-found
            // Walker launch needs the cycle's wake, a lane, an X-reg file,
            // and — unless the walker will attach to an existing entry —
            // an allocatable way in the key's set ("routines are not
            // triggered until all the hazard conditions are eliminated").
            // Permanently pinned-full sets still launch so the walker can
            // fast-fault and inform the datapath.
            _ => {
                let alloc_ok = hit || self.tags.can_alloc(key) || self.tags.set_unevictable(key);
                *wake_budget > 0 && self.xregs.has_free() && self.free_lane().is_some() && alloc_ok
            }
        }
    }

    fn serve_access(&mut self, now: Cycle, access: MetaAccess, wake_budget: &mut usize) {
        let key = access.key();
        // Load-to-use is measured from dispatch (the trigger stage picked
        // the access) to response — matching how the probe-engine
        // baselines measure their per-walk latency.
        self.issue_times.insert(access.id(), now);
        if let Some(&slot) = self.launching.get(&key) {
            let w = self.walkers[slot].as_mut().expect("launching entry");
            w.waiters.push(access);
            self.stats.incr("xcache.waiter");
            return;
        }
        let probe = self.tags.probe(key, &mut self.stats);
        match access {
            MetaAccess::Load { id, .. } => {
                if let Some(r) = probe {
                    let e = *self.tags.entry(r);
                    debug_assert!(!e.active, "active entry without launching record");
                    self.stats.incr("xcache.hit");
                    let data = self.data.gather(e.sector_start, e.sector_count, &mut self.stats);
                    self.respond(now, id, key, true, data);
                    self.trace
                        .emit(now, TraceKind::Hit, "xcache", format!("{key}"));
                } else {
                    self.launch(now, access, false, None, [0; MSG_WORDS], EventId::MISS, wake_budget);
                }
            }
            MetaAccess::Store { payload, .. } => {
                let mut msg = [0u64; MSG_WORDS];
                msg[0] = payload[0];
                msg[1] = payload[1];
                if let Some(r) = probe {
                    self.stats.incr("xcache.store_hit");
                    self.launch(now, access, true, Some(r), msg, EventId::UPDATE, wake_budget);
                } else {
                    self.stats.incr("xcache.store_miss");
                    self.launch(now, access, false, None, msg, EventId::UPDATE, wake_budget);
                }
            }
            MetaAccess::Take { id, .. } => {
                if let Some(r) = probe {
                    let e = self.tags.invalidate(r, &mut self.stats);
                    self.stats.incr("xcache.take_hit");
                    let data = self.data.gather(e.sector_start, e.sector_count, &mut self.stats);
                    if e.sector_count > 0 {
                        self.data.free(e.sector_start, e.sector_count);
                    }
                    self.respond(now, id, key, true, data);
                } else {
                    self.stats.incr("xcache.take_miss");
                    self.respond(now, id, key, false, Vec::new());
                }
            }
        }
    }

    /// Launches a walker for `access`; `can_serve` already checked the
    /// resources, so failure here is a logic error.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        &mut self,
        now: Cycle,
        access: MetaAccess,
        probe_hit: bool,
        entry: Option<EntryRef>,
        msg: [u64; MSG_WORDS],
        event: EventId,
        wake_budget: &mut usize,
    ) {
        let file = self.xregs.alloc(now).expect("can_serve checked a free file");
        let slot = usize::from(file.0);
        self.slot_gens[slot] = self.slot_gens[slot].wrapping_add(1);
        let gen = self.slot_gens[slot];
        if let Some(r) = entry {
            self.tags.entry_mut(r).active = true;
        }
        let state = entry.map_or(StateId::DEFAULT, |r| self.tags.entry(r).state);
        let mut w = Walker {
            key: access.key(),
            entry,
            state: if event == EventId::MISS { StateId::DEFAULT } else { state },
            probe_hit,
            pending: VecDeque::new(),
            msg,
            fill_data: None,
            origin: access,
            responded: false,
            owns_entry: false,
            waiters: Vec::new(),
            launched_at: now,
            gen,
            in_lane: false,
        };
        w.pending.push_back((event, msg));
        self.walkers[slot] = Some(w);
        self.launching.insert(access.key(), slot);
        self.stats.incr("xcache.walker_launch");
        if event == EventId::MISS {
            self.stats.incr("xcache.miss");
            self.trace
                .emit(now, TraceKind::Miss, "xcache", format!("{}", access.key()));
        }
        // Launch consumes the cycle's wake: dispatch immediately.
        *wake_budget = 0;
        self.dispatch(now, slot);
    }

    fn free_lane(&self) -> Option<usize> {
        self.lanes.iter().position(Option::is_none)
    }

    /// Dispatches the next pending event of walker `slot` into a lane.
    fn dispatch(&mut self, now: Cycle, slot: usize) -> bool {
        let (event, payload, in_lane, state) = {
            let w = self.walkers[slot].as_ref().expect("dispatch on empty slot");
            let Some(&(event, payload)) = w.pending.front() else {
                return false;
            };
            (event, payload, w.in_lane, w.state)
        };
        // Thread discipline: reuse the walker's blocked lane if it has one.
        let lane_idx = if let Some(i) = self
            .lanes
            .iter()
            .position(|l| l.is_some_and(|l| l.slot == slot && l.waiting))
        {
            i
        } else if in_lane {
            return false; // already running
        } else if let Some(i) = self.free_lane() {
            i
        } else {
            return false;
        };
        let Some(routine) = self.program.table.lookup(state, event) else {
            // Protocol error: no transition for (state, event).
            self.stats.incr("xcache.protocol_error");
            self.walkers[slot].as_mut().expect("walker").pending.pop_front();
            self.fault_walker(now, slot);
            return true;
        };
        let w = self.walkers[slot].as_mut().expect("walker");
        w.pending.pop_front();
        w.msg = payload;
        w.in_lane = true;
        self.lanes[lane_idx] = Some(Lane {
            slot,
            routine,
            pc: 0,
            waiting: false,
            stall_cycles: 0,
        });
        self.stats.incr("xcache.wakeup");
        self.trace.emit(
            now,
            TraceKind::Wake,
            "xcache",
            format!("slot {slot} event {event}"),
        );
        true
    }

    /// Wakes one dormant walker with a pending event (round-robin).
    fn wake_one(&mut self, now: Cycle) {
        let n = self.walkers.len();
        for off in 0..n {
            let slot = (self.wake_rr + off) % n;
            let ready = self.walkers[slot]
                .as_ref()
                .is_some_and(|w| !w.in_lane && !w.pending.is_empty());
            let blocked_thread = self.walkers[slot].as_ref().is_some_and(|w| {
                w.in_lane
                    && !w.pending.is_empty()
                    && self
                        .lanes
                        .iter()
                        .any(|l| l.is_some_and(|l| l.slot == slot && l.waiting))
            });
            if (ready || blocked_thread) && self.dispatch(now, slot) {
                self.wake_rr = (slot + 1) % n;
                return;
            }
        }
    }

    // ------------------------------------------------------------------
    // Back-end
    // ------------------------------------------------------------------

    fn execute(&mut self, now: Cycle) {
        for lane_idx in 0..self.lanes.len() {
            let Some(mut lane) = self.lanes[lane_idx] else {
                continue;
            };
            if lane.waiting {
                continue;
            }
            if self.walkers[lane.slot].is_none() {
                // Walker faulted earlier this cycle.
                self.lanes[lane_idx] = None;
                continue;
            }
            let action = self.program.routines[lane.routine.0 as usize].actions[lane.pc];
            self.stats.incr("xcache.ucode_read");
            self.stats.incr(category_counter(action.category()));
            match self.exec_action(now, lane.slot, action) {
                Outcome::Advance => {
                    lane.pc += 1;
                    lane.stall_cycles = 0;
                    self.lanes[lane_idx] = Some(lane);
                }
                Outcome::Jump(pc) => {
                    lane.pc = pc;
                    lane.stall_cycles = 0;
                    self.lanes[lane_idx] = Some(lane);
                }
                Outcome::Stall => {
                    lane.stall_cycles += 1;
                    self.stats.incr("xcache.exec_stall");
                    if lane.stall_cycles > STALL_LIMIT {
                        self.stats.incr("xcache.walker_timeout");
                        self.lanes[lane_idx] = None;
                        self.fault_walker(now, lane.slot);
                    } else {
                        self.lanes[lane_idx] = Some(lane);
                    }
                }
                Outcome::StallHazard => {
                    lane.stall_cycles += 1;
                    self.stats.incr("xcache.exec_stall");
                    if lane.stall_cycles > HAZARD_RETRY {
                        self.lanes[lane_idx] = None;
                        self.abort_and_replay(now, lane.slot);
                    } else {
                        self.lanes[lane_idx] = Some(lane);
                    }
                }
                Outcome::YieldLane => {
                    match self.cfg.discipline {
                        WalkerDiscipline::Coroutine => {
                            self.lanes[lane_idx] = None;
                            if let Some(w) = self.walkers[lane.slot].as_mut() {
                                w.in_lane = false;
                            }
                        }
                        WalkerDiscipline::BlockingThread => {
                            lane.waiting = true;
                            self.lanes[lane_idx] = Some(lane);
                        }
                    }
                    self.trace
                        .emit(now, TraceKind::Yield, "xcache", format!("slot {}", lane.slot));
                }
                Outcome::FreeLane => {
                    self.lanes[lane_idx] = None;
                }
            }
        }
    }

    fn eval(&mut self, slot: usize, op: Operand) -> u64 {
        match op {
            Operand::Reg(r) => {
                self.xregs
                    .read(crate::xreg::XRegFile(slot as u16), r.0, &mut self.stats)
            }
            Operand::Imm(v) => v,
            Operand::Key => self.walkers[slot].as_ref().expect("walker").key.0,
            Operand::MsgWord(i) => self.walkers[slot].as_ref().expect("walker").msg[usize::from(i) % MSG_WORDS],
            Operand::Param(i) => self.cfg.params[usize::from(i)],
            Operand::MetaSector => {
                let w = self.walkers[slot].as_ref().expect("walker");
                let r = w.entry.expect("MetaSector without meta entry");
                u64::from(self.tags.entry(r).sector_start)
            }
        }
    }

    fn write_reg(&mut self, slot: usize, reg: u8, value: u64) {
        self.xregs
            .write(crate::xreg::XRegFile(slot as u16), reg, value, &mut self.stats);
    }

    #[allow(clippy::too_many_lines)]
    fn exec_action(&mut self, now: Cycle, slot: usize, action: Action) -> Outcome {
        match action {
            Action::Alu { op, dst, a, b } => {
                let (x, y) = (self.eval(slot, a), self.eval(slot, b));
                let v = match op {
                    AluOp::Add => x.wrapping_add(y),
                    AluOp::Sub => x.wrapping_sub(y),
                    AluOp::And => x & y,
                    AluOp::Or => x | y,
                    AluOp::Xor => x ^ y,
                    AluOp::Shl => x.wrapping_shl(y as u32),
                    AluOp::Srl => x.wrapping_shr(y as u32),
                    AluOp::Sra => ((x as i64).wrapping_shr(y as u32)) as u64,
                    AluOp::Mul => x.wrapping_mul(y),
                };
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::Mov { dst, a } => {
                let v = self.eval(slot, a);
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::AllocR => Outcome::Advance, // file claimed at launch
            Action::Hash { done, a } => {
                let v = self.eval(slot, a);
                let digest = splitmix64(v);
                let gen = self.walkers[slot].as_ref().expect("walker").gen;
                self.delayed.push((
                    now + self.cfg.hash_latency,
                    slot,
                    gen,
                    done,
                    [digest, 0, 0, 0],
                ));
                self.stats.incr("xcache.hash_issue");
                Outcome::Advance
            }
            Action::DramRead { addr, len } => {
                let (a, l) = (self.eval(slot, addr), self.eval(slot, len));
                let id = self.next_req_id;
                let req = MemReq::read(id, a, l as u32);
                match self.downstream.try_request(now, req) {
                    Ok(()) => {
                        self.next_req_id += 1;
                        let gen = self.walkers[slot].as_ref().expect("walker").gen;
                        self.inflight.insert(id, (slot, gen));
                        self.stats.incr("xcache.dram_req");
                        self.stats.add("xcache.dram_req_bytes", l);
                        self.trace.emit(
                            now,
                            TraceKind::DramIssue,
                            "xcache",
                            format!("slot {slot} addr {a:#x} len {l}"),
                        );
                        Outcome::Advance
                    }
                    Err(_) => Outcome::Stall,
                }
            }
            Action::DramWrite { addr, sector, len } => {
                let (a, s, l) = (
                    self.eval(slot, addr),
                    self.eval(slot, sector),
                    self.eval(slot, len),
                );
                let sectors = (l as usize).div_ceil(self.data.words_per_sector() * 8);
                let words = self.data.gather(s as u32, sectors as u32, &mut self.stats);
                let mut bytes = Vec::with_capacity(l as usize);
                for w in words {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                bytes.truncate(l as usize);
                let id = self.next_req_id;
                match self
                    .downstream
                    .try_request(now, MemReq::write(id, a, Bytes::from(bytes)))
                {
                    Ok(()) => {
                        self.next_req_id += 1;
                        let gen = self.walkers[slot].as_ref().expect("walker").gen;
                        self.inflight.insert(id, (slot, gen));
                        self.stats.incr("xcache.dram_req");
                        self.stats.add("xcache.dram_req_bytes", l);
                        Outcome::Advance
                    }
                    Err(_) => Outcome::Stall,
                }
            }
            Action::PostEvent {
                event,
                delay,
                payload,
            } => {
                let v = self.eval(slot, payload);
                let gen = self.walkers[slot].as_ref().expect("walker").gen;
                self.delayed
                    .push((now + u64::from(delay), slot, gen, event, [v, 0, 0, 0]));
                Outcome::Advance
            }
            Action::Peek { dst, word } => {
                let v = self.walkers[slot].as_ref().expect("walker").msg
                    [usize::from(word) % MSG_WORDS];
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::Respond => {
                let (key, origin_id, entry) = {
                    let w = self.walkers[slot].as_ref().expect("walker");
                    (w.key, w.origin.id(), w.entry)
                };
                let Some(r) = entry else {
                    return self.walker_error(now, slot, "Respond without meta entry");
                };
                let e = *self.tags.entry(r);
                let data = self
                    .data
                    .gather(e.sector_start, e.sector_count, &mut self.stats);
                self.respond(now, origin_id, key, true, data.clone());
                let waiters: Vec<MetaAccess> =
                    std::mem::take(&mut self.walkers[slot].as_mut().expect("walker").waiters);
                for wa in waiters {
                    self.respond(now, wa.id(), key, true, data.clone());
                }
                self.walkers[slot].as_mut().expect("walker").responded = true;
                Outcome::Advance
            }
            Action::AllocM => {
                let (key, state) = {
                    let w = self.walkers[slot].as_ref().expect("walker");
                    (w.key, w.state)
                };
                match self.tags.alloc(key, state, &mut self.stats) {
                    Some((r, evicted)) => {
                        if let Some(v) = evicted {
                            if v.sector_count > 0 {
                                self.data.free(v.sector_start, v.sector_count);
                            }
                        }
                        let w = self.walkers[slot].as_mut().expect("walker");
                        w.entry = Some(r);
                        w.owns_entry = true;
                        Outcome::Advance
                    }
                    // Set full: if every way is pinned and idle the stall
                    // can never clear — fault so the datapath can drain
                    // and retry (its overflow path). Otherwise a walker
                    // will retire and free a way: stall.
                    None if self.tags.set_unevictable(key) => {
                        self.stats.incr("xcache.set_pinned_full");
                        self.fault_walker(now, slot);
                        Outcome::FreeLane
                    }
                    None => Outcome::StallHazard,
                }
            }
            Action::DeallocM => {
                let taken = self.walkers[slot].as_mut().expect("walker").entry.take();
                let Some(r) = taken else {
                    return self.walker_error(now, slot, "DeallocM without meta entry");
                };
                let e = self.tags.invalidate(r, &mut self.stats);
                if e.sector_count > 0 {
                    self.data.free(e.sector_start, e.sector_count);
                }
                Outcome::Advance
            }
            Action::PinM => {
                let entry = self.walkers[slot].as_ref().expect("walker").entry;
                let Some(r) = entry else {
                    return self.walker_error(now, slot, "PinM without meta entry");
                };
                self.tags.entry_mut(r).pinned = true;
                Outcome::Advance
            }
            Action::InsertM { key, words } => {
                let (k, n) = (self.eval(slot, key), self.eval(slot, words));
                let k = MetaKey(k);
                // Best-effort: skip when already cached, being walked by
                // another walker (it will install its own entry), or when
                // there is no idle capacity.
                if self.tags.peek(k).is_some() || self.launching.contains_key(&k) {
                    return Outcome::Advance;
                }
                let Some(data) = self.walkers[slot].as_ref().expect("walker").fill_data.clone()
                else {
                    return self.walker_error(now, slot, "InsertM without a DRAM response");
                };
                let bytes = (n as usize * 8).min(data.len());
                let sectors = bytes.div_ceil(self.data.words_per_sector() * 8).max(1);
                let Some(start) = self.data.alloc(sectors, &mut self.stats) else {
                    self.stats.incr("xcache.insertm_skip");
                    return Outcome::Advance;
                };
                let Some((r, evicted)) = self.tags.alloc(k, StateId::DEFAULT, &mut self.stats)
                else {
                    self.data.free(start, sectors as u32);
                    self.stats.incr("xcache.insertm_skip");
                    return Outcome::Advance;
                };
                if let Some(v) = evicted {
                    if v.sector_count > 0 {
                        self.data.free(v.sector_start, v.sector_count);
                    }
                }
                self.data.fill_bytes(start, &data[..bytes], &mut self.stats);
                let entry = self.tags.entry_mut(r);
                entry.sector_start = start;
                entry.sector_count = sectors as u32;
                entry.active = false;
                // Speculative insert: lowest replacement priority so it
                // cannot displace proven-hot keys.
                self.tags.demote(r);
                self.stats.incr("xcache.insertm");
                Outcome::Advance
            }
            Action::UpdateM { start, end } => {
                let (s, e) = (self.eval(slot, start), self.eval(slot, end));
                let entry = self.walkers[slot].as_ref().expect("walker").entry;
                let Some(r) = entry else {
                    return self.walker_error(now, slot, "UpdateM without meta entry");
                };
                self.stats.incr("xcache.tag_write");
                let entry = self.tags.entry_mut(r);
                entry.sector_start = s as u32;
                entry.sector_count = (e.saturating_sub(s) + 1) as u32;
                Outcome::Advance
            }
            Action::Branch { cond, a, b, target } => {
                let taken = match cond {
                    Cond::Miss => !self.walkers[slot].as_ref().expect("walker").probe_hit,
                    Cond::Hit => self.walkers[slot].as_ref().expect("walker").probe_hit,
                    _ => {
                        let (x, y) = (self.eval(slot, a), self.eval(slot, b));
                        match cond {
                            Cond::Eq => x == y,
                            Cond::Ne => x != y,
                            Cond::Lt => x < y,
                            Cond::Ge => x >= y,
                            Cond::Le => x <= y,
                            Cond::Miss | Cond::Hit => unreachable!(),
                        }
                    }
                };
                if taken {
                    Outcome::Jump(usize::from(target))
                } else {
                    Outcome::Advance
                }
            }
            Action::Yield { state } => {
                let w = self.walkers[slot].as_mut().expect("walker");
                w.state = state;
                if let Some(r) = w.entry {
                    self.tags.entry_mut(r).state = state;
                }
                Outcome::YieldLane
            }
            Action::Retire => {
                self.retire_walker(now, slot);
                Outcome::FreeLane
            }
            Action::Fault => {
                self.fault_walker(now, slot);
                Outcome::FreeLane
            }
            Action::AllocD { dst, count } => {
                let n = self.eval(slot, count) as usize;
                if n == 0 {
                    return self.walker_error(now, slot, "AllocD of zero sectors");
                }
                loop {
                    if let Some(start) = self.data.alloc(n, &mut self.stats) {
                        self.write_reg(slot, dst.0, u64::from(start));
                        return Outcome::Advance;
                    }
                    // Capacity pressure: evict an idle entry and retry.
                    match self.evict_one_idle() {
                        true => continue,
                        false => {
                            self.stats.incr("xcache.dataram_full_stall");
                            return Outcome::StallHazard;
                        }
                    }
                }
            }
            Action::DeallocD => {
                let entry = self.walkers[slot].as_ref().expect("walker").entry;
                let Some(r) = entry else {
                    return self.walker_error(now, slot, "DeallocD without meta entry");
                };
                let entry = self.tags.entry_mut(r);
                let (s, c) = (entry.sector_start, entry.sector_count);
                entry.sector_count = 0;
                if c > 0 {
                    self.data.free(s, c);
                }
                Outcome::Advance
            }
            Action::ReadD { dst, sector, word } => {
                let (s, wd) = (self.eval(slot, sector), self.eval(slot, word));
                let v = self.data.read_word(s as u32, wd as u32, &mut self.stats);
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::WriteD {
                sector,
                word,
                value,
            } => {
                let (s, wd, v) = (
                    self.eval(slot, sector),
                    self.eval(slot, word),
                    self.eval(slot, value),
                );
                self.data.write_word(s as u32, wd as u32, v, &mut self.stats);
                Outcome::Advance
            }
            Action::FillD { sector, words } => {
                let (s, n) = (self.eval(slot, sector), self.eval(slot, words));
                let Some(data) = self.walkers[slot].as_ref().expect("walker").fill_data.clone()
                else {
                    return self.walker_error(now, slot, "FillD without a DRAM response");
                };
                let bytes = (n as usize * 8).min(data.len());
                self.data.fill_bytes(s as u32, &data[..bytes], &mut self.stats);
                Outcome::Advance
            }
        }
    }

    // ------------------------------------------------------------------
    // Walker completion
    // ------------------------------------------------------------------

    fn drain_resp_spill(&mut self, now: Cycle) {
        while !self.resp_spill.is_empty() {
            if self.resp_q.is_full() {
                break;
            }
            let (extra, resp) = self.resp_spill.pop_front().expect("front exists");
            self.resp_q
                .push_after(now, extra, resp)
                .expect("checked not full");
        }
    }

    fn respond(&mut self, now: Cycle, id: u64, key: MetaKey, found: bool, data: Vec<u64>) {
        let sectors = data.len().div_ceil(self.data.words_per_sector()).max(1) as u64;
        let resp = MetaResp {
            id,
            key,
            found,
            data,
        };
        if let Some(t) = self.issue_times.remove(&id) {
            self.stats
                .sample("xcache.load_to_use", now.since(t) + self.cfg.hit_latency + sectors - 1);
        }
        // Serial return of multi-sector elements (§5: "all blocks are
        // serially returned to compute datapath").
        let extra = sectors - 1;
        // FIFO order: once anything spilled, later responses follow it.
        if !self.resp_spill.is_empty() || self.resp_q.is_full() {
            self.stats.incr("xcache.resp_spill");
            self.resp_spill.push_back((extra, resp));
            return;
        }
        self.resp_q
            .push_after(now, extra, resp)
            .expect("checked not full");
    }

    fn retire_walker(&mut self, now: Cycle, slot: usize) {
        let mut w = self.walkers[slot].take().expect("retire on empty slot");
        self.launching.remove(&w.key);
        if let Some(r) = w.entry {
            let e = self.tags.entry_mut(r);
            e.active = false;
            // A completed entry rests in `Default`: future events on it
            // (e.g. a Store merge) dispatch from the resting state, not
            // from whatever mid-walk state the last yield recorded.
            e.state = StateId::DEFAULT;
        }
        if !w.responded {
            // Auto-acknowledge (stores / preloads that never Respond).
            self.respond(now, w.origin.id(), w.key, true, Vec::new());
        }
        // Remaining waiters replay through the front-end and hit.
        for wa in w.waiters.drain(..) {
            self.replay_q.push_back(wa);
        }
        self.xregs
            .release(crate::xreg::XRegFile(slot as u16), now, &mut self.stats);
        self.stats.incr("xcache.walker_retire");
        self.stats
            .sample("xcache.walk_latency", now.since(w.launched_at));
        self.trace
            .emit(now, TraceKind::Retire, "xcache", format!("slot {slot}"));
    }

    fn fault_walker(&mut self, now: Cycle, slot: usize) {
        let Some(mut w) = self.walkers[slot].take() else {
            return;
        };
        self.launching.remove(&w.key);
        if let Some(r) = w.entry {
            if w.owns_entry {
                let e = self.tags.invalidate(r, &mut self.stats);
                if e.sector_count > 0 {
                    self.data.free(e.sector_start, e.sector_count);
                }
            } else {
                // Attached to a pre-existing entry (store hit): the data
                // is still valid, just release the active claim.
                self.tags.entry_mut(r).active = false;
            }
        }
        if !w.responded {
            self.respond(now, w.origin.id(), w.key, false, Vec::new());
        }
        for wa in w.waiters.drain(..) {
            self.respond(now, wa.id(), w.key, false, Vec::new());
        }
        // Free any lane the walker held (thread discipline).
        for l in &mut self.lanes {
            if l.is_some_and(|l| l.slot == slot) {
                *l = None;
            }
        }
        self.xregs
            .release(crate::xreg::XRegFile(slot as u16), now, &mut self.stats);
        self.stats.incr("xcache.walker_fault");
    }

    /// Aborts a walker that lost an allocation race and replays its access
    /// (and waiters) through the trigger stage — no response is sent, so
    /// the datapath just sees a longer walk.
    fn abort_and_replay(&mut self, now: Cycle, slot: usize) {
        let Some(mut w) = self.walkers[slot].take() else {
            return;
        };
        self.launching.remove(&w.key);
        if let Some(r) = w.entry {
            if w.owns_entry {
                let e = self.tags.invalidate(r, &mut self.stats);
                if e.sector_count > 0 {
                    self.data.free(e.sector_start, e.sector_count);
                }
            } else {
                self.tags.entry_mut(r).active = false;
            }
        }
        self.replay_q.push_back(w.origin);
        for wa in w.waiters.drain(..) {
            self.replay_q.push_back(wa);
        }
        for l in &mut self.lanes {
            if l.is_some_and(|l| l.slot == slot) {
                *l = None;
            }
        }
        self.xregs
            .release(crate::xreg::XRegFile(slot as u16), now, &mut self.stats);
        self.stats.incr("xcache.walker_replay");
    }

    fn walker_error(&mut self, now: Cycle, slot: usize, what: &str) -> Outcome {
        self.stats.incr("xcache.walker_error");
        self.trace
            .emit(now, TraceKind::Other, "xcache", format!("slot {slot}: {what}"));
        self.fault_walker(now, slot);
        Outcome::FreeLane
    }

    /// Evicts one idle, unpinned meta entry (LRU-ish: first found in scan
    /// order), freeing its sectors. Returns whether anything was evicted.
    fn evict_one_idle(&mut self) -> bool {
        let victim = self
            .tags
            .iter()
            .filter(|e| !e.active && !e.pinned && e.sector_count > 0)
            .min_by_key(|e| e.sector_count)
            .map(|e| e.key);
        let Some(key) = victim else {
            return false;
        };
        let r = self.tags.peek(key).expect("victim present");
        let e = self.tags.invalidate(r, &mut self.stats);
        self.data.free(e.sector_start, e.sector_count);
        self.stats.incr("xcache.capacity_evict");
        true
    }
}

impl<D: MemoryPort> xcache_sim::Component for XCache<D> {
    fn name(&self) -> &str {
        &self.program.name
    }
    fn tick(&mut self, now: Cycle) {
        XCache::tick(self, now);
    }
    fn busy(&self) -> bool {
        XCache::busy(self)
    }
    fn report(&self, stats: &mut Stats) {
        stats.merge(&self.stats);
    }
}

fn category_counter(c: ActionCategory) -> &'static str {
    match c {
        ActionCategory::Agen => "xcache.action.agen",
        ActionCategory::Queue => "xcache.action.queue",
        ActionCategory::MetaTag => "xcache.action.metatag",
        ActionCategory::Control => "xcache.action.control",
        ActionCategory::DataRam => "xcache.action.dataram",
    }
}

fn action_operands(a: &Action) -> Vec<Operand> {
    let mut v: Vec<Operand> = a.reads().into_iter().map(Operand::Reg).collect();
    match a {
        Action::Alu { a, b, .. } | Action::UpdateM { start: a, end: b } => {
            v.push(*a);
            v.push(*b);
        }
        Action::Mov { a, .. } | Action::Hash { a, .. } | Action::PostEvent { payload: a, .. } => {
            v.push(*a);
        }
        Action::DramRead { addr, len } => {
            v.push(*addr);
            v.push(*len);
        }
        Action::DramWrite { addr, sector, len } => {
            v.push(*addr);
            v.push(*sector);
            v.push(*len);
        }
        Action::Branch { a, b, .. } => {
            v.push(*a);
            v.push(*b);
        }
        Action::AllocD { count, .. } => v.push(*count),
        Action::ReadD { sector, word, .. } => {
            v.push(*sector);
            v.push(*word);
        }
        Action::WriteD {
            sector,
            word,
            value,
        } => {
            v.push(*sector);
            v.push(*word);
            v.push(*value);
        }
        Action::FillD { sector, words } => {
            v.push(*sector);
            v.push(*words);
        }
        _ => {}
    }
    v
}

/// `SplitMix64` — the deterministic stand-in for the DSA hash unit.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
