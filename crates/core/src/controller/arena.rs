//! Arena-allocated walker state.
//!
//! Earlier revisions boxed each in-flight walk in a `Vec<Option<Walker>>`,
//! which meant (a) a heap allocation per launch (the pending-event deque,
//! the waiter list), and (b) every per-tick query — "any walker with a
//! pending event?", "any live walker at all?" — was a full scan over fat
//! rows. This arena flattens walker state into structure-of-arrays columns
//! sized once at construction:
//!
//! * **Hot columns** (`in_lane`, `gen`, `last_progress`, `msg`) are plain
//!   vectors indexed by slot, written directly by the pipeline stages.
//! * **Cold rows** ([`WalkerCold`]) hold the per-walk context that is only
//!   touched when the walk advances or ends.
//! * **Liveness and event queues** are private, maintained through
//!   [`activate`](WalkerArena::activate)/[`deactivate`](WalkerArena::deactivate)
//!   and [`push_event`](WalkerArena::push_event)/[`pop_event`](WalkerArena::pop_event)
//!   so the arena can keep `live_count` and `ready_events` counters exact —
//!   turning the controller's per-tick scans into O(1) reads.
//!
//! Slot buffers (the event deque, the waiter vector) persist across
//! tenants: launching a walker into a previously used slot performs no
//! heap allocation in steady state.

use std::collections::VecDeque;

use bytes::Bytes;

use xcache_isa::{EventId, RoutineId, StateId};
use xcache_sim::Cycle;

use crate::metatag::EntryRef;
use crate::{MetaAccess, MetaKey};

use super::MSG_WORDS;

/// Per-walk context touched O(1) times per event (launch, dispatch,
/// completion) rather than per cycle.
#[derive(Debug)]
pub(crate) struct WalkerCold {
    pub(crate) key: MetaKey,
    pub(crate) entry: Option<EntryRef>,
    pub(crate) state: StateId,
    pub(crate) probe_hit: bool,
    pub(crate) fill_data: Option<Bytes>,
    pub(crate) origin: MetaAccess,
    pub(crate) responded: bool,
    /// The walker allocated its meta entry (vs. attached to an existing
    /// one on a store hit); faults may only invalidate owned entries.
    pub(crate) owns_entry: bool,
    pub(crate) waiters: Vec<MetaAccess>,
    pub(crate) launched_at: Cycle,
    /// Routine most recently dispatched into a lane, for stall reports.
    pub(crate) last_routine: Option<RoutineId>,
}

impl WalkerCold {
    fn vacant() -> Self {
        WalkerCold {
            key: MetaKey::new(0),
            entry: None,
            state: StateId::DEFAULT,
            probe_hit: false,
            fill_data: None,
            origin: MetaAccess::Load {
                id: 0,
                key: MetaKey::new(0),
            },
            responded: false,
            owns_entry: false,
            waiters: Vec::new(),
            launched_at: Cycle::ZERO,
            last_routine: None,
        }
    }
}

/// Structure-of-arrays walker storage, one row per `#Active` slot.
#[derive(Debug)]
pub(crate) struct WalkerArena {
    /// Whether the slot's walker currently occupies an executor lane.
    pub(crate) in_lane: Vec<bool>,
    /// Per-slot generation counters, persisting across walker reuse so
    /// that stale DRAM responses never wake the wrong walker.
    pub(crate) gen: Vec<u32>,
    /// Last cycle each walker observably advanced — the watchdog's clock.
    pub(crate) last_progress: Vec<Cycle>,
    /// Payload of the event currently being executed.
    pub(crate) msg: Vec<[u64; MSG_WORDS]>,
    /// Cold per-walk context.
    pub(crate) cold: Vec<WalkerCold>,
    live: Vec<bool>,
    pending: Vec<VecDeque<(EventId, [u64; MSG_WORDS])>>,
    live_count: usize,
    /// Number of live slots with at least one undispatched event.
    ready_events: usize,
}

impl WalkerArena {
    pub(crate) fn new(slots: usize) -> Self {
        WalkerArena {
            in_lane: vec![false; slots],
            gen: vec![0; slots],
            last_progress: vec![Cycle::ZERO; slots],
            msg: vec![[0; MSG_WORDS]; slots],
            cold: (0..slots).map(|_| WalkerCold::vacant()).collect(),
            live: vec![false; slots],
            pending: (0..slots).map(|_| VecDeque::new()).collect(),
            live_count: 0,
            ready_events: 0,
        }
    }

    /// Number of slots (the geometry's `#Active`).
    pub(crate) fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether `slot` holds a live walker.
    pub(crate) fn is_live(&self, slot: usize) -> bool {
        self.live.get(slot).copied().unwrap_or(false)
    }

    /// Number of live walkers — O(1), maintained by activate/deactivate.
    pub(crate) fn live_count(&self) -> usize {
        self.live_count
    }

    /// Number of live slots with a pending (undispatched) event — O(1).
    pub(crate) fn ready_events(&self) -> usize {
        self.ready_events
    }

    /// Marks `slot` live. The caller populates the hot columns and the
    /// cold row; the previous tenant's buffers are reused as-is.
    pub(crate) fn activate(&mut self, slot: usize) {
        debug_assert!(!self.live[slot], "activate of a live slot");
        debug_assert!(self.pending[slot].is_empty(), "stale pending events");
        self.live[slot] = true;
        self.live_count += 1;
    }

    /// Ends the walk in `slot`: clears liveness, drops undelivered events
    /// and the fill buffer, frees the lane claim. Buffers keep their
    /// capacity for the slot's next tenant.
    pub(crate) fn deactivate(&mut self, slot: usize) {
        debug_assert!(self.live[slot], "deactivate of a vacant slot");
        self.live[slot] = false;
        self.live_count -= 1;
        if !self.pending[slot].is_empty() {
            self.pending[slot].clear();
            self.ready_events -= 1;
        }
        self.in_lane[slot] = false;
        self.cold[slot].fill_data = None;
    }

    /// Queues an event for the live walker in `slot`.
    pub(crate) fn push_event(&mut self, slot: usize, event: EventId, payload: [u64; MSG_WORDS]) {
        debug_assert!(self.live[slot], "event for a vacant slot");
        if self.pending[slot].is_empty() {
            self.ready_events += 1;
        }
        self.pending[slot].push_back((event, payload));
    }

    /// Dequeues the oldest pending event of `slot`, if any.
    pub(crate) fn pop_event(&mut self, slot: usize) -> Option<(EventId, [u64; MSG_WORDS])> {
        let e = self.pending[slot].pop_front();
        if e.is_some() && self.pending[slot].is_empty() {
            self.ready_events -= 1;
        }
        e
    }

    /// The oldest pending event of `slot` without dequeuing it.
    pub(crate) fn front_event(&self, slot: usize) -> Option<(EventId, [u64; MSG_WORDS])> {
        self.pending[slot].front().copied()
    }

    /// Whether `slot` has undispatched events.
    pub(crate) fn has_events(&self, slot: usize) -> bool {
        !self.pending[slot].is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_track_liveness_and_readiness() {
        let mut a = WalkerArena::new(4);
        assert_eq!(a.live_count(), 0);
        assert_eq!(a.ready_events(), 0);
        a.activate(1);
        assert_eq!(a.live_count(), 1);
        a.push_event(1, EventId::MISS, [0; MSG_WORDS]);
        a.push_event(1, EventId::FILL, [9; MSG_WORDS]);
        assert_eq!(a.ready_events(), 1, "one slot ready, not one per event");
        assert_eq!(a.pop_event(1).map(|(e, _)| e), Some(EventId::MISS));
        assert_eq!(a.ready_events(), 1, "still has a second event");
        assert_eq!(a.pop_event(1).map(|(e, _)| e), Some(EventId::FILL));
        assert_eq!(a.ready_events(), 0);
        a.deactivate(1);
        assert_eq!(a.live_count(), 0);
    }

    #[test]
    fn deactivate_drops_pending_events() {
        let mut a = WalkerArena::new(2);
        a.activate(0);
        a.push_event(0, EventId::MISS, [0; MSG_WORDS]);
        a.deactivate(0);
        assert_eq!(a.ready_events(), 0);
        a.activate(0);
        assert!(a.front_event(0).is_none(), "no stale events for new tenant");
        assert!(!a.has_events(0));
    }
}
