//! Executor stage (back-end, §4.3).
//!
//! `#Exe` executor lanes each run one action of a woken routine per cycle.
//! Routines are *direct-threaded*: at build time every verified routine is
//! pre-decoded ([`xcache_isa::predecode`]) and paired with a handler
//! function pointer per action, so the per-cycle fetch is one indexed load
//! plus an indirect call — no re-decoding of the `Action` enum on the hot
//! path. Handlers evaluate operands against the walker's X-register file
//! and the shared structural state (meta-tag array, data RAM, downstream
//! port); their [`Outcome`] advances, redirects, stalls, or ends the
//! routine.
//!
//! Action execution is fallible: walker-context accesses go through the
//! checked [`wk`](XCache::wk)/[`wk_mut`](XCache::wk_mut) accessors, and
//! any [`SimError`] faults the offending walker (counted in
//! `xcache.walker_error`) instead of panicking the simulation.

use bytes::Bytes;

use xcache_isa::predecode::{DecKind, DecOp, DecOperand, DecodedProgram};
use xcache_isa::ActionCategory;
use xcache_mem::{MemReq, MemoryPort};
use xcache_sim::{counter, CounterId, Cycle, TraceKind};

use crate::{splitmix64, MetaAccess, MetaKey};

use super::sched::YieldPolicy;
use super::{SimError, XCache, HAZARD_RETRY, STALL_LIMIT};

/// How one executed action leaves its lane.
pub(super) enum Outcome {
    Advance,
    Jump(usize),
    Stall,
    /// Stalled on a resource held by another walker (see [`HAZARD_RETRY`]).
    StallHazard,
    YieldLane,
    FreeLane,
}

/// An action handler: executes one decoded op for the walker in `slot`.
type Handler<D> = fn(&mut XCache<D>, Cycle, usize, &DecOp) -> Result<Outcome, SimError>;

/// One word of the direct-threaded dispatch table: the decoded op, its
/// handler, and its pre-resolved stat category counter.
pub(crate) struct OpEntry<D> {
    handler: Handler<D>,
    op: DecOp,
    category: CounterId,
}

// Manual impls: `#[derive]` would put a bound on `D`, which only appears
// behind a fn pointer here.
impl<D> Clone for OpEntry<D> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<D> Copy for OpEntry<D> {}

impl<D> std::fmt::Debug for OpEntry<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpEntry").field("op", &self.op).finish()
    }
}

/// Builds the dispatch table for a pre-decoded program: `table[r][pc]`
/// mirrors `program.routines[r].actions[pc]` (branch targets carry over).
pub(super) fn build_dispatch<D: MemoryPort>(decoded: &DecodedProgram) -> Vec<Box<[OpEntry<D>]>> {
    decoded
        .routines
        .iter()
        .map(|r| {
            r.iter()
                .map(|&op| OpEntry {
                    handler: handler_for::<D>(op.kind),
                    op,
                    category: category_counter(op.category),
                })
                .collect()
        })
        .collect()
}

fn handler_for<D: MemoryPort>(kind: DecKind) -> Handler<D> {
    match kind {
        DecKind::AluAdd => h_alu_add,
        DecKind::AluSub => h_alu_sub,
        DecKind::AluAnd => h_alu_and,
        DecKind::AluOr => h_alu_or,
        DecKind::AluXor => h_alu_xor,
        DecKind::AluShl => h_alu_shl,
        DecKind::AluSrl => h_alu_srl,
        DecKind::AluSra => h_alu_sra,
        DecKind::AluMul => h_alu_mul,
        DecKind::Mov => h_mov,
        DecKind::AllocR => h_alloc_r,
        DecKind::Hash => h_hash,
        DecKind::DramRead => h_dram_read,
        DecKind::DramWrite => h_dram_write,
        DecKind::PostEvent => h_post_event,
        DecKind::Peek => h_peek,
        DecKind::Respond => h_respond,
        DecKind::AllocM => h_alloc_m,
        DecKind::DeallocM => h_dealloc_m,
        DecKind::PinM => h_pin_m,
        DecKind::InsertM => h_insert_m,
        DecKind::UpdateM => h_update_m,
        DecKind::BrEq => h_br_eq,
        DecKind::BrNe => h_br_ne,
        DecKind::BrLt => h_br_lt,
        DecKind::BrGe => h_br_ge,
        DecKind::BrLe => h_br_le,
        DecKind::BrMiss => h_br_miss,
        DecKind::BrHit => h_br_hit,
        DecKind::Yield => h_yield,
        DecKind::Retire => h_retire,
        DecKind::Fault => h_fault,
        DecKind::AllocD => h_alloc_d,
        DecKind::DeallocD => h_dealloc_d,
        DecKind::ReadD => h_read_d,
        DecKind::WriteD => h_write_d,
        DecKind::FillD => h_fill_d,
    }
}

impl<D: MemoryPort> XCache<D> {
    /// Runs every active lane for one cycle.
    ///
    /// Macro mode (`XCACHE_EXEC=macro`, the default): a lane whose next
    /// action heads a fused superinstruction run executes the whole run
    /// in one dispatch loop, then sleeps until the cycle the run's last
    /// action would have completed one-per-cycle (`Lane::resume`).
    /// Fused ops touch only per-walker state and cannot fault while the
    /// walker is live, so bulk application at cycle `T` is
    /// byte-identical to one-per-cycle at `T..T+n-1`; stat increments
    /// buffer in the epoch scratch and trace emissions in the trace
    /// epoch, both flushed once per batch.
    pub(super) fn execute(&mut self, now: Cycle) {
        let fuse_runs = matches!(xcache_sim::exec_mode(), xcache_sim::ExecMode::Macro);
        self.ctx.trace.begin_epoch();
        for lane_idx in 0..self.lanes.len() {
            let Some(mut lane) = self.lanes[lane_idx] else {
                continue;
            };
            if lane.waiting {
                continue;
            }
            if !self.arena.is_live(lane.slot) {
                // Walker faulted earlier this cycle.
                self.lanes[lane_idx] = None;
                continue;
            }
            if lane.resume > now {
                continue; // macro-dormant: fused run already executed
            }
            // Copy the table word out: entries are small and `Copy`, and
            // handlers need `&mut self`.
            let entry = self.dispatch[lane.routine.0 as usize][lane.pc];
            if fuse_runs && entry.op.fuse > 1 {
                self.execute_fused(now, lane_idx, lane, entry.op.fuse);
                continue;
            }
            self.ctx.stats.incr_id(counter!("xcache.ucode_read"));
            self.ctx.stats.incr_id(entry.category);
            let outcome = match (entry.handler)(self, now, lane.slot, &entry.op) {
                Ok(o) => o,
                Err(mut e) => {
                    e.routine = Some(self.program.routines[lane.routine.0 as usize].name.clone());
                    self.runtime_error(now, &e)
                }
            };
            match outcome {
                Outcome::Advance => {
                    lane.pc += 1;
                    lane.stall_cycles = 0;
                    self.lanes[lane_idx] = Some(lane);
                    self.note_progress(now, lane.slot);
                }
                Outcome::Jump(pc) => {
                    lane.pc = pc;
                    lane.stall_cycles = 0;
                    self.lanes[lane_idx] = Some(lane);
                    self.note_progress(now, lane.slot);
                }
                Outcome::Stall => {
                    lane.stall_cycles += 1;
                    self.ctx.stats.incr_id(counter!("xcache.exec_stall"));
                    if lane.stall_cycles > STALL_LIMIT {
                        self.ctx.stats.incr_id(counter!("xcache.walker_timeout"));
                        self.lanes[lane_idx] = None;
                        self.fault_walker(now, lane.slot);
                    } else {
                        self.lanes[lane_idx] = Some(lane);
                    }
                }
                Outcome::StallHazard => {
                    lane.stall_cycles += 1;
                    self.ctx.stats.incr_id(counter!("xcache.exec_stall"));
                    if lane.stall_cycles > HAZARD_RETRY {
                        self.lanes[lane_idx] = None;
                        self.abort_and_replay(now, lane.slot);
                    } else {
                        self.lanes[lane_idx] = Some(lane);
                    }
                }
                Outcome::YieldLane => {
                    match self.yield_policy {
                        YieldPolicy::ReleaseLane => {
                            // A freed lane can unblock a stalled launch.
                            self.launch_stalled = false;
                            self.lanes[lane_idx] = None;
                            self.arena.in_lane[lane.slot] = false;
                        }
                        YieldPolicy::HoldLane => {
                            lane.waiting = true;
                            self.lanes[lane_idx] = Some(lane);
                        }
                    }
                    self.ctx
                        .trace
                        .emit_with(now, TraceKind::Yield, "xcache", || {
                            format!("slot {}", lane.slot)
                        });
                    self.note_progress(now, lane.slot);
                }
                Outcome::FreeLane => {
                    self.lanes[lane_idx] = None;
                }
            }
        }
        self.ctx.trace.flush_epoch();
        if !self.epoch.is_empty() {
            self.epoch.flush(&mut self.ctx.stats);
        }
    }

    /// Executes a whole fused superinstruction run (`run` actions from
    /// `lane.pc`) in one dispatch loop, then parks the lane until
    /// `now + run` — the cycle micro mode would execute the boundary op.
    ///
    /// Every op in a run is in the fusible set (infallible while the
    /// walker is live, per-walker state only, always `Advance`), so
    /// per-op outcome handling reduces to the advance arm; the counters
    /// micro mode bumps once per cycle accumulate in the epoch scratch
    /// with identical totals.
    fn execute_fused(&mut self, now: Cycle, lane_idx: usize, mut lane: super::Lane, run: u16) {
        self.epoch
            .add_id(counter!("xcache.ucode_read"), u64::from(run));
        for k in 0..usize::from(run) {
            let e = self.dispatch[lane.routine.0 as usize][lane.pc + k];
            self.epoch.incr_id(e.category);
            match (e.handler)(self, now, lane.slot, &e.op) {
                Ok(Outcome::Advance) => {}
                Ok(_) => unreachable!("fused ops always advance"),
                Err(mut err) => {
                    // Unreachable for fusible ops on a live walker; kept
                    // as a structured fault (not a panic) to match the
                    // executor's no-panic contract.
                    debug_assert!(false, "fused op failed: {err}");
                    err.routine = Some(self.program.routines[lane.routine.0 as usize].name.clone());
                    self.runtime_error(now, &err);
                    self.lanes[lane_idx] = None;
                    return;
                }
            }
        }
        lane.pc += usize::from(run);
        lane.stall_cycles = 0;
        lane.resume = now + u64::from(run);
        self.lanes[lane_idx] = Some(lane);
        self.note_progress(now + (u64::from(run) - 1), lane.slot);
    }

    /// Records forward progress for the watchdog: the walker in `slot`
    /// advanced at `at`. Stalled outcomes deliberately do *not* count —
    /// a lane spinning on a hazard is exactly what the watchdog exists
    /// to interrupt. Max-semantics: a macro fused run stamps the cycle
    /// its last action completes (still in the future), and no later
    /// same-run stamp may regress it; in micro mode stamps are monotone,
    /// so `max` is the identity.
    fn note_progress(&mut self, at: Cycle, slot: usize) {
        self.global_progress = self.global_progress.max(at);
        if self.arena.is_live(slot) {
            self.arena.last_progress[slot] = self.arena.last_progress[slot].max(at);
        }
    }

    /// Evaluates a decoded operand for the walker in `slot`.
    fn dval(&mut self, now: Cycle, slot: usize, op: DecOperand) -> Result<u64, SimError> {
        Ok(match op {
            DecOperand::Reg(r) => {
                self.xregs
                    .read(crate::xreg::XRegFile(slot as u16), r, &mut self.ctx.stats)
            }
            DecOperand::Imm(v) => v,
            DecOperand::Key => self.wk(slot, now)?.key.0,
            DecOperand::MsgWord(i) => {
                self.wk(slot, now)?;
                self.arena.msg[slot][usize::from(i)]
            }
            DecOperand::MetaSector => {
                let r = self
                    .wk(slot, now)?
                    .entry
                    .ok_or_else(|| SimError::new(slot, now, "MetaSector without meta entry"))?;
                u64::from(self.tags.entry(r).sector_start)
            }
            DecOperand::None => 0,
        })
    }

    fn write_reg(&mut self, slot: usize, reg: u8, value: u64) {
        self.xregs.write(
            crate::xreg::XRegFile(slot as u16),
            reg,
            value,
            &mut self.ctx.stats,
        );
    }
}

macro_rules! alu_handlers {
    ($($name:ident: |$x:ident, $y:ident| $e:expr;)*) => {
        $(
            fn $name<D: MemoryPort>(
                xc: &mut XCache<D>,
                now: Cycle,
                slot: usize,
                op: &DecOp,
            ) -> Result<Outcome, SimError> {
                let $x = xc.dval(now, slot, op.a)?;
                let $y = xc.dval(now, slot, op.b)?;
                xc.write_reg(slot, op.dst, $e);
                Ok(Outcome::Advance)
            }
        )*
    };
}

alu_handlers! {
    h_alu_add: |x, y| x.wrapping_add(y);
    h_alu_sub: |x, y| x.wrapping_sub(y);
    h_alu_and: |x, y| x & y;
    h_alu_or:  |x, y| x | y;
    h_alu_xor: |x, y| x ^ y;
    h_alu_shl: |x, y| x.wrapping_shl(y as u32);
    h_alu_srl: |x, y| x.wrapping_shr(y as u32);
    h_alu_sra: |x, y| ((x as i64).wrapping_shr(y as u32)) as u64;
    h_alu_mul: |x, y| x.wrapping_mul(y);
}

macro_rules! branch_handlers {
    ($($name:ident: |$x:ident, $y:ident| $e:expr;)*) => {
        $(
            fn $name<D: MemoryPort>(
                xc: &mut XCache<D>,
                now: Cycle,
                slot: usize,
                op: &DecOp,
            ) -> Result<Outcome, SimError> {
                let $x = xc.dval(now, slot, op.a)?;
                let $y = xc.dval(now, slot, op.b)?;
                Ok(if $e {
                    Outcome::Jump(op.aux as usize)
                } else {
                    Outcome::Advance
                })
            }
        )*
    };
}

branch_handlers! {
    h_br_eq: |x, y| x == y;
    h_br_ne: |x, y| x != y;
    h_br_lt: |x, y| x < y;
    h_br_ge: |x, y| x >= y;
    h_br_le: |x, y| x <= y;
}

fn h_br_miss<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    Ok(if xc.wk(slot, now)?.probe_hit {
        Outcome::Advance
    } else {
        Outcome::Jump(op.aux as usize)
    })
}

fn h_br_hit<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    Ok(if xc.wk(slot, now)?.probe_hit {
        Outcome::Jump(op.aux as usize)
    } else {
        Outcome::Advance
    })
}

fn h_mov<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let v = xc.dval(now, slot, op.a)?;
    xc.write_reg(slot, op.dst, v);
    Ok(Outcome::Advance)
}

fn h_alloc_r<D: MemoryPort>(
    _xc: &mut XCache<D>,
    _now: Cycle,
    _slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    // File claimed at launch.
    Ok(Outcome::Advance)
}

fn h_hash<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let v = xc.dval(now, slot, op.a)?;
    let digest = splitmix64(v);
    xc.wk(slot, now)?;
    let gen = xc.arena.gen[slot];
    xc.delayed.schedule(
        now + xc.cfg.hash_latency,
        (slot, gen, op.event, [digest, 0, 0, 0]),
    );
    xc.ctx.stats.incr_id(counter!("xcache.hash_issue"));
    Ok(Outcome::Advance)
}

fn h_dram_read<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let a = xc.dval(now, slot, op.a)?;
    let l = xc.dval(now, slot, op.b)?;
    let id = xc.next_req_id;
    let req = MemReq::read(id, a, l as u32);
    match xc.downstream.try_request(now, req) {
        Ok(()) => {
            xc.next_req_id += 1;
            xc.ds_dirty = true;
            xc.wk(slot, now)?;
            let gen = xc.arena.gen[slot];
            xc.inflight.insert(id, (slot, gen));
            xc.ctx.stats.incr_id(counter!("xcache.dram_req"));
            xc.ctx.stats.add_id(counter!("xcache.dram_req_bytes"), l);
            xc.ctx
                .trace
                .emit_with(now, TraceKind::DramIssue, "xcache", || {
                    format!("slot {slot} addr {a:#x} len {l}")
                });
            Ok(Outcome::Advance)
        }
        Err(_) => Ok(Outcome::Stall),
    }
}

fn h_dram_write<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let a = xc.dval(now, slot, op.a)?;
    let s = xc.dval(now, slot, op.b)?;
    let l = xc.dval(now, slot, op.c)?;
    let sectors = (l as usize).div_ceil(xc.data.words_per_sector() * 8);
    let mut words = xc.take_buf();
    xc.data
        .gather_into(s as u32, sectors as u32, &mut words, &mut xc.ctx.stats);
    let mut bytes = Vec::with_capacity(l as usize);
    for w in &words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.truncate(l as usize);
    xc.give_buf(words);
    let id = xc.next_req_id;
    match xc
        .downstream
        .try_request(now, MemReq::write(id, a, Bytes::from(bytes)))
    {
        Ok(()) => {
            xc.next_req_id += 1;
            xc.ds_dirty = true;
            xc.wk(slot, now)?;
            let gen = xc.arena.gen[slot];
            xc.inflight.insert(id, (slot, gen));
            xc.ctx.stats.incr_id(counter!("xcache.dram_req"));
            xc.ctx.stats.add_id(counter!("xcache.dram_req_bytes"), l);
            Ok(Outcome::Advance)
        }
        Err(_) => Ok(Outcome::Stall),
    }
}

fn h_post_event<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let v = xc.dval(now, slot, op.a)?;
    xc.wk(slot, now)?;
    let gen = xc.arena.gen[slot];
    xc.delayed
        .schedule(now + u64::from(op.aux), (slot, gen, op.event, [v, 0, 0, 0]));
    Ok(Outcome::Advance)
}

fn h_peek<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    xc.wk(slot, now)?;
    let v = xc.arena.msg[slot][op.aux as usize];
    xc.write_reg(slot, op.dst, v);
    Ok(Outcome::Advance)
}

fn h_respond<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    let (key, origin_id, entry) = {
        let w = xc.wk(slot, now)?;
        (w.key, w.origin.id(), w.entry)
    };
    let r = entry.ok_or_else(|| SimError::new(slot, now, "Respond without meta entry"))?;
    let e = *xc.tags.entry(r);
    let mut data = xc.take_buf();
    xc.data
        .gather_into(e.sector_start, e.sector_count, &mut data, &mut xc.ctx.stats);
    let mut waiters: Vec<MetaAccess> = std::mem::take(&mut xc.wk_mut(slot, now)?.waiters);
    // Origin first, then waiters in arrival order; the last response
    // consumes the gathered buffer, the rest draw copies from the pool.
    if waiters.is_empty() {
        xc.respond(now, origin_id, key, true, data);
    } else {
        let mut buf = xc.take_buf();
        buf.extend_from_slice(&data);
        xc.respond(now, origin_id, key, true, buf);
        let last = waiters.len() - 1;
        for (i, wa) in waiters.drain(..).enumerate() {
            if i == last {
                xc.respond(now, wa.id(), key, true, std::mem::take(&mut data));
            } else {
                let mut buf = xc.take_buf();
                buf.extend_from_slice(&data);
                xc.respond(now, wa.id(), key, true, buf);
            }
        }
    }
    let w = xc.wk_mut(slot, now)?;
    w.waiters = waiters;
    w.responded = true;
    Ok(Outcome::Advance)
}

fn h_alloc_m<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    let (key, state) = {
        let w = xc.wk(slot, now)?;
        (w.key, w.state)
    };
    match xc.tags.alloc(key, state, &mut xc.ctx.stats) {
        Some((r, evicted)) => {
            // Tag contents changed: a stalled trigger window must rescan.
            xc.launch_stalled = false;
            if let Some(v) = evicted {
                if v.sector_count > 0 {
                    xc.data.free(v.sector_start, v.sector_count);
                }
            }
            let w = xc.wk_mut(slot, now)?;
            w.entry = Some(r);
            w.owns_entry = true;
            Ok(Outcome::Advance)
        }
        // Set full: if every way is pinned and idle the stall can never
        // clear — fault so the datapath can drain and retry (its overflow
        // path). Otherwise a walker will retire and free a way: stall.
        None if xc.tags.set_unevictable(key) => {
            xc.ctx.stats.incr_id(counter!("xcache.set_pinned_full"));
            xc.fault_walker(now, slot);
            Ok(Outcome::FreeLane)
        }
        None => Ok(Outcome::StallHazard),
    }
}

fn h_dealloc_m<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    let r = xc
        .wk_mut(slot, now)?
        .entry
        .take()
        .ok_or_else(|| SimError::new(slot, now, "DeallocM without meta entry"))?;
    let e = xc.tags.invalidate(r, &mut xc.ctx.stats);
    // A freed way can unblock a stalled launch.
    xc.launch_stalled = false;
    if e.sector_count > 0 {
        xc.data.free(e.sector_start, e.sector_count);
    }
    Ok(Outcome::Advance)
}

fn h_pin_m<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    let r = xc
        .wk(slot, now)?
        .entry
        .ok_or_else(|| SimError::new(slot, now, "PinM without meta entry"))?;
    xc.tags.update_entry(r, |e| e.pinned = true);
    // A newly pinned-full set launches to fast-fault; pinning also
    // suppresses misfires — either can flip a stalled hazard check.
    xc.launch_stalled = false;
    Ok(Outcome::Advance)
}

fn h_insert_m<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let k = xc.dval(now, slot, op.a)?;
    let n = xc.dval(now, slot, op.b)?;
    let k = MetaKey(k);
    // Best-effort: skip when already cached, being walked by another
    // walker (it will install its own entry), or when there is no idle
    // capacity.
    if xc.tags.peek(k).is_some() || xc.launching.contains_key(&k) {
        return Ok(Outcome::Advance);
    }
    let data = xc
        .wk(slot, now)?
        .fill_data
        .clone()
        .ok_or_else(|| SimError::new(slot, now, "InsertM without a DRAM response"))?;
    let bytes = (n as usize * 8).min(data.len());
    let sectors = bytes.div_ceil(xc.data.words_per_sector() * 8).max(1);
    let Some(start) = xc.data.alloc(sectors, &mut xc.ctx.stats) else {
        xc.ctx.stats.incr_id(counter!("xcache.insertm_skip"));
        return Ok(Outcome::Advance);
    };
    let Some((r, evicted)) = xc
        .tags
        .alloc(k, xcache_isa::StateId::DEFAULT, &mut xc.ctx.stats)
    else {
        xc.data.free(start, sectors as u32);
        xc.ctx.stats.incr_id(counter!("xcache.insertm_skip"));
        return Ok(Outcome::Advance);
    };
    // Tag contents changed: a stalled trigger window must rescan.
    xc.launch_stalled = false;
    if let Some(v) = evicted {
        if v.sector_count > 0 {
            xc.data.free(v.sector_start, v.sector_count);
        }
    }
    xc.data.fill_bytes(start, &data[..bytes], &mut xc.ctx.stats);
    xc.tags.update_entry(r, |entry| {
        entry.sector_start = start;
        entry.sector_count = sectors as u32;
        entry.active = false;
    });
    // Speculative insert: lowest replacement priority so it cannot
    // displace proven-hot keys.
    xc.tags.demote(r);
    xc.ctx.stats.incr_id(counter!("xcache.insertm"));
    Ok(Outcome::Advance)
}

fn h_update_m<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let s = xc.dval(now, slot, op.a)?;
    let e = xc.dval(now, slot, op.b)?;
    let r = xc
        .wk(slot, now)?
        .entry
        .ok_or_else(|| SimError::new(slot, now, "UpdateM without meta entry"))?;
    xc.ctx.stats.incr_id(counter!("xcache.tag_write"));
    xc.tags.update_entry(r, |entry| {
        entry.sector_start = s as u32;
        entry.sector_count = (e.saturating_sub(s) + 1) as u32;
    });
    Ok(Outcome::Advance)
}

fn h_yield<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let state = op.state;
    let w = xc.wk_mut(slot, now)?;
    w.state = state;
    if let Some(r) = w.entry {
        xc.tags.update_entry(r, |e| e.state = state);
    }
    Ok(Outcome::YieldLane)
}

fn h_retire<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    xc.retire_walker(now, slot);
    Ok(Outcome::FreeLane)
}

fn h_fault<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    xc.fault_walker(now, slot);
    Ok(Outcome::FreeLane)
}

fn h_alloc_d<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let n = xc.dval(now, slot, op.a)? as usize;
    if n == 0 {
        return Err(SimError::new(slot, now, "AllocD of zero sectors"));
    }
    loop {
        if let Some(start) = xc.data.alloc(n, &mut xc.ctx.stats) {
            xc.write_reg(slot, op.dst, u64::from(start));
            return Ok(Outcome::Advance);
        }
        // Capacity pressure: evict an idle entry and retry.
        if !xc.evict_one_idle() {
            xc.ctx.stats.incr_id(counter!("xcache.dataram_full_stall"));
            return Ok(Outcome::StallHazard);
        }
    }
}

fn h_dealloc_d<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    _op: &DecOp,
) -> Result<Outcome, SimError> {
    let r = xc
        .wk(slot, now)?
        .entry
        .ok_or_else(|| SimError::new(slot, now, "DeallocD without meta entry"))?;
    let (s, c) = xc.tags.update_entry(r, |entry| {
        let sc = (entry.sector_start, entry.sector_count);
        entry.sector_count = 0;
        sc
    });
    if c > 0 {
        xc.data.free(s, c);
    }
    Ok(Outcome::Advance)
}

fn h_read_d<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let s = xc.dval(now, slot, op.a)?;
    let wd = xc.dval(now, slot, op.b)?;
    let v = xc.data.read_word(s as u32, wd as u32, &mut xc.ctx.stats);
    xc.write_reg(slot, op.dst, v);
    Ok(Outcome::Advance)
}

fn h_write_d<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let s = xc.dval(now, slot, op.a)?;
    let wd = xc.dval(now, slot, op.b)?;
    let v = xc.dval(now, slot, op.c)?;
    xc.data
        .write_word(s as u32, wd as u32, v, &mut xc.ctx.stats);
    Ok(Outcome::Advance)
}

fn h_fill_d<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: Cycle,
    slot: usize,
    op: &DecOp,
) -> Result<Outcome, SimError> {
    let s = xc.dval(now, slot, op.a)?;
    let n = xc.dval(now, slot, op.b)?;
    let data = xc
        .wk(slot, now)?
        .fill_data
        .clone()
        .ok_or_else(|| SimError::new(slot, now, "FillD without a DRAM response"))?;
    let bytes = (n as usize * 8).min(data.len());
    xc.data
        .fill_bytes(s as u32, &data[..bytes], &mut xc.ctx.stats);
    Ok(Outcome::Advance)
}

fn category_counter(c: ActionCategory) -> CounterId {
    match c {
        ActionCategory::Agen => counter!("xcache.action.agen"),
        ActionCategory::Queue => counter!("xcache.action.queue"),
        ActionCategory::MetaTag => counter!("xcache.action.metatag"),
        ActionCategory::Control => counter!("xcache.action.control"),
        ActionCategory::DataRam => counter!("xcache.action.dataram"),
    }
}
