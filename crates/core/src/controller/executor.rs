//! Executor stage (back-end, §4.3).
//!
//! `#Exe` executor lanes each run one action of a woken routine per cycle.
//! Actions evaluate operands against the walker's X-register file and the
//! shared structural state (meta-tag array, data RAM, downstream port);
//! their [`Outcome`] advances, redirects, stalls, or ends the routine.
//!
//! Action execution is fallible: walker-context accesses go through the
//! checked [`walker`](XCache::walker)/[`walker_mut`](XCache::walker_mut)
//! accessors, and any [`SimError`] faults the offending walker (counted in
//! `xcache.walker_error`) instead of panicking the simulation.

use bytes::Bytes;

use xcache_isa::{Action, ActionCategory, AluOp, Cond, Operand};
use xcache_mem::{MemReq, MemoryPort};
use xcache_sim::{counter, Cycle, TraceKind};

use crate::{splitmix64, MetaAccess, MetaKey};

use super::sched::{discipline_stage, YieldPolicy};
use super::{SimError, XCache, HAZARD_RETRY, MSG_WORDS, STALL_LIMIT};

/// How one executed action leaves its lane.
pub(super) enum Outcome {
    Advance,
    Jump(usize),
    Stall,
    /// Stalled on a resource held by another walker (see [`HAZARD_RETRY`]).
    StallHazard,
    YieldLane,
    FreeLane,
}

impl<D: MemoryPort> XCache<D> {
    /// Runs every active lane for one cycle.
    pub(super) fn execute(&mut self, now: Cycle) {
        for lane_idx in 0..self.lanes.len() {
            let Some(mut lane) = self.lanes[lane_idx] else {
                continue;
            };
            if lane.waiting {
                continue;
            }
            if self.walkers[lane.slot].is_none() {
                // Walker faulted earlier this cycle.
                self.lanes[lane_idx] = None;
                continue;
            }
            let action = self.program.routines[lane.routine.0 as usize].actions[lane.pc];
            // Any executed action may change the trigger stage's hazard
            // state (tags, X-regs, lanes), so a stalled window must be
            // re-examined next cycle before fast-forwarding resumes.
            self.launch_stalled = false;
            self.ctx.stats.incr_id(counter!("xcache.ucode_read"));
            self.ctx.stats.incr_id(category_counter(action.category()));
            let outcome = match self.exec_action(now, lane.slot, action) {
                Ok(o) => o,
                Err(mut e) => {
                    e.routine = Some(self.program.routines[lane.routine.0 as usize].name.clone());
                    self.runtime_error(now, &e)
                }
            };
            match outcome {
                Outcome::Advance => {
                    lane.pc += 1;
                    lane.stall_cycles = 0;
                    self.lanes[lane_idx] = Some(lane);
                    self.note_progress(now, lane.slot);
                }
                Outcome::Jump(pc) => {
                    lane.pc = pc;
                    lane.stall_cycles = 0;
                    self.lanes[lane_idx] = Some(lane);
                    self.note_progress(now, lane.slot);
                }
                Outcome::Stall => {
                    lane.stall_cycles += 1;
                    self.ctx.stats.incr_id(counter!("xcache.exec_stall"));
                    if lane.stall_cycles > STALL_LIMIT {
                        self.ctx.stats.incr_id(counter!("xcache.walker_timeout"));
                        self.lanes[lane_idx] = None;
                        self.fault_walker(now, lane.slot);
                    } else {
                        self.lanes[lane_idx] = Some(lane);
                    }
                }
                Outcome::StallHazard => {
                    lane.stall_cycles += 1;
                    self.ctx.stats.incr_id(counter!("xcache.exec_stall"));
                    if lane.stall_cycles > HAZARD_RETRY {
                        self.lanes[lane_idx] = None;
                        self.abort_and_replay(now, lane.slot);
                    } else {
                        self.lanes[lane_idx] = Some(lane);
                    }
                }
                Outcome::YieldLane => {
                    match discipline_stage(self.cfg.discipline).on_yield() {
                        YieldPolicy::ReleaseLane => {
                            self.lanes[lane_idx] = None;
                            if let Some(w) = self.walkers[lane.slot].as_mut() {
                                w.in_lane = false;
                            }
                        }
                        YieldPolicy::HoldLane => {
                            lane.waiting = true;
                            self.lanes[lane_idx] = Some(lane);
                        }
                    }
                    self.ctx.trace.emit(
                        now,
                        TraceKind::Yield,
                        "xcache",
                        format!("slot {}", lane.slot),
                    );
                    self.note_progress(now, lane.slot);
                }
                Outcome::FreeLane => {
                    self.lanes[lane_idx] = None;
                }
            }
        }
    }

    /// Records forward progress for the watchdog: the walker in `slot`
    /// advanced this cycle. Stalled outcomes deliberately do *not* count —
    /// a lane spinning on a hazard is exactly what the watchdog exists
    /// to interrupt.
    fn note_progress(&mut self, now: Cycle, slot: usize) {
        self.global_progress = now;
        if let Some(w) = self.walkers[slot].as_mut() {
            w.last_progress = now;
        }
    }

    /// Evaluates an operand for the walker in `slot`.
    fn eval(&mut self, now: Cycle, slot: usize, op: Operand) -> Result<u64, SimError> {
        Ok(match op {
            Operand::Reg(r) => {
                self.xregs
                    .read(crate::xreg::XRegFile(slot as u16), r.0, &mut self.ctx.stats)
            }
            Operand::Imm(v) => v,
            Operand::Key => self.walker(slot, now)?.key.0,
            Operand::MsgWord(i) => self.walker(slot, now)?.msg[usize::from(i) % MSG_WORDS],
            Operand::Param(i) => self.cfg.params[usize::from(i)],
            Operand::MetaSector => {
                let w = self.walker(slot, now)?;
                let r = w
                    .entry
                    .ok_or_else(|| SimError::new(slot, now, "MetaSector without meta entry"))?;
                u64::from(self.tags.entry(r).sector_start)
            }
        })
    }

    fn write_reg(&mut self, slot: usize, reg: u8, value: u64) {
        self.xregs.write(
            crate::xreg::XRegFile(slot as u16),
            reg,
            value,
            &mut self.ctx.stats,
        );
    }

    #[allow(clippy::too_many_lines)]
    fn exec_action(
        &mut self,
        now: Cycle,
        slot: usize,
        action: Action,
    ) -> Result<Outcome, SimError> {
        Ok(match action {
            Action::Alu { op, dst, a, b } => {
                let (x, y) = (self.eval(now, slot, a)?, self.eval(now, slot, b)?);
                let v = match op {
                    AluOp::Add => x.wrapping_add(y),
                    AluOp::Sub => x.wrapping_sub(y),
                    AluOp::And => x & y,
                    AluOp::Or => x | y,
                    AluOp::Xor => x ^ y,
                    AluOp::Shl => x.wrapping_shl(y as u32),
                    AluOp::Srl => x.wrapping_shr(y as u32),
                    AluOp::Sra => ((x as i64).wrapping_shr(y as u32)) as u64,
                    AluOp::Mul => x.wrapping_mul(y),
                };
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::Mov { dst, a } => {
                let v = self.eval(now, slot, a)?;
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::AllocR => Outcome::Advance, // file claimed at launch
            Action::Hash { done, a } => {
                let v = self.eval(now, slot, a)?;
                let digest = splitmix64(v);
                let gen = self.walker(slot, now)?.gen;
                self.delayed.push((
                    now + self.cfg.hash_latency,
                    slot,
                    gen,
                    done,
                    [digest, 0, 0, 0],
                ));
                self.ctx.stats.incr_id(counter!("xcache.hash_issue"));
                Outcome::Advance
            }
            Action::DramRead { addr, len } => {
                let (a, l) = (self.eval(now, slot, addr)?, self.eval(now, slot, len)?);
                let id = self.next_req_id;
                let req = MemReq::read(id, a, l as u32);
                match self.downstream.try_request(now, req) {
                    Ok(()) => {
                        self.next_req_id += 1;
                        let gen = self.walker(slot, now)?.gen;
                        self.inflight.insert(id, (slot, gen));
                        self.ctx.stats.incr_id(counter!("xcache.dram_req"));
                        self.ctx.stats.add_id(counter!("xcache.dram_req_bytes"), l);
                        self.ctx.trace.emit(
                            now,
                            TraceKind::DramIssue,
                            "xcache",
                            format!("slot {slot} addr {a:#x} len {l}"),
                        );
                        Outcome::Advance
                    }
                    Err(_) => Outcome::Stall,
                }
            }
            Action::DramWrite { addr, sector, len } => {
                let (a, s, l) = (
                    self.eval(now, slot, addr)?,
                    self.eval(now, slot, sector)?,
                    self.eval(now, slot, len)?,
                );
                let sectors = (l as usize).div_ceil(self.data.words_per_sector() * 8);
                let words = self
                    .data
                    .gather(s as u32, sectors as u32, &mut self.ctx.stats);
                let mut bytes = Vec::with_capacity(l as usize);
                for w in words {
                    bytes.extend_from_slice(&w.to_le_bytes());
                }
                bytes.truncate(l as usize);
                let id = self.next_req_id;
                match self
                    .downstream
                    .try_request(now, MemReq::write(id, a, Bytes::from(bytes)))
                {
                    Ok(()) => {
                        self.next_req_id += 1;
                        let gen = self.walker(slot, now)?.gen;
                        self.inflight.insert(id, (slot, gen));
                        self.ctx.stats.incr_id(counter!("xcache.dram_req"));
                        self.ctx.stats.add_id(counter!("xcache.dram_req_bytes"), l);
                        Outcome::Advance
                    }
                    Err(_) => Outcome::Stall,
                }
            }
            Action::PostEvent {
                event,
                delay,
                payload,
            } => {
                let v = self.eval(now, slot, payload)?;
                let gen = self.walker(slot, now)?.gen;
                self.delayed
                    .push((now + u64::from(delay), slot, gen, event, [v, 0, 0, 0]));
                Outcome::Advance
            }
            Action::Peek { dst, word } => {
                let v = self.walker(slot, now)?.msg[usize::from(word) % MSG_WORDS];
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::Respond => {
                let (key, origin_id, entry) = {
                    let w = self.walker(slot, now)?;
                    (w.key, w.origin.id(), w.entry)
                };
                let r =
                    entry.ok_or_else(|| SimError::new(slot, now, "Respond without meta entry"))?;
                let e = *self.tags.entry(r);
                let data = self
                    .data
                    .gather(e.sector_start, e.sector_count, &mut self.ctx.stats);
                self.respond(now, origin_id, key, true, data.clone());
                let waiters: Vec<MetaAccess> =
                    std::mem::take(&mut self.walker_mut(slot, now)?.waiters);
                for wa in waiters {
                    self.respond(now, wa.id(), key, true, data.clone());
                }
                self.walker_mut(slot, now)?.responded = true;
                Outcome::Advance
            }
            Action::AllocM => {
                let (key, state) = {
                    let w = self.walker(slot, now)?;
                    (w.key, w.state)
                };
                match self.tags.alloc(key, state, &mut self.ctx.stats) {
                    Some((r, evicted)) => {
                        if let Some(v) = evicted {
                            if v.sector_count > 0 {
                                self.data.free(v.sector_start, v.sector_count);
                            }
                        }
                        let w = self.walker_mut(slot, now)?;
                        w.entry = Some(r);
                        w.owns_entry = true;
                        Outcome::Advance
                    }
                    // Set full: if every way is pinned and idle the stall
                    // can never clear — fault so the datapath can drain
                    // and retry (its overflow path). Otherwise a walker
                    // will retire and free a way: stall.
                    None if self.tags.set_unevictable(key) => {
                        self.ctx.stats.incr_id(counter!("xcache.set_pinned_full"));
                        self.fault_walker(now, slot);
                        Outcome::FreeLane
                    }
                    None => Outcome::StallHazard,
                }
            }
            Action::DeallocM => {
                let r = self
                    .walker_mut(slot, now)?
                    .entry
                    .take()
                    .ok_or_else(|| SimError::new(slot, now, "DeallocM without meta entry"))?;
                let e = self.tags.invalidate(r, &mut self.ctx.stats);
                if e.sector_count > 0 {
                    self.data.free(e.sector_start, e.sector_count);
                }
                Outcome::Advance
            }
            Action::PinM => {
                let r = self
                    .walker(slot, now)?
                    .entry
                    .ok_or_else(|| SimError::new(slot, now, "PinM without meta entry"))?;
                self.tags.entry_mut(r).pinned = true;
                Outcome::Advance
            }
            Action::InsertM { key, words } => {
                let (k, n) = (self.eval(now, slot, key)?, self.eval(now, slot, words)?);
                let k = MetaKey(k);
                // Best-effort: skip when already cached, being walked by
                // another walker (it will install its own entry), or when
                // there is no idle capacity.
                if self.tags.peek(k).is_some() || self.launching.contains_key(&k) {
                    return Ok(Outcome::Advance);
                }
                let data =
                    self.walker(slot, now)?.fill_data.clone().ok_or_else(|| {
                        SimError::new(slot, now, "InsertM without a DRAM response")
                    })?;
                let bytes = (n as usize * 8).min(data.len());
                let sectors = bytes.div_ceil(self.data.words_per_sector() * 8).max(1);
                let Some(start) = self.data.alloc(sectors, &mut self.ctx.stats) else {
                    self.ctx.stats.incr_id(counter!("xcache.insertm_skip"));
                    return Ok(Outcome::Advance);
                };
                let Some((r, evicted)) =
                    self.tags
                        .alloc(k, xcache_isa::StateId::DEFAULT, &mut self.ctx.stats)
                else {
                    self.data.free(start, sectors as u32);
                    self.ctx.stats.incr_id(counter!("xcache.insertm_skip"));
                    return Ok(Outcome::Advance);
                };
                if let Some(v) = evicted {
                    if v.sector_count > 0 {
                        self.data.free(v.sector_start, v.sector_count);
                    }
                }
                self.data
                    .fill_bytes(start, &data[..bytes], &mut self.ctx.stats);
                let entry = self.tags.entry_mut(r);
                entry.sector_start = start;
                entry.sector_count = sectors as u32;
                entry.active = false;
                // Speculative insert: lowest replacement priority so it
                // cannot displace proven-hot keys.
                self.tags.demote(r);
                self.ctx.stats.incr_id(counter!("xcache.insertm"));
                Outcome::Advance
            }
            Action::UpdateM { start, end } => {
                let (s, e) = (self.eval(now, slot, start)?, self.eval(now, slot, end)?);
                let r = self
                    .walker(slot, now)?
                    .entry
                    .ok_or_else(|| SimError::new(slot, now, "UpdateM without meta entry"))?;
                self.ctx.stats.incr_id(counter!("xcache.tag_write"));
                let entry = self.tags.entry_mut(r);
                entry.sector_start = s as u32;
                entry.sector_count = (e.saturating_sub(s) + 1) as u32;
                Outcome::Advance
            }
            Action::Branch { cond, a, b, target } => {
                let taken = match cond {
                    Cond::Miss => !self.walker(slot, now)?.probe_hit,
                    Cond::Hit => self.walker(slot, now)?.probe_hit,
                    _ => {
                        let (x, y) = (self.eval(now, slot, a)?, self.eval(now, slot, b)?);
                        match cond {
                            Cond::Eq => x == y,
                            Cond::Ne => x != y,
                            Cond::Lt => x < y,
                            Cond::Ge => x >= y,
                            Cond::Le => x <= y,
                            Cond::Miss | Cond::Hit => unreachable!(),
                        }
                    }
                };
                if taken {
                    Outcome::Jump(usize::from(target))
                } else {
                    Outcome::Advance
                }
            }
            Action::Yield { state } => {
                let w = self.walker_mut(slot, now)?;
                w.state = state;
                if let Some(r) = w.entry {
                    self.tags.entry_mut(r).state = state;
                }
                Outcome::YieldLane
            }
            Action::Retire => {
                self.retire_walker(now, slot);
                Outcome::FreeLane
            }
            Action::Fault => {
                self.fault_walker(now, slot);
                Outcome::FreeLane
            }
            Action::AllocD { dst, count } => {
                let n = self.eval(now, slot, count)? as usize;
                if n == 0 {
                    return Err(SimError::new(slot, now, "AllocD of zero sectors"));
                }
                loop {
                    if let Some(start) = self.data.alloc(n, &mut self.ctx.stats) {
                        self.write_reg(slot, dst.0, u64::from(start));
                        return Ok(Outcome::Advance);
                    }
                    // Capacity pressure: evict an idle entry and retry.
                    match self.evict_one_idle() {
                        true => continue,
                        false => {
                            self.ctx
                                .stats
                                .incr_id(counter!("xcache.dataram_full_stall"));
                            return Ok(Outcome::StallHazard);
                        }
                    }
                }
            }
            Action::DeallocD => {
                let r = self
                    .walker(slot, now)?
                    .entry
                    .ok_or_else(|| SimError::new(slot, now, "DeallocD without meta entry"))?;
                let entry = self.tags.entry_mut(r);
                let (s, c) = (entry.sector_start, entry.sector_count);
                entry.sector_count = 0;
                if c > 0 {
                    self.data.free(s, c);
                }
                Outcome::Advance
            }
            Action::ReadD { dst, sector, word } => {
                let (s, wd) = (self.eval(now, slot, sector)?, self.eval(now, slot, word)?);
                let v = self
                    .data
                    .read_word(s as u32, wd as u32, &mut self.ctx.stats);
                self.write_reg(slot, dst.0, v);
                Outcome::Advance
            }
            Action::WriteD {
                sector,
                word,
                value,
            } => {
                let (s, wd, v) = (
                    self.eval(now, slot, sector)?,
                    self.eval(now, slot, word)?,
                    self.eval(now, slot, value)?,
                );
                self.data
                    .write_word(s as u32, wd as u32, v, &mut self.ctx.stats);
                Outcome::Advance
            }
            Action::FillD { sector, words } => {
                let (s, n) = (self.eval(now, slot, sector)?, self.eval(now, slot, words)?);
                let data = self
                    .walker(slot, now)?
                    .fill_data
                    .clone()
                    .ok_or_else(|| SimError::new(slot, now, "FillD without a DRAM response"))?;
                let bytes = (n as usize * 8).min(data.len());
                self.data
                    .fill_bytes(s as u32, &data[..bytes], &mut self.ctx.stats);
                Outcome::Advance
            }
        })
    }
}

fn category_counter(c: ActionCategory) -> xcache_sim::CounterId {
    match c {
        ActionCategory::Agen => counter!("xcache.action.agen"),
        ActionCategory::Queue => counter!("xcache.action.queue"),
        ActionCategory::MetaTag => counter!("xcache.action.metatag"),
        ActionCategory::Control => counter!("xcache.action.control"),
        ActionCategory::DataRam => counter!("xcache.action.dataram"),
    }
}
