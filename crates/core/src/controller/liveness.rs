//! Liveness watchdog and the recovery ladder.
//!
//! Every walker carries a `last_progress` cycle (updated on dispatch,
//! executed actions, fill arrival, and delayed-event delivery) and the
//! instance carries one `global_progress` for the controller as a whole.
//! [`check_liveness`](XCache::check_liveness) runs once per tick:
//!
//! 1. A walker whose age reaches the budget is *retried* — aborted with
//!    exponential backoff, its access replaying through the trigger stage
//!    — up to [`WALKER_RETRY_MAX`](super::WALKER_RETRY_MAX) times
//!    (`xcache.fault.retry`).
//! 2. Past the retry budget it is *killed*: faulted in place, so only its
//!    own slot answers "not found" (`xcache.watchdog.walker_kill`), and
//!    the meta path takes a health strike.
//! 3. If the whole controller makes no forward progress for twice the
//!    budget, all walkers are faulted and queued accesses are shed with
//!    "not found" (`xcache.watchdog.global_stall`,
//!    `xcache.watchdog.shed_access`) — the datapath drains instead of
//!    hanging.
//!
//! The per-walker scan is gated on `wd_earliest`, a lower bound on the
//! earliest per-walker deadline (`min(last_progress + budget)` over live
//! walkers). Progress only pushes deadlines later, so the bound is sound:
//! landing on it early just re-scans and tightens it. A scan that fires
//! nothing touches no stats, so the gate is observationally identical to
//! scanning every cycle.
//!
//! Enough health strikes within a window trip *degraded mode*
//! (`xcache.degraded_enter`): loads and stores bypass the unhealthy
//! meta-tag path entirely (answered "not found", so the datapath falls
//! back to walking the structure directly) until the penalty expires.
//! Takes still probe — a pinned entry's data exists only on-chip and
//! must remain reachable.

use xcache_mem::MemoryPort;
use xcache_sim::{counter, Cycle, StallReport, TraceKind};

use crate::MetaAccess;

use super::{
    XCache, DEGRADE_PENALTY, DEGRADE_STRIKES, HEALTH_WINDOW, RETRY_BACKOFF_BASE, STALL_REPORT_CAP,
    WALKER_RETRY_MAX,
};

impl<D: MemoryPort> XCache<D> {
    /// Work the controller itself is responsible for finishing (the
    /// global watchdog's scope; downstream components are excluded — an
    /// idle controller cannot be blamed for a busy DRAM).
    pub(super) fn has_local_work(&self) -> bool {
        !self.pending.is_empty()
            || !self.replay_q.is_empty()
            || !self.delayed_replay.is_empty()
            || self.arena.live_count() > 0
    }

    /// Runs the watchdog: per-walker budgets, then the global
    /// no-forward-progress check.
    pub(super) fn check_liveness(&mut self, now: Cycle) {
        let global_due = self.has_local_work()
            && now.since(self.global_progress) >= self.wd_budget.saturating_mul(2);
        if now < self.wd_earliest && !global_due {
            return;
        }
        if now >= self.wd_earliest {
            // Earliest deadline among walkers that survive this scan; the
            // next gate opens no later than this.
            let mut next_deadline = Cycle::NEVER;
            for slot in 0..self.arena.len() {
                if !self.arena.is_live(slot) {
                    continue;
                }
                let last = self.arena.last_progress[slot];
                let age = now.since(last);
                if age < self.wd_budget {
                    next_deadline = next_deadline.min(last + self.wd_budget);
                    continue;
                }
                let key = self.arena.cold[slot].key;
                let routine = self.arena.cold[slot]
                    .last_routine
                    .map(|r| self.program.routines[r.0 as usize].name.clone());
                let waiting_on = self.waiting_on(slot);
                let attempts = self.retry_counts.get(&key).copied().unwrap_or(0);
                let recovered = attempts < WALKER_RETRY_MAX;
                self.push_stall_report(
                    now,
                    StallReport {
                        cycle: now,
                        slot: Some(slot),
                        routine,
                        waiting_on,
                        age,
                        recovered,
                    },
                );
                self.ctx.stats.incr_id(counter!("xcache.watchdog.stall"));
                if recovered {
                    self.retry_counts.insert(key, attempts + 1);
                    self.ctx.stats.incr_id(counter!("xcache.fault.retry"));
                    // Exponential backoff: transient downstream faults (port
                    // stalls, delayed fills) clear while the walk is parked.
                    self.abort_with_backoff(now, slot, RETRY_BACKOFF_BASE << attempts);
                } else {
                    self.retry_counts.remove(&key);
                    self.ctx
                        .stats
                        .incr_id(counter!("xcache.watchdog.walker_kill"));
                    self.note_meta_strike(now);
                    // Containment: only this slot's origin and waiters are
                    // answered "not found"; siblings are untouched.
                    self.fault_walker(now, slot);
                }
                // The watchdog acting *is* forward progress.
                self.global_progress = self.global_progress.max(now);
            }
            self.wd_earliest = next_deadline;
        }

        if self.has_local_work()
            && now.since(self.global_progress) >= self.wd_budget.saturating_mul(2)
        {
            self.global_stall(now);
        }
    }

    /// Global no-forward-progress recovery: fault every walker, shed all
    /// queued work with "not found", and report.
    fn global_stall(&mut self, now: Cycle) {
        let live = self.arena.live_count();
        let queued = self.pending.len() + self.replay_q.len() + self.delayed_replay.len();
        let age = now.since(self.global_progress);
        self.push_stall_report(
            now,
            StallReport {
                cycle: now,
                slot: None,
                routine: None,
                waiting_on: format!("{queued} queued access(es), {live} live walker(s)"),
                age,
                recovered: false,
            },
        );
        self.ctx
            .stats
            .incr_id(counter!("xcache.watchdog.global_stall"));
        for slot in 0..self.arena.len() {
            if self.arena.is_live(slot) {
                self.fault_walker(now, slot);
            }
        }
        let shed: Vec<MetaAccess> = self
            .pending
            .drain(..)
            .chain(self.replay_q.drain(..))
            .chain(
                std::mem::take(&mut self.delayed_replay)
                    .into_iter()
                    .map(|(_, a)| a),
            )
            .collect();
        for a in shed {
            self.ctx
                .stats
                .incr_id(counter!("xcache.watchdog.shed_access"));
            self.respond(now, a.id(), a.key(), false, Vec::new());
        }
        self.launch_stalled = false;
        self.global_progress = self.global_progress.max(now);
    }

    /// Aborts the walker in `slot` and schedules its access (and waiters)
    /// to replay `backoff` cycles from now. The watchdog's transient-fault
    /// rung: like `abort_and_replay`, but the replay is delayed so a
    /// congested or faulty downstream has time to drain.
    fn abort_with_backoff(&mut self, now: Cycle, slot: usize, backoff: u64) {
        if !self.arena.is_live(slot) {
            return;
        }
        self.launch_stalled = false;
        let gen = self.arena.gen[slot];
        let c = &mut self.arena.cold[slot];
        let key = c.key;
        let entry = c.entry.take();
        let owns_entry = c.owns_entry;
        let origin = c.origin;
        let mut waiters = std::mem::take(&mut c.waiters);
        self.launching.remove(&key);
        if let Some(r) = entry {
            if owns_entry {
                let e = self.tags.invalidate(r, &mut self.ctx.stats);
                if e.sector_count > 0 {
                    self.data.free(e.sector_start, e.sector_count);
                }
            } else {
                self.tags.update_entry(r, |e| e.active = false);
            }
        }
        // Forget this walk's in-flight requests: a late (or injected-
        // delayed) fill must not wake the slot's next tenant. Generation
        // checks already drop them; pruning keeps the map from growing.
        self.inflight.retain(|_, &mut (s, g)| s != slot || g != gen);
        let due = now + backoff.max(1);
        self.delayed_replay.push((due, origin));
        for wa in waiters.drain(..) {
            self.delayed_replay.push((due, wa));
        }
        self.arena.cold[slot].waiters = waiters;
        for l in &mut self.lanes {
            if l.is_some_and(|l| l.slot == slot) {
                *l = None;
            }
        }
        self.arena.deactivate(slot);
        self.xregs
            .release(crate::xreg::XRegFile(slot as u16), now, &mut self.ctx.stats);
        self.ctx.stats.incr_id(counter!("xcache.walker_replay"));
    }

    /// A deterministic description of what `slot` is blocked on, for
    /// stall reports (minimum in-flight request id, never map order).
    fn waiting_on(&self, slot: usize) -> String {
        if !self.arena.is_live(slot) {
            return "nothing".into();
        }
        let gen = self.arena.gen[slot];
        if let Some(id) = self
            .inflight
            .iter()
            .filter(|&(_, &(s, g))| s == slot && g == gen)
            .map(|(&id, _)| id)
            .min()
        {
            return format!("dram fill (req #{id})");
        }
        if self.arena.has_events(slot) {
            return "an executor lane".into();
        }
        if self
            .lanes
            .iter()
            .flatten()
            .any(|l| l.slot == slot && l.waiting)
        {
            return "an event for its parked lane".into();
        }
        format!("an event in state {}", self.arena.cold[slot].state.0)
    }

    /// Records a meta-path health strike; enough strikes inside the
    /// window trip degraded mode.
    pub(super) fn note_meta_strike(&mut self, now: Cycle) {
        if now.since(self.health_window_start) > HEALTH_WINDOW {
            self.health_window_start = now;
            self.health_strikes = 0;
        }
        self.health_strikes += 1;
        if self.health_strikes >= DEGRADE_STRIKES && self.degraded_until <= now {
            self.degraded_until = now + DEGRADE_PENALTY;
            self.health_strikes = 0;
            self.ctx.stats.incr_id(counter!("xcache.degraded_enter"));
            // The hazard picture changed: pending loads/stores that were
            // launch-stalled can now be answered through the bypass.
            self.launch_stalled = false;
        }
    }

    /// Whether the meta-tag path is currently bypassed.
    pub(super) fn degraded(&self, now: Cycle) -> bool {
        now < self.degraded_until
    }

    fn push_stall_report(&mut self, now: Cycle, report: StallReport) {
        self.ctx
            .trace
            .emit_with(now, TraceKind::Other, "xcache", || report.to_string());
        if self.stall_reports.len() < STALL_REPORT_CAP {
            self.stall_reports.push(report);
        }
    }
}

#[cfg(test)]
mod tests {
    use xcache_isa::asm::assemble;
    use xcache_mem::{DramConfig, DramModel};
    use xcache_sim::{with_watchdog_budget, Cycle};

    use crate::{MetaAccess, MetaKey, MetaResp, XCache, XCacheConfig};

    /// A raw program the static verifier rejects: key 99 parks in a state
    /// with no outgoing transitions, so that walker never advances again.
    fn parking_walker() -> xcache_isa::WalkerProgram {
        assemble(
            r#"
            walker parker
            states Default, Park
            regs 1
            routine start {
                allocR
                beq key, 99, @stuck
                allocM
                retire
            stuck:
                yield Park
            }
            on Default, Miss -> start
        "#,
        )
        .expect("assembles")
    }

    fn drive(keys: &[u64], budget: u64) -> (XCache<DramModel>, Vec<MetaResp>) {
        with_watchdog_budget(budget, || {
            let dram = DramModel::new(DramConfig::test_tiny());
            let cfg = XCacheConfig::test_tiny();
            let mut xc =
                XCache::new_unchecked(cfg, parking_walker(), dram).expect("builds unchecked");
            let mut now = Cycle(0);
            let mut queue: Vec<MetaAccess> = keys
                .iter()
                .enumerate()
                .map(|(i, &k)| MetaAccess::Load {
                    id: i as u64 + 1,
                    key: MetaKey::new(k),
                })
                .collect();
            queue.reverse();
            let mut got = Vec::new();
            while got.len() < keys.len() {
                while xc.can_accept() {
                    let Some(a) = queue.pop() else { break };
                    xc.try_access(now, a).expect("can_accept checked");
                }
                xc.tick(now);
                while let Some(r) = xc.take_response(now) {
                    got.push(r);
                }
                now = now.next();
                assert!(
                    now.raw() < 200 * budget,
                    "watchdog failed to unwedge the parked walker"
                );
            }
            (xc, got)
        })
    }

    #[test]
    fn verifier_rejects_parking_program_but_unchecked_builds() {
        let dram = DramModel::new(DramConfig::test_tiny());
        let cfg = XCacheConfig::test_tiny();
        assert!(
            XCache::new(cfg, parking_walker(), dram).is_err(),
            "the park state must be a verifier error — this test bypasses it on purpose"
        );
    }

    #[test]
    fn parked_walker_trips_watchdog_and_faults_only_its_slot() {
        let budget = 300;
        let (healthy, healthy_resps) = drive(&[1, 2, 3], budget);
        assert!(healthy.stall_reports().is_empty());
        assert_eq!(healthy.stats().get("xcache.walker_retire"), 3);

        let (xc, resps) = drive(&[1, 2, 3, 99], budget);
        // The parked walker produced structured stall reports: first the
        // bounded retries (recovered), finally the kill (contained).
        let reports = xc.stall_reports();
        assert!(!reports.is_empty(), "no StallReport emitted");
        assert!(reports.iter().all(|r| r.slot.is_some()));
        assert!(reports.iter().all(|r| r.age >= budget));
        assert!(reports.first().expect("nonempty").recovered);
        assert!(!reports.last().expect("nonempty").recovered);
        assert_eq!(
            xc.stats().get("xcache.fault.retry"),
            u64::from(super::WALKER_RETRY_MAX)
        );
        assert_eq!(xc.stats().get("xcache.watchdog.walker_kill"), 1);

        // Containment: only key 99 is answered "not found"; the sibling
        // walkers retire exactly as in the healthy run.
        for r in &resps {
            let healthy_r = healthy_resps.iter().find(|h| h.id == r.id);
            match healthy_r {
                Some(h) => {
                    assert_eq!(r.found, h.found, "sibling id {} diverged", r.id);
                    assert_eq!(r.data, h.data, "sibling id {} data diverged", r.id);
                }
                None => assert!(!r.found, "parked key must answer not-found"),
            }
        }
        assert_eq!(xc.stats().get("xcache.walker_retire"), 3);
        // Conservation: every launch ends in exactly one of retire /
        // fault / replay.
        assert_eq!(
            xc.stats().get("xcache.walker_launch"),
            xc.stats().get("xcache.walker_retire")
                + xc.stats().get("xcache.walker_fault")
                + xc.stats().get("xcache.walker_replay")
        );
    }
}
