//! The programmable X-Cache controller (§4, Figure 8).
//!
//! The controller is a two-part pipeline, split across this module tree so
//! each stage is independently readable and testable:
//!
//! * [`trigger`] — the front-end ("the event loop"): monitors the datapath
//!   access queue, the DRAM response port and the internal event queue, and
//!   *wakes one walker per cycle*. Meta-tag hits bypass the walkers
//!   entirely through a dedicated read port with a pipelined `hit_latency`
//!   load-to-use.
//! * [`sched`] — lane scheduling: round-robin wakeup of dormant walkers and
//!   the walker *discipline* policy (§3.3 ablation) behind the
//!   [`sched::DisciplineStage`] trait: coroutines release their lane at
//!   every yield; blocking threads hold a lane from launch to retirement,
//!   including all memory stalls (Figure 7).
//! * [`executor`] — the back-end: `#Exe` executor lanes run woken routines
//!   one action per lane per cycle; routines end by yielding (coroutine
//!   goes dormant, lane freed) or retiring.
//! * [`walker`] — walker lifecycle: per-walk context, datapath responses,
//!   retirement, faults, and abort-and-replay.
//!
//! The stages communicate through the instance's
//! [`SimContext`](xcache_sim::SimContext) (cycle, stats, trace hooks,
//! seed) plus the shared structural state on [`XCache`] itself.

mod arena;
mod executor;
mod liveness;
mod sched;
mod trigger;
mod walker;

use std::collections::VecDeque;
use std::sync::Arc;

use xcache_isa::verify::{verify_with, VerifyError, VerifyLimits};
use xcache_isa::{Action, EventId, Operand, RoutineId, WalkerProgram};
use xcache_mem::MemoryPort;
use xcache_sim::{
    counter, watchdog_budget, Cycle, FaultPlan, FxHashMap, MsgQueue, SimContext, StallReport,
    Stats, TimingWheel, TraceBuffer,
};

use crate::{
    dataram::DataRam, metatag::MetaTagArray, xreg::XRegPool, MetaAccess, MetaKey, MetaResp,
    XCacheConfig,
};

use arena::WalkerArena;
use sched::{discipline_stage, YieldPolicy};

/// A delayed internal event: (slot, generation, event, payload). The due
/// cycle is the timing-wheel key.
pub(crate) type DelayedEvent = (usize, u32, EventId, [u64; MSG_WORDS]);

/// Error constructing an [`XCache`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The geometry failed validation.
    BadConfig(String),
    /// The walker program failed validation.
    BadProgram(String),
    /// The program needs more X-registers than the geometry provides.
    RegistersExceeded {
        /// Registers the program declares.
        needed: u8,
        /// Registers per walker in the geometry.
        available: usize,
    },
    /// The program references parameter `idx` but only `provided` exist.
    MissingParam {
        /// Referenced parameter index.
        idx: u8,
        /// Number of parameters configured.
        provided: usize,
    },
    /// The static verifier rejected the program (§4.2 discipline): the
    /// defects it found would otherwise surface as runtime faults or
    /// deadlocks mid-simulation.
    Verify(VerifyError),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::BadConfig(e) => write!(f, "invalid configuration: {e}"),
            BuildError::BadProgram(e) => write!(f, "invalid walker program: {e}"),
            BuildError::RegistersExceeded { needed, available } => write!(
                f,
                "program needs {needed} X-registers but the geometry provides {available}"
            ),
            BuildError::MissingParam { idx, provided } => write!(
                f,
                "program references param p{idx} but only {provided} parameter(s) configured"
            ),
            BuildError::Verify(e) => write!(f, "program rejected by the verifier: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A runtime protocol violation caught by the executor.
///
/// The static verifier rejects most defective programs at load time; the
/// few violations only observable dynamically (e.g. a `respond` with no
/// meta entry on this particular walk) surface as a `SimError` with full
/// context — slot, cycle, routine — instead of a panic. The offending
/// walker faults and the simulation continues.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimError {
    /// Walker slot the violation occurred in.
    pub slot: usize,
    /// Simulated cycle of the violation.
    pub cycle: Cycle,
    /// Name of the routine that was executing, when known.
    pub routine: Option<String>,
    /// What went wrong.
    pub context: String,
}

impl SimError {
    pub(crate) fn new(slot: usize, cycle: Cycle, context: impl Into<String>) -> Self {
        SimError {
            slot,
            cycle,
            routine: None,
            context: context.into(),
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "walker slot {} @ cycle {}", self.slot, self.cycle.raw())?;
        if let Some(r) = &self.routine {
            write!(f, " in routine `{r}`")?;
        }
        write!(f, ": {}", self.context)
    }
}

impl std::error::Error for SimError {}

/// Number of payload words carried with an event.
pub(crate) const MSG_WORDS: usize = 4;

/// Cycles a lane may stall on a structural hazard before the walker faults
/// (deadlock backstop; counted in `xcache.walker_timeout`).
pub(crate) const STALL_LIMIT: u32 = 100_000;

/// Trigger-stage scheduling window: how many pending accesses the
/// front-end examines per cycle when the head cannot make progress.
pub(crate) const SCHED_WINDOW: usize = 8;

/// Cycles a routine may spin on an *allocation* hazard (a resource held by
/// another walker) before the walk is aborted and its access replayed
/// through the trigger stage. Allocation hazards are deadlock-prone — two
/// stalled routines can hold all executor lanes — so they resolve by
/// replay, unlike queue-full stalls which always drain.
pub(crate) const HAZARD_RETRY: u32 = 64;

/// Watchdog recovery ladder: a stuck walker is retried (abort + delayed
/// replay) this many times before it is killed and its slot contained.
pub(crate) const WALKER_RETRY_MAX: u32 = 3;

/// Base delay before a watchdog-aborted walk replays; doubles per retry
/// (exponential backoff rides out transient downstream faults).
pub(crate) const RETRY_BACKOFF_BASE: u64 = 64;

/// Meta-path health strikes within [`HEALTH_WINDOW`] cycles that trip
/// degraded mode.
pub(crate) const DEGRADE_STRIKES: u32 = 8;

/// Width of the sliding health window, in cycles.
pub(crate) const HEALTH_WINDOW: u64 = 4096;

/// How long degraded mode lasts once entered: loads/stores bypass the
/// meta-tag path (answered "not found" so the datapath walks the
/// structure directly) until the window expires.
pub(crate) const DEGRADE_PENALTY: u64 = 2048;

/// Retained [`StallReport`]s per instance (older reports still count in
/// `xcache.watchdog.*`, only the structured records are capped).
pub(crate) const STALL_REPORT_CAP: usize = 256;

/// Recycled response-data buffers kept per instance (see
/// [`XCache::recycle`]).
pub(crate) const DATA_POOL_CAP: usize = 64;

/// One executor lane: a routine in flight for the walker in `slot`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Lane {
    pub(crate) slot: usize,
    pub(crate) routine: RoutineId,
    pub(crate) pc: usize,
    /// Thread discipline: lane is held while the walker waits for events.
    pub(crate) waiting: bool,
    pub(crate) stall_cycles: u32,
    /// Macro-step dormancy: the lane next executes at this cycle. The
    /// macro engine runs a whole fused superinstruction run in one
    /// dispatch and parks the lane until the cycle the run's last action
    /// would have completed one-per-cycle, so the cycles in between can
    /// be fast-forwarded. Micro mode never sets a future value.
    pub(crate) resume: Cycle,
}

/// A generated domain-specific cache instance.
///
/// Generic over its miss-path memory level `D`: a
/// [`DramModel`](xcache_mem::DramModel) directly, an
/// [`AddressCache`](xcache_mem::AddressCache) (the MXA hierarchy of §6), or
/// a [`PortHandle`](xcache_mem::PortHandle) sharing DRAM with a stream
/// engine (MXS).
#[derive(Debug)]
pub struct XCache<D> {
    pub(crate) cfg: XCacheConfig,
    pub(crate) program: WalkerProgram,
    /// Direct-threaded dispatch table: `dispatch[r][pc]` pairs the
    /// pre-decoded action with its handler function pointer (mirrors
    /// `program.routines[r].actions[pc]`, built once after verification).
    pub(crate) dispatch: Vec<Box<[executor::OpEntry<D>]>>,
    pub(crate) tags: MetaTagArray,
    pub(crate) data: DataRam,
    pub(crate) xregs: XRegPool,
    pub(crate) access_q: MsgQueue<MetaAccess>,
    pub(crate) replay_q: VecDeque<MetaAccess>,
    /// The trigger-stage window (drained from `access_q`/`replay_q`).
    pub(crate) pending: VecDeque<MetaAccess>,
    pub(crate) resp_q: MsgQueue<MetaResp>,
    /// Overflow buffer for responses produced while `resp_q` is full
    /// (e.g. a walker answering many waiters at once); drained in FIFO
    /// order ahead of new responses, so nothing is ever dropped.
    pub(crate) resp_spill: VecDeque<(u64, MetaResp)>,
    /// Arena-allocated walker state (SoA hot columns + cold rows).
    pub(crate) arena: WalkerArena,
    /// key → walker slot, held from launch to retirement (prevents
    /// duplicate walkers; queues waiters).
    pub(crate) launching: FxHashMap<MetaKey, usize>,
    pub(crate) lanes: Vec<Option<Lane>>,
    /// Delayed internal events, scheduled on a timing wheel by due cycle.
    pub(crate) delayed: TimingWheel<DelayedEvent>,
    /// Reusable pop buffer for draining due delayed events.
    pub(crate) delayed_buf: Vec<(Cycle, DelayedEvent)>,
    pub(crate) inflight: FxHashMap<u64, (usize, u32)>,
    pub(crate) issue_times: FxHashMap<u64, Cycle>,
    pub(crate) next_req_id: u64,
    pub(crate) wake_rr: usize,
    pub(crate) downstream: D,
    /// Cached `downstream.next_event` from its last tick: the downstream
    /// level is only ticked when this falls due or [`ds_dirty`] is set, so
    /// an idle memory level costs nothing per controller cycle. Sound
    /// because the `Component` contract already requires downstream ticks
    /// to tolerate gaps (skip mode exercises exactly that), and per-tick
    /// stall counters pin `next_event` to `now + 1` while they count.
    ///
    /// [`ds_dirty`]: XCache::ds_dirty
    pub(crate) ds_next: Option<Cycle>,
    /// The executor issued a downstream request since the last downstream
    /// tick; the cached [`ds_next`](XCache::ds_next) is stale.
    pub(crate) ds_dirty: bool,
    /// Ambient services (cycle, stats, trace, seed) shared by all stages.
    pub(crate) ctx: SimContext,
    /// Cycle of the last `tick`, for fast-forward-aware per-cycle charges
    /// (static occupancy, launch-stall backfill).
    pub(crate) last_tick: Option<Cycle>,
    /// The trigger stage ended the last tick with pending accesses it
    /// could not serve. While this holds — and nothing else perturbs the
    /// hazard state — every skipped cycle would have launch-stalled too.
    pub(crate) launch_stalled: bool,
    /// Fault-injection plan captured at construction; `None` (the default)
    /// keeps every fault hook a single branch.
    pub(crate) fault: Option<Arc<FaultPlan>>,
    /// Per-walker liveness budget in cycles, captured at construction.
    pub(crate) wd_budget: u64,
    /// Lower bound on the earliest per-walker watchdog deadline
    /// (`last_progress + wd_budget` over live walkers). Progress only
    /// pushes deadlines later, so the bound stays sound between the exact
    /// recomputes the liveness scan performs when it fires; landing on a
    /// stale-early bound is a no-op tick.
    pub(crate) wd_earliest: Cycle,
    /// Static occupancy charge per cycle, resolved from the discipline at
    /// construction (zero for coroutines).
    pub(crate) occ_charge: u64,
    /// Lane disposition on yield, resolved from the discipline at
    /// construction.
    pub(crate) yield_policy: YieldPolicy,
    /// Cycle of the last globally observable forward progress (response,
    /// launch, retire, fill, dispatch, …).
    pub(crate) global_progress: Cycle,
    /// Structured liveness violations, newest last (see
    /// [`STALL_REPORT_CAP`]).
    pub(crate) stall_reports: Vec<StallReport>,
    /// Watchdog retries already spent per key (cleared on retire).
    pub(crate) retry_counts: FxHashMap<MetaKey, u32>,
    /// Accesses aborted by the watchdog, replaying at `due` (exponential
    /// backoff): (due, access).
    pub(crate) delayed_replay: Vec<(Cycle, MetaAccess)>,
    /// The trigger stage's last hazard-check tag lookup: `(key, where the
    /// way scan landed)`. The serve that immediately follows a successful
    /// hazard check reuses it via [`MetaTagArray::probe_at`] instead of
    /// re-scanning the set (set by `can_serve`, consumed by
    /// `serve_access`, always within one cycle).
    pub(crate) probe_cache: Option<(MetaKey, Option<crate::metatag::EntryRef>)>,
    /// Recycled response-data buffers (see [`recycle`](XCache::recycle)):
    /// the respond path draws from here so steady-state hits and walker
    /// completions allocate nothing.
    pub(crate) data_pool: Vec<Vec<u64>>,
    /// Per-macro-step stat scratch: the macro executor buffers
    /// `CounterId` increments for a whole fused batch here and flushes
    /// once per execute pass (counter totals are order-insensitive, so
    /// deferred application is byte-identical).
    pub(crate) epoch: xcache_sim::EpochStats,
    /// Scratch for the trigger stage's batched window probes (macro
    /// mode): reused across ticks so the multi-probe pass allocates
    /// nothing.
    pub(crate) probe_batch: Vec<crate::metatag::LaunchProbe>,
    /// Meta-tag path degraded (bypassed) until this cycle.
    pub(crate) degraded_until: Cycle,
    /// Health strikes accumulated in the current window.
    pub(crate) health_strikes: u32,
    /// Start of the current health window.
    pub(crate) health_window_start: Cycle,
}

impl<D: MemoryPort> XCache<D> {
    /// Generates an X-Cache instance from a geometry, a compiled walker
    /// program, and the memory level below.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the geometry is invalid, the program
    /// fails validation, or the program's resource needs (X-registers,
    /// parameters) exceed what the geometry provides.
    pub fn new(
        cfg: XCacheConfig,
        program: WalkerProgram,
        downstream: D,
    ) -> Result<Self, BuildError> {
        Self::build(cfg, program, downstream, true)
    }

    /// Like [`new`](Self::new), but skips the static verifier (basic
    /// program validation and resource checks still run).
    ///
    /// For harnesses that need an intentionally defective program — e.g.
    /// a walker that parks forever to exercise the liveness watchdog —
    /// which the verifier would rightly reject.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] for the same non-verifier reasons as
    /// [`new`](Self::new).
    pub fn new_unchecked(
        cfg: XCacheConfig,
        program: WalkerProgram,
        downstream: D,
    ) -> Result<Self, BuildError> {
        Self::build(cfg, program, downstream, false)
    }

    fn build(
        cfg: XCacheConfig,
        program: WalkerProgram,
        downstream: D,
        verify: bool,
    ) -> Result<Self, BuildError> {
        cfg.validate().map_err(BuildError::BadConfig)?;
        program.validate().map_err(|errs| {
            BuildError::BadProgram(
                errs.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            )
        })?;
        if usize::from(program.regs) > cfg.xregs_per_walker {
            return Err(BuildError::RegistersExceeded {
                needed: program.regs,
                available: cfg.xregs_per_walker,
            });
        }
        // Every referenced parameter must be configured.
        for r in &program.routines {
            for a in &r.actions {
                for op in action_operands(a) {
                    if let Operand::Param(i) = op {
                        if usize::from(i) >= cfg.params.len() {
                            return Err(BuildError::MissingParam {
                                idx: i,
                                provided: cfg.params.len(),
                            });
                        }
                    }
                }
            }
        }
        // Static verification against this instance's geometry: programs
        // whose defects would otherwise fault or deadlock mid-simulation
        // are rejected here with located diagnostics (warnings pass — the
        // error classes alone prove runtime safety).
        if verify {
            let limits = VerifyLimits {
                data_sectors: u32::try_from(cfg.data_sectors).unwrap_or(u32::MAX),
                ..VerifyLimits::default()
            };
            verify_with(&program, &limits)
                .check(false)
                .map_err(BuildError::Verify)?;
        }
        // Coroutines charge only the walker's declared X-registers for its
        // lifetime; blocking threads additionally pay for their statically
        // allocated hardware contexts every cycle (see `tick`).
        let charged = usize::from(program.regs.max(1));
        let stage = discipline_stage(cfg.discipline);
        // Pre-decode the (now verified) program into the direct-threaded
        // dispatch table the executor runs from.
        let decoded = xcache_isa::predecode::predecode(&program, &cfg.params, MSG_WORDS);
        let dispatch = executor::build_dispatch::<D>(&decoded);
        Ok(XCache {
            dispatch,
            tags: MetaTagArray::new(cfg.sets, cfg.ways),
            data: DataRam::new(cfg.data_sectors, cfg.words_per_sector),
            xregs: XRegPool::new(cfg.active, cfg.xregs_per_walker, charged),
            access_q: MsgQueue::new("xcache.access", cfg.access_queue_depth, 1),
            replay_q: VecDeque::new(),
            pending: VecDeque::new(),
            resp_q: MsgQueue::new("xcache.resp", cfg.resp_queue_depth, cfg.hit_latency.max(1)),
            resp_spill: VecDeque::new(),
            arena: WalkerArena::new(cfg.active),
            launching: FxHashMap::default(),
            lanes: vec![None; cfg.exe],
            delayed: TimingWheel::new(Cycle::ZERO),
            delayed_buf: Vec::new(),
            inflight: FxHashMap::default(),
            issue_times: FxHashMap::default(),
            next_req_id: 1,
            wake_rr: 0,
            downstream,
            ds_next: None,
            ds_dirty: true,
            ctx: SimContext::new(0),
            last_tick: None,
            launch_stalled: false,
            fault: FaultPlan::current(),
            wd_budget: watchdog_budget(),
            wd_earliest: Cycle::NEVER,
            occ_charge: stage.static_occupancy(&cfg),
            yield_policy: stage.on_yield(),
            global_progress: Cycle::ZERO,
            stall_reports: Vec::new(),
            retry_counts: FxHashMap::default(),
            delayed_replay: Vec::new(),
            probe_cache: None,
            data_pool: Vec::new(),
            epoch: xcache_sim::EpochStats::new(),
            probe_batch: Vec::new(),
            degraded_until: Cycle::ZERO,
            health_strikes: 0,
            health_window_start: Cycle::ZERO,
            program,
            cfg,
        })
    }

    /// The geometry in effect.
    #[must_use]
    pub fn config(&self) -> &XCacheConfig {
        &self.cfg
    }

    /// The loaded walker program.
    #[must_use]
    pub fn program(&self) -> &WalkerProgram {
        &self.program
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.ctx.stats
    }

    /// The simulation context shared by the pipeline stages.
    #[must_use]
    pub fn context(&self) -> &SimContext {
        &self.ctx
    }

    /// Per-set meta-tag hit/alloc/eviction counters (length = `sets`),
    /// exported for cross-validation against the analytical oracle.
    #[must_use]
    pub fn meta_set_counters(&self) -> &[crate::metatag::SetCounters] {
        self.tags.set_counters()
    }

    /// The meta-tag set `key` maps to (harness introspection; the oracle
    /// pins its reimplementation of the set hash against this).
    #[must_use]
    pub fn meta_set_index(&self, key: MetaKey) -> usize {
        self.tags.set_index(key)
    }

    /// The memory level below.
    #[must_use]
    pub fn downstream(&self) -> &D {
        &self.downstream
    }

    /// The memory level below, mutably (workload setup).
    pub fn downstream_mut(&mut self) -> &mut D {
        &mut self.downstream
    }

    /// Enables bounded tracing for debugging and the figure narratives.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.ctx.enable_trace(capacity);
    }

    /// The trace buffer.
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.ctx.trace
    }

    /// Meta-tag hit ratio so far, or `None` before any access.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let h = self.ctx.stats.get("xcache.hit");
        let m = self.ctx.stats.get("xcache.miss");
        (h + m > 0).then(|| h as f64 / (h + m) as f64)
    }

    /// Whether [`try_access`](Self::try_access) would currently be
    /// accepted (the access queue has room). Polite drivers check this
    /// before offering work so a refusal is never charged as an
    /// `xcache.access_stall`.
    #[must_use]
    pub fn can_accept(&self) -> bool {
        !self.access_q.is_full()
    }

    /// Offers a meta access from the datapath.
    ///
    /// # Errors
    ///
    /// Returns the access back when the queue is full this cycle.
    pub fn try_access(&mut self, now: Cycle, access: MetaAccess) -> Result<(), MetaAccess> {
        match self.access_q.push(now, access) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.ctx.stats.incr_id(counter!("xcache.access_stall"));
                Err(e.0)
            }
        }
    }

    /// Removes one datapath response ready at `now`, if any.
    pub fn take_response(&mut self, now: Cycle) -> Option<MetaResp> {
        self.resp_q.pop(now)
    }

    /// Returns a consumed response's data buffer to the internal pool.
    ///
    /// Optional — drivers that call this after reading a response let the
    /// respond path reuse the allocation, so steady-state hit/answer
    /// traffic performs no heap allocation at all.
    pub fn recycle(&mut self, resp: MetaResp) {
        self.give_buf(resp.data);
    }

    /// A cleared data buffer from the pool (or a fresh one).
    pub(crate) fn take_buf(&mut self) -> Vec<u64> {
        self.data_pool.pop().unwrap_or_default()
    }

    /// Returns a buffer to the pool (dropped when the pool is full).
    pub(crate) fn give_buf(&mut self, mut buf: Vec<u64>) {
        if buf.capacity() > 0 && self.data_pool.len() < DATA_POOL_CAP {
            buf.clear();
            self.data_pool.push(buf);
        }
    }

    /// Structured liveness violations observed so far (oldest first,
    /// capped at [`STALL_REPORT_CAP`]).
    #[must_use]
    pub fn stall_reports(&self) -> &[StallReport] {
        &self.stall_reports
    }

    /// Whether any work is outstanding anywhere in the instance.
    #[must_use]
    pub fn busy(&self) -> bool {
        !self.access_q.is_empty()
            || !self.replay_q.is_empty()
            || !self.pending.is_empty()
            || !self.resp_q.is_empty()
            || !self.resp_spill.is_empty()
            || !self.delayed.is_empty()
            || !self.delayed_replay.is_empty()
            || self.arena.live_count() > 0
            || self.downstream.busy()
    }

    /// Advances the instance (and its downstream level) one cycle: each
    /// pipeline stage runs once, in dependency order.
    ///
    /// Fast-forwarding: `tick` may be called with gaps in `now` (the
    /// driver jumped over cycles [`next_event`](Self::next_event) proved
    /// idle). Per-cycle charges are scaled by the elapsed gap so counters
    /// match a single-stepped run exactly.
    pub fn tick(&mut self, now: Cycle) {
        self.ctx.advance(now);
        let elapsed = self.last_tick.map_or(1, |t| now.since(t));
        self.last_tick = Some(now);
        if self.occ_charge > 0 {
            self.ctx.stats.add_id(
                counter!("xcache.occupancy_reg_byte_cycles"),
                self.occ_charge * elapsed,
            );
        }
        if self.launch_stalled && elapsed > 1 {
            // Every cycle jumped over would have launch-stalled again
            // (the skip is only legal when nothing could change the
            // trigger stage's hazard checks).
            self.ctx
                .stats
                .add_id(counter!("xcache.launch_stall"), elapsed - 1);
        }
        {
            xcache_sim::prof_scope!("xcache.downstream");
            if self.ds_dirty || self.ds_next.is_some_and(|t| t <= now) {
                self.downstream.tick(now);
                self.ds_dirty = false;
                self.ds_next = self.downstream.next_event(now);
            }
        }
        {
            xcache_sim::prof_scope!("xcache.fills");
            self.drain_resp_spill(now);
            self.collect_fills(now);
        }
        {
            xcache_sim::prof_scope!("xcache.delayed");
            self.deliver_delayed(now);
        }
        {
            xcache_sim::prof_scope!("xcache.liveness");
            self.check_liveness(now);
        }
        {
            xcache_sim::prof_scope!("xcache.trigger");
            let mut wake_budget = 1usize;
            self.process_access(now, &mut wake_budget);
            if wake_budget > 0 {
                self.wake_one(now);
            }
        }
        {
            xcache_sim::prof_scope!("xcache.execute");
            self.execute(now);
        }
    }

    /// Earliest cycle strictly after `now` at which `tick` could do
    /// observable work (same contract as
    /// [`Component::next_event`](xcache_sim::Component::next_event);
    /// queried after `tick(now)`).
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        xcache_sim::prof_scope!("xcache.next_event");
        // Per-cycle activity that cannot be jumped over: an active lane
        // executes (and counts) one action every cycle; an undispatched
        // walker event is examined every cycle; spilled responses retry
        // every cycle; a trigger window that is not known-stalled may
        // serve another access next cycle. A macro-dormant lane (its
        // fused run already executed; `resume` in the future) is *not*
        // per-cycle work — its wake-up folds into the schedulable set
        // below, so the cycles a micro run would spend one-per-action
        // are fast-forwarded.
        if self
            .lanes
            .iter()
            .flatten()
            .any(|l| !l.waiting && l.resume <= now.next())
            || self.arena.ready_events() > 0
            || !self.resp_spill.is_empty()
            || !self.replay_q.is_empty()
            || (!self.pending.is_empty() && !self.launch_stalled)
        {
            return Some(now.next());
        }
        let mut next = Cycle::NEVER;
        let mut wake = |t: Cycle| next = next.min(t);
        for l in self.lanes.iter().flatten() {
            if !l.waiting {
                wake(l.resume.max(now.next()));
            }
        }
        if let Some(due) = self.delayed.next_due() {
            wake(due.max(now.next()));
        }
        for &(due, _) in &self.delayed_replay {
            wake(due.max(now.next()));
        }
        // Watchdog deadlines are observable work (a stall report plus the
        // recovery ladder), so a fast-forwarded run must land no later
        // than the cycle a single-stepped run would fire on. `wd_earliest`
        // is a lower bound on the true earliest deadline: landing early
        // (or on a healthy deadline) is a no-op tick — all per-cycle
        // charges are linear in elapsed cycles, so the split leaves
        // counters byte-identical.
        if self.arena.live_count() > 0 {
            wake(self.wd_earliest.max(now.next()));
        }
        if self.has_local_work() {
            wake((self.global_progress + self.wd_budget.saturating_mul(2)).max(now.next()));
        }
        // The access queue only feeds the trigger window while it has
        // room; a full window drains through events covered above.
        if self.pending.len() < self.cfg.access_queue_depth {
            if let Some(ready) = self.access_q.next_ready() {
                wake(ready.max(now.next()));
            }
        }
        if let Some(ready) = self.resp_q.next_ready() {
            wake(ready.max(now.next()));
        }
        if self.ds_dirty {
            // A request went down since the last downstream tick; tick it
            // next cycle and recompute the cache.
            wake(now.next());
        } else if let Some(t) = self.ds_next {
            wake(t.max(now.next()));
        }
        if next == Cycle::NEVER {
            // Busy with no schedulable wake-up: single-step so deadlocks
            // still trip the drivers' cycle guards.
            return self.busy().then(|| now.next());
        }
        Some(next)
    }
}

impl<D: MemoryPort> xcache_sim::Component for XCache<D> {
    fn name(&self) -> &str {
        &self.program.name
    }
    fn tick(&mut self, now: Cycle) {
        XCache::tick(self, now);
    }
    fn busy(&self) -> bool {
        XCache::busy(self)
    }
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        XCache::next_event(self, now)
    }
    fn report(&self, stats: &mut Stats) {
        stats.merge(&self.ctx.stats);
    }
}

pub(crate) fn action_operands(a: &Action) -> Vec<Operand> {
    let mut v: Vec<Operand> = a.reads().into_iter().map(Operand::Reg).collect();
    match a {
        Action::Alu { a, b, .. } | Action::UpdateM { start: a, end: b } => {
            v.push(*a);
            v.push(*b);
        }
        Action::Mov { a, .. } | Action::Hash { a, .. } | Action::PostEvent { payload: a, .. } => {
            v.push(*a);
        }
        Action::DramRead { addr, len } => {
            v.push(*addr);
            v.push(*len);
        }
        Action::DramWrite { addr, sector, len } => {
            v.push(*addr);
            v.push(*sector);
            v.push(*len);
        }
        Action::Branch { a, b, .. } => {
            v.push(*a);
            v.push(*b);
        }
        Action::AllocD { count, .. } => v.push(*count),
        Action::ReadD { sector, word, .. } => {
            v.push(*sector);
            v.push(*word);
        }
        Action::WriteD {
            sector,
            word,
            value,
        } => {
            v.push(*sector);
            v.push(*word);
            v.push(*value);
        }
        Action::FillD { sector, words } => {
            v.push(*sector);
            v.push(*words);
        }
        _ => {}
    }
    v
}

/// `SplitMix64` — the deterministic stand-in for the DSA hash unit.
#[must_use]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}
