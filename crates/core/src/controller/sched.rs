//! Lane scheduling and the walker-discipline policy (§3.3).
//!
//! The §3.3 ablation contrasts two ways of binding walkers to executor
//! lanes. Both are expressed through one [`DisciplineStage`] trait so the
//! rest of the pipeline is discipline-agnostic:
//!
//! * [`CoroutineStage`] — a yield releases the lane; the walker goes
//!   dormant holding only its X-register file. Resources are allocated and
//!   freed at action granularity.
//! * [`BlockingThreadStage`] — a yield parks the lane (`waiting`); the
//!   walker holds it from launch to retirement, including all memory
//!   stalls, and every statically partitioned thread context charges its
//!   full register file each cycle ("resources are allocated/freed at a
//!   coarse granularity").

use xcache_mem::MemoryPort;
use xcache_sim::{counter, Cycle, TraceKind};

use crate::config::{WalkerDiscipline, XCacheConfig};

use super::{Lane, XCache};

/// What a discipline does with a lane whose routine just yielded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum YieldPolicy {
    /// Free the lane; the walker re-arbitrates for one on its next event.
    ReleaseLane,
    /// Park the lane (`waiting = true`); the walker resumes in place.
    HoldLane,
}

/// Discipline-specific scheduling behaviour, one implementor per
/// [`WalkerDiscipline`] variant.
pub(crate) trait DisciplineStage {
    /// Register-byte-cycles statically charged every cycle regardless of
    /// activity (zero for disciplines that only pay for live walkers).
    fn static_occupancy(&self, cfg: &XCacheConfig) -> u64;

    /// How a routine yield disposes of its lane.
    fn on_yield(&self) -> YieldPolicy;
}

/// Coroutine discipline: fine-grained lane release (§3.3, X-Cache).
pub(crate) struct CoroutineStage;

impl DisciplineStage for CoroutineStage {
    fn static_occupancy(&self, _cfg: &XCacheConfig) -> u64 {
        0
    }
    fn on_yield(&self) -> YieldPolicy {
        YieldPolicy::ReleaseLane
    }
}

/// Blocking-thread discipline: coarse-grained lane retention (§3.3
/// baseline).
pub(crate) struct BlockingThreadStage;

impl DisciplineStage for BlockingThreadStage {
    fn static_occupancy(&self, cfg: &XCacheConfig) -> u64 {
        // Thread contexts are statically partitioned hardware: every
        // context's full register file is occupied every cycle, whether
        // walking or stalled.
        (cfg.thread_context_regs * 8 * cfg.active) as u64
    }
    fn on_yield(&self) -> YieldPolicy {
        YieldPolicy::HoldLane
    }
}

/// The stage implementing `discipline`.
pub(crate) fn discipline_stage(discipline: WalkerDiscipline) -> &'static dyn DisciplineStage {
    match discipline {
        WalkerDiscipline::Coroutine => &CoroutineStage,
        WalkerDiscipline::BlockingThread => &BlockingThreadStage,
    }
}

impl<D: MemoryPort> XCache<D> {
    /// First free executor lane, if any.
    pub(super) fn free_lane(&self) -> Option<usize> {
        self.lanes.iter().position(Option::is_none)
    }

    /// Dispatches the next pending event of walker `slot` into a lane.
    pub(super) fn dispatch(&mut self, now: Cycle, slot: usize) -> bool {
        let Some((event, payload)) = self.arena.front_event(slot) else {
            return false;
        };
        let state = self.arena.cold[slot].state;
        // Thread discipline: reuse the walker's blocked lane if it has one.
        let lane_idx = if let Some(i) = self
            .lanes
            .iter()
            .position(|l| l.is_some_and(|l| l.slot == slot && l.waiting))
        {
            i
        } else if self.arena.in_lane[slot] {
            return false; // already running
        } else if let Some(i) = self.free_lane() {
            i
        } else {
            return false;
        };
        let Some(routine) = self.program.table.lookup(state, event) else {
            // Protocol error: no transition for (state, event).
            self.ctx.stats.incr_id(counter!("xcache.protocol_error"));
            self.arena.pop_event(slot);
            self.fault_walker(now, slot);
            return true;
        };
        self.arena.pop_event(slot);
        self.arena.msg[slot] = payload;
        self.arena.in_lane[slot] = true;
        // Max-semantics: a macro-mode fused run stamps progress with the
        // cycle its last action completes, which may still be in the
        // future here; plain assignment would regress it (in micro mode
        // stamps are monotone, so `max` is the identity).
        self.arena.last_progress[slot] = self.arena.last_progress[slot].max(now);
        self.arena.cold[slot].last_routine = Some(routine);
        self.global_progress = self.global_progress.max(now);
        self.lanes[lane_idx] = Some(Lane {
            slot,
            routine,
            pc: 0,
            waiting: false,
            stall_cycles: 0,
            resume: now,
        });
        self.ctx.stats.incr_id(counter!("xcache.wakeup"));
        self.ctx
            .trace
            .emit_with(now, TraceKind::Wake, "xcache", || {
                format!("slot {slot} event {event}")
            });
        true
    }

    /// Wakes one dormant walker with a pending event (round-robin).
    pub(super) fn wake_one(&mut self, now: Cycle) {
        if self.arena.ready_events() == 0 {
            return;
        }
        let n = self.arena.len();
        for off in 0..n {
            let slot = (self.wake_rr + off) % n;
            if !self.arena.is_live(slot) || !self.arena.has_events(slot) {
                continue;
            }
            let dispatchable = !self.arena.in_lane[slot]
                || self
                    .lanes
                    .iter()
                    .any(|l| l.is_some_and(|l| l.slot == slot && l.waiting));
            if dispatchable && self.dispatch(now, slot) {
                self.wake_rr = (slot + 1) % n;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::XCacheConfig;

    #[test]
    fn coroutine_discipline_is_free_when_idle() {
        let cfg = XCacheConfig::test_tiny();
        let stage = discipline_stage(WalkerDiscipline::Coroutine);
        assert_eq!(stage.static_occupancy(&cfg), 0);
        assert_eq!(stage.on_yield(), YieldPolicy::ReleaseLane);
    }

    #[test]
    fn blocking_thread_discipline_charges_all_contexts() {
        let cfg = XCacheConfig::test_tiny();
        let stage = discipline_stage(WalkerDiscipline::BlockingThread);
        assert_eq!(
            stage.static_occupancy(&cfg),
            (cfg.thread_context_regs * 8 * cfg.active) as u64
        );
        assert_eq!(stage.on_yield(), YieldPolicy::HoldLane);
    }

    #[test]
    fn disciplines_map_to_distinct_stages() {
        // The two policies must disagree on yield handling — that is the
        // entire §3.3 ablation.
        let co = discipline_stage(WalkerDiscipline::Coroutine).on_yield();
        let th = discipline_stage(WalkerDiscipline::BlockingThread).on_yield();
        assert_ne!(co, th);
    }
}
