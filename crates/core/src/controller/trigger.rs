//! Trigger stage (front-end, §4.1–§4.2).
//!
//! Monitors the DRAM response port, the delayed-event queue, and the
//! datapath access queue. Meta-tag hits are answered directly through the
//! dedicated read port; misses launch walkers, subject to the hazard
//! checks of §4.1 ③ ("routines are not triggered until all the hazard
//! conditions are eliminated").

use std::collections::VecDeque;

use xcache_isa::{EventId, StateId};
use xcache_mem::MemoryPort;
use xcache_sim::{counter, Cycle, FaultKind, TraceKind};

use crate::metatag::EntryRef;
use crate::{MetaAccess, MetaKey};

use super::walker::Walker;
use super::{XCache, MSG_WORDS, SCHED_WINDOW};

impl<D: MemoryPort> XCache<D> {
    /// Collects DRAM responses into the owning walkers' event queues.
    pub(super) fn collect_fills(&mut self, now: Cycle) {
        while let Some(resp) = self.downstream.take_response(now) {
            let Some((slot, gen)) = self.inflight.remove(&resp.id.0) else {
                continue; // stale (walker faulted); drop
            };
            let Some(w) = self.walkers[slot].as_mut() else {
                continue;
            };
            if w.gen != gen {
                continue;
            }
            let mut payload = [0u64; MSG_WORDS];
            for (i, chunk) in resp.data.chunks(8).take(MSG_WORDS).enumerate() {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                payload[i] = u64::from_le_bytes(b);
            }
            w.fill_data = Some(resp.data.clone());
            w.pending.push_back((EventId::FILL, payload));
            w.last_progress = now;
            self.global_progress = now;
            self.ctx.stats.incr_id(counter!("xcache.fill_resp"));
            self.ctx.trace.emit(
                now,
                TraceKind::DramResp,
                "xcache",
                format!("slot {slot} addr {:#x}", resp.addr),
            );
        }
    }

    /// Delivers due delayed events (hash results, posted events).
    pub(super) fn deliver_delayed(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= now {
                let (_, slot, gen, ev, payload) = self.delayed.swap_remove(i);
                if let Some(w) = self.walkers[slot].as_mut() {
                    if w.gen == gen {
                        w.pending.push_back((ev, payload));
                        w.last_progress = now;
                        self.global_progress = now;
                    }
                }
            } else {
                i += 1;
            }
        }
    }

    /// Processes at most one datapath access per cycle.
    ///
    /// Meta hits are "handled by a dedicated read port … fully pipelined"
    /// (§4.2), so a miss that cannot launch a walker this cycle (no free
    /// X-register file) must not block younger hits. The trigger stage
    /// therefore scans a bounded window of the pending accesses and serves
    /// the first one that can make progress, never reordering two accesses
    /// to the same key.
    pub(super) fn process_access(&mut self, now: Cycle, wake_budget: &mut usize) {
        // Watchdog-aborted accesses whose backoff has elapsed re-enter
        // the replay queue first (their dues are folded into
        // `next_event`, so skip and step runs drain them on the same
        // cycles, in the same order).
        if !self.delayed_replay.is_empty() {
            let mut i = 0;
            while i < self.delayed_replay.len() {
                if self.delayed_replay[i].0 <= now {
                    let (_, a) = self.delayed_replay.swap_remove(i);
                    self.replay_q.push_back(a);
                } else {
                    i += 1;
                }
            }
        }
        // Refill the trigger-stage window from the replay queue (waiters
        // released by a retiring walker) then the datapath queue.
        while self.pending.len() < self.cfg.access_queue_depth {
            if let Some(a) = self.replay_q.pop_front() {
                self.pending.push_back(a);
            } else if let Some(a) = self.access_q.pop(now) {
                self.pending.push_back(a);
            } else {
                break;
            }
        }

        let window = self.pending.len().min(SCHED_WINDOW);
        let mut seen_keys: Vec<MetaKey> = Vec::with_capacity(window);
        let mut serve: Option<usize> = None;
        for i in 0..window {
            let access = self.pending[i];
            let key = access.key();
            if seen_keys.contains(&key) {
                continue; // per-key order preserved
            }
            seen_keys.push(key);
            if self.can_serve(now, &access, wake_budget) {
                serve = Some(i);
                break;
            }
        }
        let Some(i) = serve else {
            self.launch_stalled = !self.pending.is_empty();
            if self.launch_stalled {
                self.ctx.stats.incr_id(counter!("xcache.launch_stall"));
            }
            return;
        };
        self.launch_stalled = false;
        let access = self.pending.remove(i).expect("index in window");
        self.serve_access(now, access, wake_budget);
    }

    /// Whether `access` can make progress this cycle (trigger-stage hazard
    /// check — "routines are not triggered until all the hazard conditions
    /// are eliminated", §4.1 ③).
    fn can_serve(&mut self, now: Cycle, access: &MetaAccess, wake_budget: &usize) -> bool {
        let key = access.key();
        if let Some(_slot) = self.launching.get(&key) {
            // Loads attach as waiters (always possible); stores/takes must
            // wait for the walker to finish.
            return matches!(access, MetaAccess::Load { .. });
        }
        // Degraded meta path: loads and stores are answered immediately
        // through the bypass (no walker, no tag dependence).
        if self.degraded(now) && !matches!(access, MetaAccess::Take { .. }) {
            return true;
        }
        let hit = match self.tags.peek(key) {
            Some(r) => !self.misfires(access, self.tags.entry(r).pinned),
            None => false,
        };
        match access {
            MetaAccess::Load { .. } if hit => true,
            MetaAccess::Take { .. } => true, // hit or definitive not-found
            // Walker launch needs the cycle's wake, a lane, an X-reg file,
            // and — unless the walker will attach to an existing entry —
            // an allocatable way in the key's set ("routines are not
            // triggered until all the hazard conditions are eliminated").
            // Permanently pinned-full sets still launch so the walker can
            // fast-fault and inform the datapath.
            _ => {
                let alloc_ok = hit || self.tags.can_alloc(key) || self.tags.set_unevictable(key);
                *wake_budget > 0 && self.xregs.has_free() && self.free_lane().is_some() && alloc_ok
            }
        }
    }

    /// Whether the fault plan fires a meta-tag lookup misfire for this
    /// access: the probe result is suppressed, so a resident key walks
    /// again. Restricted to loads on unpinned entries — misfiring a take
    /// (or a pinned entry, whose data exists only on-chip) would strand
    /// state no later access can reach. Pure in the access id, so the
    /// hazard check and the serve see the same decision.
    fn misfires(&self, access: &MetaAccess, pinned: bool) -> bool {
        let Some(plan) = &self.fault else {
            return false;
        };
        !pinned
            && matches!(access, MetaAccess::Load { .. })
            && plan.decide(FaultKind::MetaMisfire, access.id()).is_some()
    }

    fn serve_access(&mut self, now: Cycle, access: MetaAccess, wake_budget: &mut usize) {
        let key = access.key();
        // Load-to-use is measured from dispatch (the trigger stage picked
        // the access) to response — matching how the probe-engine
        // baselines measure their per-walk latency.
        self.issue_times.insert(access.id(), now);
        if let Some(&slot) = self.launching.get(&key) {
            let w = self.walkers[slot].as_mut().expect("launching entry");
            w.waiters.push(access);
            self.ctx.stats.incr_id(counter!("xcache.waiter"));
            return;
        }
        // Degraded meta path (can_serve agreed): answer "not found" so
        // the datapath walks the structure directly — correct, just
        // uncached — instead of relying on an unhealthy tag pipeline.
        if self.degraded(now) && !matches!(access, MetaAccess::Take { .. }) {
            match access {
                MetaAccess::Load { id, .. } => {
                    self.ctx.stats.incr_id(counter!("xcache.degraded_load"));
                    self.respond(now, id, key, false, Vec::new());
                }
                MetaAccess::Store { id, .. } => {
                    self.ctx.stats.incr_id(counter!("xcache.degraded_store"));
                    self.respond(now, id, key, false, Vec::new());
                }
                MetaAccess::Take { .. } => unreachable!("takes are not bypassed"),
            }
            return;
        }
        let probe = match self.tags.probe(key, &mut self.ctx.stats) {
            Some(r) if self.misfires(&access, self.tags.entry(r).pinned) => {
                self.ctx
                    .stats
                    .incr_id(counter!("xcache.fault.meta_misfire"));
                self.note_meta_strike(now);
                None
            }
            p => p,
        };
        match access {
            MetaAccess::Load { id, .. } => {
                if let Some(r) = probe {
                    let e = *self.tags.entry(r);
                    debug_assert!(!e.active, "active entry without launching record");
                    self.ctx.stats.incr_id(counter!("xcache.hit"));
                    let data =
                        self.data
                            .gather(e.sector_start, e.sector_count, &mut self.ctx.stats);
                    self.respond(now, id, key, true, data);
                    self.ctx
                        .trace
                        .emit(now, TraceKind::Hit, "xcache", format!("{key}"));
                } else {
                    self.launch(
                        now,
                        access,
                        false,
                        None,
                        [0; MSG_WORDS],
                        EventId::MISS,
                        wake_budget,
                    );
                }
            }
            MetaAccess::Store { payload, .. } => {
                let mut msg = [0u64; MSG_WORDS];
                msg[0] = payload[0];
                msg[1] = payload[1];
                if let Some(r) = probe {
                    self.ctx.stats.incr_id(counter!("xcache.store_hit"));
                    self.launch(
                        now,
                        access,
                        true,
                        Some(r),
                        msg,
                        EventId::UPDATE,
                        wake_budget,
                    );
                } else {
                    self.ctx.stats.incr_id(counter!("xcache.store_miss"));
                    self.launch(now, access, false, None, msg, EventId::UPDATE, wake_budget);
                }
            }
            MetaAccess::Take { id, .. } => {
                if let Some(r) = probe {
                    let e = self.tags.invalidate(r, &mut self.ctx.stats);
                    self.ctx.stats.incr_id(counter!("xcache.take_hit"));
                    let data =
                        self.data
                            .gather(e.sector_start, e.sector_count, &mut self.ctx.stats);
                    if e.sector_count > 0 {
                        self.data.free(e.sector_start, e.sector_count);
                    }
                    self.respond(now, id, key, true, data);
                } else {
                    self.ctx.stats.incr_id(counter!("xcache.take_miss"));
                    self.respond(now, id, key, false, Vec::new());
                }
            }
        }
    }

    /// Launches a walker for `access`; `can_serve` already checked the
    /// resources, so failure here is a logic error.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        &mut self,
        now: Cycle,
        access: MetaAccess,
        probe_hit: bool,
        entry: Option<EntryRef>,
        msg: [u64; MSG_WORDS],
        event: EventId,
        wake_budget: &mut usize,
    ) {
        let file = self
            .xregs
            .alloc(now)
            .expect("can_serve checked a free file");
        let slot = usize::from(file.0);
        self.slot_gens[slot] = self.slot_gens[slot].wrapping_add(1);
        let gen = self.slot_gens[slot];
        if let Some(r) = entry {
            self.tags.entry_mut(r).active = true;
        }
        let state = entry.map_or(StateId::DEFAULT, |r| self.tags.entry(r).state);
        let mut w = Walker {
            key: access.key(),
            entry,
            state: if event == EventId::MISS {
                StateId::DEFAULT
            } else {
                state
            },
            probe_hit,
            pending: VecDeque::new(),
            msg,
            fill_data: None,
            origin: access,
            responded: false,
            owns_entry: false,
            waiters: Vec::new(),
            launched_at: now,
            gen,
            in_lane: false,
            last_progress: now,
            last_routine: None,
        };
        w.pending.push_back((event, msg));
        self.walkers[slot] = Some(w);
        self.launching.insert(access.key(), slot);
        self.global_progress = now;
        self.ctx.stats.incr_id(counter!("xcache.walker_launch"));
        if event == EventId::MISS {
            self.ctx.stats.incr_id(counter!("xcache.miss"));
            self.ctx
                .trace
                .emit(now, TraceKind::Miss, "xcache", format!("{}", access.key()));
        }
        // Launch consumes the cycle's wake: dispatch immediately.
        *wake_budget = 0;
        self.dispatch(now, slot);
    }
}

#[cfg(test)]
mod tests {
    use crate::{MetaAccess, MetaKey, XCache, XCacheConfig};
    use xcache_isa::asm::assemble;
    use xcache_mem::{DramConfig, DramModel};
    use xcache_sim::Cycle;

    fn array_walker() -> xcache_isa::WalkerProgram {
        assemble(
            r#"
            walker t
            states Default, Wait
            regs 2
            params base
            routine start {
                allocR
                allocM
                mul r0, key, 32
                add r0, r0, base
                dram_read r0, 32
                yield Wait
            }
            routine fill {
                allocD r1, 1
                filld r1, 4
                updatem r1, r1
                respond
                retire
            }
            on Default, Miss -> start
            on Wait, Fill -> fill
        "#,
        )
        .expect("valid")
    }

    fn tiny() -> XCache<DramModel> {
        let mut dram = DramModel::new(DramConfig::test_tiny());
        for k in 0..32u64 {
            dram.memory_mut().write_u64(0x1000 + k * 32, 9000 + k);
        }
        let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
        XCache::new(cfg, array_walker(), dram).expect("builds")
    }

    fn run_until_response(xc: &mut XCache<DramModel>, mut now: Cycle) -> (Cycle, crate::MetaResp) {
        loop {
            xc.tick(now);
            if let Some(r) = xc.take_response(now) {
                return (now, r);
            }
            now = now.next();
            assert!(now.raw() < 100_000, "trigger stage deadlocked");
        }
    }

    #[test]
    fn miss_launches_walker_then_hit_bypasses() {
        let mut xc = tiny();
        let a = MetaAccess::Load {
            id: 1,
            key: MetaKey::new(3),
        };
        xc.try_access(Cycle(0), a).expect("queue empty");
        let (now, r) = run_until_response(&mut xc, Cycle(0));
        assert!(r.found);
        assert_eq!(r.data[0], 9003);
        assert_eq!(xc.stats().get("xcache.miss"), 1);
        assert_eq!(xc.stats().get("xcache.walker_launch"), 1);

        // Second access to the same key: pure meta-tag hit, no walker.
        let a = MetaAccess::Load {
            id: 2,
            key: MetaKey::new(3),
        };
        xc.try_access(now.next(), a).expect("queue empty");
        let (_, r) = run_until_response(&mut xc, now.next());
        assert!(r.found);
        assert_eq!(r.data[0], 9003);
        assert_eq!(xc.stats().get("xcache.hit"), 1);
        assert_eq!(
            xc.stats().get("xcache.walker_launch"),
            1,
            "no second walker"
        );
    }

    #[test]
    fn duplicate_key_loads_attach_as_waiters() {
        let mut xc = tiny();
        xc.try_access(
            Cycle(0),
            MetaAccess::Load {
                id: 1,
                key: MetaKey::new(5),
            },
        )
        .expect("queue empty");
        xc.try_access(
            Cycle(0),
            MetaAccess::Load {
                id: 2,
                key: MetaKey::new(5),
            },
        )
        .expect("queue has room");
        let mut now = Cycle(0);
        let mut got = Vec::new();
        while got.len() < 2 {
            xc.tick(now);
            while let Some(r) = xc.take_response(now) {
                got.push(r.id);
            }
            now = now.next();
            assert!(now.raw() < 100_000, "waiter never answered");
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(
            xc.stats().get("xcache.walker_launch"),
            1,
            "one walk serves both"
        );
        assert_eq!(xc.stats().get("xcache.waiter"), 1);
    }

    #[test]
    fn take_miss_answers_not_found_without_walker() {
        let mut xc = tiny();
        xc.try_access(
            Cycle(0),
            MetaAccess::Take {
                id: 9,
                key: MetaKey::new(7),
            },
        )
        .expect("queue empty");
        let (_, r) = run_until_response(&mut xc, Cycle(0));
        assert!(!r.found);
        assert_eq!(xc.stats().get("xcache.take_miss"), 1);
        assert_eq!(xc.stats().get("xcache.walker_launch"), 0);
    }
}
