//! Trigger stage (front-end, §4.1–§4.2).
//!
//! Monitors the DRAM response port, the delayed-event queue, and the
//! datapath access queue. Meta-tag hits are answered directly through the
//! dedicated read port; misses launch walkers, subject to the hazard
//! checks of §4.1 ③ ("routines are not triggered until all the hazard
//! conditions are eliminated").

use xcache_isa::{EventId, StateId};
use xcache_mem::MemoryPort;
use xcache_sim::{counter, Cycle, FaultKind, TraceKind};

use crate::metatag::EntryRef;
use crate::{MetaAccess, MetaKey};

use super::{XCache, MSG_WORDS, SCHED_WINDOW};

impl<D: MemoryPort> XCache<D> {
    /// Collects DRAM responses into the owning walkers' event queues.
    pub(super) fn collect_fills(&mut self, now: Cycle) {
        while let Some(resp) = self.downstream.take_response(now) {
            let Some((slot, gen)) = self.inflight.remove(&resp.id.0) else {
                continue; // stale (walker faulted); drop
            };
            if !self.arena.is_live(slot) || self.arena.gen[slot] != gen {
                continue;
            }
            let mut payload = [0u64; MSG_WORDS];
            for (i, chunk) in resp.data.chunks(8).take(MSG_WORDS).enumerate() {
                let mut b = [0u8; 8];
                b[..chunk.len()].copy_from_slice(chunk);
                payload[i] = u64::from_le_bytes(b);
            }
            self.arena.cold[slot].fill_data = Some(resp.data);
            self.arena.push_event(slot, EventId::FILL, payload);
            // Max-semantics: a fill can land while the slot's lane is
            // macro-dormant holding a future-dated progress stamp.
            self.arena.last_progress[slot] = self.arena.last_progress[slot].max(now);
            self.global_progress = self.global_progress.max(now);
            self.ctx.stats.incr_id(counter!("xcache.fill_resp"));
            self.ctx
                .trace
                .emit_with(now, TraceKind::DramResp, "xcache", || {
                    format!("slot {slot} addr {:#x}", resp.addr)
                });
        }
    }

    /// Delivers due delayed events (hash results, posted events) from the
    /// timing wheel, in deterministic (due, schedule-order) order.
    pub(super) fn deliver_delayed(&mut self, now: Cycle) {
        if self.delayed.next_due().is_none_or(|d| d > now) {
            return;
        }
        let mut buf = std::mem::take(&mut self.delayed_buf);
        self.delayed.pop_due_into(now, &mut buf);
        for &(_, (slot, gen, ev, payload)) in &buf {
            if self.arena.is_live(slot) && self.arena.gen[slot] == gen {
                self.arena.push_event(slot, ev, payload);
                self.arena.last_progress[slot] = self.arena.last_progress[slot].max(now);
                self.global_progress = self.global_progress.max(now);
            }
        }
        buf.clear();
        self.delayed_buf = buf;
    }

    /// Processes at most one datapath access per cycle.
    ///
    /// Meta hits are "handled by a dedicated read port … fully pipelined"
    /// (§4.2), so a miss that cannot launch a walker this cycle (no free
    /// X-register file) must not block younger hits. The trigger stage
    /// therefore scans a bounded window of the pending accesses and serves
    /// the first one that can make progress, never reordering two accesses
    /// to the same key.
    pub(super) fn process_access(&mut self, now: Cycle, wake_budget: &mut usize) {
        // Watchdog-aborted accesses whose backoff has elapsed re-enter
        // the replay queue first (their dues are folded into
        // `next_event`, so skip and step runs drain them on the same
        // cycles, in the same order).
        let mut refilled = false;
        if !self.delayed_replay.is_empty() {
            let mut i = 0;
            while i < self.delayed_replay.len() {
                if self.delayed_replay[i].0 <= now {
                    let (_, a) = self.delayed_replay.swap_remove(i);
                    self.replay_q.push_back(a);
                    refilled = true;
                } else {
                    i += 1;
                }
            }
        }
        // Refill the trigger-stage window from the replay queue (waiters
        // released by a retiring walker) then the datapath queue.
        while self.pending.len() < self.cfg.access_queue_depth {
            if let Some(a) = self.replay_q.pop_front() {
                self.pending.push_back(a);
            } else if let Some(a) = self.access_q.pop(now) {
                self.pending.push_back(a);
            } else {
                break;
            }
            refilled = true;
        }

        // Dirty gate: `launch_stalled` means the last window scan failed
        // and nothing since has perturbed the hazard state. Every site
        // that frees a resource or mutates the tags clears the flag:
        // retire/fault/abort/backoff (X-regs, lanes, launching claims),
        // lane release on yield, AllocM/InsertM/DeallocM/PinM and idle
        // eviction (tag contents), degraded-mode entry and watchdog
        // recovery. Pure register/data/DRAM actions cannot change the
        // hazard checks, so a busy executor no longer forces a rescan
        // every cycle. If the window contents are also unchanged,
        // rescanning would fail identically — charge the stall and skip
        // the scan.
        if self.launch_stalled && !refilled {
            self.ctx.stats.incr_id(counter!("xcache.launch_stall"));
            return;
        }

        let Some(&head) = self.pending.front() else {
            self.launch_stalled = false;
            return;
        };
        // Head fast path: the window's first candidate is always
        // `pending[0]`, and on the vast majority of scans it serves —
        // skip the dedup-window build entirely for that case. `can_serve`
        // is deterministic and side-effect-free (its only write,
        // `probe_cache`, is key-validated by the consumer), so the slow
        // path below can also skip re-checking candidate 0.
        self.probe_cache = None;
        if self.can_serve(now, &head, wake_budget, None) {
            self.launch_stalled = false;
            let access = self.pending.pop_front().expect("head exists");
            self.serve_access(now, access, wake_budget);
            return;
        }
        let window = self.pending.len().min(SCHED_WINDOW);
        let mut seen_keys = [MetaKey::new(0); SCHED_WINDOW];
        let mut cand = [0usize; SCHED_WINDOW];
        seen_keys[0] = head.key();
        let mut seen = 1usize;
        for i in 1..window {
            let key = self.pending[i].key();
            if seen_keys[..seen].contains(&key) {
                continue; // per-key order preserved
            }
            seen_keys[seen] = key;
            cand[seen] = i;
            seen += 1;
        }
        // Macro mode: the head candidate keeps its lazy probe (handled
        // above); past it, hazard checks are primed through
        // [`MetaTagArray::launch_probe_batch`] in geometrically growing
        // chunks — deep scans coalesce into a few multi-probe passes
        // while shallow ones over-probe at most one chunk. The batch
        // probe is pure and uncounted, so probing candidates the scan
        // never reaches is byte-invisible. Micro mode keeps the fully
        // lazy per-candidate probe as the reference path.
        let macro_mode = seen > 1 && matches!(xcache_sim::exec_mode(), xcache_sim::ExecMode::Macro);
        if macro_mode {
            self.probe_batch.clear();
        }
        let mut serve: Option<usize> = None;
        for (c, &cand_c) in cand.iter().enumerate().take(seen).skip(1) {
            let prefetched = if macro_mode {
                // `probe_batch[i]` answers candidate `1 + i`.
                if c > self.probe_batch.len() {
                    let covered = 1 + self.probe_batch.len();
                    let chunk_end = seen.min((c * 2).max(c + 2));
                    self.tags
                        .launch_probe_batch(&seen_keys[covered..chunk_end], &mut self.probe_batch);
                }
                Some(self.probe_batch[c - 1])
            } else {
                None
            };
            let access = self.pending[cand_c];
            if self.can_serve(now, &access, wake_budget, prefetched) {
                serve = Some(cand_c);
                break;
            }
        }
        let Some(i) = serve else {
            self.launch_stalled = true;
            self.ctx.stats.incr_id(counter!("xcache.launch_stall"));
            return;
        };
        self.launch_stalled = false;
        let access = self.pending.remove(i).expect("index in window");
        self.serve_access(now, access, wake_budget);
    }

    /// Whether `access` can make progress this cycle (trigger-stage hazard
    /// check — "routines are not triggered until all the hazard conditions
    /// are eliminated", §4.1 ③). `prefetched` carries this key's answer
    /// from the macro-mode batched window probe, when one ran.
    fn can_serve(
        &mut self,
        now: Cycle,
        access: &MetaAccess,
        wake_budget: &usize,
        prefetched: Option<crate::metatag::LaunchProbe>,
    ) -> bool {
        let key = access.key();
        if let Some(_slot) = self.launching.get(&key) {
            // Loads attach as waiters (always possible); stores/takes must
            // wait for the walker to finish.
            return matches!(access, MetaAccess::Load { .. });
        }
        // Degraded meta path: loads and stores are answered immediately
        // through the bypass (no walker, no tag dependence).
        if self.degraded(now) && !matches!(access, MetaAccess::Take { .. }) {
            return true;
        }
        // One fused way scan answers residency, allocatability and
        // pinned-full-ness together (it used to be up to three scans of
        // the same set). Remember where it landed: if this access is the
        // one served, `serve_access` completes the lookup via `probe_at`
        // without re-scanning the set.
        let probe = prefetched.unwrap_or_else(|| self.tags.launch_probe(key));
        self.probe_cache = Some((key, probe.hit));
        let hit = match probe.hit {
            Some(r) => !self.misfires(access, self.tags.entry(r).pinned),
            None => false,
        };
        match access {
            MetaAccess::Load { .. } if hit => true,
            MetaAccess::Take { .. } => true, // hit or definitive not-found
            // Walker launch needs the cycle's wake, a lane, an X-reg file,
            // and — unless the walker will attach to an existing entry —
            // an allocatable way in the key's set ("routines are not
            // triggered until all the hazard conditions are eliminated").
            // Permanently pinned-full sets still launch so the walker can
            // fast-fault and inform the datapath.
            _ => {
                let alloc_ok = hit || probe.can_alloc || probe.unevictable;
                *wake_budget > 0 && self.xregs.has_free() && self.free_lane().is_some() && alloc_ok
            }
        }
    }

    /// Whether the fault plan fires a meta-tag lookup misfire for this
    /// access: the probe result is suppressed, so a resident key walks
    /// again. Restricted to loads on unpinned entries — misfiring a take
    /// (or a pinned entry, whose data exists only on-chip) would strand
    /// state no later access can reach. Pure in the access id, so the
    /// hazard check and the serve see the same decision.
    fn misfires(&self, access: &MetaAccess, pinned: bool) -> bool {
        let Some(plan) = &self.fault else {
            return false;
        };
        !pinned
            && matches!(access, MetaAccess::Load { .. })
            && plan.decide(FaultKind::MetaMisfire, access.id()).is_some()
    }

    fn serve_access(&mut self, now: Cycle, access: MetaAccess, wake_budget: &mut usize) {
        let key = access.key();
        // Load-to-use is measured from dispatch (the trigger stage picked
        // the access) to response — matching how the probe-engine
        // baselines measure their per-walk latency.
        self.issue_times.insert(access.id(), now);
        if let Some(&slot) = self.launching.get(&key) {
            debug_assert!(self.arena.is_live(slot), "launching entry");
            self.arena.cold[slot].waiters.push(access);
            self.ctx.stats.incr_id(counter!("xcache.waiter"));
            return;
        }
        // Degraded meta path (can_serve agreed): answer "not found" so
        // the datapath walks the structure directly — correct, just
        // uncached — instead of relying on an unhealthy tag pipeline.
        if self.degraded(now) && !matches!(access, MetaAccess::Take { .. }) {
            match access {
                MetaAccess::Load { id, .. } => {
                    self.ctx.stats.incr_id(counter!("xcache.degraded_load"));
                    self.respond(now, id, key, false, Vec::new());
                }
                MetaAccess::Store { id, .. } => {
                    self.ctx.stats.incr_id(counter!("xcache.degraded_store"));
                    self.respond(now, id, key, false, Vec::new());
                }
                MetaAccess::Take { .. } => unreachable!("takes are not bypassed"),
            }
            return;
        }
        // One tag scan per served access: reuse the hazard check's way
        // scan when it was for this key (always, on the path through a
        // successful `can_serve` peek).
        let raw = match self.probe_cache.take() {
            Some((k, r)) if k == key => self.tags.probe_at(r, &mut self.ctx.stats),
            _ => self.tags.probe(key, &mut self.ctx.stats),
        };
        let probe = match raw {
            Some(r) if self.misfires(&access, self.tags.entry(r).pinned) => {
                self.ctx
                    .stats
                    .incr_id(counter!("xcache.fault.meta_misfire"));
                self.note_meta_strike(now);
                None
            }
            p => p,
        };
        match access {
            MetaAccess::Load { id, .. } => {
                if let Some(r) = probe {
                    let e = *self.tags.entry(r);
                    debug_assert!(!e.active, "active entry without launching record");
                    self.ctx.stats.incr_id(counter!("xcache.hit"));
                    let mut data = self.take_buf();
                    self.data.gather_into(
                        e.sector_start,
                        e.sector_count,
                        &mut data,
                        &mut self.ctx.stats,
                    );
                    self.respond(now, id, key, true, data);
                    self.ctx
                        .trace
                        .emit_with(now, TraceKind::Hit, "xcache", || format!("{key}"));
                } else {
                    self.launch(
                        now,
                        access,
                        false,
                        None,
                        [0; MSG_WORDS],
                        EventId::MISS,
                        wake_budget,
                    );
                }
            }
            MetaAccess::Store { payload, .. } => {
                let mut msg = [0u64; MSG_WORDS];
                msg[0] = payload[0];
                msg[1] = payload[1];
                if let Some(r) = probe {
                    self.ctx.stats.incr_id(counter!("xcache.store_hit"));
                    self.launch(
                        now,
                        access,
                        true,
                        Some(r),
                        msg,
                        EventId::UPDATE,
                        wake_budget,
                    );
                } else {
                    self.ctx.stats.incr_id(counter!("xcache.store_miss"));
                    self.launch(now, access, false, None, msg, EventId::UPDATE, wake_budget);
                }
            }
            MetaAccess::Take { id, .. } => {
                if let Some(r) = probe {
                    let e = self.tags.invalidate(r, &mut self.ctx.stats);
                    self.ctx.stats.incr_id(counter!("xcache.take_hit"));
                    let mut data = self.take_buf();
                    self.data.gather_into(
                        e.sector_start,
                        e.sector_count,
                        &mut data,
                        &mut self.ctx.stats,
                    );
                    if e.sector_count > 0 {
                        self.data.free(e.sector_start, e.sector_count);
                    }
                    self.respond(now, id, key, true, data);
                } else {
                    self.ctx.stats.incr_id(counter!("xcache.take_miss"));
                    self.respond(now, id, key, false, Vec::new());
                }
            }
        }
    }

    /// Launches a walker for `access`; `can_serve` already checked the
    /// resources, so failure here is a logic error.
    #[allow(clippy::too_many_arguments)]
    fn launch(
        &mut self,
        now: Cycle,
        access: MetaAccess,
        probe_hit: bool,
        entry: Option<EntryRef>,
        msg: [u64; MSG_WORDS],
        event: EventId,
        wake_budget: &mut usize,
    ) {
        let file = self
            .xregs
            .alloc(now)
            .expect("can_serve checked a free file");
        let slot = usize::from(file.0);
        self.arena.gen[slot] = self.arena.gen[slot].wrapping_add(1);
        if let Some(r) = entry {
            self.tags.update_entry(r, |e| e.active = true);
        }
        let state = entry.map_or(StateId::DEFAULT, |r| self.tags.entry(r).state);
        let c = &mut self.arena.cold[slot];
        c.key = access.key();
        c.entry = entry;
        c.state = if event == EventId::MISS {
            StateId::DEFAULT
        } else {
            state
        };
        c.probe_hit = probe_hit;
        c.fill_data = None;
        c.origin = access;
        c.responded = false;
        c.owns_entry = false;
        debug_assert!(c.waiters.is_empty(), "stale waiters on launch");
        c.launched_at = now;
        c.last_routine = None;
        self.arena.msg[slot] = msg;
        self.arena.in_lane[slot] = false;
        self.arena.last_progress[slot] = now;
        self.arena.activate(slot);
        self.arena.push_event(slot, event, msg);
        self.wd_earliest = self.wd_earliest.min(now + self.wd_budget);
        self.launching.insert(access.key(), slot);
        self.global_progress = self.global_progress.max(now);
        self.ctx.stats.incr_id(counter!("xcache.walker_launch"));
        if event == EventId::MISS {
            self.ctx.stats.incr_id(counter!("xcache.miss"));
            self.ctx
                .trace
                .emit_with(now, TraceKind::Miss, "xcache", || {
                    format!("{}", access.key())
                });
        }
        // Launch consumes the cycle's wake: dispatch immediately.
        *wake_budget = 0;
        self.dispatch(now, slot);
    }
}

#[cfg(test)]
mod tests {
    use crate::{MetaAccess, MetaKey, XCache, XCacheConfig};
    use xcache_isa::asm::assemble;
    use xcache_mem::{DramConfig, DramModel};
    use xcache_sim::Cycle;

    fn array_walker() -> xcache_isa::WalkerProgram {
        assemble(
            r#"
            walker t
            states Default, Wait
            regs 2
            params base
            routine start {
                allocR
                allocM
                mul r0, key, 32
                add r0, r0, base
                dram_read r0, 32
                yield Wait
            }
            routine fill {
                allocD r1, 1
                filld r1, 4
                updatem r1, r1
                respond
                retire
            }
            on Default, Miss -> start
            on Wait, Fill -> fill
        "#,
        )
        .expect("valid")
    }

    fn tiny() -> XCache<DramModel> {
        let mut dram = DramModel::new(DramConfig::test_tiny());
        for k in 0..32u64 {
            dram.memory_mut().write_u64(0x1000 + k * 32, 9000 + k);
        }
        let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
        XCache::new(cfg, array_walker(), dram).expect("builds")
    }

    fn run_until_response(xc: &mut XCache<DramModel>, mut now: Cycle) -> (Cycle, crate::MetaResp) {
        loop {
            xc.tick(now);
            if let Some(r) = xc.take_response(now) {
                return (now, r);
            }
            now = now.next();
            assert!(now.raw() < 100_000, "trigger stage deadlocked");
        }
    }

    #[test]
    fn miss_launches_walker_then_hit_bypasses() {
        let mut xc = tiny();
        let a = MetaAccess::Load {
            id: 1,
            key: MetaKey::new(3),
        };
        xc.try_access(Cycle(0), a).expect("queue empty");
        let (now, r) = run_until_response(&mut xc, Cycle(0));
        assert!(r.found);
        assert_eq!(r.data[0], 9003);
        assert_eq!(xc.stats().get("xcache.miss"), 1);
        assert_eq!(xc.stats().get("xcache.walker_launch"), 1);

        // Second access to the same key: pure meta-tag hit, no walker.
        let a = MetaAccess::Load {
            id: 2,
            key: MetaKey::new(3),
        };
        xc.try_access(now.next(), a).expect("queue empty");
        let (_, r) = run_until_response(&mut xc, now.next());
        assert!(r.found);
        assert_eq!(r.data[0], 9003);
        assert_eq!(xc.stats().get("xcache.hit"), 1);
        assert_eq!(
            xc.stats().get("xcache.walker_launch"),
            1,
            "no second walker"
        );
    }

    #[test]
    fn duplicate_key_loads_attach_as_waiters() {
        let mut xc = tiny();
        xc.try_access(
            Cycle(0),
            MetaAccess::Load {
                id: 1,
                key: MetaKey::new(5),
            },
        )
        .expect("queue empty");
        xc.try_access(
            Cycle(0),
            MetaAccess::Load {
                id: 2,
                key: MetaKey::new(5),
            },
        )
        .expect("queue has room");
        let mut now = Cycle(0);
        let mut got = Vec::new();
        while got.len() < 2 {
            xc.tick(now);
            while let Some(r) = xc.take_response(now) {
                got.push(r.id);
            }
            now = now.next();
            assert!(now.raw() < 100_000, "waiter never answered");
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        assert_eq!(
            xc.stats().get("xcache.walker_launch"),
            1,
            "one walk serves both"
        );
        assert_eq!(xc.stats().get("xcache.waiter"), 1);
    }

    #[test]
    fn take_miss_answers_not_found_without_walker() {
        let mut xc = tiny();
        xc.try_access(
            Cycle(0),
            MetaAccess::Take {
                id: 9,
                key: MetaKey::new(7),
            },
        )
        .expect("queue empty");
        let (_, r) = run_until_response(&mut xc, Cycle(0));
        assert!(!r.found);
        assert_eq!(xc.stats().get("xcache.take_miss"), 1);
        assert_eq!(xc.stats().get("xcache.walker_launch"), 0);
    }
}
