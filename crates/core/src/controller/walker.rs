//! Walker lifecycle: per-walk context and completion paths.
//!
//! A walker is one in-flight structure walk: launched by the trigger
//! stage, advanced by the executor, and ended here — by retiring
//! (success), faulting (resources invalidated, datapath told "not
//! found"), or aborting with replay (lost an allocation race; the access
//! re-enters the trigger stage unanswered). Walker state lives in the
//! [`WalkerArena`](super::arena::WalkerArena); completion paths read the
//! slot's row, then [`deactivate`](super::arena::WalkerArena::deactivate)
//! it.

use xcache_isa::StateId;
use xcache_mem::MemoryPort;
use xcache_sim::{counter, Cycle, TraceKind};

use crate::{MetaKey, MetaResp};

use super::arena::WalkerCold;
use super::executor::Outcome;
use super::{SimError, XCache};

impl<D: MemoryPort> XCache<D> {
    /// The cold row of the live walker in `slot`, or a [`SimError`] when
    /// the slot is vacant (e.g. the walker faulted earlier this cycle).
    pub(super) fn wk(&self, slot: usize, now: Cycle) -> Result<&WalkerCold, SimError> {
        if self.arena.is_live(slot) {
            Ok(&self.arena.cold[slot])
        } else {
            Err(SimError::new(slot, now, "no walker in slot"))
        }
    }

    /// Mutable variant of [`wk`](Self::wk).
    pub(super) fn wk_mut(&mut self, slot: usize, now: Cycle) -> Result<&mut WalkerCold, SimError> {
        if self.arena.is_live(slot) {
            Ok(&mut self.arena.cold[slot])
        } else {
            Err(SimError::new(slot, now, "no walker in slot"))
        }
    }

    /// Moves spilled responses into the response queue as room appears.
    pub(super) fn drain_resp_spill(&mut self, now: Cycle) {
        while !self.resp_spill.is_empty() {
            if self.resp_q.is_full() {
                break;
            }
            let (extra, resp) = self.resp_spill.pop_front().expect("front exists");
            self.resp_q
                .push_after(now, extra, resp)
                .expect("checked not full");
        }
    }

    /// Sends a datapath response, spilling FIFO if the queue is full.
    pub(super) fn respond(
        &mut self,
        now: Cycle,
        id: u64,
        key: MetaKey,
        found: bool,
        data: Vec<u64>,
    ) {
        self.global_progress = self.global_progress.max(now);
        let sectors = data.len().div_ceil(self.data.words_per_sector()).max(1) as u64;
        let resp = MetaResp {
            id,
            key,
            found,
            data,
        };
        if let Some(t) = self.issue_times.remove(&id) {
            self.ctx.stats.sample_id(
                counter!("xcache.load_to_use"),
                now.since(t) + self.cfg.hit_latency + sectors - 1,
            );
        }
        // Serial return of multi-sector elements (§5: "all blocks are
        // serially returned to compute datapath").
        let extra = sectors - 1;
        // FIFO order: once anything spilled, later responses follow it.
        if !self.resp_spill.is_empty() || self.resp_q.is_full() {
            self.ctx.stats.incr_id(counter!("xcache.resp_spill"));
            self.resp_spill.push_back((extra, resp));
            return;
        }
        self.resp_q
            .push_after(now, extra, resp)
            .expect("checked not full");
    }

    /// Successful completion: entry rests, waiters replay, resources free.
    pub(super) fn retire_walker(&mut self, now: Cycle, slot: usize) {
        debug_assert!(self.arena.is_live(slot), "retire on empty slot");
        self.global_progress = self.global_progress.max(now);
        // Frees X-regs/lanes and removes the launching claim: a stalled
        // trigger window may now make progress.
        self.launch_stalled = false;
        let c = &mut self.arena.cold[slot];
        let key = c.key;
        let entry = c.entry;
        let responded = c.responded;
        let origin_id = c.origin.id();
        let launched_at = c.launched_at;
        let mut waiters = std::mem::take(&mut c.waiters);
        // A completed walk clears its watchdog retry history.
        self.retry_counts.remove(&key);
        self.launching.remove(&key);
        if let Some(r) = entry {
            self.tags.update_entry(r, |e| {
                e.active = false;
                // A completed entry rests in `Default`: future events on
                // it (e.g. a Store merge) dispatch from the resting
                // state, not from whatever mid-walk state the last yield
                // recorded.
                e.state = StateId::DEFAULT;
            });
        }
        if !responded {
            // Auto-acknowledge (stores / preloads that never Respond).
            self.respond(now, origin_id, key, true, Vec::new());
        }
        // Remaining waiters replay through the front-end and hit.
        for wa in waiters.drain(..) {
            self.replay_q.push_back(wa);
        }
        self.arena.cold[slot].waiters = waiters;
        self.arena.deactivate(slot);
        self.xregs
            .release(crate::xreg::XRegFile(slot as u16), now, &mut self.ctx.stats);
        self.ctx.stats.incr_id(counter!("xcache.walker_retire"));
        self.ctx
            .stats
            .sample_id(counter!("xcache.walk_latency"), now.since(launched_at));
        self.ctx
            .trace
            .emit_with(now, TraceKind::Retire, "xcache", || format!("slot {slot}"));
    }

    /// Failure: owned resources invalidated, origin and waiters answered
    /// "not found", lanes freed.
    pub(super) fn fault_walker(&mut self, now: Cycle, slot: usize) {
        if !self.arena.is_live(slot) {
            return;
        }
        self.global_progress = self.global_progress.max(now);
        // Frees X-regs/lanes/tag claims: a stalled trigger window may now
        // make progress, so it must be re-examined before fast-forwarding.
        self.launch_stalled = false;
        let c = &mut self.arena.cold[slot];
        let key = c.key;
        let entry = c.entry.take();
        let owns_entry = c.owns_entry;
        let responded = c.responded;
        let origin_id = c.origin.id();
        let mut waiters = std::mem::take(&mut c.waiters);
        self.launching.remove(&key);
        if let Some(r) = entry {
            if owns_entry {
                let e = self.tags.invalidate(r, &mut self.ctx.stats);
                if e.sector_count > 0 {
                    self.data.free(e.sector_start, e.sector_count);
                }
            } else {
                // Attached to a pre-existing entry (store hit): the data
                // is still valid, just release the active claim.
                self.tags.update_entry(r, |e| e.active = false);
            }
        }
        if !responded {
            self.respond(now, origin_id, key, false, Vec::new());
        }
        for wa in waiters.drain(..) {
            self.respond(now, wa.id(), key, false, Vec::new());
        }
        self.arena.cold[slot].waiters = waiters;
        // Free any lane the walker held (thread discipline).
        for l in &mut self.lanes {
            if l.is_some_and(|l| l.slot == slot) {
                *l = None;
            }
        }
        self.arena.deactivate(slot);
        self.xregs
            .release(crate::xreg::XRegFile(slot as u16), now, &mut self.ctx.stats);
        self.ctx.stats.incr_id(counter!("xcache.walker_fault"));
    }

    /// Aborts a walker that lost an allocation race and replays its access
    /// (and waiters) through the trigger stage — no response is sent, so
    /// the datapath just sees a longer walk.
    pub(super) fn abort_and_replay(&mut self, now: Cycle, slot: usize) {
        if !self.arena.is_live(slot) {
            return;
        }
        self.global_progress = self.global_progress.max(now);
        // Frees X-regs/lanes/tag claims like a fault does.
        self.launch_stalled = false;
        let c = &mut self.arena.cold[slot];
        let key = c.key;
        let entry = c.entry.take();
        let owns_entry = c.owns_entry;
        let origin = c.origin;
        let mut waiters = std::mem::take(&mut c.waiters);
        self.launching.remove(&key);
        if let Some(r) = entry {
            if owns_entry {
                let e = self.tags.invalidate(r, &mut self.ctx.stats);
                if e.sector_count > 0 {
                    self.data.free(e.sector_start, e.sector_count);
                }
            } else {
                self.tags.update_entry(r, |e| e.active = false);
            }
        }
        self.replay_q.push_back(origin);
        for wa in waiters.drain(..) {
            self.replay_q.push_back(wa);
        }
        self.arena.cold[slot].waiters = waiters;
        for l in &mut self.lanes {
            if l.is_some_and(|l| l.slot == slot) {
                *l = None;
            }
        }
        self.arena.deactivate(slot);
        self.xregs
            .release(crate::xreg::XRegFile(slot as u16), now, &mut self.ctx.stats);
        self.ctx.stats.incr_id(counter!("xcache.walker_replay"));
    }

    /// Records a runtime protocol violation and faults the walker: the
    /// structured replacement for the executor's old panic paths.
    pub(super) fn runtime_error(&mut self, now: Cycle, err: &SimError) -> Outcome {
        self.ctx.stats.incr_id(counter!("xcache.walker_error"));
        self.ctx
            .trace
            .emit_with(now, TraceKind::Other, "xcache", || err.to_string());
        self.fault_walker(now, err.slot);
        Outcome::FreeLane
    }

    /// Evicts one idle, unpinned meta entry (LRU-ish: first found in scan
    /// order), freeing its sectors. Returns whether anything was evicted.
    pub(super) fn evict_one_idle(&mut self) -> bool {
        let victim = self
            .tags
            .iter()
            .filter(|e| !e.active && !e.pinned && e.sector_count > 0)
            .min_by_key(|e| e.sector_count)
            .map(|e| e.key);
        let Some(key) = victim else {
            return false;
        };
        let r = self.tags.peek(key).expect("victim present");
        let e = self.tags.invalidate(r, &mut self.ctx.stats);
        // A freed way can unblock a stalled launch.
        self.launch_stalled = false;
        self.data.free(e.sector_start, e.sector_count);
        self.ctx.stats.incr_id(counter!("xcache.capacity_evict"));
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::{MetaAccess, MetaKey, XCache, XCacheConfig};
    use xcache_isa::asm::assemble;
    use xcache_mem::{DramConfig, DramModel};
    use xcache_sim::Cycle;

    /// A walker that always faults — exercises the fault path end to end.
    fn faulting_walker() -> xcache_isa::WalkerProgram {
        assemble(
            r#"
            walker f
            states Default
            regs 1
            routine start {
                allocR
                fault
            }
            on Default, Miss -> start
        "#,
        )
        .expect("valid")
    }

    #[test]
    fn fault_answers_not_found_and_frees_resources() {
        let dram = DramModel::new(DramConfig::test_tiny());
        let cfg = XCacheConfig::test_tiny();
        let mut xc = XCache::new(cfg, faulting_walker(), dram).expect("builds");
        xc.try_access(
            Cycle(0),
            MetaAccess::Load {
                id: 4,
                key: MetaKey::new(1),
            },
        )
        .expect("queue empty");
        let mut now = Cycle(0);
        let r = loop {
            xc.tick(now);
            if let Some(r) = xc.take_response(now) {
                break r;
            }
            now = now.next();
            assert!(now.raw() < 10_000, "fault path deadlocked");
        };
        assert!(!r.found, "faulted walk must answer not-found");
        assert_eq!(xc.stats().get("xcache.walker_fault"), 1);
        // Resource conservation: everything released, instance quiescent.
        while xc.busy() {
            now = now.next();
            xc.tick(now);
            let _ = xc.take_response(now);
            assert!(now.raw() < 10_000, "never drained");
        }
        assert_eq!(
            xc.stats().get("xcache.walker_launch"),
            xc.stats().get("xcache.walker_retire") + xc.stats().get("xcache.walker_fault")
        );
    }
}
