//! The sectored data RAM (§4.1 ⑥).
//!
//! "The data RAM is organized as fixed-granularity sectors. Each data
//! element can occupy multiple sectors depending on the size (e.g., number
//! of non-zeros in a row)." Entries own *contiguous* sector runs —
//! meta-tag entries store start/end pointers, like decoupled sector
//! caches — allocated first-fit from a bitmap.

use xcache_sim::{counter, Stats};

/// The banked, sectored data store.
#[derive(Debug)]
pub struct DataRam {
    words_per_sector: usize,
    words: Vec<u64>,
    used: Vec<bool>, // one flag per sector
    free_sectors: usize,
}

impl DataRam {
    /// Creates a data RAM of `sectors` sectors × `words_per_sector` words.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(sectors: usize, words_per_sector: usize) -> Self {
        assert!(sectors > 0, "sectors must be nonzero");
        assert!(words_per_sector > 0, "words_per_sector must be nonzero");
        DataRam {
            words_per_sector,
            words: vec![0; sectors * words_per_sector],
            used: vec![false; sectors],
            free_sectors: sectors,
        }
    }

    /// Total sectors.
    #[must_use]
    pub fn sectors(&self) -> usize {
        self.used.len()
    }

    /// Currently free sectors.
    #[must_use]
    pub fn free_sectors(&self) -> usize {
        self.free_sectors
    }

    /// Words per sector (`#Word` / `wlen`).
    #[must_use]
    pub fn words_per_sector(&self) -> usize {
        self.words_per_sector
    }

    /// Allocates `count` contiguous sectors first-fit (the `allocD`
    /// action). Returns the start sector, or `None` if no run fits
    /// (the controller then evicts and retries).
    pub fn alloc(&mut self, count: usize, stats: &mut Stats) -> Option<u32> {
        if count == 0 || count > self.free_sectors {
            return None;
        }
        let mut run = 0usize;
        for i in 0..self.used.len() {
            if self.used[i] {
                run = 0;
            } else {
                run += 1;
                if run == count {
                    let start = i + 1 - count;
                    for s in &mut self.used[start..=i] {
                        *s = true;
                    }
                    self.free_sectors -= count;
                    stats.add_id(counter!("xcache.data_alloc_sectors"), count as u64);
                    return Some(start as u32);
                }
            }
        }
        None
    }

    /// Frees the run `[start, start + count)` (the `deallocD` action).
    ///
    /// # Panics
    ///
    /// Panics if any sector in the run is already free or out of range —
    /// double-frees are controller bugs, not recoverable conditions.
    pub fn free(&mut self, start: u32, count: u32) {
        let (start, count) = (start as usize, count as usize);
        assert!(start + count <= self.used.len(), "free out of range");
        for i in start..start + count {
            assert!(self.used[i], "double free of sector {i}");
            self.used[i] = false;
        }
        self.free_sectors += count;
    }

    /// Reads word `word` of sector `sector` (the `read` action).
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    #[must_use]
    pub fn read_word(&self, sector: u32, word: u32, stats: &mut Stats) -> u64 {
        stats.incr_id(counter!("xcache.data_read_word"));
        self.words[self.widx(sector, word)]
    }

    /// Writes word `word` of sector `sector` (the `write` action).
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn write_word(&mut self, sector: u32, word: u32, value: u64, stats: &mut Stats) {
        stats.incr_id(counter!("xcache.data_write_word"));
        let i = self.widx(sector, word);
        self.words[i] = value;
    }

    /// Copies `data` (little-endian bytes) into sectors starting at
    /// `sector` (the fill path), zero-padding through the end of the last
    /// touched sector — fills drive whole sectors, so no stale bytes from
    /// a previous occupant survive. Returns the number of sectors touched.
    ///
    /// # Panics
    ///
    /// Panics if the copy runs past the end of the RAM.
    pub fn fill_bytes(&mut self, sector: u32, data: &[u8], stats: &mut Stats) -> u32 {
        let words = data.len().div_ceil(8);
        let sectors_touched = words.div_ceil(self.words_per_sector).max(1) as u32;
        let total_words = sectors_touched as usize * self.words_per_sector;
        for w in 0..total_words {
            let mut b = [0u8; 8];
            let off = w * 8;
            if off < data.len() {
                let n = (data.len() - off).min(8);
                b[..n].copy_from_slice(&data[off..off + n]);
            }
            let i = self.widx(
                sector + (w / self.words_per_sector) as u32,
                (w % self.words_per_sector) as u32,
            );
            self.words[i] = u64::from_le_bytes(b);
        }
        stats.add_id(
            counter!("xcache.data_write_sector"),
            u64::from(sectors_touched),
        );
        sectors_touched
    }

    /// Gathers the words of `[start, start + count)` sectors (the hit /
    /// respond path). Counts one sector read per sector.
    #[must_use]
    pub fn gather(&self, start: u32, count: u32, stats: &mut Stats) -> Vec<u64> {
        stats.add_id(counter!("xcache.data_read_sector"), u64::from(count));
        let a = start as usize * self.words_per_sector;
        let b = (start + count) as usize * self.words_per_sector;
        self.words[a..b].to_vec()
    }

    fn widx(&self, sector: u32, word: u32) -> usize {
        let i = sector as usize * self.words_per_sector + word as usize;
        assert!(
            (word as usize) < self.words_per_sector && i < self.words.len(),
            "data RAM access out of range: sector {sector}, word {word}"
        );
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut d = DataRam::new(8, 4);
        let mut s = Stats::new();
        let a = d.alloc(3, &mut s).unwrap();
        let b = d.alloc(5, &mut s).unwrap();
        assert_eq!(d.free_sectors(), 0);
        assert!(d.alloc(1, &mut s).is_none());
        d.free(a, 3);
        assert_eq!(d.free_sectors(), 3);
        let c = d.alloc(2, &mut s).unwrap();
        assert_eq!(c, a); // first-fit reuses the freed run
        let _ = b;
    }

    #[test]
    fn contiguity_required() {
        let mut d = DataRam::new(4, 1);
        let mut s = Stats::new();
        let _a = d.alloc(1, &mut s).unwrap(); // sector 0
        let b = d.alloc(1, &mut s).unwrap(); // sector 1
        let _c = d.alloc(1, &mut s).unwrap(); // sector 2
        d.free(b, 1); // hole at 1, free tail at 3
                      // Two free sectors exist but not contiguously.
        assert_eq!(d.free_sectors(), 2);
        assert!(d.alloc(2, &mut s).is_none());
        assert!(d.alloc(1, &mut s).is_some());
    }

    #[test]
    fn word_read_write() {
        let mut d = DataRam::new(2, 4);
        let mut s = Stats::new();
        d.write_word(1, 3, 99, &mut s);
        assert_eq!(d.read_word(1, 3, &mut s), 99);
        assert_eq!(s.get("xcache.data_read_word"), 1);
        assert_eq!(s.get("xcache.data_write_word"), 1);
    }

    #[test]
    fn fill_and_gather_round_trip() {
        let mut d = DataRam::new(4, 2); // 16-byte sectors
        let mut s = Stats::new();
        let start = d.alloc(2, &mut s).unwrap();
        let data: Vec<u8> = (0..28).collect(); // 3.5 words → 2 sectors
        let touched = d.fill_bytes(start, &data, &mut s);
        assert_eq!(touched, 2);
        let words = d.gather(start, 2, &mut s);
        assert_eq!(words.len(), 4);
        assert_eq!(words[0], u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        // Trailing partial word zero-padded.
        assert_eq!(words[3] & 0xff, 24);
        assert_eq!(s.get("xcache.data_read_sector"), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = DataRam::new(2, 1);
        let mut s = Stats::new();
        let a = d.alloc(1, &mut s).unwrap();
        d.free(a, 1);
        d.free(a, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_word_panics() {
        let d = DataRam::new(1, 2);
        let mut s = Stats::new();
        let _ = d.read_word(0, 5, &mut s);
    }

    #[test]
    fn zero_count_alloc_fails() {
        let mut d = DataRam::new(2, 1);
        let mut s = Stats::new();
        assert!(d.alloc(0, &mut s).is_none());
    }
}
