//! The sectored data RAM (§4.1 ⑥).
//!
//! "The data RAM is organized as fixed-granularity sectors. Each data
//! element can occupy multiple sectors depending on the size (e.g., number
//! of non-zeros in a row)." Entries own *contiguous* sector runs —
//! meta-tag entries store start/end pointers, like decoupled sector
//! caches — allocated first-fit from a bitmap.

use xcache_sim::{counter, Stats};

/// The banked, sectored data store.
#[derive(Debug)]
pub struct DataRam {
    words_per_sector: usize,
    words: Vec<u64>,
    /// Free map, one bit per sector, bit set = free. Word-packed so the
    /// first-fit scan examines 64 sectors per step instead of one; tail
    /// bits past `sectors` stay zero so no run extends off the end.
    free: Vec<u64>,
    sectors: usize,
    free_sectors: usize,
}

impl DataRam {
    /// Creates a data RAM of `sectors` sectors × `words_per_sector` words.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(sectors: usize, words_per_sector: usize) -> Self {
        assert!(sectors > 0, "sectors must be nonzero");
        assert!(words_per_sector > 0, "words_per_sector must be nonzero");
        let mut free = vec![u64::MAX; sectors.div_ceil(64)];
        let tail = sectors % 64;
        if tail != 0 {
            *free.last_mut().expect("nonzero sectors") = (1u64 << tail) - 1;
        }
        DataRam {
            words_per_sector,
            words: vec![0; sectors * words_per_sector],
            free,
            sectors,
            free_sectors: sectors,
        }
    }

    /// Total sectors.
    #[must_use]
    pub fn sectors(&self) -> usize {
        self.sectors
    }

    /// Currently free sectors.
    #[must_use]
    pub fn free_sectors(&self) -> usize {
        self.free_sectors
    }

    /// Words per sector (`#Word` / `wlen`).
    #[must_use]
    pub fn words_per_sector(&self) -> usize {
        self.words_per_sector
    }

    /// Allocates `count` contiguous sectors first-fit (the `allocD`
    /// action). Returns the start sector, or `None` if no run fits
    /// (the controller then evicts and retries).
    pub fn alloc(&mut self, count: usize, stats: &mut Stats) -> Option<u32> {
        if count == 0 || count > self.free_sectors {
            return None;
        }
        // First-fit over the packed free map: track the run of free
        // sectors ending at the scan position, skipping whole words when
        // they are uniformly used (run resets) or uniformly free.
        let mut run = 0usize;
        for (w, &word) in self.free.iter().enumerate() {
            if word == 0 {
                run = 0;
                continue;
            }
            if word == u64::MAX {
                run += 64;
                if run >= count {
                    // The run first reached `count` inside this word.
                    let start = w * 64 - (run - 64);
                    self.mark_used(start, count);
                    stats.add_id(counter!("xcache.data_alloc_sectors"), count as u64);
                    return Some(start as u32);
                }
                continue;
            }
            let mut bit = 0usize;
            while bit < 64 {
                let rest = word >> bit;
                if rest & 1 == 0 {
                    run = 0;
                    bit += (rest.trailing_zeros() as usize).min(64 - bit);
                } else {
                    let ones = (rest.trailing_ones() as usize).min(64 - bit);
                    if run + ones >= count {
                        let start = w * 64 + bit - run;
                        self.mark_used(start, count);
                        stats.add_id(counter!("xcache.data_alloc_sectors"), count as u64);
                        return Some(start as u32);
                    }
                    run += ones;
                    bit += ones;
                }
            }
        }
        None
    }

    /// Clears the free bits of the run `[start, start + count)`.
    fn mark_used(&mut self, start: usize, count: usize) {
        let mut i = start;
        let end = start + count;
        while i < end {
            let w = i / 64;
            let bit = i % 64;
            let span = (64 - bit).min(end - i);
            let mask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << bit
            };
            self.free[w] &= !mask;
            i += span;
        }
        self.free_sectors -= count;
    }

    /// Frees the run `[start, start + count)` (the `deallocD` action).
    ///
    /// # Panics
    ///
    /// Panics if any sector in the run is already free or out of range —
    /// double-frees are controller bugs, not recoverable conditions.
    pub fn free(&mut self, start: u32, count: u32) {
        let (start, count) = (start as usize, count as usize);
        assert!(start + count <= self.sectors, "free out of range");
        let mut i = start;
        let end = start + count;
        while i < end {
            let w = i / 64;
            let bit = i % 64;
            let span = (64 - bit).min(end - i);
            let mask = if span == 64 {
                u64::MAX
            } else {
                ((1u64 << span) - 1) << bit
            };
            if self.free[w] & mask != 0 {
                let dup = w * 64 + (self.free[w] & mask).trailing_zeros() as usize;
                panic!("double free of sector {dup}");
            }
            self.free[w] |= mask;
            i += span;
        }
        self.free_sectors += count;
    }

    /// Reads word `word` of sector `sector` (the `read` action).
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    #[must_use]
    pub fn read_word(&self, sector: u32, word: u32, stats: &mut Stats) -> u64 {
        stats.incr_id(counter!("xcache.data_read_word"));
        self.words[self.widx(sector, word)]
    }

    /// Writes word `word` of sector `sector` (the `write` action).
    ///
    /// # Panics
    ///
    /// Panics if the location is out of range.
    pub fn write_word(&mut self, sector: u32, word: u32, value: u64, stats: &mut Stats) {
        stats.incr_id(counter!("xcache.data_write_word"));
        let i = self.widx(sector, word);
        self.words[i] = value;
    }

    /// Copies `data` (little-endian bytes) into sectors starting at
    /// `sector` (the fill path), zero-padding through the end of the last
    /// touched sector — fills drive whole sectors, so no stale bytes from
    /// a previous occupant survive. Returns the number of sectors touched.
    ///
    /// # Panics
    ///
    /// Panics if the copy runs past the end of the RAM.
    pub fn fill_bytes(&mut self, sector: u32, data: &[u8], stats: &mut Stats) -> u32 {
        let words = data.len().div_ceil(8);
        let sectors_touched = words.div_ceil(self.words_per_sector).max(1) as u32;
        let total_words = sectors_touched as usize * self.words_per_sector;
        for w in 0..total_words {
            let mut b = [0u8; 8];
            let off = w * 8;
            if off < data.len() {
                let n = (data.len() - off).min(8);
                b[..n].copy_from_slice(&data[off..off + n]);
            }
            let i = self.widx(
                sector + (w / self.words_per_sector) as u32,
                (w % self.words_per_sector) as u32,
            );
            self.words[i] = u64::from_le_bytes(b);
        }
        stats.add_id(
            counter!("xcache.data_write_sector"),
            u64::from(sectors_touched),
        );
        sectors_touched
    }

    /// Gathers the words of `[start, start + count)` sectors (the hit /
    /// respond path). Counts one sector read per sector.
    #[must_use]
    pub fn gather(&self, start: u32, count: u32, stats: &mut Stats) -> Vec<u64> {
        let mut out = Vec::new();
        self.gather_into(start, count, &mut out, stats);
        out
    }

    /// [`gather`](Self::gather) into a caller-provided buffer (cleared
    /// first) — lets the hot respond path reuse pooled allocations.
    pub fn gather_into(&self, start: u32, count: u32, out: &mut Vec<u64>, stats: &mut Stats) {
        stats.add_id(counter!("xcache.data_read_sector"), u64::from(count));
        let a = start as usize * self.words_per_sector;
        let b = (start + count) as usize * self.words_per_sector;
        out.clear();
        out.extend_from_slice(&self.words[a..b]);
    }

    fn widx(&self, sector: u32, word: u32) -> usize {
        let i = sector as usize * self.words_per_sector + word as usize;
        assert!(
            (word as usize) < self.words_per_sector && i < self.words.len(),
            "data RAM access out of range: sector {sector}, word {word}"
        );
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_cycle() {
        let mut d = DataRam::new(8, 4);
        let mut s = Stats::new();
        let a = d.alloc(3, &mut s).unwrap();
        let b = d.alloc(5, &mut s).unwrap();
        assert_eq!(d.free_sectors(), 0);
        assert!(d.alloc(1, &mut s).is_none());
        d.free(a, 3);
        assert_eq!(d.free_sectors(), 3);
        let c = d.alloc(2, &mut s).unwrap();
        assert_eq!(c, a); // first-fit reuses the freed run
        let _ = b;
    }

    #[test]
    fn contiguity_required() {
        let mut d = DataRam::new(4, 1);
        let mut s = Stats::new();
        let _a = d.alloc(1, &mut s).unwrap(); // sector 0
        let b = d.alloc(1, &mut s).unwrap(); // sector 1
        let _c = d.alloc(1, &mut s).unwrap(); // sector 2
        d.free(b, 1); // hole at 1, free tail at 3
                      // Two free sectors exist but not contiguously.
        assert_eq!(d.free_sectors(), 2);
        assert!(d.alloc(2, &mut s).is_none());
        assert!(d.alloc(1, &mut s).is_some());
    }

    #[test]
    fn word_read_write() {
        let mut d = DataRam::new(2, 4);
        let mut s = Stats::new();
        d.write_word(1, 3, 99, &mut s);
        assert_eq!(d.read_word(1, 3, &mut s), 99);
        assert_eq!(s.get("xcache.data_read_word"), 1);
        assert_eq!(s.get("xcache.data_write_word"), 1);
    }

    #[test]
    fn fill_and_gather_round_trip() {
        let mut d = DataRam::new(4, 2); // 16-byte sectors
        let mut s = Stats::new();
        let start = d.alloc(2, &mut s).unwrap();
        let data: Vec<u8> = (0..28).collect(); // 3.5 words → 2 sectors
        let touched = d.fill_bytes(start, &data, &mut s);
        assert_eq!(touched, 2);
        let words = d.gather(start, 2, &mut s);
        assert_eq!(words.len(), 4);
        assert_eq!(words[0], u64::from_le_bytes([0, 1, 2, 3, 4, 5, 6, 7]));
        // Trailing partial word zero-padded.
        assert_eq!(words[3] & 0xff, 24);
        assert_eq!(s.get("xcache.data_read_sector"), 2);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut d = DataRam::new(2, 1);
        let mut s = Stats::new();
        let a = d.alloc(1, &mut s).unwrap();
        d.free(a, 1);
        d.free(a, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn oob_word_panics() {
        let d = DataRam::new(1, 2);
        let mut s = Stats::new();
        let _ = d.read_word(0, 5, &mut s);
    }

    #[test]
    fn zero_count_alloc_fails() {
        let mut d = DataRam::new(2, 1);
        let mut s = Stats::new();
        assert!(d.alloc(0, &mut s).is_none());
    }
}
