//! X-Cache hierarchies (§6).
//!
//! Three compositions:
//!
//! * **MX** (multi-level X-Cache): [`MetaL1`] is an upstream X-Cache level
//!   *without a walker* — "similar to a conventional cache, it requests a
//!   meta-tag at a time from the downstream X-Cache. Only the last-level
//!   X-Cache includes a walker and address-translation." Metadata is a
//!   global namespace, so the same [`MetaKey`] indexes every level.
//! * **MXA** (X-Cache over an address cache): already expressed by the
//!   type system — `XCache<AddressCache<DramModel>>`. The X-Cache walks and
//!   generates addresses at the boundary; the address cache sees a stream
//!   of line requests and is non-inclusive (different namespaces).
//! * **MXS** (X-Cache + streaming): an [`XCache`](crate::XCache) and a
//!   [`StreamReader`](crate::StreamReader) sharing DRAM through
//!   [`SharedPort`](xcache_mem::SharedPort) handles.
//!
//! The [`MetaPort`] trait is the meta-access analogue of
//! [`MemoryPort`](xcache_mem::MemoryPort): it is what lets levels stack.

use std::collections::HashMap;

use xcache_mem::MemoryPort;
use xcache_sim::{counter, Cycle, MsgQueue, Stats};

use crate::{
    dataram::DataRam, metatag::MetaTagArray, MetaAccess, MetaKey, MetaResp, XCache, XCacheConfig,
};

/// A component that accepts meta accesses and produces meta responses —
/// implemented by [`XCache`] (the last level, with walkers) and by
/// [`MetaL1`] (upstream, walker-less), so hierarchies stack.
pub trait MetaPort {
    /// Offers an access; hands it back on back-pressure.
    ///
    /// # Errors
    ///
    /// Returns `Err(access)` when the input queue is full this cycle.
    fn try_access(&mut self, now: Cycle, access: MetaAccess) -> Result<(), MetaAccess>;

    /// Whether [`try_access`](Self::try_access) would currently be
    /// accepted. Polite drivers check before offering so refusals are
    /// never charged as stalls.
    fn can_accept(&self) -> bool;

    /// Removes one ready response, if any.
    fn take_response(&mut self, now: Cycle) -> Option<MetaResp>;

    /// Advances one cycle.
    fn tick(&mut self, now: Cycle);

    /// Whether work is outstanding.
    fn busy(&self) -> bool;

    /// Earliest cycle strictly after `now` at which `tick` could do
    /// observable work, or `None` when idle with nothing scheduled. Same
    /// contract as [`Component::next_event`](xcache_sim::Component::next_event).
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        Some(now.next())
    }
}

impl<D: MemoryPort> MetaPort for XCache<D> {
    fn try_access(&mut self, now: Cycle, access: MetaAccess) -> Result<(), MetaAccess> {
        XCache::try_access(self, now, access)
    }
    fn can_accept(&self) -> bool {
        XCache::can_accept(self)
    }
    fn take_response(&mut self, now: Cycle) -> Option<MetaResp> {
        XCache::take_response(self, now)
    }
    fn tick(&mut self, now: Cycle) {
        XCache::tick(self, now);
    }
    fn busy(&self) -> bool {
        XCache::busy(self)
    }
    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        XCache::next_event(self, now)
    }
}

/// Geometry of a [`MetaL1`] level.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaL1Config {
    /// Meta-tag sets (power of two).
    pub sets: usize,
    /// Associativity.
    pub ways: usize,
    /// Words per sector.
    pub words_per_sector: usize,
    /// Data sectors.
    pub data_sectors: usize,
    /// Hit load-to-use latency.
    pub hit_latency: u64,
    /// Access/response queue depth.
    pub queue_depth: usize,
}

impl Default for MetaL1Config {
    fn default() -> Self {
        MetaL1Config {
            sets: 64,
            ways: 2,
            words_per_sector: 4,
            data_sectors: 256,
            hit_latency: 1,
            queue_depth: 16,
        }
    }
}

/// An upstream X-Cache level with no walker (the MX hierarchy's L1).
///
/// Loads that hit are served locally at `hit_latency`; misses forward the
/// key — one meta-tag at a time — to the downstream [`MetaPort`] and fill
/// on response. Stores and takes are forwarded unconditionally (the L1
/// entry is invalidated so merge semantics stay at the owning level).
#[derive(Debug)]
pub struct MetaL1<L> {
    cfg: MetaL1Config,
    tags: MetaTagArray,
    data: DataRam,
    access_q: MsgQueue<MetaAccess>,
    resp_q: MsgQueue<MetaResp>,
    /// key → upstream accesses waiting on a downstream fill.
    outstanding: HashMap<MetaKey, Vec<MetaAccess>>,
    /// Ids of accesses we forwarded verbatim (stores/takes): their
    /// responses pass through without filling.
    passthrough: HashMap<u64, ()>,
    downstream: L,
    next_fill_id: u64,
    stats: Stats,
}

impl MetaL1Config {
    /// Validates geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.sets == 0 || !self.sets.is_power_of_two() {
            return Err("sets must be a nonzero power of two".into());
        }
        if self.ways == 0 {
            return Err("ways must be nonzero".into());
        }
        if self.words_per_sector == 0 || self.data_sectors == 0 {
            return Err("data geometry must be nonzero".into());
        }
        if self.queue_depth == 0 {
            return Err("queue_depth must be nonzero".into());
        }
        Ok(())
    }
}

impl<L: MetaPort> MetaL1<L> {
    /// Builds an L1 over `downstream`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`MetaL1Config::validate`].
    #[must_use]
    pub fn new(cfg: MetaL1Config, downstream: L) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid MetaL1Config: {e}");
        }
        MetaL1 {
            tags: MetaTagArray::new(cfg.sets, cfg.ways),
            data: DataRam::new(cfg.data_sectors, cfg.words_per_sector),
            access_q: MsgQueue::new("metal1.access", cfg.queue_depth, 1),
            resp_q: MsgQueue::new("metal1.resp", cfg.queue_depth * 4, cfg.hit_latency.max(1)),
            outstanding: HashMap::new(),
            passthrough: HashMap::new(),
            downstream,
            next_fill_id: 1 << 40,
            stats: Stats::new(),
            cfg,
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The level below.
    #[must_use]
    pub fn downstream(&self) -> &L {
        &self.downstream
    }

    /// The level below, mutably.
    pub fn downstream_mut(&mut self) -> &mut L {
        &mut self.downstream
    }

    /// L1 hit ratio so far, or `None` before any load.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let h = self.stats.get("metal1.hit");
        let m = self.stats.get("metal1.miss");
        (h + m > 0).then(|| h as f64 / (h + m) as f64)
    }

    fn fill_local(&mut self, key: MetaKey, words: &[u64]) {
        let sectors = words.len().div_ceil(self.cfg.words_per_sector).max(1);
        // Make room: evict idle entries while allocation fails.
        let start = loop {
            if let Some(s) = self.data.alloc(sectors, &mut self.stats) {
                break Some(s);
            }
            let victim = self
                .tags
                .iter()
                .filter(|e| !e.active && !e.pinned && e.sector_count > 0)
                .min_by_key(|e| e.sector_count)
                .map(|e| e.key);
            match victim {
                Some(vk) => {
                    let r = self.tags.peek(vk).expect("victim present");
                    let e = self.tags.invalidate(r, &mut self.stats);
                    self.data.free(e.sector_start, e.sector_count);
                    self.stats.incr_id(counter!("metal1.capacity_evict"));
                }
                None => break None,
            }
        };
        let Some(start) = start else {
            return; // cannot cache; serve uncached
        };
        let Some((r, evicted)) =
            self.tags
                .alloc(key, xcache_isa::StateId::DEFAULT, &mut self.stats)
        else {
            self.data.free(start, sectors as u32);
            return;
        };
        if let Some(v) = evicted {
            if v.sector_count > 0 {
                self.data.free(v.sector_start, v.sector_count);
            }
        }
        for (i, w) in words.iter().enumerate() {
            self.data.write_word(
                start + (i / self.cfg.words_per_sector) as u32,
                (i % self.cfg.words_per_sector) as u32,
                *w,
                &mut self.stats,
            );
        }
        self.tags.update_entry(r, |e| {
            e.sector_start = start;
            e.sector_count = sectors as u32;
            e.active = false;
        });
    }
}

impl<L: MetaPort> MetaPort for MetaL1<L> {
    fn try_access(&mut self, now: Cycle, access: MetaAccess) -> Result<(), MetaAccess> {
        self.access_q.push(now, access).map_err(|e| e.0)
    }

    fn can_accept(&self) -> bool {
        !self.access_q.is_full()
    }

    fn take_response(&mut self, now: Cycle) -> Option<MetaResp> {
        self.resp_q.pop(now)
    }

    fn tick(&mut self, now: Cycle) {
        self.downstream.tick(now);

        // Downstream responses: fills or passthroughs.
        while let Some(resp) = self.downstream.take_response(now) {
            if self.passthrough.remove(&resp.id).is_some() {
                let _ = self.resp_q.push(now, resp);
                continue;
            }
            // A fill we issued: satisfy all waiters and cache locally.
            if let Some(waiters) = self.outstanding.remove(&resp.key) {
                if resp.found {
                    self.fill_local(resp.key, &resp.data);
                }
                for w in waiters {
                    let _ = self.resp_q.push(
                        now,
                        MetaResp {
                            id: w.id(),
                            key: resp.key,
                            found: resp.found,
                            data: resp.data.clone(),
                        },
                    );
                }
            }
        }

        // One access per cycle (single tag port).
        let Some(&access) = self.access_q.peek(now) else {
            return;
        };
        match access {
            MetaAccess::Load { id, key } => {
                // Coalesce onto an outstanding downstream fill.
                if let Some(waiters) = self.outstanding.get_mut(&key) {
                    waiters.push(access);
                    self.access_q.pop(now);
                    self.stats.incr_id(counter!("metal1.coalesced"));
                    return;
                }
                if let Some(r) = self.tags.probe(key, &mut self.stats) {
                    let e = *self.tags.entry(r);
                    self.access_q.pop(now);
                    self.stats.incr_id(counter!("metal1.hit"));
                    let data = self
                        .data
                        .gather(e.sector_start, e.sector_count, &mut self.stats);
                    let _ = self.resp_q.push(
                        now,
                        MetaResp {
                            id,
                            key,
                            found: true,
                            data,
                        },
                    );
                    return;
                }
                // Miss: request the meta-tag from the level below.
                let fill_id = self.next_fill_id;
                match self
                    .downstream
                    .try_access(now, MetaAccess::Load { id: fill_id, key })
                {
                    Ok(()) => {
                        self.access_q.pop(now);
                        self.next_fill_id += 1;
                        self.stats.incr_id(counter!("metal1.miss"));
                        self.outstanding.insert(key, vec![access]);
                    }
                    Err(_) => {
                        self.stats.incr_id(counter!("metal1.downstream_stall"));
                    }
                }
            }
            MetaAccess::Store { id, key, .. } | MetaAccess::Take { id, key } => {
                // Forward; invalidate any local copy so the owning level's
                // merge/drain semantics stay authoritative.
                match self.downstream.try_access(now, access) {
                    Ok(()) => {
                        self.access_q.pop(now);
                        if let Some(r) = self.tags.peek(key) {
                            let e = self.tags.invalidate(r, &mut self.stats);
                            if e.sector_count > 0 {
                                self.data.free(e.sector_start, e.sector_count);
                            }
                            self.stats.incr_id(counter!("metal1.inval"));
                        }
                        self.passthrough.insert(id, ());
                        self.stats.incr_id(counter!("metal1.forward"));
                    }
                    Err(_) => {
                        self.stats.incr_id(counter!("metal1.downstream_stall"));
                    }
                }
            }
        }
    }

    fn busy(&self) -> bool {
        !self.access_q.is_empty()
            || !self.resp_q.is_empty()
            || !self.outstanding.is_empty()
            || !self.passthrough.is_empty()
            || self.downstream.busy()
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut next = Cycle::NEVER;
        let mut wake = |t: Cycle| next = next.min(t);
        // A visible head access is processed (or counted as a
        // downstream stall) every cycle; an in-flight head wakes us when
        // it becomes visible.
        if let Some(ready) = self.access_q.next_ready() {
            wake(ready.max(now.next()));
        }
        if let Some(ready) = self.resp_q.next_ready() {
            wake(ready.max(now.next()));
        }
        if let Some(t) = self.downstream.next_event(now) {
            wake(t.max(now.next()));
        }
        if next == Cycle::NEVER {
            return self.busy().then(|| now.next());
        }
        Some(next)
    }
}

/// Convenience alias: a two-level MX hierarchy over any memory level.
pub type Mx<D> = MetaL1<XCache<D>>;

/// Builds an MX hierarchy: `l1_cfg` on top of an [`XCache`] generated from
/// `cfg`/`program` over `downstream`.
///
/// # Errors
///
/// Propagates [`BuildError`](crate::BuildError) from the last-level
/// X-Cache generator.
pub fn build_mx<D: MemoryPort>(
    l1_cfg: MetaL1Config,
    cfg: XCacheConfig,
    program: xcache_isa::WalkerProgram,
    downstream: D,
) -> Result<Mx<D>, crate::BuildError> {
    Ok(MetaL1::new(l1_cfg, XCache::new(cfg, program, downstream)?))
}
