//! # xcache-core
//!
//! The X-Cache programmable domain-specific cache controller — the primary
//! contribution of Sedaghati et al., "X-Cache: A Modular Architecture for
//! Domain-Specific Caches" (ISCA 2022) — as a cycle-level Rust model.
//!
//! Three ideas from the paper, and where they live here:
//!
//! * **Meta-tags** ([`MetaTagArray`], [`MetaKey`]): the cache is tagged by
//!   DSA metadata (row ids, hash keys, vertex ids), not addresses. Hits
//!   short-circuit metadata→address translation entirely.
//! * **X-Routines / X-Actions** (crate `xcache-isa`, executed by
//!   [`XCache`]): misses trigger table-driven coroutine walkers made of
//!   single-cycle microcode actions.
//! * **A DSA-agnostic controller** ([`XCache`]): a front-end event loop
//!   multiplexes many walkers over a few executor lanes; walkers yield at
//!   long-latency events. The blocking-thread alternative
//!   ([`WalkerDiscipline::BlockingThread`]) is implemented for the paper's
//!   occupancy ablation (Figure 7).
//!
//! ## The controller pipeline (Figure 8)
//!
//! ```text
//!                 ┌───────────── front-end ─────────────┐ ┌────────── back-end ──────────┐
//!  DSA datapath ──▶ access queue ─▶ trigger stage ──┐    │ │  executor lanes (#Exe)       │
//!  (meta loads /   (replay queue)   per-key hazards │    │ │  1 action / lane / cycle     │
//!   stores/takes)                   + window sched  │    │ │   AGEN · queue · meta-tag    │
//!                                                   ▼    │ │   control · data-RAM actions │
//!     meta-tag array ◀──────── (state,event) ─▶ routine  │ │          │                   │
//!     sets × ways             dispatch table     table ──┼─▶ microcode RAM ──▶ X-regs     │
//!     key|state|sectors                                  │ │  (#Active files)             │
//!          │ hit: dedicated read port                    │ └──────────┬───────────────────┘
//!          ▼                                             │            ▼
//!     data RAM (sectors) ──▶ response queue ──▶ DSA      │   DRAM request queue ──▶ memory
//! ```
//!
//! Walkers *yield* at long-latency events (`dram_read`, `hash`): the lane
//! frees, the walker's state is recorded in its meta-tag entry, and the
//! next event (`Fill`, `HashDone`) re-dispatches it through the table.
//!
//! ## Quickstart
//!
//! ```
//! use xcache_core::{MetaAccess, MetaKey, XCache, XCacheConfig};
//! use xcache_isa::asm::assemble;
//! use xcache_mem::{DramConfig, DramModel, MemoryPort};
//! use xcache_sim::Cycle;
//!
//! // A walker that fetches 32 bytes at address `base + key * 32`.
//! let program = assemble(r#"
//!     walker array
//!     states Default, Wait
//!     regs 2
//!     params base
//!
//!     routine start {
//!         allocR
//!         allocM
//!         mul r0, key, 32
//!         add r0, r0, base
//!         dram_read r0, 32
//!         yield Wait
//!     }
//!     routine fill {
//!         allocD r1, 1
//!         filld r1, 4
//!         updatem r1, r1
//!         respond
//!         retire
//!     }
//!
//!     on Default, Miss -> start
//!     on Wait, Fill -> fill
//! "#).expect("valid walker");
//!
//! let mut dram = DramModel::new(DramConfig::default());
//! dram.memory_mut().write_u64(0x1000 + 5 * 32, 777);
//! let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
//! let mut xc = XCache::new(cfg, program, dram).expect("valid instance");
//!
//! xc.try_access(Cycle(0), MetaAccess::Load { id: 1, key: MetaKey::new(5) }).unwrap();
//! let mut now = Cycle(0);
//! let resp = loop {
//!     xc.tick(now);
//!     if let Some(r) = xc.take_response(now) { break r; }
//!     now = now.next();
//! };
//! assert!(resp.found);
//! assert_eq!(resp.data[0], 777);
//! ```

mod config;
mod controller;
mod dataram;
mod metatag;
mod msg;
mod shard;
mod stream;
mod taxonomy;
mod xreg;

pub mod hierarchy;

pub use config::{WalkerDiscipline, XCacheConfig};
pub use controller::{splitmix64, BuildError, SimError, XCache};
pub use dataram::DataRam;
pub use metatag::{EntryRef, LaunchProbe, MetaEntry, MetaTagArray, SetCounters};
pub use msg::{MetaAccess, MetaKey, MetaResp};
pub use shard::{
    horizon_target, owner_of, shard_geometry, shards_from_env, ShardCell, DEFAULT_HORIZON,
    DEFAULT_LINK_LATENCY,
};
pub use stream::{StreamConfig, StreamReader};
pub use taxonomy::{IdiomRow, TAXONOMY};
pub use xreg::{XRegFile, XRegPool};
