//! The meta-tag array (§4.1 ① / ②).
//!
//! A set-associative array tagged by [`MetaKey`]s instead of addresses.
//! Each entry carries, alongside the tag: the walker *state* ("in X-Cache
//! the states represent the status of blocks in the walker"), the sector
//! span in the data RAM ("explicit pointers to start and end sectors"),
//! an *active* bit (the paper's bitmap of meta-tags with a live walker),
//! and a *pinned* bit for entries whose data exists only on-chip.

use xcache_isa::StateId;
use xcache_sim::{counter, Stats};

use crate::MetaKey;

/// One meta-tag entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaEntry {
    /// The domain-specific tag.
    pub key: MetaKey,
    /// Walker coroutine state recorded at the last yield.
    pub state: StateId,
    /// First data-RAM sector (valid when `sector_count > 0`).
    pub sector_start: u32,
    /// Number of sectors held.
    pub sector_count: u32,
    /// A walker is currently filling this entry.
    pub active: bool,
    /// Entry must never be evicted (on-chip-only data).
    pub pinned: bool,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    entry: MetaEntry,
    valid: bool,
    last_used: u64,
}

/// The answers the trigger stage's launch gate needs about one key's
/// set, computed by [`MetaTagArray::launch_probe`] in a single way scan:
/// residency, allocatability, and permanent-unevictability. Field
/// definitions match [`peek`](MetaTagArray::peek),
/// [`can_alloc`](MetaTagArray::can_alloc) and
/// [`set_unevictable`](MetaTagArray::set_unevictable) exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaunchProbe {
    /// Where `key` resides, if present (as [`peek`](MetaTagArray::peek)).
    pub hit: Option<EntryRef>,
    /// Whether an allocation would succeed right now.
    pub can_alloc: bool,
    /// Whether every way is valid, pinned and idle — allocation can never
    /// succeed until something is explicitly taken.
    pub unevictable: bool,
}

/// Where a probe landed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EntryRef {
    /// Set index.
    pub set: u32,
    /// Way index.
    pub way: u32,
}

/// Per-set counters for cross-validation against the analytical oracle
/// (`xcache-oracle`). Tracked outside [`Stats`] so the aggregate counter
/// JSON every harness emits is byte-identical to before they existed:
/// `hits` counts probe hits of any access type landing in the set,
/// `allocs`/`evictions` count `allocM` allocations and the valid victims
/// they displace. Capacity (data-RAM) evictions invalidate through
/// [`MetaTagArray::invalidate`] and are aggregate-only.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SetCounters {
    /// Probe hits landing in this set.
    pub hits: u64,
    /// `allocM` allocations in this set.
    pub allocs: u64,
    /// Valid entries displaced by those allocations.
    pub evictions: u64,
}

/// The set-associative meta-tag array.
#[derive(Debug)]
pub struct MetaTagArray {
    sets: usize,
    ways: usize,
    slots: Vec<Slot>,
    use_counter: u64,
    set_stats: Vec<SetCounters>,
    /// Slot-parallel packed copy of each slot's key, kept in sync by
    /// every mutation path. The launch gate probes every pending access
    /// each cycle; scanning one cache line of packed keys instead of
    /// `ways` 40-byte slots is the difference between the trigger stage
    /// and the tag array dominating the simulator profile.
    probe_keys: Vec<u64>,
    /// Slot-parallel packed flags: bit0 valid, bit1 active, bit2 pinned.
    probe_flags: Vec<u8>,
}

const PF_VALID: u8 = 1;
const PF_ACTIVE: u8 = 1 << 1;
const PF_PINNED: u8 = 1 << 2;

impl MetaTagArray {
    /// Creates an invalid-initialised array.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two or `ways` is zero.
    #[must_use]
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a nonzero power of two"
        );
        assert!(ways > 0, "ways must be nonzero");
        MetaTagArray {
            sets,
            ways,
            slots: vec![
                Slot {
                    entry: MetaEntry {
                        key: MetaKey(0),
                        state: StateId::DEFAULT,
                        sector_start: 0,
                        sector_count: 0,
                        active: false,
                        pinned: false,
                    },
                    valid: false,
                    last_used: 0,
                };
                sets * ways
            ],
            use_counter: 0,
            set_stats: vec![SetCounters::default(); sets],
            probe_keys: vec![0; sets * ways],
            probe_flags: vec![0; sets * ways],
        }
    }

    /// Re-derives slot `idx`'s packed probe-index words from the slot
    /// itself — every path that mutates a slot's key, validity, active
    /// or pinned bit funnels through here.
    #[inline]
    fn sync_probe_slot(&mut self, idx: usize) {
        let s = &self.slots[idx];
        self.probe_keys[idx] = s.entry.key.0;
        self.probe_flags[idx] = (u8::from(s.valid) * PF_VALID)
            | (u8::from(s.entry.active) * PF_ACTIVE)
            | (u8::from(s.entry.pinned) * PF_PINNED);
    }

    /// Number of entries (sets × ways).
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no entry is valid.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.slots.iter().any(|s| s.valid)
    }

    /// Number of valid entries.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }

    fn set_of(&self, key: MetaKey) -> usize {
        // Fibonacci hashing spreads structured keys (row ids, packed
        // fields) across sets.
        ((key.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize) & (self.sets - 1)
    }

    /// The set `key` maps to. Public so the analytical oracle
    /// (`xcache-oracle`) can pin its reimplementation of the hash against
    /// this one in a cross-crate test.
    #[must_use]
    pub fn set_index(&self, key: MetaKey) -> usize {
        self.set_of(key)
    }

    /// Per-set hit/alloc/eviction counters (length = `sets`), for
    /// cross-validation against the analytical oracle.
    #[must_use]
    pub fn set_counters(&self) -> &[SetCounters] {
        &self.set_stats
    }

    fn slot_idx(&self, r: EntryRef) -> usize {
        r.set as usize * self.ways + r.way as usize
    }

    /// Where `key` resides in its (already computed) set, scanning only
    /// the packed probe index.
    #[inline]
    fn find_way(&self, set: usize, key: MetaKey) -> Option<usize> {
        let base = set * self.ways;
        (0..self.ways).find(|&way| {
            self.probe_flags[base + way] & PF_VALID != 0 && self.probe_keys[base + way] == key.0
        })
    }

    /// Looks up `key`, updating recency and the probe counter.
    pub fn probe(&mut self, key: MetaKey, stats: &mut Stats) -> Option<EntryRef> {
        stats.incr_id(counter!("xcache.tag_read"));
        let set = self.set_of(key);
        let way = self.find_way(set, key)?;
        self.use_counter += 1;
        self.slots[set * self.ways + way].last_used = self.use_counter;
        self.set_stats[set].hits += 1;
        Some(EntryRef {
            set: set as u32,
            way: way as u32,
        })
    }

    /// Completes a probe whose way scan [`peek`](Self::peek) already
    /// performed: counts the tag read and touches recency exactly like
    /// [`probe`](Self::probe), without re-scanning the set. The trigger
    /// stage batches its hazard-check lookup and its serve lookup this
    /// way — one scan, one modelled access.
    pub fn probe_at(&mut self, r: Option<EntryRef>, stats: &mut Stats) -> Option<EntryRef> {
        stats.incr_id(counter!("xcache.tag_read"));
        if let Some(r) = r {
            let idx = self.slot_idx(r);
            self.use_counter += 1;
            self.slots[idx].last_used = self.use_counter;
            self.set_stats[r.set as usize].hits += 1;
        }
        r
    }

    /// Looks up `key` without touching recency or statistics (harness
    /// introspection, not a modelled hardware access).
    #[must_use]
    pub fn peek(&self, key: MetaKey) -> Option<EntryRef> {
        let set = self.set_of(key);
        self.find_way(set, key).map(|way| EntryRef {
            set: set as u32,
            way: way as u32,
        })
    }

    /// Everything the trigger stage's launch gate needs from `key`'s set,
    /// gathered in one way scan (see [`LaunchProbe`]). Counts nothing and
    /// touches no recency — like [`peek`](Self::peek) it models the
    /// hazard pre-check, not the serve-path tag read, which still goes
    /// through [`probe_at`](Self::probe_at).
    ///
    /// Before this existed the launch gate made up to three separate
    /// passes over the same set (`peek` + `can_alloc` + `set_unevictable`);
    /// coalescing them is the PR 6 leftover micro-opt, visible in the
    /// `XCACHE_PROF=1` trigger-stage scope.
    #[must_use]
    pub fn launch_probe(&self, key: MetaKey) -> LaunchProbe {
        let set = self.set_of(key);
        let base = set * self.ways;
        let mut probe = LaunchProbe {
            hit: None,
            can_alloc: false,
            unevictable: true,
        };
        for way in 0..self.ways {
            let f = self.probe_flags[base + way];
            if f & PF_VALID == 0 {
                probe.can_alloc = true;
                probe.unevictable = false;
                continue;
            }
            let idle = f & PF_ACTIVE == 0;
            let pinned = f & PF_PINNED != 0;
            if idle && !pinned {
                probe.can_alloc = true;
            }
            if !(idle && pinned) {
                probe.unevictable = false;
            }
            if probe.hit.is_none() && self.probe_keys[base + way] == key.0 {
                probe.hit = Some(EntryRef {
                    set: set as u32,
                    way: way as u32,
                });
            }
        }
        probe
    }

    /// Multi-probe form of [`launch_probe`](Self::launch_probe): probes
    /// every key in `keys` in one call, appending the answers to `out`
    /// in order (`out` is *not* cleared, so chunked window scans can
    /// extend their coverage incrementally).
    ///
    /// The macro-step trigger stage uses this to prime the hazard
    /// checks for its scheduling window in batched passes instead of
    /// one interleaved probe per candidate. Like the single-probe form
    /// it is read-only and counts nothing, so probing candidates the
    /// window scan never reaches is invisible to stats, recency, and
    /// therefore byte-identity.
    pub fn launch_probe_batch(&self, keys: &[MetaKey], out: &mut Vec<LaunchProbe>) {
        out.extend(keys.iter().map(|&k| self.launch_probe(k)));
    }

    /// The entry at `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a valid entry.
    #[must_use]
    pub fn entry(&self, r: EntryRef) -> &MetaEntry {
        let idx = self.slot_idx(r);
        assert!(self.slots[idx].valid, "entry({r:?}) on invalid slot");
        &self.slots[idx].entry
    }

    /// Mutates the entry at `r` through `f`, then re-syncs the packed
    /// probe index (the closure may flip `active`/`pinned`, which the
    /// launch gate reads from the index, not the slot). The only mutable
    /// entry access — a returned `&mut MetaEntry` could desync the index.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a valid entry.
    pub fn update_entry<R>(&mut self, r: EntryRef, f: impl FnOnce(&mut MetaEntry) -> R) -> R {
        let idx = self.slot_idx(r);
        assert!(self.slots[idx].valid, "update_entry({r:?}) on invalid slot");
        let out = f(&mut self.slots[idx].entry);
        self.sync_probe_slot(idx);
        out
    }

    /// Allocates an entry for `key` (the `allocM` action).
    ///
    /// Prefers an invalid way; otherwise evicts the LRU way that is
    /// neither active nor pinned, returning the victim so the caller can
    /// free its sectors. Returns `None` when every way is unevictable
    /// (structural stall — the access must retry).
    pub fn alloc(
        &mut self,
        key: MetaKey,
        state: StateId,
        stats: &mut Stats,
    ) -> Option<(EntryRef, Option<MetaEntry>)> {
        stats.incr_id(counter!("xcache.tag_write"));
        let set = self.set_of(key);
        // An idle, unpinned way already holding `key` is always the victim:
        // re-allocating over it keeps the key unique in its set. Reachable
        // only when a lookup was suppressed before the alloc (injected
        // meta-tag misfire) — a fault-free run probes first and never
        // allocates over a resident key.
        let mut victim: Option<(usize, u64)> = None;
        for way in 0..self.ways {
            let s = &self.slots[set * self.ways + way];
            if s.valid && s.entry.key == key && !s.entry.active && !s.entry.pinned {
                victim = Some((way, s.last_used));
                break;
            }
        }
        if victim.is_none() {
            for way in 0..self.ways {
                let idx = set * self.ways + way;
                let s = &self.slots[idx];
                if !s.valid {
                    victim = Some((way, 0));
                    break;
                }
                if s.entry.active || s.entry.pinned {
                    continue;
                }
                match victim {
                    Some((_, lu)) if lu <= s.last_used => {}
                    _ => victim = Some((way, s.last_used)),
                }
            }
        }
        let (way, _) = victim?;
        let idx = set * self.ways + way;
        let evicted = self.slots[idx].valid.then(|| {
            stats.incr_id(counter!("xcache.meta_evict"));
            self.set_stats[set].evictions += 1;
            self.slots[idx].entry
        });
        self.set_stats[set].allocs += 1;
        self.use_counter += 1;
        self.slots[idx] = Slot {
            entry: MetaEntry {
                key,
                state,
                sector_start: 0,
                sector_count: 0,
                active: true,
                pinned: false,
            },
            valid: true,
            last_used: self.use_counter,
        };
        self.sync_probe_slot(idx);
        stats.incr_id(counter!("xcache.meta_alloc"));
        Some((
            EntryRef {
                set: set as u32,
                way: way as u32,
            },
            evicted,
        ))
    }

    /// Whether an allocation for `key` would succeed right now: some way
    /// in its set is invalid or idle-and-unpinned.
    #[must_use]
    pub fn can_alloc(&self, key: MetaKey) -> bool {
        let set = self.set_of(key);
        let base = set * self.ways;
        (0..self.ways).any(|way| {
            let f = self.probe_flags[base + way];
            f & PF_VALID == 0 || f & (PF_ACTIVE | PF_PINNED) == 0
        })
    }

    /// Whether an allocation for `key` can never succeed until something
    /// is explicitly taken: every way in its set is valid, pinned and
    /// idle. (If any way is merely *active*, a retiring walker may free
    /// it, so the condition is transient.)
    #[must_use]
    pub fn set_unevictable(&self, key: MetaKey) -> bool {
        let set = self.set_of(key);
        let base = set * self.ways;
        (0..self.ways).all(|way| {
            let f = self.probe_flags[base + way];
            f & (PF_VALID | PF_ACTIVE | PF_PINNED) == (PF_VALID | PF_PINNED)
        })
    }

    /// Demotes the entry at `r` to least-recently-used priority: it will
    /// be the set's first eviction victim unless re-referenced. Used for
    /// speculative side-inserts so they cannot displace proven-hot keys.
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a valid entry.
    pub fn demote(&mut self, r: EntryRef) {
        let idx = self.slot_idx(r);
        assert!(self.slots[idx].valid, "demote({r:?}) on invalid slot");
        self.slots[idx].last_used = 0;
    }

    /// Invalidates the entry at `r`, returning it (the `deallocM` action).
    ///
    /// # Panics
    ///
    /// Panics if `r` does not refer to a valid entry.
    pub fn invalidate(&mut self, r: EntryRef, stats: &mut Stats) -> MetaEntry {
        let idx = self.slot_idx(r);
        assert!(self.slots[idx].valid, "invalidate({r:?}) on invalid slot");
        stats.incr_id(counter!("xcache.tag_write"));
        self.slots[idx].valid = false;
        self.sync_probe_slot(idx);
        self.slots[idx].entry
    }

    /// Iterates over all valid entries (harness introspection).
    pub fn iter(&self) -> impl Iterator<Item = &MetaEntry> {
        self.slots.iter().filter(|s| s.valid).map(|s| &s.entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Stats {
        Stats::new()
    }

    #[test]
    fn probe_miss_then_alloc_then_hit() {
        let mut a = MetaTagArray::new(4, 2);
        let mut s = stats();
        let k = MetaKey(42);
        assert!(a.probe(k, &mut s).is_none());
        let (r, evicted) = a.alloc(k, StateId(1), &mut s).unwrap();
        assert!(evicted.is_none());
        assert_eq!(a.entry(r).key, k);
        assert_eq!(a.entry(r).state, StateId(1));
        assert!(a.entry(r).active);
        let hit = a.probe(k, &mut s).unwrap();
        assert_eq!(hit, r);
        assert_eq!(s.get("xcache.tag_read"), 2);
    }

    #[test]
    fn alloc_evicts_lru_only_when_idle() {
        let mut a = MetaTagArray::new(1, 2);
        let mut s = stats();
        let (r1, _) = a.alloc(MetaKey(1), StateId::DEFAULT, &mut s).unwrap();
        let (r2, _) = a.alloc(MetaKey(2), StateId::DEFAULT, &mut s).unwrap();
        // Both active: set full, no victim.
        assert!(a.alloc(MetaKey(3), StateId::DEFAULT, &mut s).is_none());
        // Deactivate key 1 (walker retired); now it is the victim.
        a.update_entry(r1, |e| e.active = false);
        a.update_entry(r2, |e| e.active = false);
        // Touch key 2 so key 1 is LRU.
        let _ = a.probe(MetaKey(2), &mut s);
        let (_, evicted) = a.alloc(MetaKey(3), StateId::DEFAULT, &mut s).unwrap();
        assert_eq!(evicted.unwrap().key, MetaKey(1));
        assert_eq!(s.get("xcache.meta_evict"), 1);
    }

    #[test]
    fn pinned_entries_never_evicted() {
        let mut a = MetaTagArray::new(1, 1);
        let mut s = stats();
        let (r, _) = a.alloc(MetaKey(1), StateId::DEFAULT, &mut s).unwrap();
        a.update_entry(r, |e| e.active = false);
        a.update_entry(r, |e| e.pinned = true);
        assert!(a.alloc(MetaKey(2), StateId::DEFAULT, &mut s).is_none());
    }

    #[test]
    fn invalidate_frees_the_way() {
        let mut a = MetaTagArray::new(1, 1);
        let mut s = stats();
        let (r, _) = a.alloc(MetaKey(1), StateId::DEFAULT, &mut s).unwrap();
        let old = a.invalidate(r, &mut s);
        assert_eq!(old.key, MetaKey(1));
        assert!(a.probe(MetaKey(1), &mut s).is_none());
        assert!(a.alloc(MetaKey(2), StateId::DEFAULT, &mut s).is_some());
    }

    #[test]
    fn peek_does_not_count_or_touch() {
        let mut a = MetaTagArray::new(2, 1);
        let mut s = stats();
        let _ = a.alloc(MetaKey(5), StateId::DEFAULT, &mut s).unwrap();
        let reads_before = s.get("xcache.tag_read");
        assert!(a.peek(MetaKey(5)).is_some());
        assert!(a.peek(MetaKey(6)).is_none());
        assert_eq!(s.get("xcache.tag_read"), reads_before);
    }

    #[test]
    fn occupancy_and_iter() {
        let mut a = MetaTagArray::new(4, 2);
        let mut s = stats();
        assert!(a.is_empty());
        for k in 0..5u64 {
            let _ = a.alloc(MetaKey(k), StateId::DEFAULT, &mut s);
        }
        assert_eq!(a.occupancy(), 5);
        assert_eq!(a.iter().count(), 5);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn keys_spread_across_sets() {
        let a = MetaTagArray::new(64, 1);
        // Sequential row ids should not all collide in one set.
        let sets: std::collections::HashSet<usize> =
            (0..64u64).map(|k| a.set_of(MetaKey(k))).collect();
        assert!(sets.len() > 32, "hashing too weak: {} sets", sets.len());
    }

    #[test]
    fn launch_probe_matches_the_three_scans() {
        // Drive one set through every slot-state combination and check the
        // fused scan agrees with the three separate queries it replaces.
        let mut a = MetaTagArray::new(1, 3);
        let mut s = stats();
        for k in 0..3u64 {
            let _ = a.alloc(MetaKey(k), StateId::DEFAULT, &mut s).unwrap();
        }
        for mask in 0..64u32 {
            for way in 0..3u32 {
                a.update_entry(EntryRef { set: 0, way }, |e| {
                    e.active = mask & (1 << way) != 0;
                    e.pinned = mask & (1 << (way + 3)) != 0;
                });
            }
            for k in 0..4u64 {
                let key = MetaKey(k);
                let probe = a.launch_probe(key);
                assert_eq!(probe.hit, a.peek(key), "mask {mask} key {k}");
                assert_eq!(probe.can_alloc, a.can_alloc(key), "mask {mask} key {k}");
                assert_eq!(
                    probe.unevictable,
                    a.set_unevictable(key),
                    "mask {mask} key {k}"
                );
            }
        }
        // And with an invalid way in the set.
        let r = EntryRef { set: 0, way: 1 };
        a.update_entry(r, |e| e.active = false);
        a.update_entry(r, |e| e.pinned = false);
        let _ = a.invalidate(r, &mut s);
        for k in 0..4u64 {
            let key = MetaKey(k);
            let probe = a.launch_probe(key);
            assert_eq!(probe.hit, a.peek(key));
            assert_eq!(probe.can_alloc, a.can_alloc(key));
            assert_eq!(probe.unevictable, a.set_unevictable(key));
        }
        assert_eq!(
            s.get("xcache.tag_read"),
            0,
            "launch_probe must count nothing"
        );
    }

    #[test]
    fn per_set_counters_track_hits_allocs_evictions() {
        let mut a = MetaTagArray::new(4, 1);
        let mut s = stats();
        let k = MetaKey(42);
        let set = a.set_index(k);
        let (r, _) = a.alloc(k, StateId::DEFAULT, &mut s).unwrap();
        a.update_entry(r, |e| e.active = false);
        let _ = a.probe(k, &mut s); // counted hit
        let _ = a.probe_at(a.peek(k), &mut s); // counted hit
        let _ = a.probe_at(None, &mut s); // miss: not attributed to any set
        let _ = a.peek(k); // peek counts nothing
                           // Find a colliding key to force an eviction in the same set.
        let k2 = (0..1000u64)
            .map(MetaKey)
            .find(|&c| c != k && a.set_index(c) == set)
            .expect("some key collides");
        let _ = a.alloc(k2, StateId::DEFAULT, &mut s).unwrap();
        let c = a.set_counters()[set];
        assert_eq!((c.hits, c.allocs, c.evictions), (2, 2, 1));
        let other_sets: u64 = a
            .set_counters()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != set)
            .map(|(_, c)| c.hits + c.allocs + c.evictions)
            .sum();
        assert_eq!(other_sets, 0);
    }

    #[test]
    #[should_panic(expected = "invalid slot")]
    fn entry_on_invalid_slot_panics() {
        let a = MetaTagArray::new(1, 1);
        let _ = a.entry(EntryRef { set: 0, way: 0 });
    }

    #[test]
    fn realloc_same_key_reuses_the_resident_way() {
        let mut a = MetaTagArray::new(1, 2);
        let mut s = stats();
        let (r1, _) = a.alloc(MetaKey(1), StateId::DEFAULT, &mut s).unwrap();
        a.update_entry(r1, |e| e.active = false);
        // A suppressed lookup (meta-tag misfire) re-allocates key 1 while
        // it is still resident: the resident way must be the victim, so
        // the set never holds two entries with the same key.
        let (r2, evicted) = a.alloc(MetaKey(1), StateId::DEFAULT, &mut s).unwrap();
        assert_eq!(r2, r1);
        assert_eq!(evicted.unwrap().key, MetaKey(1));
        let copies = a.iter().filter(|e| e.key == MetaKey(1)).count();
        assert_eq!(copies, 1);
    }
}
