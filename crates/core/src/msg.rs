//! The datapath-facing message bundle (`MetaIO`).
//!
//! "The computational datapath uses meta loads/stores, and we implicitly
//! locate the data on-chip" (§1). These are the messages crossing the
//! DSA ↔ X-Cache boundary.

use std::fmt;

/// A domain-specific tag: "any combination of fields from the DSA-metadata"
/// packed into 64 bits.
///
/// Single-field tags (hash keys, vertex ids) use [`MetaKey::new`]; composed
/// tags like SpArch's `(matrix, row)` or GraphPulse's `(row, bin, column)`
/// pack with [`MetaKey::pack2`]/[`MetaKey::pack3`].
///
/// ```
/// use xcache_core::MetaKey;
/// let k = MetaKey::pack2(3, 17); // e.g. (matrix B, row 17)
/// assert_eq!(k.field2(), (3, 17));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetaKey(pub u64);

impl MetaKey {
    /// A single-field tag.
    #[must_use]
    pub fn new(v: u64) -> Self {
        MetaKey(v)
    }

    /// Packs two fields (32 bits each) into one tag.
    #[must_use]
    pub fn pack2(hi: u32, lo: u32) -> Self {
        MetaKey((u64::from(hi) << 32) | u64::from(lo))
    }

    /// Unpacks a two-field tag.
    #[must_use]
    pub fn field2(self) -> (u32, u32) {
        ((self.0 >> 32) as u32, self.0 as u32)
    }

    /// Packs three fields (16/24/24 bits) into one tag — GraphPulse's
    /// `(row, bin, column)` event id.
    ///
    /// # Panics
    ///
    /// Panics if a field exceeds its width.
    #[must_use]
    pub fn pack3(a: u16, b: u32, c: u32) -> Self {
        assert!(
            b < (1 << 24) && c < (1 << 24),
            "pack3 fields exceed 24 bits"
        );
        MetaKey((u64::from(a) << 48) | (u64::from(b) << 24) | u64::from(c))
    }

    /// Unpacks a three-field tag.
    #[must_use]
    pub fn field3(self) -> (u16, u32, u32) {
        (
            (self.0 >> 48) as u16,
            ((self.0 >> 24) & 0xff_ffff) as u32,
            (self.0 & 0xff_ffff) as u32,
        )
    }

    /// The raw 64-bit tag.
    #[must_use]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for MetaKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "key({:#x})", self.0)
    }
}

impl From<u64> for MetaKey {
    fn from(v: u64) -> Self {
        MetaKey(v)
    }
}

/// A meta access issued by the DSA datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetaAccess {
    /// Fetch the data element tagged `key`; on a miss the walker finds it.
    Load {
        /// Correlation id (returned in the response).
        id: u64,
        /// The domain-specific tag.
        key: MetaKey,
    },
    /// Insert-or-merge `payload` under `key`; always runs the walker's
    /// `Update` routine, which branches on `bhit`/`bmiss` (GraphPulse).
    Store {
        /// Correlation id (returned in the response).
        id: u64,
        /// The domain-specific tag.
        key: MetaKey,
        /// Up to two payload words (the event payload).
        payload: [u64; 2],
    },
    /// Fetch the data element tagged `key` *and* invalidate its entry —
    /// the drain operation of event-queue-style DSAs.
    Take {
        /// Correlation id (returned in the response).
        id: u64,
        /// The domain-specific tag.
        key: MetaKey,
    },
}

impl MetaAccess {
    /// The correlation id.
    #[must_use]
    pub fn id(&self) -> u64 {
        match self {
            MetaAccess::Load { id, .. }
            | MetaAccess::Store { id, .. }
            | MetaAccess::Take { id, .. } => *id,
        }
    }

    /// The meta key.
    #[must_use]
    pub fn key(&self) -> MetaKey {
        match self {
            MetaAccess::Load { key, .. }
            | MetaAccess::Store { key, .. }
            | MetaAccess::Take { key, .. } => *key,
        }
    }
}

/// The X-Cache's answer to a [`MetaAccess`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetaResp {
    /// Correlation id of the access.
    pub id: u64,
    /// The key that was accessed.
    pub key: MetaKey,
    /// Whether the element was found (walkers can fault: key absent from
    /// the data structure).
    pub found: bool,
    /// The data words (empty for store acks and faults).
    pub data: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack2_round_trips() {
        let k = MetaKey::pack2(0xdead_beef, 0x1234_5678);
        assert_eq!(k.field2(), (0xdead_beef, 0x1234_5678));
    }

    #[test]
    fn pack3_round_trips() {
        let k = MetaKey::pack3(7, 1 << 20, 3);
        assert_eq!(k.field3(), (7, 1 << 20, 3));
    }

    #[test]
    #[should_panic(expected = "exceed 24 bits")]
    fn pack3_rejects_wide_fields() {
        let _ = MetaKey::pack3(0, 1 << 24, 0);
    }

    #[test]
    fn access_accessors() {
        let a = MetaAccess::Store {
            id: 9,
            key: MetaKey::new(4),
            payload: [1, 2],
        };
        assert_eq!(a.id(), 9);
        assert_eq!(a.key(), MetaKey(4));
        let l = MetaAccess::Load {
            id: 1,
            key: MetaKey::new(2),
        };
        assert_eq!(l.key().raw(), 2);
    }

    #[test]
    fn key_display_and_from() {
        let k: MetaKey = 0x10u64.into();
        assert_eq!(k.to_string(), "key(0x10)");
    }
}
