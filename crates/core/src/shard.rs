//! Sharded multi-controller topology.
//!
//! A sharded X-Cache instance is `N` controller + meta-path instances
//! ([`ShardCell`]s), each owning an address-interleaved slice of the key
//! space ([`owner_of`]), over a shared banked DRAM
//! ([`BankGroup`](xcache_mem::BankGroup)) and a crossbar of fixed-latency
//! [`Link`]s. The DSA driver becomes a router: it hashes every access to
//! its owner shard's inbox link and collects responses from the outbox
//! links, interacting with the cells only at horizon boundaries (see
//! [`run_horizons`](xcache_sim::run_horizons)).
//!
//! Determinism is structural, not locked-in by synchronization: the
//! boundary callback runs single-threaded and drains outboxes in (cycle,
//! shard, FIFO-sequence) order, cells share no mutable state, and each
//! cell's advance depends only on its own state — so `XCACHE_PAR=seq` and
//! the worker pool produce byte-identical statistics at any thread count.

use std::sync::Mutex;

use xcache_mem::{Link, MemoryPort};
use xcache_sim::{earliest, fast_forward, Cycle, Stats};

use crate::{splitmix64, MetaAccess, MetaKey, MetaResp, XCache, XCacheConfig};

/// Default crossbar per-hop latency in cycles.
pub const DEFAULT_LINK_LATENCY: u64 = 32;

/// Default horizon length in cycles. Any value is conservative-safe
/// (cells only interact at boundaries); this is a barrier-frequency /
/// driver-feedback-granularity knob, chosen as twice the link latency.
pub const DEFAULT_HORIZON: u64 = 64;

/// The shard owning `key` in an `shards`-wide topology.
///
/// Address-interleaved routing: keys are spread by the workspace's
/// standard mixer so consecutive keys land on different shards. Every key
/// has exactly one owner — the routing proptest in the bench crate pins
/// this down as a partition of the key space.
#[must_use]
pub fn owner_of(key: MetaKey, shards: usize) -> usize {
    if shards <= 1 {
        0
    } else {
        (splitmix64(key.raw()) % shards as u64) as usize
    }
}

/// Shard count from `XCACHE_SHARDS` (must be `1..=64`), or `default`
/// when unset. A malformed or out-of-range value prints the structured
/// error and exits 2.
#[must_use]
pub fn shards_from_env(default: usize) -> usize {
    xcache_sim::exit2(xcache_sim::env_parse_map("XCACHE_SHARDS", |s| {
        let n: usize = s.parse().map_err(|e| format!("{e}"))?;
        if !(1..=64).contains(&n) {
            return Err(format!("shard count {n} outside 1..=64"));
        }
        Ok(n)
    }))
    .unwrap_or(default)
}

/// A per-shard controller geometry: the base config with the meta-tag
/// sets and data sectors divided across `shards` (floored at one
/// power-of-two set), so a sharded topology has roughly the same total
/// capacity as the single instance it replaces.
#[must_use]
pub fn shard_geometry(base: &XCacheConfig, shards: usize) -> XCacheConfig {
    let mut cfg = base.clone();
    if shards > 1 {
        cfg.sets = (base.sets / shards).max(1).next_power_of_two();
        cfg.data_sectors = (base.data_sectors / shards).max(cfg.sets * cfg.ways);
    }
    cfg
}

/// One shard: a controller + meta-path instance with its crossbar
/// endpoints and a private clock.
///
/// Between horizon boundaries the cell advances alone: it delivers due
/// inbox messages (FIFO, with back-pressure retry), ticks its controller,
/// and forwards responses to the outbox. The driver touches only
/// [`send`](ShardCell::send) / [`recv_response`](ShardCell::recv_response)
/// at boundaries.
#[derive(Debug)]
pub struct ShardCell<D: MemoryPort> {
    id: usize,
    xc: XCache<D>,
    inbox: Link<MetaAccess>,
    outbox: Link<MetaResp>,
    local_now: Cycle,
}

impl<D: MemoryPort> ShardCell<D> {
    /// Wraps `xc` as shard `id` with symmetric `link_latency` lanes.
    #[must_use]
    pub fn new(id: usize, xc: XCache<D>, link_latency: u64) -> Self {
        let lane = (id as u64) << 1;
        ShardCell {
            id,
            xc,
            inbox: Link::new(lane, link_latency),
            outbox: Link::new(lane | 1, link_latency),
            local_now: Cycle::ZERO,
        }
    }

    /// This cell's shard id.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The wrapped controller.
    #[must_use]
    pub fn xcache(&self) -> &XCache<D> {
        &self.xc
    }

    /// The cell's private clock (equals the last boundary target after a
    /// horizon completes).
    #[must_use]
    pub fn local_now(&self) -> Cycle {
        self.local_now
    }

    /// Routes `access` onto this shard's inbox lane at `now` (a boundary
    /// cycle). The lane's bandwidth and latency pace actual delivery.
    pub fn send(&mut self, now: Cycle, access: MetaAccess) {
        self.inbox.send(now, access.id(), access);
    }

    /// Pops the oldest response whose crossbar arrival is due at `now`,
    /// with its arrival cycle (drivers use the latest arrival as the
    /// cadence-independent end-of-run cycle).
    pub fn recv_response(&mut self, now: Cycle) -> Option<(Cycle, MetaResp)> {
        self.outbox.recv_due(now)
    }

    /// Earliest cycle at which this cell or its crossbar endpoints could
    /// do observable work: the controller's own wake-up, the next inbox
    /// delivery, or the next outbox arrival the driver should drain.
    #[must_use]
    pub fn next_wake(&self) -> Option<Cycle> {
        earliest(
            self.xc.next_event(self.local_now),
            earliest(self.inbox.next_arrival(), self.outbox.next_arrival()),
        )
    }

    /// Merges the controller's and crossbar lanes' counters into `out`.
    /// Downstream (memory-side) counters are merged by the driver, which
    /// knows the concrete port type.
    pub fn merge_stats_into(&self, out: &mut Stats) {
        out.merge(self.xc.stats());
        out.add(
            "shard.link_msgs",
            self.inbox.messages() + self.outbox.messages(),
        );
        out.add(
            "shard.link_fault_delays",
            self.inbox.fault_delays() + self.outbox.fault_delays(),
        );
    }

    /// One observable step at `now`: deliver due inbox messages while the
    /// controller accepts them, tick, forward responses.
    fn step(&mut self, now: Cycle) {
        while self.xc.can_accept() {
            match self.inbox.recv_due(now) {
                Some((_, access)) => {
                    self.xc
                        .try_access(now, access)
                        .expect("can_accept checked before delivery");
                }
                None => break,
            }
        }
        self.xc.tick(now);
        while let Some(resp) = self.xc.take_response(now) {
            self.outbox.send(now, resp.id, resp);
        }
    }
}

impl<D: MemoryPort + Send> xcache_sim::ParCell for ShardCell<D> {
    fn advance(&mut self, to: Cycle) {
        while self.local_now < to {
            let wake = earliest(
                self.xc.next_event(self.local_now),
                self.inbox.next_arrival(),
            );
            let step_at = match wake {
                // Fully idle: every tick up to the boundary is a no-op in
                // both skip modes, so jump straight there.
                None => {
                    self.local_now = to;
                    return;
                }
                // A backpressured inbox head is due in the past; retry
                // one cycle at a time until the controller accepts it.
                Some(w) if w <= self.local_now => self.local_now.next(),
                w => fast_forward(self.local_now, w),
            };
            if step_at > to {
                // Next observable work is past the boundary; idle-jump.
                self.local_now = to;
                return;
            }
            self.local_now = step_at;
            self.step(step_at);
        }
    }
}

/// The next horizon boundary after `after`: at least `horizon` cycles
/// out, stretched to the earliest cell wake-up when every cell is idle
/// longer than that (so fully-parked topologies don't burn barriers).
///
/// This is deliberately independent of skip mode and thread count — the
/// boundary cadence is part of the deterministic contract.
///
/// # Panics
///
/// Panics if a cell lock is poisoned (a worker panicked).
#[must_use]
pub fn horizon_target<D: MemoryPort>(
    cells: &[Mutex<ShardCell<D>>],
    after: Cycle,
    horizon: u64,
) -> Cycle {
    let mut wake = None;
    for cell in cells {
        wake = earliest(wake, cell.lock().expect("shard cell poisoned").next_wake());
    }
    let base = after + horizon.max(1);
    match wake {
        Some(w) if w > base && w != Cycle::NEVER => w,
        _ => base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcache_mem::{DramConfig, DramModel};
    use xcache_sim::{run_horizons, with_par_mode, with_par_threads, ParMode};

    fn array_walker() -> xcache_isa::WalkerProgram {
        xcache_isa::asm::assemble(
            r"
            walker array
            states Default, Wait
            regs 2
            params base

            routine start {
                allocR
                allocM
                mul r0, key, 32
                add r0, r0, base
                dram_read r0, 32
                yield Wait
            }
            routine fill {
                allocD r1, 1
                filld r1, 4
                updatem r1, r1
                respond
                retire
            }

            on Default, Miss -> start
            on Wait, Fill -> fill
        ",
        )
        .expect("valid walker")
    }

    fn build_cells(shards: usize) -> Vec<ShardCell<DramModel>> {
        let mut mem = xcache_mem::MainMemory::default();
        for key in 0..64u64 {
            mem.write_u64(0x1000 + key * 32, key * 3 + 7);
        }
        (0..shards)
            .map(|s| {
                let cfg =
                    shard_geometry(&XCacheConfig::test_tiny(), shards).with_params(vec![0x1000]);
                let xc = XCache::new(
                    cfg,
                    array_walker(),
                    DramModel::with_memory(DramConfig::default(), mem.clone()),
                )
                .expect("valid shard");
                ShardCell::new(s, xc, DEFAULT_LINK_LATENCY)
            })
            .collect()
    }

    fn run(shards: usize) -> (Cycle, u64, xcache_sim::StatsSnapshot) {
        let mut cells = build_cells(shards);
        let total = 64u64;
        for key in 0..total {
            let owner = owner_of(MetaKey::new(key), shards);
            cells[owner].send(
                Cycle::ZERO,
                MetaAccess::Load {
                    id: key,
                    key: MetaKey::new(key),
                },
            );
        }
        let mut done = 0u64;
        let mut checksum = 0u64;
        let mut end = Cycle::ZERO;
        let cells = run_horizons(cells, Cycle::ZERO, |cells, t| {
            for cell in cells {
                let mut cell = cell.lock().unwrap();
                while let Some((at, resp)) = cell.recv_response(t) {
                    assert!(resp.found);
                    checksum = checksum.wrapping_add(resp.data[0]);
                    end = end.max(at);
                    done += 1;
                }
            }
            if done >= total {
                return None;
            }
            assert!(t.raw() < 1_000_000, "sharded run hung at {done}/{total}");
            Some(horizon_target(cells, t, DEFAULT_HORIZON))
        });
        let mut stats = Stats::new();
        for cell in &cells {
            cell.merge_stats_into(&mut stats);
            stats.merge(cell.xcache().downstream().stats());
        }
        (end, checksum, stats.snapshot())
    }

    #[test]
    fn owner_of_is_a_partition() {
        for shards in 1..=8usize {
            for key in 0..4_096u64 {
                let owner = owner_of(MetaKey::new(key), shards);
                assert!(owner < shards);
                assert_eq!(owner, owner_of(MetaKey::new(key), shards));
            }
        }
        // Interleaving actually spreads: every shard owns something.
        let mut seen = [false; 4];
        for key in 0..256u64 {
            seen[owner_of(MetaKey::new(key), 4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn shard_geometry_divides_capacity() {
        let base = XCacheConfig::widx();
        let quarter = shard_geometry(&base, 4);
        assert_eq!(quarter.sets, (base.sets / 4).next_power_of_two());
        assert!(quarter.data_sectors <= base.data_sectors);
        assert!(quarter.validate().is_ok());
        assert_eq!(shard_geometry(&base, 1), base);
    }

    #[test]
    fn sharded_run_completes_and_checks() {
        let (_, checksum, _) = run(2);
        let expected: u64 = (0..64u64).map(|k| k * 3 + 7).sum();
        assert_eq!(checksum, expected);
    }

    #[test]
    fn seq_and_par_runs_are_byte_identical() {
        let reference = with_par_mode(ParMode::Seq, || run(3));
        for threads in [1, 2, 4] {
            let par = with_par_mode(ParMode::Par, || with_par_threads(threads, || run(3)));
            assert_eq!(par, reference, "par({threads} threads) diverged from seq");
        }
    }

    #[test]
    fn shards_from_env_defaults() {
        // The test environment does not set XCACHE_SHARDS.
        assert_eq!(shards_from_env(4), 4);
    }

    #[test]
    fn cells_are_send() {
        fn assert_send<T: Send>() {}
        assert_send::<ShardCell<DramModel>>();
    }
}
