//! Decoupled sequential stream engine.
//!
//! "X-Cache with streaming (MXS) is perhaps the most common [hierarchy].
//! The DSA explicitly partitions the data based on the access pattern"
//! (§6): the dense, affine-ordered structure (SpArch's matrix A) is
//! *streamed*; the dynamically-accessed one (matrix B) goes through
//! X-Cache. [`StreamReader`] is that stream side: it runs ahead fetching
//! fixed-size chunks with bounded lookahead and hands words to the
//! datapath strictly in order.

use std::collections::BTreeMap;

use bytes::Bytes;

use xcache_mem::{MemReq, MemoryPort};
use xcache_sim::{counter, Cycle, Stats};

/// Configuration of a [`StreamReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamConfig {
    /// First byte of the streamed region.
    pub base: u64,
    /// Region length in bytes.
    pub len: u64,
    /// Fetch granularity in bytes.
    pub chunk_bytes: u32,
    /// Maximum chunks in flight (decoupling depth).
    pub lookahead: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            base: 0,
            len: 0,
            chunk_bytes: 64,
            lookahead: 4,
        }
    }
}

impl StreamConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns a description of the first invalid field.
    pub fn validate(&self) -> Result<(), String> {
        if self.chunk_bytes == 0 {
            return Err("chunk_bytes must be nonzero".into());
        }
        if self.lookahead == 0 {
            return Err("lookahead must be nonzero".into());
        }
        Ok(())
    }
}

/// A decoupled, in-order stream over `[base, base + len)`.
#[derive(Debug)]
pub struct StreamReader<P> {
    cfg: StreamConfig,
    port: P,
    next_issue_chunk: u64,
    total_chunks: u64,
    inflight: usize,
    /// Out-of-order arrivals parked until their turn.
    arrived: BTreeMap<u64, Bytes>,
    /// Chunk currently being consumed.
    current: Option<(Bytes, usize)>,
    next_deliver_chunk: u64,
    stats: Stats,
}

impl<P: MemoryPort> StreamReader<P> {
    /// Creates a stream over `port`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` fails [`StreamConfig::validate`].
    #[must_use]
    pub fn new(cfg: StreamConfig, port: P) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid StreamConfig: {e}");
        }
        let total_chunks = cfg.len.div_ceil(u64::from(cfg.chunk_bytes));
        StreamReader {
            port,
            next_issue_chunk: 0,
            total_chunks,
            inflight: 0,
            arrived: BTreeMap::new(),
            current: None,
            next_deliver_chunk: 0,
            stats: Stats::new(),
            cfg,
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The underlying port.
    #[must_use]
    pub fn port(&self) -> &P {
        &self.port
    }

    /// Advances one cycle: issues lookahead fetches and collects arrivals.
    pub fn tick(&mut self, now: Cycle) {
        self.port.tick(now);
        while let Some(resp) = self.port.take_response(now) {
            self.arrived.insert(resp.id.0, resp.data);
            self.inflight -= 1;
        }
        while self.inflight < self.cfg.lookahead && self.next_issue_chunk < self.total_chunks {
            let idx = self.next_issue_chunk;
            let addr = self.cfg.base + idx * u64::from(self.cfg.chunk_bytes);
            let remaining = self.cfg.len - idx * u64::from(self.cfg.chunk_bytes);
            let len = u64::from(self.cfg.chunk_bytes).min(remaining) as u32;
            match self.port.try_request(now, MemReq::read(idx, addr, len)) {
                Ok(()) => {
                    self.inflight += 1;
                    self.next_issue_chunk += 1;
                    self.stats.incr_id(counter!("stream.fetch"));
                    self.stats.add_id(counter!("stream.bytes"), u64::from(len));
                }
                Err(_) => {
                    self.stats.incr_id(counter!("stream.port_stall"));
                    break;
                }
            }
        }
    }

    /// Pops the next 8-byte word of the stream, or `None` if it has not
    /// arrived yet (the datapath stalls) or the stream is exhausted.
    pub fn pop_word(&mut self) -> Option<u64> {
        loop {
            if let Some((chunk, off)) = &mut self.current {
                if *off < chunk.len() {
                    let end = (*off + 8).min(chunk.len());
                    let mut b = [0u8; 8];
                    b[..end - *off].copy_from_slice(&chunk[*off..end]);
                    *off += 8;
                    return Some(u64::from_le_bytes(b));
                }
                self.current = None;
                self.next_deliver_chunk += 1;
            }
            if self.next_deliver_chunk >= self.total_chunks {
                return None; // exhausted
            }
            match self.arrived.remove(&self.next_deliver_chunk) {
                Some(chunk) => self.current = Some((chunk, 0)),
                None => return None, // not arrived yet
            }
        }
    }

    /// Whether [`pop_word`](Self::pop_word) would currently return a word.
    /// This is the datapath-readiness signal drivers fold into their
    /// fast-forward wake-up (see [`next_event`](Self::next_event)).
    #[must_use]
    pub fn word_ready(&self) -> bool {
        match &self.current {
            Some((chunk, off)) if *off < chunk.len() => true,
            // Current chunk exhausted (or absent): the next in-order chunk
            // must already have arrived.
            Some(_) => self.arrived.contains_key(&(self.next_deliver_chunk + 1)),
            None => self.arrived.contains_key(&self.next_deliver_chunk),
        }
    }

    /// Whether every word of the stream has been delivered.
    #[must_use]
    pub fn exhausted(&self) -> bool {
        self.next_deliver_chunk >= self.total_chunks
            && self.current.as_ref().is_none_or(|(c, off)| *off >= c.len())
    }

    /// Whether fetches are outstanding.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.inflight > 0 || !self.arrived.is_empty() || self.port.busy()
    }

    /// Earliest cycle strictly after `now` at which `tick` could do
    /// observable work (same contract as
    /// [`Component::next_event`](xcache_sim::Component::next_event)).
    /// Arrived-but-unconsumed words do not count: consuming them is the
    /// datapath's move, so the *driver* must fold its own readiness in.
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // More chunks to issue with lookahead room: `tick` issues (or
        // counts a port stall) every cycle.
        if self.next_issue_chunk < self.total_chunks && self.inflight < self.cfg.lookahead {
            return Some(now.next());
        }
        self.port.next_event(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcache_mem::{DramConfig, DramModel};

    fn setup(words: u64) -> StreamReader<DramModel> {
        let mut dram = DramModel::new(DramConfig::test_tiny());
        for i in 0..words {
            dram.memory_mut().write_u64(0x2000 + i * 8, 100 + i);
        }
        StreamReader::new(
            StreamConfig {
                base: 0x2000,
                len: words * 8,
                chunk_bytes: 32,
                lookahead: 2,
            },
            dram,
        )
    }

    #[test]
    fn delivers_all_words_in_order() {
        let mut s = setup(20);
        let mut got = Vec::new();
        let mut now = Cycle(0);
        while got.len() < 20 {
            s.tick(now);
            while let Some(w) = s.pop_word() {
                got.push(w);
            }
            now = now.next();
            assert!(now.raw() < 100_000, "stream stalled");
        }
        assert_eq!(got, (0..20).map(|i| 100 + i).collect::<Vec<_>>());
        assert!(s.exhausted());
    }

    #[test]
    fn lookahead_bounds_inflight() {
        let mut s = setup(100);
        s.tick(Cycle(0));
        assert!(s.inflight <= 2);
        assert_eq!(s.stats().get("stream.fetch"), 2);
    }

    #[test]
    fn pop_before_arrival_returns_none() {
        let mut s = setup(4);
        assert_eq!(s.pop_word(), None);
        assert!(!s.exhausted());
    }

    #[test]
    fn partial_tail_chunk() {
        // 5 words = 40 bytes; chunks of 32 → tail chunk of 8 bytes.
        let mut s = setup(5);
        let mut got = Vec::new();
        let mut now = Cycle(0);
        while !s.exhausted() {
            s.tick(now);
            while let Some(w) = s.pop_word() {
                got.push(w);
            }
            now = now.next();
            assert!(now.raw() < 100_000);
        }
        assert_eq!(got.len(), 5);
        assert_eq!(got[4], 104);
    }

    #[test]
    #[should_panic(expected = "invalid StreamConfig")]
    fn zero_lookahead_panics() {
        let dram = DramModel::new(DramConfig::test_tiny());
        let _ = StreamReader::new(
            StreamConfig {
                lookahead: 0,
                ..StreamConfig::default()
            },
            dram,
        );
    }
}
