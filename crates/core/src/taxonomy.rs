//! The storage-idiom taxonomy of Table 1 as data.
//!
//! The paper qualitatively compares X-Cache against caches,
//! scratchpad+DMA, scratchpad+access-engine, and FIFOs along the
//! behaviour/design axes of §2.2. The `tab01_taxonomy` harness renders
//! this table; keeping it as data also lets tests assert the X-Cache
//! column's claims against the implemented model.

/// One row of Table 1: a property and its value for each idiom.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdiomRow {
    /// Property name (e.g. "Granularity").
    pub property: &'static str,
    /// Conventional address-based caches.
    pub caches: &'static str,
    /// Scratchpad with decoupled DMA (e.g. Buffets).
    pub scratch_dma: &'static str,
    /// Scratchpad with a programmable access engine (e.g. CoRAM, Stash).
    pub scratch_ae: &'static str,
    /// FIFOs / stream pipelines.
    pub fifos: &'static str,
    /// X-Cache.
    pub xcache: &'static str,
}

/// Table 1 of the paper.
pub const TAXONOMY: &[IdiomRow] = &[
    IdiomRow {
        property: "Granularity",
        caches: "Blocks",
        scratch_dma: "Tiles",
        scratch_ae: "Word",
        fifos: "Elements",
        xcache: "DSA-specific",
    },
    IdiomRow {
        property: "Meta-to-Addr",
        caches: "Walking and translation always required",
        scratch_dma: "Walking and translation always required",
        scratch_ae: "Walking and translation always required",
        fifos: "Stream order only",
        xcache: "Only on misses",
    },
    IdiomRow {
        property: "Behavior",
        caches: "Dynamic",
        scratch_dma: "Static pattern (affine)",
        scratch_ae: "Linear data structure",
        fifos: "Stream",
        xcache: "Dynamic + flexible",
    },
    IdiomRow {
        property: "Addressing",
        caches: "Implicit",
        scratch_dma: "Explicit",
        scratch_ae: "Implicit",
        fifos: "Implicit",
        xcache: "Implicit",
    },
    IdiomRow {
        property: "Coupling",
        caches: "Coupled (load/store)",
        scratch_dma: "Decoupled",
        scratch_ae: "Coupled",
        fifos: "Decoupled",
        xcache: "Decoupled",
    },
    IdiomRow {
        property: "Trigger",
        caches: "Implicit (load/store)",
        scratch_dma: "Explicit (datapath)",
        scratch_ae: "Explicit (datapath)",
        fifos: "Implicit (push/pop)",
        xcache: "DSA-specific",
    },
    IdiomRow {
        property: "Walker",
        caches: "Hardwired",
        scratch_dma: "DSA has to walk metadata",
        scratch_ae: "Fixed FSM",
        fifos: "Hardwired",
        xcache: "Programmable",
    },
    IdiomRow {
        property: "Control",
        caches: "Complex (MSHRs)",
        scratch_dma: "Simple (double-buffering)",
        scratch_ae: "Complex (thread)",
        fifos: "Simple (double-buf)",
        xcache: "Simple (routines)",
    },
    IdiomRow {
        property: "Multi.Fill",
        caches: "No",
        scratch_dma: "No",
        scratch_ae: "No",
        fifos: "Only FIFO",
        xcache: "Yes (coroutine)",
    },
    IdiomRow {
        property: "LD/ST order",
        caches: "Arbitrary",
        scratch_dma: "Limited (on-chip only)",
        scratch_ae: "Limited (on-chip only)",
        fifos: "Only FIFO",
        xcache: "Arbitrary",
    },
    IdiomRow {
        property: "Preload",
        caches: "- (separate)",
        scratch_dma: "Limited (credit)",
        scratch_ae: "Limited (credit)",
        fifos: "Limited (credits)",
        xcache: "Yes (FSM driven)",
    },
    IdiomRow {
        property: "Orchestration",
        caches: "Load-to-use",
        scratch_dma: "Ready/valid",
        scratch_ae: "Fill or gather",
        fifos: "Ready/valid",
        xcache: "Load-to-use",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_design_axes() {
        let props: Vec<_> = TAXONOMY.iter().map(|r| r.property).collect();
        for expected in [
            "Granularity",
            "Behavior",
            "Coupling",
            "Walker",
            "Multi.Fill",
            "Preload",
        ] {
            assert!(props.contains(&expected), "missing row {expected}");
        }
    }

    #[test]
    fn xcache_column_claims() {
        let walker = TAXONOMY.iter().find(|r| r.property == "Walker").unwrap();
        assert_eq!(walker.xcache, "Programmable");
        let fill = TAXONOMY
            .iter()
            .find(|r| r.property == "Multi.Fill")
            .unwrap();
        assert!(fill.xcache.contains("coroutine"));
    }
}
