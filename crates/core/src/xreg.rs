//! The X-register file pool (§4.1 / Figure 8 "X-Reg").
//!
//! "Routines allocate temporary X-register to store the access key and the
//! address of the DRAM refill being waited on" — each concurrent walker
//! owns one file for its lifetime; `#Active` files bound the number of
//! concurrent walkers and hence memory-level parallelism (§7.1 ②).
//!
//! The pool also keeps the Figure 7 *occupancy* ledger:
//! `occupancy = #active-regs × size-bytes × lifetime-cycles`, accumulated
//! at release time. Coroutine walkers charge only their declared register
//! count; blocking-thread walkers charge a full hardware context.

use xcache_sim::{counter, Cycle, Stats};

/// Handle to an allocated X-register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct XRegFile(pub u16);

/// Fixed pool of `#Active` register files, `width` registers each.
///
/// Register storage is one contiguous `active × width` array (file `i`
/// owns `regs[i*width .. (i+1)*width]`): no per-file heap indirection on
/// the executor's operand path, and alloc/release just flip a slot flag.
#[derive(Debug)]
pub struct XRegPool {
    regs: Vec<u64>,
    width: usize,
    allocated_at: Vec<Cycle>,
    in_use: Vec<bool>,
    free: Vec<u16>,
    /// Registers charged per walker for occupancy (declared regs for
    /// coroutines, full context for threads).
    charged_regs: usize,
    /// Running occupancy sum in register-byte-cycles.
    occupancy: u64,
}

impl XRegPool {
    /// Creates a pool of `active` files, each `width` registers wide,
    /// charging `charged_regs` registers per walker in the occupancy
    /// ledger.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    #[must_use]
    pub fn new(active: usize, width: usize, charged_regs: usize) -> Self {
        assert!(active > 0 && width > 0 && charged_regs > 0);
        XRegPool {
            regs: vec![0; active * width],
            width,
            allocated_at: vec![Cycle::ZERO; active],
            in_use: vec![false; active],
            free: (0..active as u16).rev().collect(),
            charged_regs,
            occupancy: 0,
        }
    }

    /// Number of files currently allocated.
    #[must_use]
    pub fn in_use(&self) -> usize {
        self.in_use.len() - self.free.len()
    }

    /// Whether a free file exists.
    #[must_use]
    pub fn has_free(&self) -> bool {
        !self.free.is_empty()
    }

    /// Claims a file (zeroing it) at time `now`.
    pub fn alloc(&mut self, now: Cycle) -> Option<XRegFile> {
        let idx = self.free.pop()?;
        let i = idx as usize;
        self.regs[i * self.width..(i + 1) * self.width].fill(0);
        self.allocated_at[i] = now;
        self.in_use[i] = true;
        Some(XRegFile(idx))
    }

    /// Releases a file at time `now`, accumulating its occupancy.
    ///
    /// # Panics
    ///
    /// Panics on double release.
    pub fn release(&mut self, file: XRegFile, now: Cycle, stats: &mut Stats) {
        let i = file.0 as usize;
        assert!(self.in_use[i], "double release of {file:?}");
        self.in_use[i] = false;
        let lifetime = now.since(self.allocated_at[i]).max(1);
        let occ = (self.charged_regs as u64) * 8 * lifetime;
        self.occupancy += occ;
        stats.add_id(counter!("xcache.occupancy_reg_byte_cycles"), occ);
        stats.sample_id(counter!("xcache.walker_lifetime"), lifetime);
        self.free.push(file.0);
    }

    /// Reads register `reg` of `file`.
    ///
    /// # Panics
    ///
    /// Panics if the file is unallocated or `reg` out of range.
    #[must_use]
    pub fn read(&self, file: XRegFile, reg: u8, stats: &mut Stats) -> u64 {
        let i = file.0 as usize;
        assert!(self.in_use[i], "read from unallocated {file:?}");
        assert!((reg as usize) < self.width, "register {reg} out of range");
        stats.incr_id(counter!("xcache.xreg_read"));
        self.regs[i * self.width + reg as usize]
    }

    /// Writes register `reg` of `file`.
    ///
    /// # Panics
    ///
    /// Panics if the file is unallocated or `reg` out of range.
    pub fn write(&mut self, file: XRegFile, reg: u8, value: u64, stats: &mut Stats) {
        let i = file.0 as usize;
        assert!(self.in_use[i], "write to unallocated {file:?}");
        assert!((reg as usize) < self.width, "register {reg} out of range");
        stats.incr_id(counter!("xcache.xreg_write"));
        self.regs[i * self.width + reg as usize] = value;
    }

    /// Total accumulated occupancy (register-byte-cycles).
    #[must_use]
    pub fn occupancy(&self) -> u64 {
        self.occupancy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_until_exhausted() {
        let mut p = XRegPool::new(2, 4, 4);
        let mut s = Stats::new();
        let a = p.alloc(Cycle(0)).unwrap();
        let _b = p.alloc(Cycle(0)).unwrap();
        assert!(p.alloc(Cycle(0)).is_none());
        assert_eq!(p.in_use(), 2);
        p.release(a, Cycle(10), &mut s);
        assert!(p.has_free());
        assert!(p.alloc(Cycle(10)).is_some());
    }

    #[test]
    fn registers_read_write_and_zeroed_on_alloc() {
        let mut p = XRegPool::new(1, 2, 2);
        let mut s = Stats::new();
        let f = p.alloc(Cycle(0)).unwrap();
        p.write(f, 1, 77, &mut s);
        assert_eq!(p.read(f, 1, &mut s), 77);
        p.release(f, Cycle(1), &mut s);
        let f2 = p.alloc(Cycle(1)).unwrap();
        assert_eq!(p.read(f2, 1, &mut s), 0);
    }

    #[test]
    fn occupancy_scales_with_lifetime_and_charge() {
        let mut fine = XRegPool::new(1, 4, 4);
        let mut coarse = XRegPool::new(1, 4, 32);
        let mut s = Stats::new();
        let f = fine.alloc(Cycle(0)).unwrap();
        fine.release(f, Cycle(10), &mut s);
        let f = coarse.alloc(Cycle(0)).unwrap();
        coarse.release(f, Cycle(100), &mut s);
        assert_eq!(fine.occupancy(), 4 * 8 * 10);
        assert_eq!(coarse.occupancy(), 32 * 8 * 100);
        assert_eq!(coarse.occupancy() / fine.occupancy(), 80);
    }

    #[test]
    fn lifetime_histogram_recorded() {
        let mut p = XRegPool::new(1, 1, 1);
        let mut s = Stats::new();
        let f = p.alloc(Cycle(5)).unwrap();
        p.release(f, Cycle(25), &mut s);
        let h = s.histogram("xcache.walker_lifetime").unwrap();
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum(), 20);
    }

    #[test]
    #[should_panic(expected = "double release")]
    fn double_release_panics() {
        let mut p = XRegPool::new(1, 1, 1);
        let mut s = Stats::new();
        let f = p.alloc(Cycle(0)).unwrap();
        p.release(f, Cycle(1), &mut s);
        p.release(f, Cycle(2), &mut s);
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn read_unallocated_panics() {
        let p = XRegPool::new(1, 1, 1);
        let mut s = Stats::new();
        let _ = p.read(XRegFile(0), 0, &mut s);
    }
}
