//! Behavioural tests of the X-Cache controller: coroutine multiplexing,
//! waiter coalescing, store insert/merge, hash events, faults, and the
//! coroutine-vs-thread occupancy ablation.

use xcache_core::{MetaAccess, MetaKey, WalkerDiscipline, XCache, XCacheConfig};
use xcache_isa::asm::assemble;
use xcache_isa::WalkerProgram;
use xcache_mem::{DramConfig, DramModel};
use xcache_sim::Cycle;

/// Walker fetching a 32-byte element at `base + key * 32`.
fn array_walker() -> WalkerProgram {
    assemble(
        r#"
        walker array
        states Default, Wait
        regs 2
        params base

        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }

        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid walker")
}

/// Hash-then-fetch walker (Widx-like): digest selects the bucket.
fn hash_walker() -> WalkerProgram {
    assemble(
        r#"
        walker hashed
        states Default, Wait
        events HashDone
        regs 2
        params base

        routine start {
            allocR
            allocM
            hash HashDone, key
            yield Default
        }
        routine agen {
            peek r0, 0
            and r0, r0, 7
            mul r0, r0, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }

        on Default, Miss -> start
        on Default, HashDone -> agen
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid walker")
}

/// GraphPulse-style insert-or-merge walker (runs on Store).
fn merge_walker() -> WalkerProgram {
    assemble(
        r#"
        walker events
        states Default
        regs 2

        routine noop {
            allocR
            fault
        }
        routine upsert {
            allocR
            bhit @merge
            allocM
            allocD r0, 1
            writed r0, 0, msg0
            updatem r0, r0
            pinm
            retire
        merge:
            readd r1, sector, 0
            add r1, r1, msg0
            writed sector, 0, r1
            retire
        }

        on Default, Miss -> noop
        on Default, Update -> upsert
    "#,
    )
    .expect("valid walker")
}

fn dram_with_array(elems: u64, base: u64) -> DramModel {
    let mut dram = DramModel::new(DramConfig::test_tiny());
    for k in 0..elems {
        dram.memory_mut().write_u64(base + k * 32, 1000 + k);
    }
    dram
}

fn drain<D: xcache_mem::MemoryPort>(
    xc: &mut XCache<D>,
    now: &mut Cycle,
    want: usize,
) -> Vec<xcache_core::MetaResp> {
    let mut got = Vec::new();
    while got.len() < want {
        xc.tick(*now);
        while let Some(r) = xc.take_response(*now) {
            got.push(r);
        }
        *now = now.next();
        assert!(
            now.raw() < 1_000_000,
            "controller deadlock: {:?}",
            xc.stats()
        );
    }
    got
}

fn load(id: u64, key: u64) -> MetaAccess {
    MetaAccess::Load {
        id,
        key: MetaKey::new(key),
    }
}

#[test]
fn miss_then_hit_short_circuits() {
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(8, 0x1000)).unwrap();
    let mut now = Cycle(0);
    xc.try_access(now, load(1, 3)).unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(r[0].found);
    assert_eq!(r[0].data[0], 1003);
    let t_miss = now.raw();

    let start = now;
    xc.try_access(now, load(2, 3)).unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert_eq!(r[0].data[0], 1003);
    let t_hit = now.since(start);
    assert!(
        t_hit < t_miss / 2,
        "hit ({t_hit}) should be much faster than miss ({t_miss})"
    );
    assert_eq!(xc.stats().get("xcache.hit"), 1);
    assert_eq!(xc.stats().get("xcache.miss"), 1);
    assert_eq!(xc.stats().get("xcache.dram_req"), 1);
}

#[test]
fn duplicate_loads_coalesce_on_one_walker() {
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(8, 0x1000)).unwrap();
    let mut now = Cycle(0);
    xc.try_access(now, load(1, 5)).unwrap();
    xc.try_access(now, load(2, 5)).unwrap();
    xc.try_access(now, load(3, 5)).unwrap();
    let rs = drain(&mut xc, &mut now, 3);
    for r in &rs {
        assert!(r.found);
        assert_eq!(r.data[0], 1005);
    }
    // One walker, one DRAM transaction for all three.
    assert_eq!(xc.stats().get("xcache.walker_launch"), 1);
    assert_eq!(xc.stats().get("xcache.dram_req"), 1);
    assert_eq!(xc.stats().get("xcache.waiter"), 2);
}

#[test]
fn independent_keys_walk_in_parallel() {
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg.clone(), array_walker(), dram_with_array(16, 0x1000)).unwrap();
    let mut now = Cycle(0);
    for k in 0..4 {
        xc.try_access(now, load(k, k)).unwrap();
    }
    let rs = drain(&mut xc, &mut now, 4);
    assert_eq!(rs.len(), 4);
    let t_parallel = now.raw();
    assert_eq!(xc.stats().get("xcache.walker_launch"), 4);

    // Serial reference: one at a time.
    let mut xc2 = XCache::new(cfg, array_walker(), dram_with_array(16, 0x1000)).unwrap();
    let mut now2 = Cycle(0);
    for k in 10..14u64 {
        xc2.try_access(now2, load(k, k)).unwrap();
        let _ = drain(&mut xc2, &mut now2, 1);
    }
    let t_serial = now2.raw();
    assert!(
        t_parallel < t_serial,
        "4 concurrent walkers ({t_parallel}) should beat serial ({t_serial})"
    );
}

#[test]
fn hash_event_drives_multi_stage_walk() {
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x4000]);
    let mut dram = DramModel::new(DramConfig::test_tiny());
    for b in 0..8u64 {
        dram.memory_mut().write_u64(0x4000 + b * 32, 7000 + b);
    }
    let mut xc = XCache::new(cfg, hash_walker(), dram).unwrap();
    let mut now = Cycle(0);
    xc.try_access(now, load(1, 42)).unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(r[0].found);
    let bucket = xcache_core::splitmix64(42) & 7;
    assert_eq!(r[0].data[0], 7000 + bucket);
    assert_eq!(xc.stats().get("xcache.hash_issue"), 1);
    // The walk took at least the hash latency.
    assert!(now.raw() >= 4);
}

#[test]
fn store_insert_then_merge_then_take() {
    let cfg = XCacheConfig::test_tiny();
    let dram = DramModel::new(DramConfig::test_tiny());
    let mut xc = XCache::new(cfg, merge_walker(), dram).unwrap();
    let mut now = Cycle(0);

    // Insert 10 under key 9.
    xc.try_access(
        now,
        MetaAccess::Store {
            id: 1,
            key: MetaKey::new(9),
            payload: [10, 0],
        },
    )
    .unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(r[0].found);
    assert_eq!(xc.stats().get("xcache.store_miss"), 1);

    // Merge +32.
    xc.try_access(
        now,
        MetaAccess::Store {
            id: 2,
            key: MetaKey::new(9),
            payload: [32, 0],
        },
    )
    .unwrap();
    let _ = drain(&mut xc, &mut now, 1);
    assert_eq!(xc.stats().get("xcache.store_hit"), 1);

    // Drain the event: value must be 42 and the entry gone.
    xc.try_access(
        now,
        MetaAccess::Take {
            id: 3,
            key: MetaKey::new(9),
        },
    )
    .unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(r[0].found);
    assert_eq!(r[0].data[0], 42);

    xc.try_access(
        now,
        MetaAccess::Take {
            id: 4,
            key: MetaKey::new(9),
        },
    )
    .unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(!r[0].found, "entry must be gone after take");
}

#[test]
fn fault_answers_not_found() {
    // Walker that faults immediately on a miss.
    let program = assemble(
        r#"
        walker nf
        states Default
        regs 1
        routine start {
            allocR
            fault
        }
        on Default, Miss -> start
    "#,
    )
    .unwrap();
    let mut xc = XCache::new(
        XCacheConfig::test_tiny(),
        program,
        DramModel::new(DramConfig::test_tiny()),
    )
    .unwrap();
    let mut now = Cycle(0);
    xc.try_access(now, load(1, 77)).unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(!r[0].found);
    assert_eq!(xc.stats().get("xcache.walker_fault"), 1);
    // Nothing cached: a retry walks again.
    xc.try_access(now, load(2, 77)).unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(!r[0].found);
    assert_eq!(xc.stats().get("xcache.walker_fault"), 2);
}

#[test]
fn thread_discipline_inflates_occupancy() {
    let run = |discipline: WalkerDiscipline| {
        let cfg = XCacheConfig {
            discipline,
            ..XCacheConfig::test_tiny()
        }
        .with_params(vec![0x1000]);
        let mut xc = XCache::new(cfg, array_walker(), dram_with_array(64, 0x1000)).unwrap();
        let mut now = Cycle(0);
        let mut sent = 0u64;
        let mut recv = 0;
        while recv < 32 {
            if sent < 32 && xc.try_access(now, load(sent, sent)).is_ok() {
                sent += 1;
            }
            xc.tick(now);
            while xc.take_response(now).is_some() {
                recv += 1;
            }
            now = now.next();
            assert!(now.raw() < 1_000_000);
        }
        (
            xc.stats().get("xcache.occupancy_reg_byte_cycles"),
            now.raw(),
        )
    };
    let (occ_coro, t_coro) = run(WalkerDiscipline::Coroutine);
    let (occ_thread, t_thread) = run(WalkerDiscipline::BlockingThread);
    assert!(
        occ_thread > 4 * occ_coro,
        "thread occupancy {occ_thread} should dwarf coroutine {occ_coro}"
    );
    assert!(
        t_thread >= t_coro,
        "threads cannot be faster ({t_thread} vs {t_coro})"
    );
}

#[test]
fn active_limit_bounds_concurrency() {
    let cfg = XCacheConfig {
        active: 2,
        ..XCacheConfig::test_tiny()
    }
    .with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(32, 0x1000)).unwrap();
    let mut now = Cycle(0);
    for k in 0..8 {
        // Queue depth is 16, all fit.
        xc.try_access(now, load(k, k)).unwrap();
    }
    let rs = drain(&mut xc, &mut now, 8);
    assert_eq!(rs.len(), 8);
    // With only 2 register files, launches had to stall at some point.
    assert!(xc.stats().get("xcache.launch_stall") > 0);
    assert_eq!(xc.stats().get("xcache.walker_retire"), 8);
}

#[test]
fn load_to_use_histogram_separates_hits_and_misses() {
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(8, 0x1000)).unwrap();
    let mut now = Cycle(0);
    xc.try_access(now, load(1, 1)).unwrap();
    let _ = drain(&mut xc, &mut now, 1);
    for i in 0..4u64 {
        xc.try_access(now, load(10 + i, 1)).unwrap();
        let _ = drain(&mut xc, &mut now, 1);
    }
    let h = xc.stats().histogram("xcache.load_to_use").unwrap();
    assert_eq!(h.count(), 5);
    // Hits bounded by a small constant; the miss dominates the max.
    assert!(h.max().unwrap() > 2 * h.min().unwrap());
}

#[test]
fn respond_serialises_multi_sector_data() {
    // Walker that caches 4 sectors (128B) per element.
    let program = assemble(
        r#"
        walker wide
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 128
            add r0, r0, base
            dram_read r0, 128
            yield Wait
        }
        routine fill {
            allocD r1, 4
            filld r1, 16
            add r0, r1, 3
            updatem r1, r0
            respond
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .unwrap();
    let mut dram = DramModel::new(DramConfig::test_tiny());
    for w in 0..16u64 {
        dram.memory_mut().write_u64(0x8000 + w * 8, w);
    }
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x8000]);
    let mut xc = XCache::new(cfg, program, dram).unwrap();
    let mut now = Cycle(0);
    xc.try_access(now, load(1, 0)).unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert_eq!(r[0].data.len(), 16);
    assert_eq!(r[0].data, (0..16).collect::<Vec<u64>>());
}

#[test]
fn build_rejects_bad_resources() {
    let program = array_walker(); // declares 2 regs, uses param 0
    let err = XCache::new(
        XCacheConfig {
            xregs_per_walker: 1,
            ..XCacheConfig::test_tiny()
        },
        program.clone(),
        DramModel::new(DramConfig::test_tiny()),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        xcache_core::BuildError::RegistersExceeded { .. }
    ));

    let err = XCache::new(
        XCacheConfig::test_tiny(), // no params
        program,
        DramModel::new(DramConfig::test_tiny()),
    )
    .unwrap_err();
    assert!(matches!(err, xcache_core::BuildError::MissingParam { .. }));
}

#[test]
fn capacity_eviction_keeps_serving() {
    // Tiny cache: 8 sets x 2 ways but only 8 data sectors. Touch 32 keys.
    let cfg = XCacheConfig {
        data_sectors: 8,
        ..XCacheConfig::test_tiny()
    }
    .with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(32, 0x1000)).unwrap();
    let mut now = Cycle(0);
    for k in 0..32u64 {
        xc.try_access(now, load(k, k)).unwrap();
        let r = drain(&mut xc, &mut now, 1);
        assert!(r[0].found);
        assert_eq!(r[0].data[0], 1000 + k);
    }
    assert!(xc.stats().get("xcache.capacity_evict") > 0);
}

#[test]
fn stats_action_categories_counted() {
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(4, 0x1000)).unwrap();
    let mut now = Cycle(0);
    xc.try_access(now, load(1, 1)).unwrap();
    let _ = drain(&mut xc, &mut now, 1);
    let s = xc.stats();
    assert!(s.get("xcache.action.agen") > 0);
    assert!(s.get("xcache.action.queue") > 0);
    assert!(s.get("xcache.action.metatag") > 0);
    assert!(s.get("xcache.action.control") > 0);
    assert!(s.get("xcache.action.dataram") > 0);
    assert_eq!(
        s.get("xcache.ucode_read"),
        s.get("xcache.action.agen")
            + s.get("xcache.action.queue")
            + s.get("xcache.action.metatag")
            + s.get("xcache.action.control")
            + s.get("xcache.action.dataram")
    );
}
