//! Edge-case behaviour of the controller: per-key ordering, hazard
//! replay, traces, disciplines across multi-stage walks, and the
//! side-insert action.

use xcache_core::{MetaAccess, MetaKey, WalkerDiscipline, XCache, XCacheConfig};
use xcache_isa::asm::assemble;
use xcache_isa::WalkerProgram;
use xcache_mem::{DramConfig, DramModel, MemoryPort};
use xcache_sim::{Cycle, TraceKind};

fn array_walker() -> WalkerProgram {
    assemble(
        r#"
        walker array
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid")
}

fn merge_walker() -> WalkerProgram {
    assemble(
        r#"
        walker events
        states Default
        regs 2
        routine noop {
            allocR
            fault
        }
        routine upsert {
            allocR
            bhit @merge
            allocM
            allocD r0, 1
            writed r0, 0, msg0
            updatem r0, r0
            pinm
            retire
        merge:
            readd r1, sector, 0
            add r1, r1, msg0
            writed sector, 0, r1
            retire
        }
        on Default, Miss -> noop
        on Default, Update -> upsert
    "#,
    )
    .expect("valid")
}

fn dram_with_array(elems: u64, base: u64) -> DramModel {
    let mut dram = DramModel::new(DramConfig::test_tiny());
    for k in 0..elems {
        dram.memory_mut().write_u64(base + k * 32, 1000 + k);
    }
    dram
}

fn drain<D: MemoryPort>(
    xc: &mut XCache<D>,
    now: &mut Cycle,
    want: usize,
) -> Vec<xcache_core::MetaResp> {
    let mut got = Vec::new();
    while got.len() < want {
        xc.tick(*now);
        while let Some(r) = xc.take_response(*now) {
            got.push(r);
        }
        *now = now.next();
        assert!(now.raw() < 1_000_000, "deadlock");
    }
    got
}

#[test]
fn store_take_same_key_order_preserved() {
    // Two stores then a take on the same key, all issued the same cycle:
    // the take must observe both merges.
    let cfg = XCacheConfig::test_tiny();
    let mut xc = XCache::new(cfg, merge_walker(), DramModel::new(DramConfig::test_tiny())).unwrap();
    let mut now = Cycle(0);
    let key = MetaKey::new(7);
    xc.try_access(
        now,
        MetaAccess::Store {
            id: 1,
            key,
            payload: [5, 0],
        },
    )
    .unwrap();
    xc.try_access(
        now,
        MetaAccess::Store {
            id: 2,
            key,
            payload: [6, 0],
        },
    )
    .unwrap();
    xc.try_access(now, MetaAccess::Take { id: 3, key }).unwrap();
    let rs = drain(&mut xc, &mut now, 3);
    let take = rs.iter().find(|r| r.id == 3).expect("take answered");
    assert!(take.found);
    assert_eq!(take.data[0], 11, "take must see both stores merged");
}

#[test]
fn loads_to_distinct_keys_bypass_a_blocked_store() {
    // A store occupies the only walker slot; younger loads to *cached*
    // keys must still be served (dedicated hit port).
    let cfg = XCacheConfig {
        active: 1,
        ..XCacheConfig::test_tiny()
    }
    .with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(8, 0x1000)).unwrap();
    let mut now = Cycle(0);
    // Warm key 1.
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 0,
            key: MetaKey::new(1),
        },
    )
    .unwrap();
    let _ = drain(&mut xc, &mut now, 1);
    // Start a long walk on key 2 (occupies the single walker)...
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 1,
            key: MetaKey::new(2),
        },
    )
    .unwrap();
    // ...and a miss on key 3 that cannot launch, then a hit on key 1.
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 2,
            key: MetaKey::new(3),
        },
    )
    .unwrap();
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 3,
            key: MetaKey::new(1),
        },
    )
    .unwrap();
    let rs = drain(&mut xc, &mut now, 3);
    // The hit (id 3) must complete before the blocked miss (id 2).
    let pos = |id: u64| rs.iter().position(|r| r.id == id).expect("answered");
    assert!(pos(3) < pos(2), "hit must bypass the blocked miss");
}

#[test]
fn trace_records_walker_lifecycle() {
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(4, 0x1000)).unwrap();
    xc.enable_trace(64);
    let mut now = Cycle(0);
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 1,
            key: MetaKey::new(2),
        },
    )
    .unwrap();
    let _ = drain(&mut xc, &mut now, 1);
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 2,
            key: MetaKey::new(2),
        },
    )
    .unwrap();
    let _ = drain(&mut xc, &mut now, 1);
    let t = xc.trace();
    assert!(t.of_kind(TraceKind::Miss).count() >= 1);
    assert!(t.of_kind(TraceKind::DramIssue).count() >= 1);
    assert!(t.of_kind(TraceKind::Yield).count() >= 1);
    assert!(t.of_kind(TraceKind::Retire).count() >= 1);
    assert!(t.of_kind(TraceKind::Hit).count() >= 1);
}

#[test]
fn thread_discipline_multi_stage_walker_completes() {
    // Blocking threads with fewer lanes than walkers: the hash+fill
    // two-yield walker must still drain (lanes recycle at retire).
    let program = assemble(
        r#"
        walker hashed
        states Default, Wait
        events HashDone
        regs 2
        params base
        routine start {
            allocR
            allocM
            hash HashDone, key
            yield Default
        }
        routine agen {
            peek r0, 0
            and r0, r0, 3
            mul r0, r0, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        on Default, Miss -> start
        on Default, HashDone -> agen
        on Wait, Fill -> fill
    "#,
    )
    .unwrap();
    let cfg = XCacheConfig {
        discipline: WalkerDiscipline::BlockingThread,
        active: 4,
        exe: 2,
        ..XCacheConfig::test_tiny()
    }
    .with_params(vec![0x2000]);
    let mut dram = DramModel::new(DramConfig::test_tiny());
    for k in 0..4u64 {
        dram.memory_mut().write_u64(0x2000 + k * 32, k);
    }
    let mut xc = XCache::new(cfg, program, dram).unwrap();
    let mut now = Cycle(0);
    for id in 0..6u64 {
        xc.try_access(
            now,
            MetaAccess::Load {
                id,
                key: MetaKey::new(id * 3 + 1),
            },
        )
        .unwrap();
    }
    let rs = drain(&mut xc, &mut now, 6);
    assert_eq!(rs.len(), 6);
    assert!(rs.iter().all(|r| r.found));
}

#[test]
fn hazard_replay_resolves_single_way_conflicts() {
    // 1-way sets force allocation races; the abort-and-replay path must
    // resolve them without losing any response.
    let cfg = XCacheConfig {
        sets: 4,
        ways: 1,
        active: 4,
        exe: 2,
        data_sectors: 16,
        ..XCacheConfig::test_tiny()
    }
    .with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), dram_with_array(32, 0x1000)).unwrap();
    let mut now = Cycle(0);
    for id in 0..24u64 {
        loop {
            let a = MetaAccess::Load {
                id,
                key: MetaKey::new(id % 12),
            };
            if xc.try_access(now, a).is_ok() {
                break;
            }
            xc.tick(now);
            let _ = xc.take_response(now);
            now = now.next();
        }
    }
    // Drain what's left.
    let mut got = 0;
    while got < 24 {
        xc.tick(now);
        while let Some(r) = xc.take_response(now) {
            assert!(r.found);
            assert_eq!(r.data[0], 1000 + r.key.raw());
            got += 1;
        }
        now = now.next();
        assert!(now.raw() < 5_000_000, "hazard livelock");
    }
}

#[test]
fn insertm_does_not_duplicate_existing_entries() {
    // A walker that side-inserts a key already present must skip it; the
    // controller-level invariant is at most one valid entry per key.
    let program = assemble(
        r#"
        walker sideins
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            insertm 5, 4
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .unwrap();
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, program, dram_with_array(8, 0x1000)).unwrap();
    let mut now = Cycle(0);
    // Every walk side-inserts key 5. Run several walks, then load key 5:
    // it must be found exactly once with consistent data.
    for id in 0..4u64 {
        xc.try_access(
            now,
            MetaAccess::Load {
                id,
                key: MetaKey::new(id),
            },
        )
        .unwrap();
        let _ = drain(&mut xc, &mut now, 1);
    }
    assert!(xc.stats().get("xcache.insertm") >= 1);
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 99,
            key: MetaKey::new(5),
        },
    )
    .unwrap();
    let r = drain(&mut xc, &mut now, 1);
    assert!(r[0].found);
    // Side-inserted data is the *fill payload* of the inserting walker
    // (key 0's element, since insertm copies the current fill) — the test
    // checks structural consistency, not semantic equality.
    assert_eq!(xc.stats().get("xcache.hit"), 1);
}
