//! Tests of the §6 hierarchy compositions: MX (MetaL1 over XCache),
//! MXA (XCache over AddressCache), and MXS (XCache + stream on shared DRAM).

use xcache_core::hierarchy::{build_mx, MetaL1Config, MetaPort};
use xcache_core::{MetaAccess, MetaKey, StreamConfig, StreamReader, XCache, XCacheConfig};
use xcache_isa::asm::assemble;
use xcache_isa::WalkerProgram;
use xcache_mem::{AddressCache, CacheConfig, DramConfig, DramModel, SharedPort};
use xcache_sim::Cycle;

fn array_walker() -> WalkerProgram {
    assemble(
        r#"
        walker array
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid walker")
}

fn dram_with_array(elems: u64, base: u64) -> DramModel {
    let mut dram = DramModel::new(DramConfig::test_tiny());
    for k in 0..elems {
        dram.memory_mut().write_u64(base + k * 32, 1000 + k);
    }
    dram
}

fn drain_port<P: MetaPort>(p: &mut P, now: &mut Cycle, want: usize) -> Vec<xcache_core::MetaResp> {
    let mut got = Vec::new();
    while got.len() < want {
        p.tick(*now);
        while let Some(r) = p.take_response(*now) {
            got.push(r);
        }
        *now = now.next();
        assert!(now.raw() < 1_000_000, "hierarchy deadlock");
    }
    got
}

#[test]
fn mx_l1_serves_repeated_loads_locally() {
    let mut mx = build_mx(
        MetaL1Config::default(),
        XCacheConfig::test_tiny().with_params(vec![0x1000]),
        array_walker(),
        dram_with_array(8, 0x1000),
    )
    .unwrap();
    let mut now = Cycle(0);

    // First load: L1 miss, L2 miss, walker fetch.
    mx.try_access(
        now,
        MetaAccess::Load {
            id: 1,
            key: MetaKey::new(3),
        },
    )
    .unwrap();
    let r = drain_port(&mut mx, &mut now, 1);
    assert_eq!(r[0].data[0], 1003);
    let t_cold = now.raw();

    // Second load of the same key: L1 hit, L2 untouched.
    let start = now;
    mx.try_access(
        now,
        MetaAccess::Load {
            id: 2,
            key: MetaKey::new(3),
        },
    )
    .unwrap();
    let r = drain_port(&mut mx, &mut now, 1);
    assert_eq!(r[0].data[0], 1003);
    let t_l1 = now.since(start);
    assert!(t_l1 < t_cold, "L1 hit {t_l1} !< cold {t_cold}");
    assert_eq!(mx.stats().get("metal1.hit"), 1);
    assert_eq!(mx.stats().get("metal1.miss"), 1);
    // Only one access reached the L2 X-Cache.
    assert_eq!(mx.downstream().stats().get("xcache.miss"), 1);
    assert_eq!(mx.downstream().stats().get("xcache.hit"), 0);
}

#[test]
fn mx_coalesces_concurrent_loads() {
    let mut mx = build_mx(
        MetaL1Config::default(),
        XCacheConfig::test_tiny().with_params(vec![0x1000]),
        array_walker(),
        dram_with_array(8, 0x1000),
    )
    .unwrap();
    let mut now = Cycle(0);
    for id in 0..3 {
        mx.try_access(
            now,
            MetaAccess::Load {
                id,
                key: MetaKey::new(5),
            },
        )
        .unwrap();
    }
    let rs = drain_port(&mut mx, &mut now, 3);
    for r in &rs {
        assert_eq!(r.data[0], 1005);
    }
    assert_eq!(mx.stats().get("metal1.coalesced"), 2);
    assert_eq!(mx.downstream().stats().get("xcache.walker_launch"), 1);
}

#[test]
fn mxa_walker_misses_filter_through_address_cache() {
    // Two keys in the same DRAM row: the second walker fetch hits in the
    // address cache below the X-Cache.
    let dram = dram_with_array(8, 0x1000);
    let l2 = AddressCache::new(
        CacheConfig {
            sets: 16,
            ways: 2,
            block_bytes: 64,
            hit_latency: 2,
            mshrs: 4,
            policy: xcache_mem::ReplacementPolicy::Lru,
            ports: 1,
            prefetch_next: false,
        },
        dram,
    );
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), l2).unwrap();
    let mut now = Cycle(0);

    // Key 0 (bytes 0x1000..0x1020) and key 1 (0x1020..0x1040) share the
    // 64-byte block 0x1000.
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 1,
            key: MetaKey::new(0),
        },
    )
    .unwrap();
    let _ = drain_port(&mut xc, &mut now, 1);
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 2,
            key: MetaKey::new(1),
        },
    )
    .unwrap();
    let r = drain_port(&mut xc, &mut now, 1);
    assert_eq!(r[0].data[0], 1001);
    let l2_stats = xc.downstream().stats();
    assert_eq!(l2_stats.get("cache.hits"), 1, "second walk hits in L2");
    // DRAM saw only the first block fill.
    assert_eq!(xc.downstream().downstream().stats().get("dram.reads"), 1);
}

#[test]
fn mxs_stream_and_xcache_share_dram() {
    // Matrix-A-style stream + X-Cache walks on the same DRAM.
    let mut dram = dram_with_array(8, 0x1000);
    for i in 0..64u64 {
        dram.memory_mut().write_u64(0x9000 + i * 8, i);
    }
    let shared = SharedPort::new(dram);
    let stream_port = shared.handle();
    let xc_port = shared.handle();

    let mut stream = StreamReader::new(
        StreamConfig {
            base: 0x9000,
            len: 64 * 8,
            chunk_bytes: 32,
            lookahead: 2,
        },
        stream_port,
    );
    let cfg = XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, array_walker(), xc_port).unwrap();

    let mut now = Cycle(0);
    let mut streamed = Vec::new();
    let mut resp = None;
    xc.try_access(
        now,
        MetaAccess::Load {
            id: 1,
            key: MetaKey::new(2),
        },
    )
    .unwrap();
    while streamed.len() < 64 || resp.is_none() {
        stream.tick(now);
        xc.tick(now);
        while let Some(w) = stream.pop_word() {
            streamed.push(w);
        }
        if let Some(r) = xc.take_response(now) {
            resp = Some(r);
        }
        now = now.next();
        assert!(now.raw() < 1_000_000, "MXS deadlock");
    }
    assert_eq!(streamed, (0..64).collect::<Vec<u64>>());
    assert_eq!(resp.unwrap().data[0], 1002);
}

#[test]
fn mx_store_invalidates_stale_l1_copy() {
    // A store forwarded through the L1 must invalidate its local copy so
    // later loads observe the owning level's merge result.
    let program = assemble(
        r#"
        walker kv
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        routine upsert {
            allocR
            bhit @merge
            allocM
            allocD r0, 1
            writed r0, 0, msg0
            updatem r0, r0
            retire
        merge:
            readd r1, sector, 0
            add r1, r1, msg0
            writed sector, 0, r1
            retire
        }
        on Default, Miss -> start
        on Default, Update -> upsert
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid walker");
    let mut dram = DramModel::new(DramConfig::test_tiny());
    dram.memory_mut().write_u64(0x1000 + 3 * 32, 50);
    let cfg = xcache_core::XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let l2 = XCache::new(cfg, program, dram).unwrap();
    let mut mx = xcache_core::hierarchy::MetaL1::new(MetaL1Config::default(), l2);

    let mut now = Cycle(0);
    let key = MetaKey::new(3);
    // Load: fills both levels with value 50.
    mx.try_access(now, MetaAccess::Load { id: 1, key }).unwrap();
    let r = drain_port(&mut mx, &mut now, 1);
    assert_eq!(r[0].data[0], 50);
    // Store +7: forwarded to L2 (merge), L1 copy invalidated.
    mx.try_access(
        now,
        MetaAccess::Store {
            id: 2,
            key,
            payload: [7, 0],
        },
    )
    .unwrap();
    let _ = drain_port(&mut mx, &mut now, 1);
    assert!(mx.stats().get("metal1.inval") >= 1);
    // Re-load: must observe 57, refetched from the owning level.
    mx.try_access(now, MetaAccess::Load { id: 3, key }).unwrap();
    let r = drain_port(&mut mx, &mut now, 1);
    assert_eq!(r[0].data[0], 57, "stale L1 copy must not be served");
}

#[test]
fn store_merge_after_load_created_entry() {
    // Regression: an entry created by a *load* walker rests in Default
    // after retirement, so a later store-hit dispatches (Default, Update)
    // and merges — not a protocol error on the stale mid-walk state.
    let program = assemble(
        r#"
        walker kv
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        routine upsert {
            allocR
            bhit @merge
            allocM
            allocD r0, 1
            writed r0, 0, msg0
            updatem r0, r0
            retire
        merge:
            readd r1, sector, 0
            add r1, r1, msg0
            writed sector, 0, r1
            retire
        }
        on Default, Miss -> start
        on Default, Update -> upsert
        on Wait, Fill -> fill
    "#,
    )
    .unwrap();
    let mut dram = DramModel::new(DramConfig::test_tiny());
    dram.memory_mut().write_u64(0x1000 + 3 * 32, 50);
    let cfg = xcache_core::XCacheConfig::test_tiny().with_params(vec![0x1000]);
    let mut xc = XCache::new(cfg, program, dram).unwrap();
    let mut now = Cycle(0);
    let key = MetaKey::new(3);
    xc.try_access(now, MetaAccess::Load { id: 1, key }).unwrap();
    let r = drain_port(&mut xc, &mut now, 1);
    assert_eq!(r[0].data[0], 50);
    xc.try_access(
        now,
        MetaAccess::Store {
            id: 2,
            key,
            payload: [7, 0],
        },
    )
    .unwrap();
    let _ = drain_port(&mut xc, &mut now, 1);
    xc.try_access(now, MetaAccess::Load { id: 3, key }).unwrap();
    let r = drain_port(&mut xc, &mut now, 1);
    assert_eq!(r[0].data[0], 57, "L2-alone merge");
}
