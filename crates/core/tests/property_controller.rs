//! End-to-end property test: under arbitrary interleavings of loads over
//! an array-backed structure, the controller always returns the right
//! data, never loses a response, and conserves its resources.

use proptest::prelude::*;

use xcache_core::{MetaAccess, MetaKey, WalkerDiscipline, XCache, XCacheConfig};
use xcache_isa::asm::assemble;
use xcache_mem::{DramConfig, DramModel};
use xcache_sim::Cycle;

fn array_walker() -> xcache_isa::WalkerProgram {
    assemble(
        r#"
        walker array
        states Default, Wait
        regs 2
        params base
        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_load_answers_correctly(
        keys in prop::collection::vec(0u64..24, 1..120),
        sets in prop::sample::select(vec![2usize, 4, 8]),
        ways in 1usize..3,
        active in 1usize..5,
        exe in 1usize..4,
        thread_mode in any::<bool>()
    ) {
        let mut dram = DramModel::new(DramConfig::test_tiny());
        for k in 0..24u64 {
            dram.memory_mut().write_u64(0x1000 + k * 32, 7000 + k);
        }
        let cfg = XCacheConfig {
            sets,
            ways,
            active,
            exe,
            data_sectors: (sets * ways * 2).max(8),
            discipline: if thread_mode {
                WalkerDiscipline::BlockingThread
            } else {
                WalkerDiscipline::Coroutine
            },
            ..XCacheConfig::test_tiny()
        }
        .with_params(vec![0x1000]);
        let mut xc = XCache::new(cfg, array_walker(), dram).expect("builds");

        let mut now = Cycle(0);
        let mut next = 0usize;
        let mut answered = vec![false; keys.len()];
        let mut done = 0usize;
        while done < keys.len() {
            while next < keys.len() {
                let a = MetaAccess::Load {
                    id: next as u64,
                    key: MetaKey::new(keys[next]),
                };
                if xc.try_access(now, a).is_err() {
                    break;
                }
                next += 1;
            }
            xc.tick(now);
            while let Some(r) = xc.take_response(now) {
                let idx = r.id as usize;
                prop_assert!(!answered[idx], "duplicate response for id {}", idx);
                answered[idx] = true;
                prop_assert!(r.found);
                prop_assert_eq!(r.key.raw(), keys[idx]);
                prop_assert_eq!(r.data[0], 7000 + keys[idx]);
                done += 1;
            }
            now = now.next();
            prop_assert!(now.raw() < 5_000_000, "controller deadlock");
        }
        // Resource conservation after drain.
        prop_assert_eq!(
            xc.stats().get("xcache.walker_launch"),
            xc.stats().get("xcache.walker_retire")
                + xc.stats().get("xcache.walker_fault")
                + xc.stats().get("xcache.walker_replay")
        );
        prop_assert!(!xc.busy(), "controller must be quiescent after drain");
    }
}
