//! Executor-stage behaviour through the public API: ALU chains, data-RAM
//! writes, and discipline-independence of computed results.

use xcache_core::{MetaAccess, MetaKey, WalkerDiscipline, XCache, XCacheConfig};
use xcache_isa::asm::assemble;
use xcache_mem::{DramConfig, DramModel};
use xcache_sim::Cycle;

/// A walker exercising ALU ops, branches, and data-RAM actions with a
/// result the test can check end to end: responds with
/// `((key * 3) + p0) ^ 5` written through the data RAM.
fn alu_walker() -> xcache_isa::WalkerProgram {
    assemble(
        r#"
        walker alu
        states Default
        regs 2
        params bias
        routine start {
            allocR
            allocM
            mul r0, key, 3
            add r0, r0, bias
            xor r0, r0, 5
            allocD r1, 1
            writed r1, 0, r0
            updatem r1, r1
            respond
            retire
        }
        on Default, Miss -> start
    "#,
    )
    .expect("valid")
}

fn run_one(discipline: WalkerDiscipline, key: u64, bias: u64) -> u64 {
    let dram = DramModel::new(DramConfig::test_tiny());
    let cfg = XCacheConfig {
        discipline,
        ..XCacheConfig::test_tiny()
    }
    .with_params(vec![bias]);
    let mut xc = XCache::new(cfg, alu_walker(), dram).expect("builds");
    xc.try_access(
        Cycle(0),
        MetaAccess::Load {
            id: 1,
            key: MetaKey::new(key),
        },
    )
    .expect("queue empty");
    let mut now = Cycle(0);
    loop {
        xc.tick(now);
        if let Some(r) = xc.take_response(now) {
            assert!(r.found);
            return r.data[0];
        }
        now = now.next();
        assert!(now.raw() < 100_000, "executor deadlocked");
    }
}

#[test]
fn alu_chain_computes_through_data_ram() {
    for key in [0u64, 1, 7, 13] {
        let want = ((key * 3) + 100) ^ 5;
        assert_eq!(run_one(WalkerDiscipline::Coroutine, key, 100), want);
    }
}

#[test]
fn both_disciplines_compute_identical_results() {
    for key in [2u64, 9] {
        assert_eq!(
            run_one(WalkerDiscipline::Coroutine, key, 40),
            run_one(WalkerDiscipline::BlockingThread, key, 40),
        );
    }
}
