//! The controller's load-time verifier gate and the executor's structured
//! runtime-error path.

use xcache_core::{BuildError, MetaAccess, MetaKey, SimError, XCache, XCacheConfig};
use xcache_isa::asm::assemble;
use xcache_mem::{DramConfig, DramModel};
use xcache_sim::Cycle;

fn build(src: &str) -> Result<XCache<DramModel>, BuildError> {
    XCache::new(
        XCacheConfig::test_tiny(),
        assemble(src).expect("assembles"),
        DramModel::new(DramConfig::test_tiny()),
    )
}

#[test]
fn verifier_error_rejects_program_at_load_time() {
    // Issues a DRAM read, then retires without ever yielding: the fill can
    // never be consumed and an AGEN action follows the issue. Structurally
    // valid — only the verifier rejects it.
    let err = build(
        r"
        walker bad
        states Default
        regs 1
        routine start {
            allocR
            mov r0, key
            dram_read r0, 8
            add r0, r0, 1
            retire
        }
        on Default, Miss -> start
        ",
    )
    .expect_err("the verifier must reject this");
    let BuildError::Verify(v) = &err else {
        panic!("expected BuildError::Verify, got {err:?}");
    };
    assert!(!v.diagnostics.is_empty());
    let rendered = err.to_string();
    assert!(rendered.contains("missed-yield"), "{rendered}");
    assert!(rendered.contains("routine `start`"), "{rendered}");
}

#[test]
fn verifier_warnings_do_not_block_loading() {
    // An unreachable routine is only a warning; the instance still builds.
    build(
        r"
        walker warned
        states Default
        regs 1
        routine start {
            allocR
            fault
        }
        routine orphan {
            retire
        }
        on Default, Miss -> start
        ",
    )
    .expect("warnings must not reject the program");
}

#[test]
fn runtime_violation_faults_with_sim_error_not_panic() {
    // `respond` with no meta entry is only observable dynamically (the
    // verifier has no static meta-entry tracking): the walker must fault
    // through the SimError path and answer not-found, not panic.
    let mut xc = build(
        r"
        walker resp
        states Default
        regs 1
        routine start {
            allocR
            respond
            retire
        }
        on Default, Miss -> start
        ",
    )
    .expect("verifier-clean");
    xc.try_access(
        Cycle(0),
        MetaAccess::Load {
            id: 1,
            key: MetaKey::new(9),
        },
    )
    .expect("queue empty");
    let mut now = Cycle(0);
    let resp = loop {
        xc.tick(now);
        if let Some(r) = xc.take_response(now) {
            break r;
        }
        now = now.next();
        assert!(now.raw() < 10_000, "runtime-error path deadlocked");
    };
    assert!(!resp.found, "violating walk must answer not-found");
    assert_eq!(xc.stats().get("xcache.walker_error"), 1);
    assert_eq!(xc.stats().get("xcache.walker_fault"), 1);
}

#[test]
fn sim_error_renders_slot_cycle_and_routine() {
    let e = SimError {
        slot: 3,
        cycle: Cycle(120),
        routine: Some("check".into()),
        context: "Respond without meta entry".into(),
    };
    assert_eq!(
        e.to_string(),
        "walker slot 3 @ cycle 120 in routine `check`: Respond without meta entry"
    );
}
