//! Heap-allocation budget for the steady-state hot path.
//!
//! After warm-up, serving meta-tag hits and ticking an idle controller
//! must not touch the allocator at all: response-data buffers come from
//! the recycle pool, stat counters are interned, and the scheduler's
//! queues and wheel slots keep their capacity. This test pins that down
//! with a counting global allocator — a regression here silently taxes
//! every simulated cycle, which is exactly what the event-scheduled core
//! exists to avoid.
//!
//! The counting allocator is process-global, so this file holds exactly
//! one test: a second test thread allocating during the measured window
//! would produce spurious counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use xcache_core::{MetaAccess, MetaKey, XCache, XCacheConfig};
use xcache_isa::asm::assemble;
use xcache_isa::WalkerProgram;
use xcache_mem::{DramConfig, DramModel};
use xcache_sim::Cycle;

struct CountingAlloc;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Walker fetching a 32-byte element at `base + key * 32` — the minimal
/// miss pipeline, enough to make every key resident during warm-up.
fn array_walker() -> WalkerProgram {
    assemble(
        r#"
        walker array
        states Default, Wait
        regs 2
        params base

        routine start {
            allocR
            allocM
            mul r0, key, 32
            add r0, r0, base
            dram_read r0, 32
            yield Wait
        }
        routine fill {
            allocD r1, 1
            filld r1, 4
            updatem r1, r1
            respond
            retire
        }

        on Default, Miss -> start
        on Wait, Fill -> fill
    "#,
    )
    .expect("valid walker")
}

const BASE: u64 = 0x1000;
const KEYS: u64 = 8;

/// Issues one `Load` per key and runs the cache to completion, recycling
/// every response buffer back into the pool. Returns the end cycle.
fn sweep_loads(xc: &mut XCache<DramModel>, start: Cycle, first_id: u64) -> Cycle {
    let mut now = start;
    let mut next = 0u64;
    let mut done = 0u64;
    while done < KEYS {
        while next < KEYS && xc.can_accept() {
            xc.try_access(
                now,
                MetaAccess::Load {
                    id: first_id + next,
                    key: MetaKey::new(next),
                },
            )
            .expect("can_accept checked");
            next += 1;
        }
        xc.tick(now);
        while let Some(resp) = xc.take_response(now) {
            assert!(resp.found || done < KEYS, "lost a response");
            xc.recycle(resp);
            done += 1;
        }
        now = if done >= KEYS {
            now.next()
        } else {
            let mut wake = xc.next_event(now);
            if next < KEYS && xc.can_accept() {
                wake = Some(now.next());
            }
            xcache_sim::fast_forward(now, wake)
        };
        assert!(now.raw() < 1_000_000, "zero-alloc sweep deadlocked");
    }
    now
}

#[test]
fn steady_state_hit_serving_does_not_allocate() {
    let mut dram = DramModel::new(DramConfig::test_tiny());
    for k in 0..KEYS * 4 {
        dram.memory_mut().write_u64(BASE + k * 8, k * 31 + 7);
    }
    let cfg = XCacheConfig::test_tiny().with_params(vec![BASE]);
    let mut xc = XCache::new(cfg, array_walker(), dram).expect("verifier-clean walker");

    // Warm-up: make every key resident (walker launches, DRAM fills, data
    // RAM allocation) and then serve one full round of hits so every
    // lazily-grown structure — recycle pool, queues, wheel slots, interned
    // counters, stat histograms — reaches its steady-state capacity.
    let mut now = sweep_loads(&mut xc, Cycle(0), 0);
    now = sweep_loads(&mut xc, now, KEYS);
    assert!(
        xc.stats().get("xcache.hit") >= KEYS,
        "warm-up did not reach the hit path"
    );

    // Measured window: another full round of hits plus a stretch of idle
    // ticks. The allocator must not be called at all.
    let before = ALLOC_CALLS.load(Ordering::Relaxed);
    now = sweep_loads(&mut xc, now, KEYS * 2);
    for _ in 0..64 {
        xc.tick(now);
        assert!(xc.take_response(now).is_none());
        now = xcache_sim::fast_forward(now, xc.next_event(now));
    }
    let delta = ALLOC_CALLS.load(Ordering::Relaxed) - before;
    assert_eq!(
        delta, 0,
        "steady-state hit serving allocated {delta} times; the hot path \
         must run entirely out of pooled/preallocated storage"
    );
}
