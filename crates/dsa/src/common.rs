//! Shared DSA-model infrastructure.
//!
//! Every evaluated configuration produces a [`RunReport`] (cycles +
//! merged statistics); the address-cache and hardwired-baseline variants
//! are expressed as [`ProbeTask`] state machines driven by the
//! [`ProbeEngine`], which models a DSA datapath with a fixed number of
//! concurrent walk units issuing memory transactions with zero-cost
//! ("ideal walker", §8) orchestration decisions.

use xcache_mem::{MainMemory, MemReq, MemoryPort};
use xcache_sim::{counter, Cycle, Stats, StatsSnapshot};

/// Copies layout segments into a simulated memory image.
pub fn apply_image(mem: &mut MainMemory, segments: &[(u64, Vec<u8>)]) {
    for (addr, bytes) in segments {
        mem.write(*addr, bytes);
    }
}

/// The outcome of one simulated configuration.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Configuration label (e.g. `"xcache"`, `"addr-cache"`, `"baseline"`).
    pub label: String,
    /// Total runtime in cycles.
    pub cycles: u64,
    /// Merged statistics from every component.
    pub stats: StatsSnapshot,
    /// Workload-specific result checksum (validated against the oracle by
    /// the caller).
    pub checksum: u64,
}

impl RunReport {
    /// Total DRAM transactions observed (reads + writes).
    #[must_use]
    pub fn dram_accesses(&self) -> u64 {
        self.stats.get("dram.reads") + self.stats.get("dram.writes")
    }

    /// Speedup of `self` relative to `other` (other.cycles / self.cycles).
    #[must_use]
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.cycles as f64 / self.cycles.max(1) as f64
    }
}

/// What a probe task wants to do next.
#[derive(Debug, Clone)]
pub enum TaskStep {
    /// Busy for `n` cycles (hash units, compute).
    Delay(u64),
    /// Read `len` bytes at `addr`; the data arrives in the next `advance`.
    Read {
        /// Byte address.
        addr: u64,
        /// Length in bytes.
        len: u32,
    },
    /// Finished, contributing `value` to the run checksum.
    Done(u64),
}

/// A single walk/probe expressed as a resumable state machine.
///
/// `advance` receives the data of the last [`TaskStep::Read`] (or `None`
/// on the first call / after a delay) and returns the next step.
pub trait ProbeTask {
    /// Advances the state machine.
    fn advance(&mut self, last_read: Option<&[u8]>) -> TaskStep;
}

enum Slot<T> {
    Ready(T, Cycle),
    Delayed(T, Cycle, Cycle), // (task, resume-at, started-at)
    Waiting(T, u64, Cycle),   // (task, expected request id, started-at)
}

/// Drives up to `parallelism` [`ProbeTask`]s concurrently over a
/// [`MemoryPort`], modelling a multi-walker DSA front-end whose decision
/// logic costs zero cycles.
pub struct ProbeEngine<D, T> {
    port: D,
    queue: std::collections::VecDeque<T>,
    active: Vec<Option<Slot<T>>>,
    arrivals: std::collections::HashMap<u64, Vec<u8>>,
    next_id: u64,
    checksum: u64,
    completed: usize,
    stats: Stats,
}

impl<D: MemoryPort, T: ProbeTask> ProbeEngine<D, T> {
    /// Creates an engine with `parallelism` concurrent walk units.
    ///
    /// # Panics
    ///
    /// Panics if `parallelism` is zero.
    #[must_use]
    pub fn new(port: D, tasks: Vec<T>, parallelism: usize) -> Self {
        assert!(parallelism > 0, "parallelism must be nonzero");
        ProbeEngine {
            port,
            queue: tasks.into(),
            active: (0..parallelism).map(|_| None).collect(),
            arrivals: std::collections::HashMap::new(),
            next_id: 1,
            checksum: 0,
            completed: 0,
            stats: Stats::new(),
        }
    }

    /// Number of completed tasks.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.completed
    }

    /// Appends a task (for callers that discover work incrementally, e.g.
    /// gated on a stream engine).
    pub fn push_task(&mut self, task: T) {
        self.queue.push_back(task);
    }

    /// Whether all tasks have finished.
    #[must_use]
    pub fn done(&self) -> bool {
        self.queue.is_empty() && self.active.iter().all(Option::is_none) && !self.port.busy()
    }

    /// Runs to completion, returning `(cycles, checksum)`.
    ///
    /// Idle stretches (every unit dormant on DRAM) are fast-forwarded to
    /// the next scheduled event; the cycle count and statistics are
    /// identical to single-stepping (set `XCACHE_NO_SKIP=1` to force it).
    ///
    /// # Panics
    ///
    /// Panics if the run exceeds `max_cycles` (deadlock guard).
    pub fn run(&mut self, max_cycles: u64) -> (u64, u64) {
        let mut now = Cycle(0);
        while !self.done() {
            self.tick(now);
            now = if self.done() {
                now.next() // same end-cycle as the single-stepped loop
            } else {
                xcache_sim::fast_forward(now, self.next_event(now))
            };
            assert!(
                now.raw() < max_cycles,
                "probe engine exceeded {max_cycles} cycles ({} done)",
                self.completed
            );
        }
        (now.raw(), self.checksum)
    }

    /// Earliest cycle strictly after `now` at which `tick` could do
    /// observable work (same contract as
    /// [`Component::next_event`](xcache_sim::Component::next_event);
    /// queried after `tick(now)`).
    #[must_use]
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // Undelivered arrivals and refillable idle units act every cycle.
        if !self.arrivals.is_empty()
            || (!self.queue.is_empty() && self.active.iter().any(Option::is_none))
        {
            return Some(now.next());
        }
        let mut next = Cycle::NEVER;
        for slot in self.active.iter().flatten() {
            match slot {
                Slot::Ready(..) => return Some(now.next()),
                Slot::Delayed(_, until, _) => next = next.min((*until).max(now.next())),
                Slot::Waiting(..) => {}
            }
        }
        if let Some(t) = self.port.next_event(now) {
            next = next.min(t.max(now.next()));
        }
        if next == Cycle::NEVER {
            // Not done but nothing schedulable: single-step so the run
            // guard still catches deadlocks.
            return (!self.done()).then(|| now.next());
        }
        Some(next)
    }

    /// Advances one cycle.
    pub fn tick(&mut self, now: Cycle) {
        self.port.tick(now);
        while let Some(resp) = self.port.take_response(now) {
            self.arrivals.insert(resp.id.0, resp.data.to_vec());
        }
        for i in 0..self.active.len() {
            // Refill an idle unit.
            if self.active[i].is_none() {
                if let Some(t) = self.queue.pop_front() {
                    self.active[i] = Some(Slot::Ready(t, now));
                } else {
                    continue;
                }
            }
            // Progress the unit; each unit advances at most one step/cycle.
            let slot = self.active[i].take().expect("filled above");
            self.active[i] = match slot {
                Slot::Delayed(t, until, st) if until > now => Some(Slot::Delayed(t, until, st)),
                Slot::Delayed(t, _, st) => self.step(now, t, None, st),
                Slot::Waiting(t, id, st) => match self.arrivals.remove(&id) {
                    Some(data) => self.step(now, t, Some(&data), st),
                    None => Some(Slot::Waiting(t, id, st)),
                },
                Slot::Ready(t, st) => self.step(now, t, None, st),
            };
        }
    }

    fn step(
        &mut self,
        now: Cycle,
        mut task: T,
        data: Option<&[u8]>,
        started: Cycle,
    ) -> Option<Slot<T>> {
        match task.advance(data) {
            TaskStep::Delay(d) => {
                self.stats.add_id(counter!("engine.delay_cycles"), d);
                Some(Slot::Delayed(task, now + d, started))
            }
            TaskStep::Read { addr, len } => {
                let id = self.next_id;
                match self.port.try_request(now, MemReq::read(id, addr, len)) {
                    Ok(()) => {
                        self.next_id += 1;
                        self.stats.incr_id(counter!("engine.reads"));
                        Some(Slot::Waiting(task, id, started))
                    }
                    Err(_) => {
                        // Port busy: re-invoke the same step next cycle.
                        // Tasks are written peek-then-commit (state only
                        // changes when data arrives), so re-entry with the
                        // same inputs is safe.
                        self.stats.incr_id(counter!("engine.port_stall"));
                        Some(Slot::Delayed(task, now.next(), started))
                    }
                }
            }
            TaskStep::Done(v) => {
                self.checksum = self.checksum.wrapping_add(v);
                self.completed += 1;
                self.stats.incr_id(counter!("engine.done"));
                // Per-task latency: the addr-cache analogue of the
                // controller's load-to-use histogram (Figure 4).
                self.stats
                    .sample_id(counter!("engine.task_latency"), now.since(started).max(1));
                None
            }
        }
    }

    /// Engine statistics.
    #[must_use]
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// The underlying port (to harvest downstream statistics).
    #[must_use]
    pub fn port(&self) -> &D {
        &self.port
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcache_mem::{DramConfig, DramModel};

    /// Walks a unary linked list of `hops` nodes starting at `start`.
    struct Chase {
        next: u64,
        hops_left: u32,
    }

    impl ProbeTask for Chase {
        fn advance(&mut self, last: Option<&[u8]>) -> TaskStep {
            if let Some(d) = last {
                self.next = u64::from_le_bytes(d[..8].try_into().expect("8 bytes"));
                self.hops_left -= 1;
            }
            if self.hops_left == 0 {
                return TaskStep::Done(self.next);
            }
            TaskStep::Read {
                addr: self.next,
                len: 8,
            }
        }
    }

    #[test]
    fn env_knobs_surface_structured_errors() {
        // The engine's only environment surface is the skip knob its
        // `run` loop consults through `xcache_sim::fast_forward`
        // (`XCACHE_NO_SKIP`) — a flag-shaped value routed through the
        // sim crate's env funnel. Pin the funnel's contract from this
        // side: a typo'd flag yields a structured error naming the
        // variable (unique name so parallel tests can't race on it),
        // never a silent coercion to "skip on".
        std::env::set_var("XCACHE_DSA_ENVTEST_FLAG", "fast");
        let err = xcache_sim::env_flag("XCACHE_DSA_ENVTEST_FLAG").unwrap_err();
        assert_eq!(err.var, "XCACHE_DSA_ENVTEST_FLAG");
        assert!(err.reason.contains("expected"), "{err}");
        std::env::set_var("XCACHE_DSA_ENVTEST_FLAG", "1");
        assert_eq!(
            xcache_sim::env_flag("XCACHE_DSA_ENVTEST_FLAG"),
            Ok(Some(true))
        );
    }

    #[test]
    fn chases_pointers_to_completion() {
        let mut dram = DramModel::new(DramConfig::test_tiny());
        // Chain: 0x100 -> 0x200 -> 0x300 -> 0 (value read at each hop).
        dram.memory_mut().write_u64(0x100, 0x200);
        dram.memory_mut().write_u64(0x200, 0x300);
        dram.memory_mut().write_u64(0x300, 0xdead);
        let tasks = vec![Chase {
            next: 0x100,
            hops_left: 3,
        }];
        let mut e = ProbeEngine::new(dram, tasks, 2);
        let (cycles, sum) = e.run(100_000);
        assert_eq!(sum, 0xdead);
        assert!(cycles > 3, "three serial DRAM hops take real time");
        assert_eq!(e.completed(), 1);
        assert_eq!(e.stats().get("engine.reads"), 3);
    }

    #[test]
    fn parallel_tasks_overlap() {
        let mk_dram = || {
            let mut dram = DramModel::new(DramConfig::test_tiny());
            for i in 0..16u64 {
                dram.memory_mut().write_u64(0x1000 + i * 0x100, 0);
            }
            dram
        };
        let mk_tasks = || {
            (0..8u64)
                .map(|i| Chase {
                    next: 0x1000 + i * 0x100,
                    hops_left: 1,
                })
                .collect::<Vec<_>>()
        };
        let (serial, _) = ProbeEngine::new(mk_dram(), mk_tasks(), 1).run(100_000);
        let (parallel, _) = ProbeEngine::new(mk_dram(), mk_tasks(), 8).run(100_000);
        assert!(
            parallel < serial,
            "8-wide engine ({parallel}) should beat 1-wide ({serial})"
        );
    }

    #[test]
    fn delays_cost_cycles() {
        struct Delayer(bool);
        impl ProbeTask for Delayer {
            fn advance(&mut self, _l: Option<&[u8]>) -> TaskStep {
                if self.0 {
                    TaskStep::Done(1)
                } else {
                    self.0 = true;
                    TaskStep::Delay(50)
                }
            }
        }
        let dram = DramModel::new(DramConfig::test_tiny());
        let mut e = ProbeEngine::new(dram, vec![Delayer(false)], 1);
        let (cycles, _) = e.run(10_000);
        assert!(cycles >= 50);
    }

    #[test]
    fn apply_image_writes_segments() {
        let mut mem = MainMemory::new();
        apply_image(&mut mem, &[(0x10, vec![1, 2, 3]), (0x100, vec![9])]);
        assert_eq!(mem.read_vec(0x10, 3), vec![1, 2, 3]);
        assert_eq!(mem.read_vec(0x100, 1), vec![9]);
    }

    #[test]
    fn report_helpers() {
        let mut s = Stats::new();
        s.add("dram.reads", 10);
        s.add("dram.writes", 5);
        let a = RunReport {
            label: "a".into(),
            cycles: 100,
            stats: s.snapshot(),
            checksum: 0,
        };
        let b = RunReport {
            label: "b".into(),
            cycles: 170,
            stats: StatsSnapshot::default(),
            checksum: 0,
        };
        assert_eq!(a.dram_accesses(), 15);
        assert!((a.speedup_over(&b) - 1.7).abs() < 1e-9);
    }
}
