//! DASX — a hardware iterator over software data structures (Kumar et
//! al., ICS'15), §5/§7.2 of the X-Cache paper.
//!
//! We model the hash-table workload the paper evaluates: DASX's collector
//! runs ahead of the compute unit, refilling a set of objects (keys) into
//! an object cache; compute then hits. "DASX is similar to the Widx,
//! except the hashing is coupled with walking, so X-Cache's gains are
//! higher" (§8.1) — in the baseline and address-cache variants every chain
//! step pays a hash-unit delay, whereas the X-Cache walker hashes once and
//! hits skip hashing entirely.
//!
//! The data structure, layouts and walker are shared with [`crate::widx`];
//! only the geometry (Table 3: 16/4/8/1024/4), the hash cost (cheap keys)
//! and the coupled-walk delay differ.

use xcache_core::XCacheConfig;
use xcache_workloads::{QueryClass, TpchPreset};

use crate::common::RunReport;
use crate::widx::{self, WidxWorkload};

/// DASX's hash-unit latency (integer keys; coupled into every walk step).
pub const DASX_HASH_LATENCY: u64 = 12;

/// A materialised DASX workload (a hash-table iteration).
#[derive(Debug, Clone)]
pub struct DasxWorkload(pub WidxWorkload);

impl DasxWorkload {
    /// Materialises a TPC-H preset with DASX's hash cost.
    #[must_use]
    pub fn from_preset(preset: &TpchPreset, seed: u64) -> Self {
        let mut inner = WidxWorkload::from_preset(preset, seed);
        inner.hash_latency = DASX_HASH_LATENCY;
        DasxWorkload(inner)
    }

    /// The default paper workload (same MonetDB dataset as Widx, §7.2).
    #[must_use]
    pub fn paper_default(seed: u64) -> Self {
        Self::from_preset(&QueryClass::Q22.preset(), seed)
    }

    /// Oracle checksum (sum of rids of present probes).
    #[must_use]
    pub fn oracle_checksum(&self) -> u64 {
        self.0.oracle_checksum()
    }
}

/// Runs the X-Cache configuration (Table 3 DASX geometry by default).
///
/// # Panics
///
/// Panics on deadlock or oracle divergence.
#[must_use]
pub fn run_xcache(workload: &DasxWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let g = geometry.unwrap_or_else(XCacheConfig::dasx);
    let mut r = widx::run_xcache(&workload.0, Some(g));
    r.label = "xcache".into();
    r
}

/// Runs the matched address-based cache with an ideal walker. The walk is
/// hash-coupled: every chain step pays the hash latency again.
#[must_use]
pub fn run_address_cache(workload: &DasxWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let g = geometry.unwrap_or_else(XCacheConfig::dasx);
    widx::run_probe_engine_with(
        &workload.0,
        "addr-cache",
        &g,
        g.active,
        DASX_HASH_LATENCY, // coupled hashing on every node step
    )
}

/// Runs the hardwired DASX baseline: the collector's eight walk units with
/// hash-coupled chain steps over the object (address) cache.
#[must_use]
pub fn run_baseline(workload: &DasxWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let g = geometry.unwrap_or_else(XCacheConfig::dasx);
    widx::run_probe_engine_with(&workload.0, "baseline", &g, 8, DASX_HASH_LATENCY)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> (DasxWorkload, XCacheConfig) {
        let mut preset = QueryClass::Q22.preset().scaled_down(10);
        preset.probes = 6_000;
        preset.miss_rate = 0.05;
        let w = DasxWorkload::from_preset(&preset, 3);
        let g = XCacheConfig {
            sets: 128,
            ways: 4,
            data_sectors: 512,
            ..XCacheConfig::dasx()
        };
        (w, g)
    }

    #[test]
    fn all_variants_match_oracle() {
        let (w, g) = small();
        let x = run_xcache(&w, Some(g.clone()));
        let a = run_address_cache(&w, Some(g.clone()));
        let b = run_baseline(&w, Some(g));
        assert_eq!(x.checksum, w.oracle_checksum());
        assert_eq!(a.checksum, w.oracle_checksum());
        assert_eq!(b.checksum, w.oracle_checksum());
    }

    #[test]
    fn coupled_hashing_widens_xcache_gain_vs_widx() {
        // Same workload shape, same hash cost: DASX couples the hash into
        // every chain step for the non-X-Cache designs, so X-Cache's
        // speedup must exceed the uncoupled (Widx-style) speedup.
        let (w, g) = small();
        let x = run_xcache(&w, Some(g.clone()));
        let dasx_speedup = x.speedup_over(&run_address_cache(&w, Some(g.clone())));
        let widx_addr = widx::run_probe_engine_with(&w.0, "addr", &g, g.active, 0);
        let widx_speedup = x.speedup_over(&widx_addr);
        assert!(
            dasx_speedup > widx_speedup,
            "coupled hashing should widen the gap ({dasx_speedup:.2} vs {widx_speedup:.2})"
        );
    }

    #[test]
    fn xcache_beats_baseline() {
        let (w, g) = small();
        let x = run_xcache(&w, Some(g.clone()));
        let b = run_baseline(&w, Some(g));
        assert!(
            x.speedup_over(&b) > 1.2,
            "x-cache should beat hardwired DASX (got {:.2})",
            x.speedup_over(&b)
        );
    }
}
