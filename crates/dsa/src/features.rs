//! Table 2: "X-Cache features benefiting DSAs" as data.

/// How a DSA's accesses couple to its datapath (Table 2's column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Coupling {
    /// The datapath blocks on each meta access (load-to-use).
    Coupled,
    /// A preload engine runs ahead of the datapath.
    Decoupled,
}

/// One row of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsaFeatures {
    /// DSA name as the paper prints it.
    pub dsa: &'static str,
    /// What serves as the meta-tag.
    pub tag: &'static str,
    /// Whether the DSA preloads (decoupled run-ahead refill).
    pub preload: bool,
    /// Access coupling.
    pub coupling: Coupling,
    /// What the cached data is.
    pub data: &'static str,
    /// Underlying data structure.
    pub data_structure: &'static str,
}

/// Table 2 of the paper.
pub const FEATURES: &[DsaFeatures] = &[
    DsaFeatures {
        dsa: "Widx",
        tag: "Key",
        preload: false,
        coupling: Coupling::Coupled,
        data: "Rid",
        data_structure: "Hash Table",
    },
    DsaFeatures {
        dsa: "DASX",
        tag: "Key",
        preload: true,
        coupling: Coupling::Decoupled,
        data: "Rid",
        data_structure: "Hash Table",
    },
    DsaFeatures {
        dsa: "GraphPulse",
        tag: "Node Idx",
        preload: false,
        coupling: Coupling::Decoupled,
        data: "Event",
        data_structure: "Graph",
    },
    DsaFeatures {
        dsa: "SpArch",
        tag: "Col Idx",
        preload: true,
        coupling: Coupling::Decoupled,
        data: "B.Row",
        data_structure: "CSR",
    },
    DsaFeatures {
        dsa: "Gamma",
        tag: "Col Idx",
        preload: true,
        coupling: Coupling::Decoupled,
        data: "B.Row",
        data_structure: "CSR",
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_five_dsas() {
        let names: Vec<_> = FEATURES.iter().map(|f| f.dsa).collect();
        assert_eq!(names, vec!["Widx", "DASX", "GraphPulse", "SpArch", "Gamma"]);
    }

    #[test]
    fn widx_is_the_only_coupled_dsa() {
        for f in FEATURES {
            assert_eq!(f.coupling == Coupling::Coupled, f.dsa == "Widx");
        }
    }

    #[test]
    fn spgemm_family_shares_tags() {
        let sparch = FEATURES.iter().find(|f| f.dsa == "SpArch").unwrap();
        let gamma = FEATURES.iter().find(|f| f.dsa == "Gamma").unwrap();
        assert_eq!(sparch.tag, gamma.tag);
        assert_eq!(sparch.data, gamma.data);
    }
}
