//! # xcache-dsa
//!
//! Cycle-level models of the five DSAs the X-Cache paper evaluates (§5,
//! §7.2), each in (up to) three storage configurations:
//!
//! | Module | DSA | X-Cache tag | Workload |
//! |---|---|---|---|
//! | [`widx`] | Widx (MICRO'13) | hash key | TPC-H hash-join probes |
//! | [`dasx`] | DASX (ICS'15) | hash key | hash-table iteration |
//! | [`graphpulse`] | GraphPulse (MICRO'20) | vertex id | PageRank events |
//! | [`spgemm`] | SpArch (HPCA'20) + Gamma (ASPLOS'21) | B-row id | sparse GEMM |
//!
//! Every `run_xcache` verifies its result against a functional oracle
//! (hash-index lookups, reference PageRank, exact SpGEMM), so the timing
//! numbers always come from runs that computed the right answer.
//!
//! The `run_address_cache` variants implement §8's comparison point: an
//! address-tagged cache of identical capacity with an *ideal* walker
//! (zero-cost orchestration decisions), and `run_baseline` the original
//! hardwired designs.

pub mod common;
pub mod dasx;
pub mod features;
pub mod graphpulse;
pub mod spgemm;
pub mod widx;

pub use common::{ProbeEngine, ProbeTask, RunReport, TaskStep};
pub use features::{Coupling, DsaFeatures, FEATURES};

#[cfg(test)]
mod tests {
    /// The workload builder and the controller's hash unit must agree on
    /// the hash function, or walkers search the wrong buckets.
    #[test]
    fn hash_functions_pinned_together() {
        for x in [0u64, 1, 42, u64::MAX, 0xdead_beef] {
            assert_eq!(
                xcache_core::splitmix64(x),
                xcache_workloads::hashidx::hash64(x)
            );
        }
    }
}
