//! Sparse GEMM DSAs: SpArch (outer product, Zhang et al. HPCA'20) and
//! Gamma (Gustavson, Zhang et al. ASPLOS'21), §5/§7.2.
//!
//! Both compute `C = A × B` with matrix A *streamed* from DRAM (the MXS
//! hierarchy, §6) while the rows of matrix B are fetched dynamically: each
//! streamed A-element `(i, k, a)` needs row `k` of B. The X-Cache meta-tag
//! is the row id of B; the walker reads `B.row_ptr[k]`, sizes the refill,
//! and fetches the whole row — "the data fill fetches an entire row of
//! matrix B, which consists of multiple elements" (§5).
//!
//! The two DSAs share the physical X-Cache and walker — "both SpArch and
//! Gamma can use the same X-Cache microarchitecture, i.e., we only had to
//! reprogram [nothing]; only the access *order* differs" — which is the
//! portability claim the module demonstrates:
//!
//! * [`Algorithm::OuterProduct`] (SpArch): A in CSC, streamed
//!   column-major; every non-zero of column `k` reuses row `k` back to
//!   back (tile-local reuse).
//! * [`Algorithm::Gustavson`] (Gamma): A in CSR, streamed row-major; row
//!   `k` of B is reused whenever column `k` reappears in later A rows
//!   (dynamic input-dependent reuse).

use xcache_sim::FxHashMap;

use xcache_core::{
    horizon_target, owner_of, shard_geometry, MetaAccess, MetaKey, ShardCell, StreamConfig,
    StreamReader, XCache, XCacheConfig, DEFAULT_HORIZON, DEFAULT_LINK_LATENCY,
};
use xcache_isa::asm::assemble;
use xcache_isa::WalkerProgram;
use xcache_mem::{
    AddressCache, BankGroup, BankGroupConfig, DramConfig, DramModel, MainMemory, MemoryPort,
    PortHandle, SharedPort,
};
use xcache_sim::{run_horizons, Cycle, Stats};
use xcache_workloads::{CsrMatrix, MatrixLayout, SparsePattern};

use crate::common::{apply_image, ProbeTask, RunReport, TaskStep};
use crate::widx::matched_address_cache_config;

/// Which SpGEMM dataflow drives the access order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// SpArch: outer product, A streamed column-major (CSC).
    OuterProduct,
    /// Gamma: Gustavson, A streamed row-major (CSR).
    Gustavson,
}

impl Algorithm {
    /// Paper-style display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::OuterProduct => "SpArch",
            Algorithm::Gustavson => "Gamma",
        }
    }
}

/// A SpGEMM workload: `C = A × B`.
#[derive(Debug, Clone)]
pub struct SpgemmWorkload {
    /// Left operand (streamed).
    pub a: CsrMatrix,
    /// Right operand (walked via X-Cache).
    pub b: CsrMatrix,
    /// Dataflow.
    pub algorithm: Algorithm,
}

impl SpgemmWorkload {
    /// The paper's input: `A × A` on a p2p-Gnutella31-sized matrix
    /// (N = 67K, NNZ = 147K), scaled by `1/scale` for quick runs.
    #[must_use]
    pub fn paper_like(algorithm: Algorithm, scale: u32, seed: u64) -> Self {
        let n = 67_000 / scale.max(1);
        let nnz = (147_000 / scale.max(1)) as usize;
        let a = CsrMatrix::generate(n, n, nnz, SparsePattern::RMat, seed);
        SpgemmWorkload {
            b: a.clone(),
            a,
            algorithm,
        }
    }

    /// The stream of `(b_row, a_value)` work items in dataflow order.
    #[must_use]
    pub fn element_stream(&self) -> Vec<(u32, u32, f64)> {
        match self.algorithm {
            // Gustavson: row-major A; item = (i, k, a) → needs B row k.
            Algorithm::Gustavson => self.a.triples().collect(),
            // Outer product: column-major A; each column k's non-zeros
            // (i, k, a) all need B row k, consecutively.
            Algorithm::OuterProduct => {
                let csc = self.a.to_csc();
                let mut v = Vec::with_capacity(self.a.nnz());
                for k in 0..csc.cols {
                    let (s, e) = csc.col_range(k);
                    for idx in s..e {
                        v.push((csc.row_idx[idx], k, csc.values[idx]));
                    }
                }
                v
            }
        }
    }

    /// Functional oracle: checksum over the exact product (values are
    /// small integers, so f64 arithmetic is exact regardless of order).
    #[must_use]
    pub fn oracle_checksum(&self) -> u64 {
        let c = self.a.multiply(&self.b);
        product_checksum(c.triples())
    }
}

fn product_checksum(triples: impl Iterator<Item = (u32, u32, f64)>) -> u64 {
    triples.fold(0u64, |acc, (i, j, v)| {
        acc.wrapping_add(
            (u64::from(i) << 40 | u64::from(j))
                .wrapping_mul(0x0001_0000_0001)
                .wrapping_add(v as i64 as u64),
        )
    })
}

/// The row-fetch walker shared by SpArch and Gamma.
///
/// `Default,Miss`: read `row_ptr[k]` and `row_ptr[k+1]` (one 16-byte
/// access — "an extra DRAM access is required to load the start pointer of
/// the Row", §8.1). `Meta,Fill`: size the refill and fetch the whole row.
/// `Data,Fill`: copy it sector-by-sector, publish the sector span and
/// respond. X-registers persist across yields, so the row size computed in
/// `setup` (r0) is still live in `fill`.
#[must_use]
pub fn walker() -> WalkerProgram {
    assemble(
        r#"
        walker spgemm_row
        states Default, Meta, Data
        regs 6
        params row_ptr_base, pairs_base, sector_bytes, max_row_bytes

        routine start {
            allocR
            allocM
            mul r0, key, 8
            add r0, r0, row_ptr_base
            dram_read r0, 16
            yield Meta
        }

        ; Row bytes = (end - start) * 16; remember it in r0 across the
        ; fill yield so the Data routine can size sectors.
        routine setup {
            peek r1, 0
            peek r2, 1
            sub r3, r2, r1
            beq r3, 0, @empty
            mul r0, r3, 16
            bge r0, max_row_bytes, @empty   ; oversized: bypass the cache
            mul r1, r1, 16
            add r1, r1, pairs_base
            dram_read r1, r0
            yield Data
        empty:
            fault
        }

        ; sectors = ceil(r0 / sector_bytes); words = ceil(r0 / 8).
        routine fill {
            add r4, r0, sector_bytes
            sub r4, r4, 1
            srl r4, r4, 5
            allocD r5, r4
            add r3, r0, 7
            srl r3, r3, 3
            filld r5, r3
            add r4, r4, r5
            sub r4, r4, 1
            updatem r5, r4
            respond
            retire
        }

        on Default, Miss -> start
        on Meta, Fill -> setup
        on Data, Fill -> fill
    "#,
    )
    .expect("spgemm walker is well-formed")
}

const IMAGE_BASE: u64 = 0x100_0000;
const A_STREAM_BASE: u64 = 0x4000_0000;

fn layout_b(b: &CsrMatrix) -> MatrixLayout {
    b.layout(IMAGE_BASE)
}

/// Serialises the A-element stream (row, col, value-bits) as 24-byte
/// records for the stream engine.
fn a_stream_bytes(items: &[(u32, u32, f64)]) -> Vec<u8> {
    let mut v = Vec::with_capacity(items.len() * 24);
    for &(i, k, a) in items {
        v.extend_from_slice(&u64::from(i).to_le_bytes());
        v.extend_from_slice(&u64::from(k).to_le_bytes());
        v.extend_from_slice(&a.to_bits().to_le_bytes());
    }
    v
}

/// Runs the X-Cache (MXS) configuration: A streamed, B rows via X-Cache.
///
/// # Panics
///
/// Panics on deadlock or oracle divergence.
#[must_use]
pub fn run_xcache(workload: &SpgemmWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let mut cfg = geometry.unwrap_or_else(|| match workload.algorithm {
        Algorithm::OuterProduct => XCacheConfig::sparch(),
        Algorithm::Gustavson => XCacheConfig::gamma(),
    });
    let layout = layout_b(&workload.b);
    let items = workload.element_stream();
    let stream_img = a_stream_bytes(&items);

    let mut mem = MainMemory::new();
    apply_image(&mut mem, &layout.segments);
    mem.write(A_STREAM_BASE, &stream_img);
    let shared = SharedPort::new(DramModel::with_memory(DramConfig::default(), mem));

    let mut stream = StreamReader::new(
        StreamConfig {
            base: A_STREAM_BASE,
            len: stream_img.len() as u64,
            chunk_bytes: 192, // 8 elements per fetch
            lookahead: 4,
        },
        shared.handle(),
    );
    let sector_bytes = cfg.sector_bytes();
    // Rows larger than 1/8 of the data RAM bypass the cache (SpArch caps
    // its cached tile size); the datapath fetches them directly from DRAM.
    let max_row_bytes = (cfg.data_capacity_bytes() / 8).max(sector_bytes * 4);
    cfg = cfg.with_params(vec![
        layout.row_ptr_base,
        layout.pairs_base,
        sector_bytes,
        max_row_bytes,
    ]);
    assert_eq!(
        cfg.sector_bytes(),
        32,
        "walker's srl #5 assumes 32-byte sectors"
    );
    let mut xc: XCache<PortHandle<DramModel>> =
        XCache::new(cfg, walker(), shared.handle()).expect("valid spgemm instance");

    // The datapath: pops (i, k, a) elements, requests B row k, MACs the
    // returned row into the accumulator. Loads are issued ahead of the
    // MAC units draining (decoupled preload).
    let mut acc: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let mut inflight: FxHashMap<u64, (u32, f64)> = FxHashMap::default(); // id -> (i, a)
    let mut next_id = 0u64;
    let mut pending_elem: Option<(u64, u64, u64)> = None;
    let mut now = Cycle(0);
    let mut done = 0usize;
    let total = items.len();
    let max_cycles = 10_000 * total as u64 + 2_000_000;
    let mut mac_busy_until = Cycle(0);

    // Bypass path for rows the cache refuses (empty or oversized): read
    // row_ptr, then the row, directly from DRAM.
    let mut bypass_port = shared.handle();
    enum Bypass {
        Ptr { i: u32, a: f64, k: u64 },
        Row { i: u32, a: f64, k: u64 },
    }
    let mut bypass: FxHashMap<u64, Bypass> = FxHashMap::default();
    let mut bypass_retry: Vec<(u32, f64, u64)> = Vec::new(); // (i, a, k)
    let mut next_bypass_id = 1u64 << 32;
    // SpArch keeps the current large row in a dedicated row buffer: the
    // last few bypassed rows stay resident in the datapath, so back-to-back
    // elements of the same column do not refetch a hub row.
    let mut row_buffer: std::collections::VecDeque<(u64, bytes::Bytes)> =
        std::collections::VecDeque::new();
    const ROW_BUFFER_ENTRIES: usize = 4;

    while done < total {
        {
            xcache_sim::prof_scope!("driver.ports");
            stream.tick(now);
            bypass_port.tick(now);
        }
        // Retry bypass row_ptr reads the port had no room for.
        while !bypass_retry.is_empty() && bypass_port.can_accept() {
            let (i, a, k) = bypass_retry[0];
            let req = xcache_mem::MemReq::read(next_bypass_id, layout.row_ptr_base + k * 8, 16);
            bypass_port
                .try_request(now, req)
                .expect("can_accept checked");
            bypass.insert(next_bypass_id, Bypass::Ptr { i, a, k });
            next_bypass_id += 1;
            bypass_retry.swap_remove(0);
        }
        while let Some(resp) = bypass_port.take_response(now) {
            match bypass.remove(&resp.id.0) {
                Some(Bypass::Ptr { i, a, k }) => {
                    let s = u64::from_le_bytes(resp.data[0..8].try_into().expect("ptr"));
                    let e = u64::from_le_bytes(resp.data[8..16].try_into().expect("ptr"));
                    if s == e {
                        done += 1; // genuinely empty row
                        let _ = k;
                        continue;
                    }
                    if bypass_port.can_accept() {
                        let req = xcache_mem::MemReq::read(
                            next_bypass_id,
                            layout.pairs_base + s * 16,
                            ((e - s) * 16) as u32,
                        );
                        bypass_port
                            .try_request(now, req)
                            .expect("can_accept checked");
                        bypass.insert(next_bypass_id, Bypass::Row { i, a, k });
                        next_bypass_id += 1;
                    } else {
                        // Re-read the pointer later (simpler than holding
                        // partial state; rare path).
                        bypass_retry.push((i, a, k));
                    }
                }
                Some(Bypass::Row { i, a, k }) => {
                    if row_buffer.len() == ROW_BUFFER_ENTRIES {
                        row_buffer.pop_front();
                    }
                    row_buffer.push_back((k, resp.data.clone()));
                    for pair in resp.data.chunks(16) {
                        let j = u64::from_le_bytes(pair[0..8].try_into().expect("col")) as u32;
                        let bv = f64::from_bits(u64::from_le_bytes(
                            pair[8..16].try_into().expect("val"),
                        ));
                        *acc.entry((i, j)).or_insert(0.0) += a * bv;
                    }
                    let macs = (resp.data.len() as u64 / 16).div_ceil(4);
                    mac_busy_until = mac_busy_until.max(now) + macs;
                    done += 1;
                }
                None => {}
            }
        }
        // Pop the next element (3 words) when available.
        if pending_elem.is_none() {
            if let (Some(i), Some(k), Some(a)) = {
                let i = stream.pop_word();
                if i.is_some() {
                    (i, stream.pop_word(), stream.pop_word())
                } else {
                    (None, None, None)
                }
            } {
                pending_elem = Some((i, k, a));
            }
        }
        if let Some((i, k, a)) = pending_elem {
            if xc.can_accept() {
                let access = MetaAccess::Load {
                    id: next_id,
                    key: MetaKey::new(k),
                };
                xc.try_access(now, access).expect("can_accept checked");
                inflight.insert(next_id, (i as u32, f64::from_bits(a)));
                next_id += 1;
                pending_elem = None;
            }
        }
        xc.tick(now);
        {
            xcache_sim::prof_scope!("driver.resp");
            while let Some(resp) = xc.take_response(now) {
                let (i, a) = inflight.remove(&resp.id).expect("issued");
                if !resp.found {
                    // Cache refused (empty or oversized row): bypass, unless
                    // the datapath's row buffer still holds it.
                    let k = resp.key.raw();
                    if let Some((_, data)) = row_buffer.iter().find(|(rk, _)| *rk == k) {
                        let data = data.clone();
                        for pair in data.chunks(16) {
                            let j = u64::from_le_bytes(pair[0..8].try_into().expect("col")) as u32;
                            let bv = f64::from_bits(u64::from_le_bytes(
                                pair[8..16].try_into().expect("val"),
                            ));
                            *acc.entry((i, j)).or_insert(0.0) += a * bv;
                        }
                        let macs = (data.len() as u64 / 16).div_ceil(4);
                        mac_busy_until = mac_busy_until.max(now) + macs;
                        xc.recycle(resp);
                        done += 1;
                        continue;
                    }
                    bypass_retry.push((i, a, k));
                    xc.recycle(resp);
                    continue;
                }
                if resp.found {
                    // Row data: (col, value) pairs. Trailing zero padding (from
                    // sector rounding) has col == 0 && value-bits == 0; real
                    // pairs always have nonzero value bits.
                    for pair in resp.data.chunks(2) {
                        if pair.len() < 2 || pair[1] == 0 {
                            continue;
                        }
                        let j = pair[0] as u32;
                        let bv = f64::from_bits(pair[1]);
                        *acc.entry((i, j)).or_insert(0.0) += a * bv;
                    }
                    // MAC occupancy: 4 MACs per cycle.
                    let macs = (resp.data.len() as u64 / 2).div_ceil(4);
                    mac_busy_until = mac_busy_until.max(now) + macs;
                }
                xc.recycle(resp);
                done += 1;
            }
        }
        xcache_sim::prof_scope!("driver.wake");
        now = if done >= total {
            now.next() // same end-cycle as the single-stepped loop
        } else {
            // Cheap checks first: when more work is issuable right now the
            // wake is the next cycle regardless, so the (comparatively
            // expensive) component next-event queries can be skipped.
            let issuable = (pending_elem.is_some() || stream.word_ready()) && xc.can_accept();
            let retryable = !bypass_retry.is_empty() && bypass_port.can_accept();
            if issuable || retryable {
                now.next()
            } else {
                let mut wake = xc.next_event(now);
                wake = xcache_sim::earliest(wake, stream.next_event(now));
                wake = xcache_sim::earliest(wake, bypass_port.next_event(now));
                xcache_sim::fast_forward(now, wake)
            }
        };
        if now.raw() >= max_cycles {
            eprintln!(
                "DEADLOCK: done={done}/{total} pending_elem={} inflight={} bypass={} retry={}",
                pending_elem.is_some(),
                inflight.len(),
                bypass.len(),
                bypass_retry.len()
            );
            for (k, v) in xc.stats().counters() {
                eprintln!("  {k}={v}");
            }
            panic!("spgemm x-cache run deadlocked");
        }
    }
    now = now.max(mac_busy_until);

    let got = product_checksum(
        acc.iter()
            .filter(|(_, v)| **v != 0.0)
            .map(|(&(i, j), &v)| (i, j, v)),
    );
    assert_eq!(
        got,
        workload.oracle_checksum(),
        "{} x-cache run diverged from the SpGEMM oracle",
        workload.algorithm.name()
    );
    let mut stats = xc.stats().clone();
    stats.merge(stream.stats());
    shared.with(|d| stats.merge(d.stats()));
    RunReport {
        label: "xcache".into(),
        cycles: now.raw(),
        stats: stats.snapshot(),
        checksum: got,
    }
}

/// Runs the sharded X-Cache topology: B's row space is interleaved across
/// `shards` controller instances by [`owner_of`], each over its
/// [`BankGroup`] view of the banked DRAM; the element stream is routed to
/// owners over crossbar links, replacing the stream engine as the pacing
/// element. Oversized/empty rows still bypass to a driver-side DRAM port,
/// serviced at horizon boundaries.
///
/// # Panics
///
/// Panics on deadlock or oracle divergence.
#[must_use]
pub fn run_xcache_sharded(
    workload: &SpgemmWorkload,
    geometry: Option<XCacheConfig>,
    shards: usize,
) -> RunReport {
    let report = drive_xcache_sharded(workload, geometry, shards)
        .expect("sharded spgemm x-cache run deadlocked");
    assert_eq!(
        report.checksum,
        workload.oracle_checksum(),
        "{} sharded x-cache run diverged from the SpGEMM oracle",
        workload.algorithm.name()
    );
    report
}

/// [`run_xcache_sharded`] for chaos runs: deadlocks come back as `Err`
/// and the oracle is not enforced (faults may legitimately drop MACs).
///
/// # Errors
///
/// Returns `Err` when the run exceeds its cycle bound.
pub fn run_xcache_sharded_chaos(
    workload: &SpgemmWorkload,
    geometry: Option<XCacheConfig>,
    shards: usize,
) -> Result<RunReport, String> {
    drive_xcache_sharded(workload, geometry, shards)
}

#[allow(clippy::too_many_lines)]
fn drive_xcache_sharded(
    workload: &SpgemmWorkload,
    geometry: Option<XCacheConfig>,
    shards: usize,
) -> Result<RunReport, String> {
    let shards = shards.max(1);
    let base = geometry.unwrap_or_else(|| match workload.algorithm {
        Algorithm::OuterProduct => XCacheConfig::sparch(),
        Algorithm::Gustavson => XCacheConfig::gamma(),
    });
    let layout = layout_b(&workload.b);
    let items = workload.element_stream();

    let mut mem = MainMemory::new();
    apply_image(&mut mem, &layout.segments);

    let mut cells: Vec<ShardCell<BankGroup>> = (0..shards)
        .map(|s| {
            let mut cfg = shard_geometry(&base, shards);
            let sector_bytes = cfg.sector_bytes();
            let max_row_bytes = (cfg.data_capacity_bytes() / 8).max(sector_bytes * 4);
            cfg = cfg.with_params(vec![
                layout.row_ptr_base,
                layout.pairs_base,
                sector_bytes,
                max_row_bytes,
            ]);
            assert_eq!(
                cfg.sector_bytes(),
                32,
                "walker's srl #5 assumes 32-byte sectors"
            );
            let bank = BankGroup::new(
                BankGroupConfig {
                    shards,
                    shard_id: s,
                    ..BankGroupConfig::default()
                },
                DramModel::with_memory(DramConfig::default(), mem.clone()),
            );
            let xc = XCache::new(cfg, walker(), bank).expect("valid spgemm shard");
            ShardCell::new(s, xc, DEFAULT_LINK_LATENCY)
        })
        .collect();

    // Route every element to its row's owner shard up front; per-shard
    // issue order is the dataflow order restricted to owned rows, so
    // column-local (SpArch) and Gustavson reuse survive sharding.
    for (idx, &(_, k, _)) in items.iter().enumerate() {
        let owner = owner_of(MetaKey::new(u64::from(k)), shards);
        cells[owner].send(
            Cycle::ZERO,
            MetaAccess::Load {
                id: idx as u64,
                key: MetaKey::new(u64::from(k)),
            },
        );
    }

    let total = items.len();
    let max_cycles = 10_000 * total as u64 + 2_000_000;
    let mut acc: FxHashMap<(u32, u32), f64> = FxHashMap::default();
    let mut done = 0usize;
    let mut end = Cycle::ZERO;
    let mut mac_busy_until = Cycle::ZERO;
    let mut deadlocked = false;

    // Bypass path for rows the cache refuses (empty or oversized): a
    // driver-side DRAM port over the same image, serviced once per
    // horizon boundary — coarse but deterministic in both engines.
    let mut bypass_port = DramModel::with_memory(DramConfig::default(), mem);
    enum Bypass {
        Ptr { i: u32, a: f64 },
        Row { i: u32, a: f64, k: u64 },
    }
    let mut bypass: FxHashMap<u64, Bypass> = FxHashMap::default();
    let mut bypass_retry: Vec<(u32, f64, u64)> = Vec::new(); // (i, a, k)
                                                             // Rows whose pointers are already resolved but whose data read hit
                                                             // port backpressure. Held (not re-read) and issued with priority —
                                                             // at boundary granularity responses arrive in bursts, so re-reading
                                                             // pointers against the retry stream livelocks on a full port.
    let mut row_pending: Vec<(u32, f64, u64, u64, u64)> = Vec::new(); // (i, a, k, start, end)
    let mut next_bypass_id = 1u64 << 32;
    let mut row_buffer: std::collections::VecDeque<(u64, bytes::Bytes)> =
        std::collections::VecDeque::new();
    const ROW_BUFFER_ENTRIES: usize = 4;
    let mut mac = |i: u32, a: f64, pairs: &mut dyn Iterator<Item = (u32, f64)>, at: Cycle| {
        let mut n = 0u64;
        for (j, bv) in pairs {
            *acc.entry((i, j)).or_insert(0.0) += a * bv;
            n += 1;
        }
        // MAC occupancy: 4 MACs per cycle.
        mac_busy_until = mac_busy_until.max(at) + n.div_ceil(4);
    };

    let cells = run_horizons(cells, Cycle::ZERO, |cells, t| {
        bypass_port.tick(t);
        while !row_pending.is_empty() && bypass_port.can_accept() {
            let (i, a, k, s, e) = row_pending[0];
            let req = xcache_mem::MemReq::read(
                next_bypass_id,
                layout.pairs_base + s * 16,
                ((e - s) * 16) as u32,
            );
            bypass_port.try_request(t, req).expect("can_accept checked");
            bypass.insert(next_bypass_id, Bypass::Row { i, a, k });
            next_bypass_id += 1;
            row_pending.swap_remove(0);
        }
        while !bypass_retry.is_empty() && bypass_port.can_accept() {
            let (i, a, k) = bypass_retry[0];
            let req = xcache_mem::MemReq::read(next_bypass_id, layout.row_ptr_base + k * 8, 16);
            bypass_port.try_request(t, req).expect("can_accept checked");
            bypass.insert(next_bypass_id, Bypass::Ptr { i, a });
            next_bypass_id += 1;
            bypass_retry.swap_remove(0);
        }
        while let Some(resp) = bypass_port.take_response(t) {
            let at = resp.completed_at.max(t);
            match bypass.remove(&resp.id.0) {
                Some(Bypass::Ptr { i, a }) => {
                    let s = u64::from_le_bytes(resp.data[0..8].try_into().expect("ptr"));
                    let e = u64::from_le_bytes(resp.data[8..16].try_into().expect("ptr"));
                    let k = (resp.addr - layout.row_ptr_base) / 8;
                    if s == e {
                        done += 1; // genuinely empty row
                        end = end.max(at);
                        continue;
                    }
                    if bypass_port.can_accept() {
                        let req = xcache_mem::MemReq::read(
                            next_bypass_id,
                            layout.pairs_base + s * 16,
                            ((e - s) * 16) as u32,
                        );
                        bypass_port.try_request(t, req).expect("can_accept checked");
                        bypass.insert(next_bypass_id, Bypass::Row { i, a, k });
                        next_bypass_id += 1;
                    } else {
                        row_pending.push((i, a, k, s, e));
                    }
                }
                Some(Bypass::Row { i, a, k }) => {
                    if row_buffer.len() == ROW_BUFFER_ENTRIES {
                        row_buffer.pop_front();
                    }
                    row_buffer.push_back((k, resp.data.clone()));
                    mac(
                        i,
                        a,
                        &mut resp.data.chunks(16).map(|pair| {
                            let j = u64::from_le_bytes(pair[0..8].try_into().expect("col")) as u32;
                            let bv = f64::from_bits(u64::from_le_bytes(
                                pair[8..16].try_into().expect("val"),
                            ));
                            (j, bv)
                        }),
                        at,
                    );
                    done += 1;
                    end = end.max(at);
                }
                None => {}
            }
        }
        for cell in cells {
            let mut cell = cell.lock().expect("shard cell poisoned");
            while let Some((at, resp)) = cell.recv_response(t) {
                let idx = resp.id as usize;
                let (i, _, a) = items[idx];
                end = end.max(at);
                if resp.found {
                    // Row data: (col, value-bits) pairs; zero-padded tails
                    // from sector rounding have zero value bits.
                    mac(
                        i,
                        a,
                        &mut resp
                            .data
                            .chunks(2)
                            .filter(|pair| pair.len() == 2 && pair[1] != 0)
                            .map(|pair| (pair[0] as u32, f64::from_bits(pair[1]))),
                        at,
                    );
                    done += 1;
                    continue;
                }
                let k = resp.key.raw();
                if let Some((_, data)) = row_buffer.iter().find(|(rk, _)| *rk == k) {
                    let data = data.clone();
                    mac(
                        i,
                        a,
                        &mut data.chunks(16).map(|pair| {
                            let j = u64::from_le_bytes(pair[0..8].try_into().expect("col")) as u32;
                            let bv = f64::from_bits(u64::from_le_bytes(
                                pair[8..16].try_into().expect("val"),
                            ));
                            (j, bv)
                        }),
                        at,
                    );
                    done += 1;
                    continue;
                }
                bypass_retry.push((i, a, k));
            }
        }
        if done >= total {
            return None;
        }
        if t.raw() >= max_cycles {
            eprintln!(
                "DEADLOCK at {t}: busy={} next_event={:?} can_accept={}",
                bypass_port.busy(),
                bypass_port.next_event(t),
                bypass_port.can_accept()
            );
            for (k, v) in bypass_port.stats().counters() {
                eprintln!("  {k}={v}");
            }
            deadlocked = true;
            return None;
        }
        let target = horizon_target(cells, t, DEFAULT_HORIZON);
        if bypass.is_empty() && bypass_retry.is_empty() && row_pending.is_empty() {
            Some(target)
        } else {
            // Bypass work only progresses at boundaries, and the DRAM
            // model advances on exact next-event cycles — land on them.
            let mut dense = t + DEFAULT_HORIZON;
            if let Some(w) = bypass_port.next_event(t) {
                if w > t && w != Cycle::NEVER {
                    dense = dense.min(w);
                }
            }
            Some(target.min(dense))
        }
    });
    if deadlocked {
        return Err(format!(
            "sharded spgemm run exceeded {max_cycles} cycles with {done}/{total} elements done \
             (bypass in-flight {}, bypass retry {})",
            bypass.len(),
            bypass_retry.len()
        ));
    }
    let end = end.max(mac_busy_until);

    let got = product_checksum(
        acc.iter()
            .filter(|(_, v)| **v != 0.0)
            .map(|(&(i, j), &v)| (i, j, v)),
    );
    let mut stats = Stats::new();
    for cell in &cells {
        cell.merge_stats_into(&mut stats);
        cell.xcache().downstream().merge_stats_into(&mut stats);
    }
    stats.merge(bypass_port.stats());
    Ok(RunReport {
        label: format!("xcache-sharded{shards}"),
        cycles: end.raw(),
        stats: stats.snapshot(),
        checksum: got,
    })
}

/// One row-fetch through the address cache (ideal walker): read
/// `row_ptr[k]`+`row_ptr[k+1]`, then the row's pairs in 64-byte blocks.
struct RowFetch {
    row: u32,
    row_ptr_base: u64,
    pairs_base: u64,
    state: RowState,
}

enum RowState {
    PtrLo,
    PtrHi {
        start: u64,
    },
    Blocks {
        next_addr: u64,
        end_addr: u64,
        sum: u64,
    },
}

impl ProbeTask for RowFetch {
    fn advance(&mut self, last: Option<&[u8]>) -> TaskStep {
        match &mut self.state {
            RowState::PtrLo => match last {
                None => TaskStep::Read {
                    addr: self.row_ptr_base + u64::from(self.row) * 8,
                    len: 8,
                },
                Some(d) => {
                    let start = u64::from_le_bytes(d[0..8].try_into().expect("ptr"));
                    self.state = RowState::PtrHi { start };
                    TaskStep::Read {
                        addr: self.row_ptr_base + (u64::from(self.row) + 1) * 8,
                        len: 8,
                    }
                }
            },
            RowState::PtrHi { start } => match last {
                // Re-entry after port back-pressure: re-issue the read.
                None => TaskStep::Read {
                    addr: self.row_ptr_base + (u64::from(self.row) + 1) * 8,
                    len: 8,
                },
                Some(d) => {
                    let s = *start;
                    let e = u64::from_le_bytes(d[0..8].try_into().expect("ptr"));
                    if s == e {
                        return TaskStep::Done(0);
                    }
                    let start_addr = self.pairs_base + s * 16;
                    let end_addr = self.pairs_base + e * 16;
                    // Block-align the row fetch.
                    let first_block = start_addr & !63;
                    self.state = RowState::Blocks {
                        next_addr: first_block,
                        end_addr,
                        sum: 0,
                    };
                    TaskStep::Read {
                        addr: first_block,
                        len: 64,
                    }
                }
            },
            RowState::Blocks {
                next_addr,
                end_addr,
                sum,
            } => {
                if let Some(d) = last {
                    *sum = sum.wrapping_add(d.iter().map(|&b| u64::from(b)).sum::<u64>());
                    *next_addr += 64;
                }
                if *next_addr >= *end_addr {
                    TaskStep::Done(1 + *sum % 7) // nonzero completion token
                } else {
                    TaskStep::Read {
                        addr: *next_addr,
                        len: 64,
                    }
                }
            }
        }
    }
}

/// Runs the address-cache configuration with an ideal walker.
///
/// The datapath is the same dataflow (matrix A streamed from the same
/// shared DRAM, same element order, same MLP); only the storage idiom for
/// matrix B differs: every element's row fetch pays the `row_ptr` access
/// and per-block reads, even when the row is resident.
#[must_use]
pub fn run_address_cache(workload: &SpgemmWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let g = geometry.unwrap_or_else(|| match workload.algorithm {
        Algorithm::OuterProduct => XCacheConfig::sparch(),
        Algorithm::Gustavson => XCacheConfig::gamma(),
    });
    let layout = layout_b(&workload.b);
    let items = workload.element_stream();
    let stream_img = a_stream_bytes(&items);
    let mut mem = MainMemory::new();
    apply_image(&mut mem, &layout.segments);
    mem.write(A_STREAM_BASE, &stream_img);
    let shared = SharedPort::new(DramModel::with_memory(DramConfig::default(), mem));
    let mut stream = StreamReader::new(
        StreamConfig {
            base: A_STREAM_BASE,
            len: stream_img.len() as u64,
            chunk_bytes: 192,
            lookahead: 4,
        },
        shared.handle(),
    );
    let cache = AddressCache::new(matched_address_cache_config(&g), shared.handle());
    let total = items.len();
    let mut engine = crate::common::ProbeEngine::new(cache, Vec::new(), g.active);
    let mut now = Cycle(0);
    let max_cycles = 10_000 * total as u64 + 2_000_000;
    while engine.completed() < total {
        stream.tick(now);
        // Each streamed element gates one row-fetch task, exactly like the
        // X-Cache datapath's issue loop.
        if let Some(_i) = stream.pop_word() {
            let k = stream.pop_word().expect("stream element is 3 words");
            let _a = stream.pop_word().expect("stream element is 3 words");
            engine.push_task(RowFetch {
                row: k as u32,
                row_ptr_base: layout.row_ptr_base,
                pairs_base: layout.pairs_base,
                state: RowState::PtrLo,
            });
        }
        engine.tick(now);
        now = if engine.completed() >= total {
            now.next() // same end-cycle as the single-stepped loop
        } else {
            let mut wake = xcache_sim::earliest(engine.next_event(now), stream.next_event(now));
            if stream.word_ready() {
                wake = Some(now.next()); // next element gates a task next cycle
            }
            xcache_sim::fast_forward(now, wake)
        };
        assert!(now.raw() < max_cycles, "spgemm addr-cache run deadlocked");
    }
    let mut stats = Stats::new();
    stats.merge(engine.stats());
    stats.merge(stream.stats());
    stats.merge(engine.port().stats());
    shared.with(|d| stats.merge(d.stats()));
    RunReport {
        label: "addr-cache".into(),
        cycles: now.raw(),
        stats: stats.snapshot(),
        // Timing-only model: functional correctness is established by the
        // X-Cache run; reuse the oracle checksum for report symmetry.
        checksum: workload.oracle_checksum(),
    }
}

/// Runs the hardwired baseline: the DSA's custom row buffer with row-id
/// tags. Modelled as the same structural cache with the programmability
/// tax removed — every executor resource is as wide as the walker count
/// and the dispatch pipeline is free (see DESIGN.md §5, ablations).
#[must_use]
pub fn run_baseline(workload: &SpgemmWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let mut g = geometry.unwrap_or_else(|| match workload.algorithm {
        Algorithm::OuterProduct => XCacheConfig::sparch(),
        Algorithm::Gustavson => XCacheConfig::gamma(),
    });
    g.exe = g.active; // a lane per hardwired fill unit: no contention
    let mut r = run_xcache(workload, Some(g));
    r.label = "baseline".into();
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(algorithm: Algorithm) -> SpgemmWorkload {
        let a = CsrMatrix::generate(96, 96, 700, SparsePattern::RMat, 11);
        SpgemmWorkload {
            b: a.clone(),
            a,
            algorithm,
        }
    }

    fn small_geometry() -> XCacheConfig {
        XCacheConfig {
            sets: 32,
            ways: 4,
            active: 8,
            exe: 4,
            data_sectors: 512,
            ..XCacheConfig::sparch()
        }
    }

    #[test]
    fn gustavson_matches_oracle() {
        let w = small(Algorithm::Gustavson);
        let r = run_xcache(&w, Some(small_geometry()));
        assert_eq!(r.checksum, w.oracle_checksum());
        assert!(r.stats.get("xcache.hit") > 0, "column reuse must hit");
    }

    #[test]
    fn outer_product_matches_oracle_with_high_reuse() {
        let w = small(Algorithm::OuterProduct);
        let r = run_xcache(&w, Some(small_geometry()));
        assert_eq!(r.checksum, w.oracle_checksum());
        // Within a column every element after the first hits row k.
        let hits = r.stats.get("xcache.hit") + r.stats.get("xcache.waiter");
        let misses = r.stats.get("xcache.miss");
        assert!(
            hits > misses,
            "outer product should mostly reuse ({hits} hits vs {misses} misses)"
        );
    }

    #[test]
    fn sharded_run_matches_oracle_and_modes_agree() {
        use xcache_sim::{with_par_mode, with_par_threads, ParMode};
        for algorithm in [Algorithm::Gustavson, Algorithm::OuterProduct] {
            let w = small(algorithm);
            let fingerprint = |r: &RunReport| (r.cycles, r.checksum, r.stats.clone());
            let seq = with_par_mode(ParMode::Seq, || {
                run_xcache_sharded(&w, Some(small_geometry()), 3)
            });
            assert!(seq.cycles > 0);
            let par = with_par_mode(ParMode::Par, || {
                with_par_threads(3, || run_xcache_sharded(&w, Some(small_geometry()), 3))
            });
            assert_eq!(
                fingerprint(&par),
                fingerprint(&seq),
                "par diverged from seq"
            );
        }
    }

    #[test]
    fn same_walker_program_both_algorithms() {
        // The portability claim: one microcode image serves both DSAs.
        let w1 = run_xcache(&small(Algorithm::Gustavson), Some(small_geometry()));
        let w2 = run_xcache(&small(Algorithm::OuterProduct), Some(small_geometry()));
        assert!(w1.cycles > 0 && w2.cycles > 0);
    }

    #[test]
    fn xcache_beats_address_cache() {
        let w = small(Algorithm::Gustavson);
        let x = run_xcache(&w, Some(small_geometry()));
        let a = run_address_cache(&w, Some(small_geometry()));
        assert!(
            x.speedup_over(&a) > 1.1,
            "meta-tags should beat per-block row walks (got {:.2})",
            x.speedup_over(&a)
        );
    }

    #[test]
    fn baseline_competitive_with_xcache() {
        let w = small(Algorithm::Gustavson);
        let x = run_xcache(&w, Some(small_geometry()));
        let b = run_baseline(&w, Some(small_geometry()));
        let ratio = b.cycles as f64 / x.cycles as f64;
        assert!(
            (0.5..=1.05).contains(&ratio),
            "hardwired baseline should be ≤ x-cache but close (ratio {ratio:.2})"
        );
    }

    #[test]
    fn empty_rows_fault_cleanly() {
        // A matrix with guaranteed-empty B rows: banded A times itself.
        let a = CsrMatrix::from_triples(8, 8, &[(0, 3, 2.0), (1, 3, 4.0), (5, 6, 1.0)]);
        let w = SpgemmWorkload {
            b: a.clone(),
            a,
            algorithm: Algorithm::Gustavson,
        };
        let r = run_xcache(&w, Some(small_geometry()));
        assert_eq!(r.checksum, w.oracle_checksum());
        assert!(r.stats.get("xcache.walker_fault") > 0);
    }
}
