//! Widx — "Meet the Walkers" (Kocberber et al., MICRO'13), §5 of the
//! X-Cache paper.
//!
//! The data structure is a database hash index: a bucket array of chain
//! heads and 32-byte nodes `[key, rid, next, pad]`. Three configurations:
//!
//! * [`run_xcache`] — the X-Cache version: the datapath issues meta loads
//!   of the *keys*; hits skip both hashing (up to 60 cycles for TPC-H
//!   string keys) and the chain walk; misses run the [`walker`] coroutine.
//! * [`run_address_cache`] — the same-geometry address-based cache with an
//!   ideal (zero-cost) walker: every probe still hashes and chases the
//!   chain, but node accesses may hit in the cache.
//! * [`run_baseline`] — the hardwired Widx DSA: dedicated walker units in
//!   front of an address cache (the original design; it "relied on an
//!   address-based cache and, hence, always walked").

use xcache_core::{
    horizon_target, owner_of, shard_geometry, MetaAccess, MetaKey, ShardCell, XCache, XCacheConfig,
    DEFAULT_HORIZON, DEFAULT_LINK_LATENCY,
};
use xcache_isa::asm::assemble;
use xcache_isa::WalkerProgram;
use xcache_mem::{
    AddressCache, BankGroup, BankGroupConfig, CacheConfig, DramConfig, DramModel, MainMemory,
};
use xcache_sim::{run_horizons, Cycle, Stats};
use xcache_workloads::hashidx::NODE_BYTES;
use xcache_workloads::{HashIndex, TpchPreset};

use crate::common::{apply_image, ProbeTask, RunReport, TaskStep};

/// A materialised Widx workload.
#[derive(Debug, Clone)]
pub struct WidxWorkload {
    /// The build-side hash index.
    pub index: HashIndex,
    /// Probe-side key stream.
    pub probes: Vec<u64>,
    /// Hash-unit latency for this key class (60 = string keys).
    pub hash_latency: u64,
}

impl WidxWorkload {
    /// Materialises a TPC-H preset.
    #[must_use]
    pub fn from_preset(preset: &TpchPreset, seed: u64) -> Self {
        let (index, probes) = preset.materialize(seed);
        WidxWorkload {
            index,
            probes,
            hash_latency: preset.hash_latency,
        }
    }

    /// Order-independent oracle checksum: sum of rids of present probes.
    #[must_use]
    pub fn oracle_checksum(&self) -> u64 {
        self.probes
            .iter()
            .filter_map(|&k| self.index.get(k))
            .fold(0u64, u64::wrapping_add)
    }
}

/// Base address of the index image in the simulated heap.
const IMAGE_BASE: u64 = 0x10_0000;

/// The Widx walker program: hash → bucket head → chain chase → cache node.
///
/// States mirror Figure 10a: `IDX` (hash), `META` (bucket root), `DATA`
/// (node chase with `MATCH`).
#[must_use]
pub fn walker() -> WalkerProgram {
    assemble(
        r#"
        walker widx
        states Default, Meta, Data
        events HashDone
        regs 4
        params bucket_base, node_bytes, bucket_mask

        ; Miss: start the hash unit and yield until the digest arrives.
        routine start {
            allocR
            allocM
            hash HashDone, key
            yield Default
        }

        ; IDX: digest -> bucket slot; fetch the chain-head pointer.
        routine idx {
            peek r0, 0
            and r0, r0, bucket_mask
            mul r0, r0, 8
            add r0, r0, bucket_base
            dram_read r0, 8
            yield Meta
        }

        ; META: follow the head pointer (empty bucket => not found).
        routine head {
            peek r1, 0
            beq r1, 0, @notfound
            dram_read r1, node_bytes
            yield Data
        notfound:
            fault
        }

        ; DATA: match the node key or chase `next`. Every node touched is
        ; side-cached under its own key (insertm), so walking one chain
        ; warms the cache for every key on it.
        routine check {
            peek r2, 0
            beq r2, key, @found
            insertm r2, 4
            peek r1, 2
            beq r1, 0, @notfound
            dram_read r1, node_bytes
            yield Data
        found:
            allocD r3, 1
            filld r3, 4
            updatem r3, r3
            respond
            retire
        notfound:
            fault
        }

        on Default, Miss -> start
        on Default, HashDone -> idx
        on Meta, Fill -> head
        on Data, Fill -> check
    "#,
    )
    .expect("widx walker is well-formed")
}

/// The Widx walker *without* chain-node side-caching: only the matched
/// node is installed. The `insertm` ablation's comparison point.
#[must_use]
pub fn walker_no_sideinsert() -> WalkerProgram {
    let mut p = walker();
    for r in &mut p.routines {
        // Map old action indices to new ones, then drop the inserts and
        // retarget branches across the removed slots.
        let removed: Vec<usize> = r
            .actions
            .iter()
            .enumerate()
            .filter(|(_, a)| matches!(a, xcache_isa::Action::InsertM { .. }))
            .map(|(i, _)| i)
            .collect();
        if removed.is_empty() {
            continue;
        }
        let new_index =
            |old: usize| -> u8 { (old - removed.iter().filter(|&&i| i < old).count()) as u8 };
        r.actions = r
            .actions
            .iter()
            .enumerate()
            .filter(|(i, _)| !removed.contains(i))
            .map(|(_, a)| match *a {
                xcache_isa::Action::Branch { cond, a, b, target } => xcache_isa::Action::Branch {
                    cond,
                    a,
                    b,
                    target: new_index(usize::from(target)),
                },
                other => other,
            })
            .collect();
    }
    p.name = "widx_no_sideinsert".into();
    p
}

fn memory_image(workload: &WidxWorkload) -> (MainMemory, u64, u64) {
    let layout = workload.index.layout(IMAGE_BASE);
    let mut mem = MainMemory::new();
    apply_image(&mut mem, &layout.segments);
    (mem, layout.bucket_base, layout.buckets - 1)
}

/// Runs the X-Cache configuration. `geometry` defaults to Table 3's Widx
/// row via [`XCacheConfig::widx`].
///
/// # Panics
///
/// Panics if the simulation deadlocks or the checksum diverges from the
/// functional oracle.
#[must_use]
pub fn run_xcache(workload: &WidxWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    run_xcache_with_walker(workload, geometry, walker())
}

/// [`run_xcache`] with a caller-supplied walker program (used by the
/// `insertm` ablation, which runs a walker that skips side-caching).
///
/// # Panics
///
/// Panics if the simulation deadlocks or the checksum diverges from the
/// functional oracle.
#[must_use]
pub fn run_xcache_with_walker(
    workload: &WidxWorkload,
    geometry: Option<XCacheConfig>,
    program: WalkerProgram,
) -> RunReport {
    let report = drive_xcache(workload, geometry, program).expect("widx x-cache run deadlocked");
    assert_eq!(
        report.checksum,
        workload.oracle_checksum(),
        "x-cache run diverged from the functional oracle"
    );
    report
}

/// [`run_xcache`] for chaos runs: the same drive loop, minus the two
/// panics. Under an armed fault plan a watchdog-killed or degraded walk
/// legitimately answers "not found", so the oracle checksum no longer
/// binds, and a hang must surface as a structured violation the chaos
/// harness can report rather than a process abort.
///
/// # Errors
///
/// Returns `Err` when the run exceeds its cycle bound — i.e. the
/// watchdog failed to keep the instance live.
pub fn run_xcache_chaos(
    workload: &WidxWorkload,
    geometry: Option<XCacheConfig>,
) -> Result<RunReport, String> {
    drive_xcache(workload, geometry, walker())
}

fn drive_xcache(
    workload: &WidxWorkload,
    geometry: Option<XCacheConfig>,
    program: WalkerProgram,
) -> Result<RunReport, String> {
    let (mem, bucket_base, mask) = memory_image(workload);
    let dram = DramModel::with_memory(DramConfig::default(), mem);
    let mut cfg = geometry.unwrap_or_else(XCacheConfig::widx);
    cfg.hash_latency = workload.hash_latency;
    cfg = cfg.with_params(vec![bucket_base, NODE_BYTES, mask]);
    let mut xc = XCache::new(cfg, program, dram).expect("valid widx instance");

    let mut now = Cycle(0);
    let mut next = 0usize;
    let mut done = 0usize;
    let mut checksum = 0u64;
    let total = workload.probes.len();
    let max_cycles = 2_000 * total as u64 + 1_000_000;
    while done < total {
        // Issue as many probes as the access queue accepts this cycle.
        while next < total && xc.can_accept() {
            let access = MetaAccess::Load {
                id: next as u64,
                key: MetaKey::new(workload.probes[next]),
            };
            xc.try_access(now, access).expect("can_accept checked");
            next += 1;
        }
        xc.tick(now);
        while let Some(resp) = xc.take_response(now) {
            if resp.found {
                // Node layout: [key, rid, next, pad].
                checksum = checksum.wrapping_add(resp.data[1]);
            }
            xc.recycle(resp);
            done += 1;
        }
        // Done (preserve the single-stepped end cycle) or more probes
        // issuable next cycle: advance by one without querying the
        // comparatively expensive component next-event fold.
        now = if done >= total || (next < total && xc.can_accept()) {
            now.next()
        } else {
            xcache_sim::fast_forward(now, xc.next_event(now))
        };
        if now.raw() >= max_cycles {
            return Err(format!(
                "widx x-cache run exceeded {max_cycles} cycles with {done}/{total} probes answered"
            ));
        }
    }
    let mut stats = xc.stats().clone();
    stats.merge(xc.downstream().stats());
    Ok(RunReport {
        label: "xcache".into(),
        cycles: now.raw(),
        stats: stats.snapshot(),
        checksum,
    })
}

/// Runs the sharded X-Cache topology: `shards` controller + meta-path
/// instances, each owning an address-interleaved slice of the probe key
/// space over its [`BankGroup`] view of the shared banked DRAM, with the
/// driver routing probes over fixed-latency crossbar links. Execution is
/// horizon-synchronized ([`run_horizons`]) and byte-deterministic across
/// `XCACHE_PAR=seq|par` and any thread count.
///
/// # Panics
///
/// Panics if the simulation deadlocks or the checksum diverges from the
/// functional oracle.
#[must_use]
pub fn run_xcache_sharded(
    workload: &WidxWorkload,
    geometry: Option<XCacheConfig>,
    shards: usize,
) -> RunReport {
    let report = drive_xcache_sharded(workload, geometry, shards)
        .expect("sharded widx x-cache run deadlocked");
    assert_eq!(
        report.checksum,
        workload.oracle_checksum(),
        "sharded x-cache run diverged from the functional oracle"
    );
    report
}

/// [`run_xcache_sharded`] for chaos runs: no oracle or deadlock panics,
/// mirroring [`run_xcache_chaos`].
///
/// # Errors
///
/// Returns `Err` when the run exceeds its cycle bound.
pub fn run_xcache_sharded_chaos(
    workload: &WidxWorkload,
    geometry: Option<XCacheConfig>,
    shards: usize,
) -> Result<RunReport, String> {
    drive_xcache_sharded(workload, geometry, shards)
}

fn drive_xcache_sharded(
    workload: &WidxWorkload,
    geometry: Option<XCacheConfig>,
    shards: usize,
) -> Result<RunReport, String> {
    let shards = shards.max(1);
    let (mem, bucket_base, mask) = memory_image(workload);
    let base = geometry.unwrap_or_else(XCacheConfig::widx);
    let mut cells: Vec<ShardCell<BankGroup>> = (0..shards)
        .map(|s| {
            let mut cfg = shard_geometry(&base, shards);
            cfg.hash_latency = workload.hash_latency;
            cfg = cfg.with_params(vec![bucket_base, NODE_BYTES, mask]);
            let bank = BankGroup::new(
                BankGroupConfig {
                    shards,
                    shard_id: s,
                    ..BankGroupConfig::default()
                },
                DramModel::with_memory(DramConfig::default(), mem.clone()),
            );
            let xc = XCache::new(cfg, walker(), bank).expect("valid widx shard");
            ShardCell::new(s, xc, DEFAULT_LINK_LATENCY)
        })
        .collect();

    // Route every probe to its owner shard up front; the crossbar's
    // 1-message-per-cycle lanes pace actual delivery, so issue order per
    // shard is exactly the probe-stream order restricted to its keys.
    for (i, &key) in workload.probes.iter().enumerate() {
        let owner = owner_of(MetaKey::new(key), shards);
        cells[owner].send(
            Cycle::ZERO,
            MetaAccess::Load {
                id: i as u64,
                key: MetaKey::new(key),
            },
        );
    }

    let total = workload.probes.len();
    let max_cycles = 2_000 * total as u64 + 1_000_000;
    let mut done = 0usize;
    let mut checksum = 0u64;
    let mut end = Cycle::ZERO;
    let mut deadlocked = false;
    let cells = run_horizons(cells, Cycle::ZERO, |cells, t| {
        for cell in cells {
            let mut cell = cell.lock().expect("shard cell poisoned");
            while let Some((at, resp)) = cell.recv_response(t) {
                if resp.found {
                    // Node layout: [key, rid, next, pad].
                    checksum = checksum.wrapping_add(resp.data[1]);
                }
                // End of run is the last crossbar arrival, not the
                // boundary that happened to drain it — cadence-independent.
                end = end.max(at);
                done += 1;
            }
        }
        if done >= total {
            return None;
        }
        if t.raw() >= max_cycles {
            deadlocked = true;
            return None;
        }
        Some(horizon_target(cells, t, DEFAULT_HORIZON))
    });
    if deadlocked {
        return Err(format!(
            "sharded widx run exceeded {max_cycles} cycles with {done}/{total} probes answered"
        ));
    }
    let mut stats = Stats::new();
    for cell in &cells {
        cell.merge_stats_into(&mut stats);
        cell.xcache().downstream().merge_stats_into(&mut stats);
    }
    Ok(RunReport {
        label: format!("xcache-sharded{shards}"),
        cycles: end.raw(),
        stats: stats.snapshot(),
        checksum,
    })
}

/// One probe through hash + bucket + chain, for the address-based
/// configurations. Peek-then-commit per the [`ProbeTask`] contract.
struct WidxProbe {
    key: u64,
    bucket_base: u64,
    mask: u64,
    hash_latency: u64,
    /// Extra per-node delay (DASX models hash-coupled walking with this).
    per_node_delay: u64,
    state: ProbeState,
}

enum ProbeState {
    Hash,
    LoadBucket,
    LoadNode(u64),  // address, kept so port back-pressure can re-issue
    DelayThen(u64), // node address to fetch after the coupled delay
}

impl ProbeTask for WidxProbe {
    fn advance(&mut self, last: Option<&[u8]>) -> TaskStep {
        match self.state {
            ProbeState::Hash => {
                self.state = ProbeState::LoadBucket;
                TaskStep::Delay(self.hash_latency)
            }
            ProbeState::LoadBucket => match last {
                None => TaskStep::Read {
                    addr: self.bucket_base
                        + (xcache_workloads::hashidx::hash64(self.key) & self.mask) * 8,
                    len: 8,
                },
                Some(d) => {
                    let head = u64::from_le_bytes(d[..8].try_into().expect("ptr"));
                    if head == 0 {
                        return TaskStep::Done(0);
                    }
                    if self.per_node_delay > 0 {
                        self.state = ProbeState::DelayThen(head);
                        return TaskStep::Delay(self.per_node_delay);
                    }
                    self.state = ProbeState::LoadNode(head);
                    TaskStep::Read {
                        addr: head,
                        len: NODE_BYTES as u32,
                    }
                }
            },
            ProbeState::DelayThen(addr) => {
                self.state = ProbeState::LoadNode(addr);
                TaskStep::Read {
                    addr,
                    len: NODE_BYTES as u32,
                }
            }
            ProbeState::LoadNode(addr) => match last {
                // Re-entry after port back-pressure: re-issue the read.
                None => TaskStep::Read {
                    addr,
                    len: NODE_BYTES as u32,
                },
                Some(d) => {
                    let k = u64::from_le_bytes(d[0..8].try_into().expect("key"));
                    let rid = u64::from_le_bytes(d[8..16].try_into().expect("rid"));
                    let nxt = u64::from_le_bytes(d[16..24].try_into().expect("next"));
                    if k == self.key {
                        return TaskStep::Done(rid);
                    }
                    if nxt == 0 {
                        return TaskStep::Done(0);
                    }
                    if self.per_node_delay > 0 {
                        self.state = ProbeState::DelayThen(nxt);
                        return TaskStep::Delay(self.per_node_delay);
                    }
                    self.state = ProbeState::LoadNode(nxt);
                    TaskStep::Read {
                        addr: nxt,
                        len: NODE_BYTES as u32,
                    }
                }
            },
        }
    }
}

fn make_probes(
    workload: &WidxWorkload,
    bucket_base: u64,
    mask: u64,
    per_node_delay: u64,
) -> Vec<WidxProbe> {
    workload
        .probes
        .iter()
        .map(|&key| WidxProbe {
            key,
            bucket_base,
            mask,
            hash_latency: workload.hash_latency,
            per_node_delay,
            state: ProbeState::Hash,
        })
        .collect()
}

/// Derives an address cache of the *same data capacity* as an X-Cache
/// geometry (the paper keeps geometries identical across configurations,
/// §7.2), using 64-byte blocks.
#[must_use]
pub fn matched_address_cache_config(geometry: &XCacheConfig) -> CacheConfig {
    let capacity = geometry.data_capacity_bytes().max(1024);
    let ways = geometry.ways.max(1);
    let sets = ((capacity / (64 * ways as u64)).max(1) as usize).next_power_of_two();
    CacheConfig {
        sets,
        ways,
        block_bytes: 64,
        hit_latency: geometry.hit_latency,
        mshrs: geometry.active.max(4),
        policy: xcache_mem::ReplacementPolicy::Lru,
        ports: 1,
        prefetch_next: false,
    }
}

/// Shared probe-engine runner, also used by the DASX model (which passes a
/// nonzero `per_node_delay` for its hash-coupled walking).
pub(crate) fn run_probe_engine_with(
    workload: &WidxWorkload,
    label: &str,
    geometry: &XCacheConfig,
    parallelism: usize,
    per_node_delay: u64,
) -> RunReport {
    let (mem, bucket_base, mask) = memory_image(workload);
    let dram = DramModel::with_memory(DramConfig::default(), mem);
    let cache = AddressCache::new(matched_address_cache_config(geometry), dram);
    let tasks = make_probes(workload, bucket_base, mask, per_node_delay);
    let total = tasks.len() as u64;
    let mut engine = crate::common::ProbeEngine::new(cache, tasks, parallelism);
    let (cycles, checksum) = engine.run(5_000 * total + 1_000_000);
    assert_eq!(
        checksum,
        workload.oracle_checksum(),
        "{label} run diverged from the functional oracle"
    );
    let mut stats = Stats::new();
    stats.merge(engine.stats());
    stats.merge(engine.port().stats());
    stats.merge(engine.port().downstream().stats());
    RunReport {
        label: label.into(),
        cycles,
        stats: stats.snapshot(),
        checksum,
    }
}

/// [`run_address_cache`] with an explicit cache configuration (the
/// replacement-policy ablation).
#[must_use]
pub fn run_address_cache_with_policy(
    workload: &WidxWorkload,
    geometry: &XCacheConfig,
    cache_cfg: CacheConfig,
) -> RunReport {
    let (mem, bucket_base, mask) = memory_image(workload);
    let dram = DramModel::with_memory(DramConfig::default(), mem);
    let cache = AddressCache::new(cache_cfg, dram);
    let tasks = make_probes(workload, bucket_base, mask, 0);
    let total = tasks.len() as u64;
    let mut engine = crate::common::ProbeEngine::new(cache, tasks, geometry.active);
    let (cycles, checksum) = engine.run(5_000 * total + 1_000_000);
    assert_eq!(checksum, workload.oracle_checksum(), "policy run diverged");
    let mut stats = Stats::new();
    stats.merge(engine.stats());
    stats.merge(engine.port().stats());
    stats.merge(engine.port().downstream().stats());
    RunReport {
        label: "addr-cache".into(),
        cycles,
        stats: stats.snapshot(),
        checksum,
    }
}

/// Runs the address-based cache with an ideal walker (§8.1): the same
/// memory-level parallelism as the X-Cache's `#Active`, zero decision
/// cost, but every probe hashes and walks. `geometry` (default Table 3)
/// sizes the cache to the same capacity as the X-Cache it is compared to.
#[must_use]
pub fn run_address_cache(workload: &WidxWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let g = geometry.unwrap_or_else(XCacheConfig::widx);
    run_probe_engine_with(workload, "addr-cache", &g, g.active, 0)
}

/// Runs the hardwired Widx baseline: eight dedicated walker units (the
/// original design scales to a handful of walkers per core) over its
/// same-capacity address cache.
#[must_use]
pub fn run_baseline(workload: &WidxWorkload, geometry: Option<XCacheConfig>) -> RunReport {
    let g = geometry.unwrap_or_else(XCacheConfig::widx);
    run_probe_engine_with(workload, "baseline", &g, 8, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcache_workloads::QueryClass;

    /// Index ~4x the cache capacity, Zipf-skewed probes, and enough
    /// probes that compulsory misses amortise — the paper's regime
    /// (dataset >> on-chip storage, long-running join).
    fn small_workload(hash_latency: u64) -> WidxWorkload {
        let mut preset = QueryClass::Q19.preset().scaled_down(10);
        preset.hash_latency = hash_latency;
        preset.probes = 9_000;
        preset.miss_rate = 0.05;
        WidxWorkload::from_preset(&preset, 7)
    }

    fn small_geometry() -> XCacheConfig {
        XCacheConfig {
            sets: 128,
            ways: 4,
            data_sectors: 512,
            ..XCacheConfig::widx()
        }
    }

    #[test]
    fn xcache_run_matches_oracle() {
        let w = small_workload(12);
        let r = run_xcache(&w, Some(small_geometry()));
        assert_eq!(r.checksum, w.oracle_checksum());
        assert!(r.cycles > 0);
        assert!(
            r.stats.get("xcache.hit") > 0,
            "zipf stream must produce hits"
        );
    }

    #[test]
    fn sharded_run_matches_oracle_and_modes_agree() {
        use xcache_sim::{with_par_mode, with_par_threads, ParMode};
        let w = small_workload(12);
        let fingerprint = |r: &RunReport| (r.cycles, r.checksum, r.stats.clone());
        let seq = with_par_mode(ParMode::Seq, || {
            run_xcache_sharded(&w, Some(small_geometry()), 4)
        });
        assert!(seq.cycles > 0);
        assert!(
            seq.stats.get("xcache.hit") > 0,
            "zipf stream must produce hits"
        );
        assert!(
            seq.stats.get("bank.remote") > 0,
            "interleaved banks must see remote traffic"
        );
        for threads in [1usize, 2, 4] {
            let par = with_par_mode(ParMode::Par, || {
                with_par_threads(threads, || {
                    run_xcache_sharded(&w, Some(small_geometry()), 4)
                })
            });
            assert_eq!(
                fingerprint(&par),
                fingerprint(&seq),
                "par x{threads} diverged from seq"
            );
        }
    }

    #[test]
    fn address_cache_and_baseline_match_oracle() {
        let w = small_workload(12);
        let a = run_address_cache(&w, Some(small_geometry()));
        let b = run_baseline(&w, Some(small_geometry()));
        assert_eq!(a.checksum, w.oracle_checksum());
        assert_eq!(b.checksum, w.oracle_checksum());
    }

    #[test]
    fn xcache_beats_address_cache() {
        let w = small_workload(60);
        let x = run_xcache(&w, Some(small_geometry()));
        let a = run_address_cache(&w, Some(small_geometry()));
        let speedup = x.speedup_over(&a);
        assert!(
            speedup > 1.2,
            "x-cache should clearly beat the address cache (got {speedup:.2}x)"
        );
    }

    #[test]
    fn xcache_makes_fewer_dram_accesses() {
        let w = small_workload(12);
        let x = run_xcache(&w, Some(small_geometry()));
        let a = run_address_cache(&w, Some(small_geometry()));
        assert!(
            x.dram_accesses() < a.dram_accesses(),
            "meta-tags must cut DRAM traffic ({} vs {})",
            x.dram_accesses(),
            a.dram_accesses()
        );
    }

    #[test]
    fn string_keys_amplify_xcache_gain() {
        let cheap = small_workload(6);
        let expensive = small_workload(60);
        let g_cheap = run_xcache(&cheap, Some(small_geometry()))
            .speedup_over(&run_baseline(&cheap, Some(small_geometry())));
        let g_exp = run_xcache(&expensive, Some(small_geometry()))
            .speedup_over(&run_baseline(&expensive, Some(small_geometry())));
        assert!(
            g_exp > g_cheap,
            "60-cycle hashes should widen the gap ({g_exp:.2} vs {g_cheap:.2})"
        );
    }

    #[test]
    fn walker_program_is_valid_and_small() {
        let p = walker();
        assert!(p.validate().is_ok());
        assert!(p.microcode_words() < 40, "walker should stay compact");
        assert_eq!(p.state_names.len(), 3);
    }
}
