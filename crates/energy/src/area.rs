//! Analytical FPGA-utilisation and ASIC-area models (Figures 19 and 20).
//!
//! The paper synthesised the generated controller on a Cyclone IV
//! (Quartus II v13) and through OpenROAD to GDS at 45 nm. We cannot run
//! synthesis here, so this module provides the documented substitution:
//! an analytical model whose per-component costs are *calibrated* to the
//! paper's published numbers at the reference configuration
//! (`#Exe = 4, #Active = 8`) and scale with the generator parameters:
//!
//! * Figure 19 shares — registers: X-Reg 31%, Others 24%, Act.Meta 15%,
//!   Rtn.Table 10%, Action-Exec 20%; logic: Action-Exec 45%, Others 20%,
//!   X-Reg 20%, Act.Meta 11%, Rtn.Table 4%.
//! * Totals — 6985 logic elements (6% of the device), 3457 registers.
//! * Figure 20 — controller 0.11 mm² / 65 K cells at 45 nm; a 256 KB RAM
//!   is 0.8 mm².

use xcache_core::XCacheConfig;

/// The configuration the paper synthesised (`#Exe = 4, #Active = 8`).
#[must_use]
pub fn reference_config() -> XCacheConfig {
    XCacheConfig {
        exe: 4,
        active: 8,
        ..XCacheConfig::default()
    }
}

/// The reference configuration as a constant-like helper (re-export used
/// by harnesses).
pub static REFERENCE_CONFIG: fn() -> XCacheConfig = reference_config;

/// Published totals at the reference point.
const REF_REGS: f64 = 3457.0;
const REF_LOGIC: f64 = 6985.0;
const REF_ASIC_MM2: f64 = 0.11;
const REF_ASIC_CELLS: f64 = 65_000.0;
/// 256 KB of RAM at 45 nm occupies 0.8 mm² (§8.4).
const RAM_MM2_PER_BYTE: f64 = 0.8 / (256.0 * 1024.0);

/// Reference parameter values the shares were measured at.
const REF_EXE: f64 = 4.0;
const REF_ACTIVE: f64 = 8.0;

/// Per-component resource estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct ComponentShare {
    /// Component name (paper's labels).
    pub name: &'static str,
    /// Estimated registers (flip-flops).
    pub regs: f64,
    /// Estimated logic elements.
    pub logic: f64,
}

/// FPGA synthesis estimate (Figure 19).
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaReport {
    /// Per-component estimates.
    pub components: Vec<ComponentShare>,
    /// Total registers.
    pub total_regs: f64,
    /// Total logic elements.
    pub total_logic: f64,
    /// Device register capacity used (Cyclone IV EP4CGX150: ~149,760 LEs).
    pub device_logic_fraction: f64,
}

impl FpgaReport {
    /// Share of total registers used by `name` (0.0 if unknown).
    #[must_use]
    pub fn reg_share(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0.0, |c| c.regs / self.total_regs)
    }

    /// Share of total logic used by `name` (0.0 if unknown).
    #[must_use]
    pub fn logic_share(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|c| c.name == name)
            .map_or(0.0, |c| c.logic / self.total_logic)
    }
}

/// ASIC layout estimate (Figure 20).
#[derive(Debug, Clone, PartialEq)]
pub struct AsicReport {
    /// Controller area (no RAMs), mm² at 45 nm.
    pub controller_mm2: f64,
    /// Standard cells in the controller.
    pub controller_cells: f64,
    /// Data + tag RAM area, mm².
    pub ram_mm2: f64,
}

/// Cyclone IV EP4CGX150 logic elements.
const DEVICE_LES: f64 = 149_760.0;

/// Estimates FPGA utilisation for a configuration.
///
/// Component costs scale with their driving parameter (X-Reg and Act.Meta
/// with `#Active`, Action-Exec with `#Exe`, Rtn.Table with the table
/// footprint, Others fixed), normalised so the reference configuration
/// reproduces the paper's totals and shares.
#[must_use]
pub fn fpga_utilization(cfg: &XCacheConfig) -> FpgaReport {
    let active = cfg.active as f64 / REF_ACTIVE;
    let exe = cfg.exe as f64 / REF_EXE;
    // Routine-table footprint scales with the walker's regs per entry —
    // we use the geometry's X-reg width as the proxy the generator sizes
    // against (the harness passes per-walker routine-table sizes when it
    // has a concrete program).
    let table = 1.0;

    let components = vec![
        ComponentShare {
            name: "X-Reg",
            regs: 0.31 * REF_REGS * active,
            logic: 0.20 * REF_LOGIC * active,
        },
        ComponentShare {
            name: "Act. Meta",
            regs: 0.15 * REF_REGS * active,
            logic: 0.11 * REF_LOGIC * active,
        },
        ComponentShare {
            name: "Rtn. Table",
            regs: 0.10 * REF_REGS * table,
            logic: 0.04 * REF_LOGIC * table,
        },
        ComponentShare {
            name: "Action Exec.",
            regs: 0.20 * REF_REGS * exe,
            logic: 0.45 * REF_LOGIC * exe,
        },
        ComponentShare {
            name: "Others",
            regs: 0.24 * REF_REGS,
            logic: 0.20 * REF_LOGIC,
        },
    ];
    let total_regs = components.iter().map(|c| c.regs).sum();
    let total_logic: f64 = components.iter().map(|c| c.logic).sum();
    FpgaReport {
        device_logic_fraction: total_logic / DEVICE_LES,
        components,
        total_regs,
        total_logic,
    }
}

/// Estimates the 45 nm ASIC layout for a configuration plus its RAMs.
#[must_use]
pub fn asic_area(cfg: &XCacheConfig) -> AsicReport {
    let f = fpga_utilization(cfg);
    let scale = f.total_logic / REF_LOGIC;
    let tag_bytes = cfg.meta_entries() as u64 * crate::EnergyModel::meta_entry_bytes(cfg);
    let ram_bytes = cfg.data_capacity_bytes() + tag_bytes;
    AsicReport {
        controller_mm2: REF_ASIC_MM2 * scale,
        controller_cells: REF_ASIC_CELLS * scale,
        ram_mm2: ram_bytes as f64 * RAM_MM2_PER_BYTE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_point_reproduces_figure19() {
        let r = fpga_utilization(&reference_config());
        assert!((r.total_regs - REF_REGS).abs() < 1.0);
        assert!((r.total_logic - REF_LOGIC).abs() < 1.0);
        assert!((r.reg_share("X-Reg") - 0.31).abs() < 0.01);
        assert!((r.logic_share("Action Exec.") - 0.45).abs() < 0.01);
        // ~6% of the Cyclone IV.
        assert!((0.03..0.08).contains(&r.device_logic_fraction));
    }

    #[test]
    fn reference_point_reproduces_figure20() {
        let a = asic_area(&reference_config());
        assert!((a.controller_mm2 - 0.11).abs() < 1e-9);
        assert!((a.controller_cells - 65_000.0).abs() < 1.0);
        // 256 KB of data RAM ≈ 0.8 mm²: the default geometry is 1024 sets
        // × 8 ways × 2 sectors × 32 B = 512 KB data + tags.
        assert!(a.ram_mm2 > 0.8);
    }

    #[test]
    fn area_scales_with_parameters() {
        let small = fpga_utilization(&XCacheConfig {
            exe: 2,
            active: 4,
            ..XCacheConfig::default()
        });
        let big = fpga_utilization(&XCacheConfig {
            exe: 8,
            active: 32,
            ..XCacheConfig::default()
        });
        assert!(big.total_regs > small.total_regs * 2.0);
        assert!(big.total_logic > small.total_logic * 2.0);
        // Fixed "Others" means sublinear overall scaling.
        assert!(big.total_regs < small.total_regs * 8.0);
    }

    #[test]
    fn xreg_dominates_registers_action_exec_dominates_logic() {
        // The Figure 19 headline: "X-Reg uses the most register, and
        // Action-Executor units use the majority of the logic".
        let r = fpga_utilization(&reference_config());
        let max_reg = r
            .components
            .iter()
            .max_by(|a, b| a.regs.total_cmp(&b.regs))
            .expect("components nonempty");
        let max_logic = r
            .components
            .iter()
            .max_by(|a, b| a.logic.total_cmp(&b.logic))
            .expect("components nonempty");
        assert_eq!(max_reg.name, "X-Reg");
        assert_eq!(max_logic.name, "Action Exec.");
    }

    #[test]
    fn ram_area_tracks_capacity() {
        let small = asic_area(&XCacheConfig::test_tiny());
        let big = asic_area(&XCacheConfig::graphpulse());
        assert!(big.ram_mm2 > small.ram_mm2 * 10.0);
    }
}
