//! Table 4: energy parameters (timing: 1 GHz).

/// Per-event energy constants, exactly as Table 4 prints them.
///
/// Datapath-op entries are per *bit*; memory entries are per byte (tags)
/// or per 32-byte access (L1/data arrays).
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyParams {
    /// Register read/write, pJ per bit.
    pub register_pj_per_bit: f64,
    /// Adder, pJ per bit.
    pub add_pj_per_bit: f64,
    /// Multiplier, pJ per bit.
    pub mul_pj_per_bit: f64,
    /// Bitwise op, pJ per bit.
    pub bitwise_pj_per_bit: f64,
    /// Shifter, pJ per bit.
    pub shift_pj_per_bit: f64,
    /// Tag array access, pJ per byte.
    pub tag_pj_per_byte: f64,
    /// L1/data SRAM access, pJ per 32-byte access.
    pub l1_pj_per_32b: f64,
    /// Operand width of the controller datapath in bits.
    pub word_bits: u32,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self::paper_table4()
    }
}

impl EnergyParams {
    /// Table 4 of the paper, verbatim.
    #[must_use]
    pub fn paper_table4() -> Self {
        EnergyParams {
            register_pj_per_bit: 8.9e-3,
            add_pj_per_bit: 2.1e-1,
            mul_pj_per_bit: 12.6,
            bitwise_pj_per_bit: 1.8e-2,
            shift_pj_per_bit: 4.1e-1,
            tag_pj_per_byte: 2.7,
            l1_pj_per_32b: 44.8,
            word_bits: 64,
        }
    }

    /// Energy of one 64-bit register access in pJ.
    #[must_use]
    pub fn register_access_pj(&self) -> f64 {
        self.register_pj_per_bit * f64::from(self.word_bits)
    }

    /// Energy of one ALU action in pJ, averaged over the AGEN mix.
    ///
    /// The walkers' multiplies are all by generator-time constants
    /// (element sizes, pointer widths), which the hardware generator
    /// strength-reduces to shifts; only ~1% of AGEN work needs the full
    /// multiplier.
    #[must_use]
    pub fn alu_action_pj(&self) -> f64 {
        // Weighted mix observed across the five walkers: 60% add/sub,
        // 25% bitwise, 14% shift, 1% full multiply.
        let per_bit = 0.60 * self.add_pj_per_bit
            + 0.25 * self.bitwise_pj_per_bit
            + 0.14 * self.shift_pj_per_bit
            + 0.01 * self.mul_pj_per_bit;
        per_bit * f64::from(self.word_bits)
    }

    /// Energy of one microcode-RAM fetch of `bits` bits, in pJ. The
    /// routine RAM is a few hundred entries — register-file scale, far
    /// below the per-access energy of the kilobyte-scale data arrays.
    #[must_use]
    pub fn ucode_fetch_pj(&self, bits: u32) -> f64 {
        self.register_pj_per_bit * f64::from(bits)
    }

    /// Energy of one SRAM access of `bytes` bytes, in pJ (scaled from the
    /// 32-byte L1 figure).
    #[must_use]
    pub fn sram_access_pj(&self, bytes: u64) -> f64 {
        self.l1_pj_per_32b * (bytes as f64 / 32.0)
    }

    /// Energy of one tag access of `bytes` bytes, in pJ.
    #[must_use]
    pub fn tag_access_pj(&self, bytes: u64) -> f64 {
        self.tag_pj_per_byte * bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_values_verbatim() {
        let p = EnergyParams::paper_table4();
        assert_eq!(p.register_pj_per_bit, 8.9e-3);
        assert_eq!(p.add_pj_per_bit, 2.1e-1);
        assert_eq!(p.mul_pj_per_bit, 12.6);
        assert_eq!(p.bitwise_pj_per_bit, 1.8e-2);
        assert_eq!(p.shift_pj_per_bit, 4.1e-1);
        assert_eq!(p.tag_pj_per_byte, 2.7);
        assert_eq!(p.l1_pj_per_32b, 44.8);
    }

    #[test]
    fn derived_energies_scale() {
        let p = EnergyParams::default();
        assert!((p.register_access_pj() - 0.5696).abs() < 1e-9);
        assert_eq!(p.sram_access_pj(64), 89.6);
        assert_eq!(p.tag_access_pj(10), 27.0);
        // The ALU mix must sit between pure-bitwise and pure-multiply.
        assert!(p.alu_action_pj() > p.bitwise_pj_per_bit * 64.0);
        assert!(p.alu_action_pj() < p.mul_pj_per_bit * 64.0);
    }
}
