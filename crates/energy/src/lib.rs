//! # xcache-energy
//!
//! Energy, power-breakdown and synthesis-area models for the X-Cache
//! reproduction (§8.2, §8.4).
//!
//! The paper reduces power to *event counts × per-event energies*: RAM
//! arrays via a modified CACTI (`bsg_fakeram`), logic via validated
//! synthesis, with the per-bit constants of Table 4. This crate does the
//! same: [`EnergyParams`] holds Table 4 verbatim, and [`EnergyModel`]
//! converts the statistics counters every simulation produces into a
//! component-level [`EnergyBreakdown`] (data RAM / meta-tags / routine RAM
//! / X-registers / action logic), which the Figure 15/16 harnesses render.
//!
//! Figures 19/20 (FPGA utilisation and ASIC layout) come from a calibrated
//! analytical [`area`] model: component costs are anchored to the paper's
//! published breakdown at the reference configuration (#Exe=4, #Active=8,
//! Cyclone IV / 45 nm) and scale with the generator parameters.

pub mod area;

mod constants;
mod model;

pub use area::{asic_area, fpga_utilization, AsicReport, FpgaReport, REFERENCE_CONFIG};
pub use constants::EnergyParams;
pub use model::{EnergyBreakdown, EnergyModel};
