//! Event-count → energy accounting (Figures 15 and 16).

use xcache_core::XCacheConfig;
use xcache_sim::StatsSnapshot;

use crate::EnergyParams;

/// Component-level energy of one run, in picojoules.
///
/// The grouping matches Figure 16: on-chip data storage, meta-tags,
/// routine RAM (the programmability cost), X-registers, action-execution
/// logic, and the AGEN/walking share that a hardwired DSA would account
/// inside its datapath.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Data RAM (sector reads/writes).
    pub data_ram_pj: f64,
    /// Meta-tag array (probes, allocations, updates).
    pub meta_tag_pj: f64,
    /// Routine/microcode RAM fetches.
    pub routine_ram_pj: f64,
    /// X-register file traffic.
    pub xreg_pj: f64,
    /// Action execution logic (queues, control, meta/data management).
    pub action_logic_pj: f64,
    /// Address generation / walking ALU work.
    pub agen_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy in pJ.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.data_ram_pj
            + self.meta_tag_pj
            + self.routine_ram_pj
            + self.xreg_pj
            + self.action_logic_pj
            + self.agen_pj
    }

    /// Controller share (everything except the data RAM and tags) —
    /// "the cache controller itself requires ≃24% of the total cache
    /// power (including the walking logic)" (§8).
    #[must_use]
    pub fn controller_pj(&self) -> f64 {
        self.routine_ram_pj + self.xreg_pj + self.action_logic_pj + self.agen_pj
    }

    /// Fraction of total energy a component consumes.
    #[must_use]
    pub fn fraction(&self, component_pj: f64) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            component_pj / t
        }
    }

    /// Average power in milliwatts given the run length (1 GHz clock:
    /// one cycle = 1 ns).
    #[must_use]
    pub fn avg_power_mw(&self, cycles: u64) -> f64 {
        if cycles == 0 {
            return 0.0;
        }
        // pJ / ns = mW.
        self.total_pj() / cycles as f64
    }
}

/// Converts run statistics into energy using [`EnergyParams`].
#[derive(Debug, Clone, Default)]
pub struct EnergyModel {
    params: EnergyParams,
}

impl EnergyModel {
    /// A model with Table 4 parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A model with custom parameters.
    #[must_use]
    pub fn with_params(params: EnergyParams) -> Self {
        EnergyModel { params }
    }

    /// The parameters in use.
    #[must_use]
    pub fn params(&self) -> &EnergyParams {
        &self.params
    }

    /// Bytes of one meta-tag entry for `cfg` (key + state + sector span +
    /// flags, rounded up).
    #[must_use]
    pub fn meta_entry_bytes(cfg: &XCacheConfig) -> u64 {
        // 8 B key + 1 B state + 2×4 B sector pointers + flags ≈ 18 B.
        let _ = cfg;
        18
    }

    /// Energy of an X-Cache run from its merged statistics.
    #[must_use]
    pub fn xcache_energy(&self, stats: &StatsSnapshot, cfg: &XCacheConfig) -> EnergyBreakdown {
        let p = &self.params;
        let sector = cfg.sector_bytes();
        let tag_bytes = Self::meta_entry_bytes(cfg);

        let data_sector_accesses =
            stats.get("xcache.data_read_sector") + stats.get("xcache.data_write_sector");
        let data_word_accesses =
            stats.get("xcache.data_read_word") + stats.get("xcache.data_write_word");
        let data_ram_pj = data_sector_accesses as f64 * p.sram_access_pj(sector)
            + data_word_accesses as f64 * p.sram_access_pj(8);

        // A probe compares the 8-byte key; the full entry (pointers,
        // state) is only driven on writes.
        let meta_tag_pj = stats.get("xcache.tag_read") as f64 * p.tag_access_pj(8)
            + stats.get("xcache.tag_write") as f64 * p.tag_access_pj(tag_bytes);

        // One 128-bit microinstruction fetch per executed action.
        let routine_ram_pj =
            stats.get("xcache.ucode_read") as f64 * p.ucode_fetch_pj(xcache_isa::ACTION_BITS);

        let xreg_pj = (stats.get("xcache.xreg_read") + stats.get("xcache.xreg_write")) as f64
            * p.register_access_pj();

        let agen_pj = stats.get("xcache.action.agen") as f64 * p.alu_action_pj();

        // Non-AGEN actions: queue pushes, meta/data management, control —
        // register-transfer scale work.
        let other_actions = stats.get("xcache.action.queue")
            + stats.get("xcache.action.metatag")
            + stats.get("xcache.action.control")
            + stats.get("xcache.action.dataram");
        let action_logic_pj = other_actions as f64 * 2.0 * p.register_access_pj();

        EnergyBreakdown {
            data_ram_pj,
            meta_tag_pj,
            routine_ram_pj,
            xreg_pj,
            action_logic_pj,
            agen_pj,
        }
    }

    /// Energy of an address-cache run (the Figure 15 comparison): tag and
    /// data-array accesses at `block_bytes` granularity, plus the ideal
    /// walker's address-generation work (one ALU op per access issued —
    /// conservative, since the paper charges the hardwired walker zero).
    #[must_use]
    pub fn address_cache_energy(&self, stats: &StatsSnapshot, block_bytes: u64) -> EnergyBreakdown {
        let p = &self.params;
        // Address tags: ~6 B (tag + state) per access.
        let tag_accesses = stats.get("cache.tag_reads");
        let meta_tag_pj = tag_accesses as f64 * p.tag_access_pj(6);
        let data_accesses = stats.get("cache.data_reads")
            + stats.get("cache.data_writes")
            + stats.get("cache.fills")
            + stats.get("cache.writebacks");
        let data_ram_pj = data_accesses as f64 * p.sram_access_pj(block_bytes);
        let agen_pj = stats.get("engine.reads") as f64 * p.alu_action_pj();
        EnergyBreakdown {
            data_ram_pj,
            meta_tag_pj,
            routine_ram_pj: 0.0,
            xreg_pj: 0.0,
            action_logic_pj: 0.0,
            agen_pj,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcache_sim::Stats;

    fn snapshot(entries: &[(&'static str, u64)]) -> StatsSnapshot {
        let mut s = Stats::new();
        for (k, v) in entries {
            s.add(k, *v);
        }
        s.snapshot()
    }

    #[test]
    fn breakdown_totals_and_fractions() {
        let b = EnergyBreakdown {
            data_ram_pj: 70.0,
            meta_tag_pj: 10.0,
            routine_ram_pj: 5.0,
            xreg_pj: 5.0,
            action_logic_pj: 5.0,
            agen_pj: 5.0,
        };
        assert_eq!(b.total_pj(), 100.0);
        assert_eq!(b.controller_pj(), 20.0);
        assert!((b.fraction(b.data_ram_pj) - 0.7).abs() < 1e-12);
        assert_eq!(b.avg_power_mw(100), 1.0);
    }

    #[test]
    fn xcache_energy_data_dominates_for_data_heavy_runs() {
        // Shape target of Figure 16 for a wide-entry DSA (SpArch/Gamma
        // rows span many sectors, so each tag probe amortises over many
        // sector transfers): 66-89% of energy on data, tags a few percent
        // of the data RAM energy.
        let stats = snapshot(&[
            ("xcache.data_read_sector", 90_000),
            ("xcache.data_write_sector", 30_000),
            ("xcache.tag_read", 12_000),
            ("xcache.tag_write", 2_000),
            ("xcache.ucode_read", 40_000),
            ("xcache.xreg_read", 30_000),
            ("xcache.xreg_write", 20_000),
            ("xcache.action.agen", 12_000),
            ("xcache.action.queue", 10_000),
            ("xcache.action.control", 12_000),
            ("xcache.action.metatag", 4_000),
            ("xcache.action.dataram", 6_000),
        ]);
        let cfg = XCacheConfig::sparch();
        let b = EnergyModel::new().xcache_energy(&stats, &cfg);
        let data_frac = b.fraction(b.data_ram_pj);
        assert!(
            (0.66..0.95).contains(&data_frac),
            "data share {data_frac:.2} out of expected band"
        );
        // Tags are a small share of the data energy (paper: 1.5-6.5%).
        let tag_vs_data = b.meta_tag_pj / b.data_ram_pj;
        assert!(
            (0.01..0.10).contains(&tag_vs_data),
            "tag/data ratio {tag_vs_data:.3} out of band"
        );
        assert!(b.routine_ram_pj > 0.0);
        // The programmable routine RAM is a small tax (paper: <4.2%).
        assert!(b.fraction(b.routine_ram_pj) < 0.042);
    }

    #[test]
    fn address_cache_energy_counts_blocks() {
        let stats = snapshot(&[
            ("cache.tag_reads", 1_000),
            ("cache.data_reads", 800),
            ("cache.fills", 200),
            ("engine.reads", 1_000),
        ]);
        let b = EnergyModel::new().address_cache_energy(&stats, 64);
        assert!(b.data_ram_pj > 0.0);
        assert!(b.meta_tag_pj > 0.0);
        assert_eq!(b.routine_ram_pj, 0.0);
        // 64-byte blocks: each data access costs 2x the 32-byte figure.
        assert!((b.data_ram_pj - 1_000.0 * 89.6).abs() < 1e-6);
    }

    #[test]
    fn zero_stats_zero_energy() {
        let b = EnergyModel::new().xcache_energy(&StatsSnapshot::default(), &XCacheConfig::widx());
        assert_eq!(b.total_pj(), 0.0);
        assert_eq!(b.avg_power_mw(0), 0.0);
    }
}
