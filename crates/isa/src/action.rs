//! The microcode action set (Figure 8).
//!
//! "We adopt actions that can be implemented atomically in hardware with
//! fixed latency in 1 cycle. There are five different categories of actions
//! targeting each hardware module: address generation, message queue,
//! Meta-tag, control flow, and data RAMs." (§4.1 ⑤)
//!
//! Operands can be *explicit* (an immediate), *implicit* (the walker's own
//! meta key, the message at the head of its queue), or *DSA-specific*
//! (a parameter from the generator configuration) — mirroring the paper.

use std::fmt;

use crate::{EventId, StateId};

/// An X-register index within a walker's temporary register file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Operand {
    /// An X-register (walker temporary).
    Reg(Reg),
    /// An explicit immediate.
    Imm(u64),
    /// The meta key of the access that launched this walker (implicit).
    Key,
    /// Word `i` of the payload accompanying the waking event (implicit).
    MsgWord(u8),
    /// DSA-specific parameter `i` from the generator configuration
    /// (e.g. a table base address or element size).
    Param(u8),
    /// The first data-RAM sector recorded in this walker's meta-tag entry
    /// (implicit) — lets Update routines address the cached data.
    MetaSector,
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{v}"),
            Operand::Key => write!(f, "key"),
            Operand::MsgWord(i) => write!(f, "msg{i}"),
            Operand::Param(i) => write!(f, "p{i}"),
            Operand::MetaSector => write!(f, "sector"),
        }
    }
}

/// ALU operation for the AGEN category.
///
/// Covers the paper's `add, and, or, xor, addi, inc, dec, shl, shr, sra,
/// srl, not` — immediates are folded into [`Operand::Imm`], so `addi`/`inc`/
/// `dec` are `Add` with an immediate operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `dst = a + b`
    Add,
    /// `dst = a - b`
    Sub,
    /// `dst = a & b`
    And,
    /// `dst = a | b`
    Or,
    /// `dst = a ^ b`
    Xor,
    /// `dst = a << b`
    Shl,
    /// `dst = a >> b` (logical, the paper's `srl`/`shr`)
    Srl,
    /// `dst = a >> b` (arithmetic)
    Sra,
    /// `dst = a * b` — used by address generation for element sizes.
    Mul,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Mul => "mul",
        };
        f.write_str(s)
    }
}

/// Branch condition for the control-flow category
/// (`bmiss, bhit, beq, bnz, blt, bge, ble`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Taken if `a == b` (`beq`).
    Eq,
    /// Taken if `a != b` (`bnz` generalised to two operands).
    Ne,
    /// Taken if `a < b` (`blt`).
    Lt,
    /// Taken if `a >= b` (`bge`).
    Ge,
    /// Taken if `a <= b` (`ble`).
    Le,
    /// Taken if the walker's key probe missed the meta-tags (`bmiss`).
    Miss,
    /// Taken if the walker's key probe hit the meta-tags (`bhit`).
    Hit,
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Le => "ble",
            Cond::Miss => "bmiss",
            Cond::Hit => "bhit",
        };
        f.write_str(s)
    }
}

/// The five hardware modules an action can target (Figure 8's table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionCategory {
    /// ALU / address generation.
    Agen,
    /// Message queues (DRAM request queue, internal event queue, datapath
    /// response queue).
    Queue,
    /// Meta-tag array management.
    MetaTag,
    /// Control flow within a routine + terminators.
    Control,
    /// Data RAM (sector) management.
    DataRam,
}

/// One single-cycle microcode action.
///
/// Every action is atomic and fixed-latency; long-latency work (DRAM fills,
/// hashes) is *initiated* by an action and *completed* by a later event,
/// with the walker yielding in between — that is the coroutine discipline
/// of §4.2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    // ---- AGEN ----
    /// `dst = op(a, b)`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination X-register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// `dst = a` (register move / load immediate / latch the key).
    Mov {
        /// Destination X-register.
        dst: Reg,
        /// Source.
        a: Operand,
    },
    /// Claims the walker's X-register file; occupancy is charged from this
    /// point (the paper's `allocR`).
    AllocR,
    /// Starts the DSA-specific hash unit on `a`; the result arrives with a
    /// `HashDone`-style custom event whose payload word 0 is the digest.
    /// The unit's latency is a generator parameter (60 cycles for Widx's
    /// string keys, §8.1).
    Hash {
        /// Event to post on completion.
        done: EventId,
        /// Value to hash.
        a: Operand,
    },

    // ---- Queue ----
    /// Enqueues a DRAM read of `len` bytes at address `addr`; the response
    /// wakes this walker with [`EventId::FILL`] (`enq` toward memory).
    DramRead {
        /// Byte address.
        addr: Operand,
        /// Transfer length in bytes.
        len: Operand,
    },
    /// Enqueues a DRAM write of `len` bytes at `addr`, data taken from the
    /// data RAM starting at sector `sector`.
    DramWrite {
        /// Byte address.
        addr: Operand,
        /// Source sector pointer.
        sector: Operand,
        /// Transfer length in bytes.
        len: Operand,
    },
    /// Posts internal event `event` to this walker after `delay` cycles
    /// (self-wakeup; models dependence chains like AGEN→use).
    PostEvent {
        /// Event to post.
        event: EventId,
        /// Cycles until delivery.
        delay: u16,
        /// Payload word 0 carried with the event.
        payload: Operand,
    },
    /// `dst = payload word i` of the event that woke this routine
    /// (the paper's `peek`/`read-data`).
    Peek {
        /// Destination X-register.
        dst: Reg,
        /// Payload word index.
        word: u8,
    },
    /// Delivers the walker's data (the sectors recorded in its meta-tag
    /// entry) to the DSA datapath, completing the original meta access
    /// (`write-data` toward the compute datapath).
    Respond,

    // ---- Meta-tag ----
    /// Allocates a meta-tag entry for the walker's key (`allocM`). The
    /// entry starts with no sectors and the walker's current state.
    AllocM,
    /// Frees the walker's meta-tag entry (`deallocM`) — e.g. a failed walk.
    DeallocM,
    /// Pins the walker's meta-tag entry: it can never be evicted. Used for
    /// entries whose data exists only on-chip (GraphPulse event payloads).
    PinM,
    /// Best-effort side-insert: caches the first `words` words of the
    /// current fill payload under the *computed* tag `key` (not the
    /// walker's own key). Lets a chain walk cache every node it touches
    /// under that node's key — "X-Cache caches the actual nodes in the
    /// hash table and tags them with the hash keys" (§5). Skipped
    /// silently when the tag set or data RAM has no idle capacity.
    InsertM {
        /// The tag to insert under.
        key: Operand,
        /// Payload words to copy from the current fill.
        words: Operand,
    },
    /// Writes the sector span `[start, end)` into the meta-tag entry
    /// (`update`).
    UpdateM {
        /// First data-RAM sector.
        start: Operand,
        /// One past the last sector.
        end: Operand,
    },

    // ---- Control ----
    /// Conditional branch to action index `target` within this routine.
    Branch {
        /// Condition.
        cond: Cond,
        /// Left comparand (ignored for `Miss`/`Hit`).
        a: Operand,
        /// Right comparand (ignored for `Miss`/`Hit`).
        b: Operand,
        /// Target action index within the routine.
        target: u8,
    },
    /// Terminator: record `state` in the meta-tag entry and yield the
    /// pipeline until the next event for this walker (the paper's `state`
    /// update ending every routine).
    Yield {
        /// Next coroutine state.
        state: StateId,
    },
    /// Terminator: the walk succeeded; release the X-registers. The
    /// meta-tag entry remains valid (the data is now cached).
    Retire,
    /// Terminator: the walk failed; release the X-registers *and* the
    /// meta-tag entry, and answer the datapath with "not found".
    Fault,

    // ---- Data RAM ----
    /// Allocates `count` sectors; `dst` receives the first sector index
    /// (`allocD`). May evict a victim entry (and its meta-tag) if full.
    AllocD {
        /// Destination X-register for the sector pointer.
        dst: Reg,
        /// Number of sectors.
        count: Operand,
    },
    /// Frees the sectors held by the walker's meta-tag entry (`deallocD`).
    DeallocD,
    /// `dst = word `word` of sector `sector`` (`read`).
    ReadD {
        /// Destination X-register.
        dst: Reg,
        /// Sector index.
        sector: Operand,
        /// Word offset within the sector.
        word: Operand,
    },
    /// Writes `value` into word `word` of sector `sector` (`write`).
    WriteD {
        /// Sector index.
        sector: Operand,
        /// Word offset within the sector.
        word: Operand,
        /// Value to store.
        value: Operand,
    },
    /// Copies `words` words of the waking DRAM response into the data RAM
    /// starting at sector `sector` ("the miss walkers copy the DRAM
    /// response sector-by-sector into the data RAM", §4.1 ⑥).
    FillD {
        /// Destination sector pointer.
        sector: Operand,
        /// Number of payload words to copy.
        words: Operand,
    },
}

impl Action {
    /// The hardware module this action drives.
    #[must_use]
    pub fn category(&self) -> ActionCategory {
        match self {
            Action::Alu { .. } | Action::Mov { .. } | Action::AllocR | Action::Hash { .. } => {
                ActionCategory::Agen
            }
            Action::DramRead { .. }
            | Action::DramWrite { .. }
            | Action::PostEvent { .. }
            | Action::Peek { .. }
            | Action::Respond => ActionCategory::Queue,
            Action::AllocM
            | Action::DeallocM
            | Action::PinM
            | Action::UpdateM { .. }
            | Action::InsertM { .. } => ActionCategory::MetaTag,
            Action::Branch { .. } | Action::Yield { .. } | Action::Retire | Action::Fault => {
                ActionCategory::Control
            }
            Action::AllocD { .. }
            | Action::DeallocD
            | Action::ReadD { .. }
            | Action::WriteD { .. }
            | Action::FillD { .. } => ActionCategory::DataRam,
        }
    }

    /// Whether this action ends its routine.
    #[must_use]
    pub fn is_terminator(&self) -> bool {
        matches!(self, Action::Yield { .. } | Action::Retire | Action::Fault)
    }

    /// The X-registers this action reads.
    #[must_use]
    pub fn reads(&self) -> Vec<Reg> {
        fn op(o: &Operand, out: &mut Vec<Reg>) {
            if let Operand::Reg(r) = o {
                out.push(*r);
            }
        }
        let mut v = Vec::new();
        match self {
            Action::Alu { a, b, .. } => {
                op(a, &mut v);
                op(b, &mut v);
            }
            Action::Mov { a, .. } | Action::Hash { a, .. } => op(a, &mut v),
            Action::DramRead { addr, len } => {
                op(addr, &mut v);
                op(len, &mut v);
            }
            Action::DramWrite { addr, sector, len } => {
                op(addr, &mut v);
                op(sector, &mut v);
                op(len, &mut v);
            }
            Action::PostEvent { payload, .. } => op(payload, &mut v),
            Action::UpdateM { start, end }
            | Action::InsertM {
                key: start,
                words: end,
            } => {
                op(start, &mut v);
                op(end, &mut v);
            }
            Action::Branch { a, b, .. } => {
                op(a, &mut v);
                op(b, &mut v);
            }
            Action::AllocD { count, .. } => op(count, &mut v),
            Action::ReadD { sector, word, .. } => {
                op(sector, &mut v);
                op(word, &mut v);
            }
            Action::WriteD {
                sector,
                word,
                value,
            } => {
                op(sector, &mut v);
                op(word, &mut v);
                op(value, &mut v);
            }
            Action::FillD { sector, words } => {
                op(sector, &mut v);
                op(words, &mut v);
            }
            _ => {}
        }
        v
    }

    /// The X-register this action writes, if any.
    #[must_use]
    pub fn writes(&self) -> Option<Reg> {
        match self {
            Action::Alu { dst, .. }
            | Action::Mov { dst, .. }
            | Action::Peek { dst, .. }
            | Action::AllocD { dst, .. }
            | Action::ReadD { dst, .. } => Some(*dst),
            _ => None,
        }
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            Action::Mov { dst, a } => write!(f, "mov {dst}, {a}"),
            Action::AllocR => write!(f, "allocR"),
            Action::Hash { done, a } => write!(f, "hash {done}, {a}"),
            Action::DramRead { addr, len } => write!(f, "dram_read {addr}, {len}"),
            Action::DramWrite { addr, sector, len } => {
                write!(f, "dram_write {addr}, {sector}, {len}")
            }
            Action::PostEvent {
                event,
                delay,
                payload,
            } => write!(f, "post {event}, {delay}, {payload}"),
            Action::Peek { dst, word } => write!(f, "peek {dst}, {word}"),
            Action::Respond => write!(f, "respond"),
            Action::AllocM => write!(f, "allocM"),
            Action::DeallocM => write!(f, "deallocM"),
            Action::PinM => write!(f, "pinm"),
            Action::InsertM { key, words } => write!(f, "insertm {key}, {words}"),
            Action::UpdateM { start, end } => write!(f, "updatem {start}, {end}"),
            Action::Branch { cond, a, b, target } => write!(f, "{cond} {a}, {b}, @{target}"),
            Action::Yield { state } => write!(f, "yield {state}"),
            Action::Retire => write!(f, "retire"),
            Action::Fault => write!(f, "fault"),
            Action::AllocD { dst, count } => write!(f, "allocD {dst}, {count}"),
            Action::DeallocD => write!(f, "deallocD"),
            Action::ReadD { dst, sector, word } => write!(f, "readd {dst}, {sector}, {word}"),
            Action::WriteD {
                sector,
                word,
                value,
            } => write!(f, "writed {sector}, {word}, {value}"),
            Action::FillD { sector, words } => write!(f, "filld {sector}, {words}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn categories_cover_all_modules() {
        assert_eq!(
            Action::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Key,
                b: Operand::Imm(1)
            }
            .category(),
            ActionCategory::Agen
        );
        assert_eq!(
            Action::DramRead {
                addr: Operand::Reg(Reg(0)),
                len: Operand::Imm(64)
            }
            .category(),
            ActionCategory::Queue
        );
        assert_eq!(Action::AllocM.category(), ActionCategory::MetaTag);
        assert_eq!(Action::Retire.category(), ActionCategory::Control);
        assert_eq!(Action::DeallocD.category(), ActionCategory::DataRam);
    }

    #[test]
    fn terminators_detected() {
        assert!(Action::Yield {
            state: StateId::DEFAULT
        }
        .is_terminator());
        assert!(Action::Retire.is_terminator());
        assert!(Action::Fault.is_terminator());
        assert!(!Action::AllocM.is_terminator());
    }

    #[test]
    fn read_write_sets() {
        let a = Action::Alu {
            op: AluOp::Add,
            dst: Reg(2),
            a: Operand::Reg(Reg(0)),
            b: Operand::Reg(Reg(1)),
        };
        assert_eq!(a.reads(), vec![Reg(0), Reg(1)]);
        assert_eq!(a.writes(), Some(Reg(2)));
        assert_eq!(Action::Respond.reads(), vec![]);
        assert_eq!(Action::Respond.writes(), None);
    }

    #[test]
    fn display_round_readable() {
        let a = Action::Branch {
            cond: Cond::Eq,
            a: Operand::Reg(Reg(1)),
            b: Operand::Key,
            target: 5,
        };
        assert_eq!(a.to_string(), "beq r1, key, @5");
        assert_eq!(
            Action::Mov {
                dst: Reg(0),
                a: Operand::Param(2)
            }
            .to_string(),
            "mov r0, p2"
        );
    }
}
