//! The walker assembly language and its compiler.
//!
//! This is the reproduction of the paper's walker toolflow (§7.1): "a
//! compiler that combines DSA-specific walking and cache management FSMs,
//! and translates them into a microcode binary that runs on a programmable
//! controller". The designer writes a table-driven description — states,
//! events, routines, and the `(state, event) → routine` transitions — and
//! [`assemble`] produces a validated [`WalkerProgram`].
//!
//! # Language
//!
//! ```text
//! walker widx                       ; walker name
//! states Default, Data              ; state 0 must be Default
//! events HashDone                   ; Miss/Fill/Update are built in
//! regs 4                            ; X-registers per walker
//! params table_base, node_bytes     ; DSA-specific parameters
//!
//! routine start {
//!     allocR
//!     allocM
//!     hash HashDone, key            ; long-latency: start hash, then...
//!     yield Default                 ; ...yield until HashDone
//! }
//!
//! routine probe {
//!     peek r0, 0                    ; r0 = hash digest
//!     mul r1, r0, node_bytes
//!     add r1, r1, table_base
//!     dram_read r1, node_bytes
//!     yield Data
//! }
//!
//! routine check {
//!     peek r2, 0                    ; node's key
//!     beq r2, key, @found
//!     peek r1, 1                    ; node's next pointer
//!     dram_read r1, node_bytes
//!     yield Data
//! found:
//!     allocD r3, 1
//!     filld r3, 4
//!     updatem r3, r3
//!     respond
//!     retire
//! }
//!
//! on Default, Miss -> start
//! on Default, HashDone -> probe
//! on Data, Fill -> check
//! ```
//!
//! Comments run from `;` or `#` to end of line. Branch targets are labels
//! (`name:` on its own line) or absolute action indices (`@3`). Operands
//! are registers (`r0`), immediates (decimal or `0x…`), the implicit `key`,
//! event-payload words (`msg0`), or declared parameter names.

use std::collections::HashMap;
use std::fmt;

use crate::{
    Action, AluOp, Cond, EventId, Operand, ProgramError, Reg, Routine, RoutineId, RoutineTable,
    StateId, WalkerProgram,
};

/// An assembly error with its source line (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line of the problem (0 for file-level problems).
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "line {}: {}", self.line, self.message)
        } else {
            f.write_str(&self.message)
        }
    }
}

impl std::error::Error for AsmError {}

impl AsmError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        AsmError {
            line,
            message: message.into(),
        }
    }
}

/// Architectural event names always present, in id order.
const BUILTIN_EVENTS: [&str; 3] = ["Miss", "Fill", "Update"];

#[derive(Default)]
struct Ctx {
    name: String,
    states: Vec<String>,
    events: Vec<String>,
    regs: u8,
    params: Vec<String>,
    routines: Vec<Routine>,
    routine_ids: HashMap<String, RoutineId>,
    transitions: Vec<(usize, String, String, String)>, // line, state, event, routine
}

impl Ctx {
    fn state_id(&self, name: &str, line: usize) -> Result<StateId, AsmError> {
        self.states
            .iter()
            .position(|s| s == name)
            .map(|i| StateId(i as u8))
            .ok_or_else(|| AsmError::at(line, format!("unknown state `{name}`")))
    }

    fn event_id(&self, name: &str, line: usize) -> Result<EventId, AsmError> {
        self.events
            .iter()
            .position(|s| s == name)
            .map(|i| EventId(i as u8))
            .ok_or_else(|| AsmError::at(line, format!("unknown event `{name}`")))
    }

    fn operand(&self, tok: &str, line: usize) -> Result<Operand, AsmError> {
        if tok == "key" {
            return Ok(Operand::Key);
        }
        if tok == "sector" {
            return Ok(Operand::MetaSector);
        }
        if let Some(rest) = tok.strip_prefix('r') {
            if let Ok(n) = rest.parse::<u8>() {
                return Ok(Operand::Reg(Reg(n)));
            }
        }
        if let Some(rest) = tok.strip_prefix("msg") {
            if let Ok(n) = rest.parse::<u8>() {
                return Ok(Operand::MsgWord(n));
            }
        }
        if let Some(rest) = tok.strip_prefix("0x") {
            if let Ok(v) = u64::from_str_radix(rest, 16) {
                return Ok(Operand::Imm(v));
            }
        }
        if let Ok(v) = tok.parse::<u64>() {
            return Ok(Operand::Imm(v));
        }
        if let Some(i) = self.params.iter().position(|p| p == tok) {
            return Ok(Operand::Param(i as u8));
        }
        Err(AsmError::at(line, format!("cannot parse operand `{tok}`")))
    }

    fn reg(&self, tok: &str, line: usize) -> Result<Reg, AsmError> {
        match self.operand(tok, line)? {
            Operand::Reg(r) => Ok(r),
            _ => Err(AsmError::at(
                line,
                format!("expected a register, got `{tok}`"),
            )),
        }
    }
}

fn split_csv(s: &str) -> Vec<String> {
    s.split(',')
        .map(|t| t.trim().to_owned())
        .filter(|t| !t.is_empty())
        .collect()
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find([';', '#']).unwrap_or(line.len());
    line[..cut].trim()
}

/// A branch target before label resolution.
enum PendingTarget {
    Index(u8),
    Label(String),
}

/// Assembles walker source text into a validated [`WalkerProgram`].
///
/// # Errors
///
/// Returns the first syntax error encountered, or (after a syntactically
/// clean parse) the structural validation errors joined into one message.
pub fn assemble(source: &str) -> Result<WalkerProgram, AsmError> {
    let mut ctx = Ctx {
        events: BUILTIN_EVENTS.iter().map(|s| (*s).to_owned()).collect(),
        regs: 4,
        ..Ctx::default()
    };

    let mut lines = source.lines().enumerate().peekable();
    while let Some((idx, raw)) = lines.next() {
        let lno = idx + 1;
        let line = strip_comment(raw);
        if line.is_empty() {
            continue;
        }
        let (kw, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        let rest = rest.trim();
        match kw {
            "walker" => ctx.name = rest.to_owned(),
            "states" => {
                ctx.states = split_csv(rest);
                if ctx.states.first().map(String::as_str) != Some("Default") {
                    return Err(AsmError::at(lno, "state 0 must be named `Default`"));
                }
            }
            "events" => {
                for e in split_csv(rest) {
                    if !ctx.events.contains(&e) {
                        ctx.events.push(e);
                    }
                }
            }
            "regs" => {
                ctx.regs = rest
                    .parse()
                    .map_err(|_| AsmError::at(lno, "regs expects an integer"))?;
            }
            "params" => ctx.params = split_csv(rest),
            "routine" => {
                let name = rest
                    .strip_suffix('{')
                    .map(str::trim)
                    .ok_or_else(|| AsmError::at(lno, "expected `routine <name> {`"))?
                    .to_owned();
                if name.is_empty() {
                    return Err(AsmError::at(lno, "routine needs a name"));
                }
                if ctx.routine_ids.contains_key(&name) {
                    return Err(AsmError::at(lno, format!("duplicate routine `{name}`")));
                }
                let mut actions: Vec<(usize, Action, Option<PendingTarget>)> = Vec::new();
                let mut labels: HashMap<String, u8> = HashMap::new();
                let mut closed = false;
                for (bidx, braw) in lines.by_ref() {
                    let blno = bidx + 1;
                    let bline = strip_comment(braw);
                    if bline.is_empty() {
                        continue;
                    }
                    if bline == "}" {
                        closed = true;
                        break;
                    }
                    if let Some(label) = bline.strip_suffix(':') {
                        let label = label.trim();
                        if labels
                            .insert(label.to_owned(), actions.len() as u8)
                            .is_some()
                        {
                            return Err(AsmError::at(blno, format!("duplicate label `{label}`")));
                        }
                        continue;
                    }
                    let (action, pending) = parse_instruction(&ctx, bline, blno)?;
                    actions.push((blno, action, pending));
                }
                if !closed {
                    return Err(AsmError::at(lno, format!("routine `{name}` missing `}}`")));
                }
                // Resolve labels.
                let mut resolved = Vec::with_capacity(actions.len());
                for (alno, mut action, pending) in actions {
                    if let Some(p) = pending {
                        let t = match p {
                            PendingTarget::Index(i) => i,
                            PendingTarget::Label(l) => *labels.get(&l).ok_or_else(|| {
                                AsmError::at(alno, format!("unknown label `{l}`"))
                            })?,
                        };
                        if let Action::Branch { target, .. } = &mut action {
                            *target = t;
                        }
                    }
                    resolved.push(action);
                }
                ctx.routine_ids
                    .insert(name.clone(), RoutineId(ctx.routines.len() as u16));
                ctx.routines.push(Routine {
                    name,
                    actions: resolved,
                });
            }
            "on" => {
                // on State, Event -> routine
                let (pair, routine) = rest
                    .split_once("->")
                    .ok_or_else(|| AsmError::at(lno, "expected `on State, Event -> routine`"))?;
                let parts = split_csv(pair);
                if parts.len() != 2 {
                    return Err(AsmError::at(lno, "expected `on State, Event -> routine`"));
                }
                ctx.transitions.push((
                    lno,
                    parts[0].clone(),
                    parts[1].clone(),
                    routine.trim().to_owned(),
                ));
            }
            other => {
                return Err(AsmError::at(lno, format!("unknown directive `{other}`")));
            }
        }
    }

    if ctx.states.is_empty() {
        return Err(AsmError::at(0, "no `states` directive"));
    }
    let mut table = RoutineTable::new(ctx.states.len() as u8, ctx.events.len() as u8);
    for (lno, s, e, r) in &ctx.transitions {
        let sid = ctx.state_id(s, *lno)?;
        let eid = ctx.event_id(e, *lno)?;
        let rid = *ctx
            .routine_ids
            .get(r)
            .ok_or_else(|| AsmError::at(*lno, format!("unknown routine `{r}`")))?;
        table.set(sid, eid, rid);
    }

    let program = WalkerProgram {
        name: ctx.name,
        state_names: ctx.states,
        event_names: ctx.events,
        regs: ctx.regs,
        param_names: ctx.params,
        routines: ctx.routines,
        table,
    };
    program.validate().map_err(|errs| {
        let msgs: Vec<String> = errs.iter().map(ProgramError::to_string).collect();
        AsmError::at(0, msgs.join("; "))
    })?;
    Ok(program)
}

fn parse_target(tok: &str, line: usize) -> Result<PendingTarget, AsmError> {
    let t = tok
        .strip_prefix('@')
        .ok_or_else(|| AsmError::at(line, format!("branch target must start with @: `{tok}`")))?;
    if let Ok(i) = t.parse::<u8>() {
        Ok(PendingTarget::Index(i))
    } else {
        Ok(PendingTarget::Label(t.to_owned()))
    }
}

#[allow(clippy::too_many_lines)]
fn parse_instruction(
    ctx: &Ctx,
    line: &str,
    lno: usize,
) -> Result<(Action, Option<PendingTarget>), AsmError> {
    let (mn, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let args = split_csv(rest);
    let argc = args.len();
    let wrong =
        |want: usize| AsmError::at(lno, format!("`{mn}` expects {want} operand(s), got {argc}"));

    let alu = |op: AluOp| -> Result<(Action, Option<PendingTarget>), AsmError> {
        if argc != 3 {
            return Err(wrong(3));
        }
        Ok((
            Action::Alu {
                op,
                dst: ctx.reg(&args[0], lno)?,
                a: ctx.operand(&args[1], lno)?,
                b: ctx.operand(&args[2], lno)?,
            },
            None,
        ))
    };
    let branch =
        |cond: Cond, operands: bool| -> Result<(Action, Option<PendingTarget>), AsmError> {
            if operands {
                if argc != 3 {
                    return Err(wrong(3));
                }
                Ok((
                    Action::Branch {
                        cond,
                        a: ctx.operand(&args[0], lno)?,
                        b: ctx.operand(&args[1], lno)?,
                        target: 0,
                    },
                    Some(parse_target(&args[2], lno)?),
                ))
            } else {
                if argc != 1 {
                    return Err(wrong(1));
                }
                Ok((
                    Action::Branch {
                        cond,
                        a: Operand::Imm(0),
                        b: Operand::Imm(0),
                        target: 0,
                    },
                    Some(parse_target(&args[0], lno)?),
                ))
            }
        };

    match mn {
        "add" => alu(AluOp::Add),
        "sub" => alu(AluOp::Sub),
        "and" => alu(AluOp::And),
        "or" => alu(AluOp::Or),
        "xor" => alu(AluOp::Xor),
        "shl" => alu(AluOp::Shl),
        "srl" | "shr" => alu(AluOp::Srl),
        "sra" => alu(AluOp::Sra),
        "mul" => alu(AluOp::Mul),
        "mov" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            Ok((
                Action::Mov {
                    dst: ctx.reg(&args[0], lno)?,
                    a: ctx.operand(&args[1], lno)?,
                },
                None,
            ))
        }
        "allocR" | "allocr" => Ok((Action::AllocR, None)),
        "hash" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            Ok((
                Action::Hash {
                    done: ctx.event_id(&args[0], lno)?,
                    a: ctx.operand(&args[1], lno)?,
                },
                None,
            ))
        }
        "dram_read" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            Ok((
                Action::DramRead {
                    addr: ctx.operand(&args[0], lno)?,
                    len: ctx.operand(&args[1], lno)?,
                },
                None,
            ))
        }
        "dram_write" => {
            if argc != 3 {
                return Err(wrong(3));
            }
            Ok((
                Action::DramWrite {
                    addr: ctx.operand(&args[0], lno)?,
                    sector: ctx.operand(&args[1], lno)?,
                    len: ctx.operand(&args[2], lno)?,
                },
                None,
            ))
        }
        "post" => {
            if argc != 3 {
                return Err(wrong(3));
            }
            let delay: u16 = args[1]
                .parse()
                .map_err(|_| AsmError::at(lno, "post delay must be an integer"))?;
            Ok((
                Action::PostEvent {
                    event: ctx.event_id(&args[0], lno)?,
                    delay,
                    payload: ctx.operand(&args[2], lno)?,
                },
                None,
            ))
        }
        "peek" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            let word: u8 = args[1]
                .parse()
                .map_err(|_| AsmError::at(lno, "peek word must be an integer"))?;
            Ok((
                Action::Peek {
                    dst: ctx.reg(&args[0], lno)?,
                    word,
                },
                None,
            ))
        }
        "respond" => Ok((Action::Respond, None)),
        "allocM" | "allocm" => Ok((Action::AllocM, None)),
        "deallocM" | "deallocm" => Ok((Action::DeallocM, None)),
        "pinm" => Ok((Action::PinM, None)),
        "insertm" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            Ok((
                Action::InsertM {
                    key: ctx.operand(&args[0], lno)?,
                    words: ctx.operand(&args[1], lno)?,
                },
                None,
            ))
        }
        "updatem" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            Ok((
                Action::UpdateM {
                    start: ctx.operand(&args[0], lno)?,
                    end: ctx.operand(&args[1], lno)?,
                },
                None,
            ))
        }
        "beq" => branch(Cond::Eq, true),
        "bne" | "bnz" => branch(Cond::Ne, true),
        "blt" => branch(Cond::Lt, true),
        "bge" => branch(Cond::Ge, true),
        "ble" => branch(Cond::Le, true),
        "bmiss" => branch(Cond::Miss, false),
        "bhit" => branch(Cond::Hit, false),
        "yield" => {
            if argc != 1 {
                return Err(wrong(1));
            }
            Ok((
                Action::Yield {
                    state: ctx.state_id(&args[0], lno)?,
                },
                None,
            ))
        }
        "retire" => Ok((Action::Retire, None)),
        "fault" => Ok((Action::Fault, None)),
        "allocD" | "allocd" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            Ok((
                Action::AllocD {
                    dst: ctx.reg(&args[0], lno)?,
                    count: ctx.operand(&args[1], lno)?,
                },
                None,
            ))
        }
        "deallocD" | "deallocd" => Ok((Action::DeallocD, None)),
        "readd" => {
            if argc != 3 {
                return Err(wrong(3));
            }
            Ok((
                Action::ReadD {
                    dst: ctx.reg(&args[0], lno)?,
                    sector: ctx.operand(&args[1], lno)?,
                    word: ctx.operand(&args[2], lno)?,
                },
                None,
            ))
        }
        "writed" => {
            if argc != 3 {
                return Err(wrong(3));
            }
            Ok((
                Action::WriteD {
                    sector: ctx.operand(&args[0], lno)?,
                    word: ctx.operand(&args[1], lno)?,
                    value: ctx.operand(&args[2], lno)?,
                },
                None,
            ))
        }
        "filld" => {
            if argc != 2 {
                return Err(wrong(2));
            }
            Ok((
                Action::FillD {
                    sector: ctx.operand(&args[0], lno)?,
                    words: ctx.operand(&args[1], lno)?,
                },
                None,
            ))
        }
        other => Err(AsmError::at(lno, format!("unknown mnemonic `{other}`"))),
    }
}

/// Renders a program back to assembly text (the disassembler).
///
/// The output round-trips: `assemble(disassemble(p))` produces an
/// equivalent program (branch targets become absolute indices).
#[must_use]
pub fn disassemble(p: &WalkerProgram) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "walker {}", p.name);
    let _ = writeln!(out, "states {}", p.state_names.join(", "));
    let custom: Vec<&str> = p
        .event_names
        .iter()
        .skip(BUILTIN_EVENTS.len())
        .map(String::as_str)
        .collect();
    if !custom.is_empty() {
        let _ = writeln!(out, "events {}", custom.join(", "));
    }
    let _ = writeln!(out, "regs {}", p.regs);
    if !p.param_names.is_empty() {
        let _ = writeln!(out, "params {}", p.param_names.join(", "));
    }
    for r in &p.routines {
        let _ = writeln!(out, "\nroutine {} {{", r.name);
        for a in &r.actions {
            let mut text = render_action(p, a);
            if let Action::Yield { state } = a {
                text = format!("yield {}", p.state_names[state.index()]);
            }
            let _ = writeln!(out, "    {text}");
        }
        let _ = writeln!(out, "}}");
    }
    let _ = writeln!(out);
    for s in 0..p.table.states() {
        for e in 0..p.table.events() {
            if let Some(rid) = p.table.lookup(StateId(s), EventId(e)) {
                let _ = writeln!(
                    out,
                    "on {}, {} -> {}",
                    p.state_names[s as usize],
                    p.event_names[e as usize],
                    p.routines[rid.0 as usize].name
                );
            }
        }
    }
    out
}

fn render_action(p: &WalkerProgram, a: &Action) -> String {
    // Event names need symbolic rendering so the output reassembles.
    match a {
        Action::Hash { done, a } => format!(
            "hash {}, {}",
            p.event_names[done.index()],
            render_operand(p, a)
        ),
        Action::PostEvent {
            event,
            delay,
            payload,
        } => format!(
            "post {}, {}, {}",
            p.event_names[event.index()],
            delay,
            render_operand(p, payload)
        ),
        Action::Alu { op, dst, a: x, b } => format!(
            "{op} {dst}, {}, {}",
            render_operand(p, x),
            render_operand(p, b)
        ),
        Action::Mov { dst, a: x } => format!("mov {dst}, {}", render_operand(p, x)),
        Action::DramRead { addr, len } => format!(
            "dram_read {}, {}",
            render_operand(p, addr),
            render_operand(p, len)
        ),
        Action::DramWrite { addr, sector, len } => format!(
            "dram_write {}, {}, {}",
            render_operand(p, addr),
            render_operand(p, sector),
            render_operand(p, len)
        ),
        Action::UpdateM { start, end } => format!(
            "updatem {}, {}",
            render_operand(p, start),
            render_operand(p, end)
        ),
        Action::InsertM { key, words } => format!(
            "insertm {}, {}",
            render_operand(p, key),
            render_operand(p, words)
        ),
        Action::Branch {
            cond,
            a: x,
            b,
            target,
        } => match cond {
            Cond::Miss | Cond::Hit => format!("{cond} @{target}"),
            _ => format!(
                "{cond} {}, {}, @{target}",
                render_operand(p, x),
                render_operand(p, b)
            ),
        },
        Action::AllocD { dst, count } => format!("allocD {dst}, {}", render_operand(p, count)),
        Action::ReadD { dst, sector, word } => format!(
            "readd {dst}, {}, {}",
            render_operand(p, sector),
            render_operand(p, word)
        ),
        Action::WriteD {
            sector,
            word,
            value,
        } => format!(
            "writed {}, {}, {}",
            render_operand(p, sector),
            render_operand(p, word),
            render_operand(p, value)
        ),
        Action::FillD { sector, words } => format!(
            "filld {}, {}",
            render_operand(p, sector),
            render_operand(p, words)
        ),
        other => other.to_string(),
    }
}

fn render_operand(p: &WalkerProgram, o: &Operand) -> String {
    match o {
        Operand::Param(i) => p
            .param_names
            .get(*i as usize)
            .cloned()
            .unwrap_or_else(|| format!("p{i}")),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WIDX_LIKE: &str = r#"
        walker widx
        states Default, Data
        events HashDone
        regs 4
        params table_base, node_bytes

        routine start {
            allocR
            allocM
            hash HashDone, key
            yield Default
        }

        routine probe {
            peek r0, 0
            mul r1, r0, node_bytes
            add r1, r1, table_base
            dram_read r1, node_bytes
            yield Data
        }

        routine check {
            peek r2, 0
            beq r2, key, @found
            peek r1, 1
            dram_read r1, node_bytes
            yield Data
        found:
            allocD r3, 1
            filld r3, 4
            updatem r3, r3
            respond
            retire
        }

        on Default, Miss -> start
        on Default, HashDone -> probe
        on Data, Fill -> check
    "#;

    #[test]
    fn assembles_widx_like_walker() {
        let p = assemble(WIDX_LIKE).unwrap();
        assert_eq!(p.name, "widx");
        assert_eq!(p.routines.len(), 3);
        assert_eq!(p.state_names, vec!["Default", "Data"]);
        // Miss/Fill/Update builtin + HashDone.
        assert_eq!(p.event_names.len(), 4);
        assert_eq!(p.param("node_bytes"), Some(1));
        // Label `found` resolved to index 5 of `check`.
        let check = &p.routines[2];
        match check.actions[1] {
            Action::Branch { target, .. } => assert_eq!(target, 5),
            ref other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn dispatch_table_populated() {
        let p = assemble(WIDX_LIKE).unwrap();
        assert_eq!(
            p.table.lookup(StateId::DEFAULT, EventId::MISS),
            Some(RoutineId(0))
        );
        let hash_done = p.event("HashDone").unwrap();
        assert_eq!(
            p.table.lookup(StateId::DEFAULT, hash_done),
            Some(RoutineId(1))
        );
        let data = p.state("Data").unwrap();
        assert_eq!(p.table.lookup(data, EventId::FILL), Some(RoutineId(2)));
    }

    #[test]
    fn disassemble_round_trips() {
        let p1 = assemble(WIDX_LIKE).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(p1.routines, p2.routines);
        assert_eq!(p1.table, p2.table);
        assert_eq!(p1.param_names, p2.param_names);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "walker w\nstates Default ; only one\n# comment\nregs 1\n\nroutine r {\n  allocR ; claim\n  retire\n}\non Default, Miss -> r\n",
        )
        .unwrap();
        assert_eq!(p.routines[0].actions.len(), 2);
    }

    #[test]
    fn error_unknown_mnemonic_with_line() {
        let err = assemble(
            "walker w\nstates Default\nroutine r {\n  frobnicate r0\n  retire\n}\non Default, Miss -> r\n",
        )
        .unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("frobnicate"));
    }

    #[test]
    fn error_unknown_label() {
        let err = assemble(
            "walker w\nstates Default\nroutine r {\n  bmiss @nowhere\n  retire\n}\non Default, Miss -> r\n",
        )
        .unwrap_err();
        assert!(err.message.contains("nowhere"));
    }

    #[test]
    fn error_default_not_first() {
        let err = assemble("walker w\nstates A, Default\n").unwrap_err();
        assert!(err.message.contains("Default"));
    }

    #[test]
    fn error_duplicate_routine() {
        let src = "walker w\nstates Default\nroutine r {\n retire\n}\nroutine r {\n retire\n}\non Default, Miss -> r\n";
        let err = assemble(src).unwrap_err();
        assert!(err.message.contains("duplicate routine"));
    }

    #[test]
    fn error_missing_close_brace() {
        let err = assemble("walker w\nstates Default\nroutine r {\n retire\n").unwrap_err();
        assert!(err.message.contains("missing `}`"));
    }

    #[test]
    fn error_validation_surfaces() {
        // Routine falls off the end.
        let err =
            assemble("walker w\nstates Default\nroutine r {\n  allocR\n}\non Default, Miss -> r\n")
                .unwrap_err();
        assert!(err.message.contains("terminator"));
    }

    #[test]
    fn hex_and_decimal_immediates() {
        let p = assemble(
            "walker w\nstates Default\nregs 1\nroutine r {\n  mov r0, 0x40\n  mov r0, 64\n  retire\n}\non Default, Miss -> r\n",
        )
        .unwrap();
        assert_eq!(
            p.routines[0].actions[0],
            Action::Mov {
                dst: Reg(0),
                a: Operand::Imm(0x40)
            }
        );
        assert_eq!(p.routines[0].actions[0], p.routines[0].actions[1]);
    }

    #[test]
    fn operand_kinds_parse() {
        let p = assemble(
            "walker w\nstates Default\nregs 2\nparams base\nroutine r {\n  add r1, key, base\n  mov r0, msg3\n  retire\n}\non Default, Miss -> r\n",
        )
        .unwrap();
        assert_eq!(
            p.routines[0].actions[0],
            Action::Alu {
                op: AluOp::Add,
                dst: Reg(1),
                a: Operand::Key,
                b: Operand::Param(0)
            }
        );
        assert_eq!(
            p.routines[0].actions[1],
            Action::Mov {
                dst: Reg(0),
                a: Operand::MsgWord(3)
            }
        );
    }

    #[test]
    fn numeric_branch_targets() {
        let p = assemble(
            "walker w\nstates Default\nregs 1\nroutine r {\n  bhit @2\n  yield Default\n  retire\n}\non Default, Miss -> r\n",
        )
        .unwrap();
        match p.routines[0].actions[0] {
            Action::Branch { target, .. } => assert_eq!(target, 2),
            ref other => panic!("{other:?}"),
        }
    }
}
