//! `xasm` — the X-Cache walker compiler CLI.
//!
//! The paper open-sources "a compiler to translate walkers to microcode";
//! this is that tool: assemble walker source to a binary microcode image,
//! disassemble it back, validate programs, and print the routine table.
//!
//! ```sh
//! xasm check  walker.xw           # validate, print a summary
//! xasm build  walker.xw out.bin   # assemble to the binary image
//! xasm dump   walker.xw           # routine table + microcode listing
//! xasm disasm walker.xw           # canonical round-trip source
//! ```

use std::process::ExitCode;

use xcache_isa::asm::{assemble, disassemble};
use xcache_isa::{encode, EventId, StateId, WalkerProgram};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match (cmd, rest) {
        ("check", [src]) => cmd_check(src),
        ("build", [src, out]) => cmd_build(src, out),
        ("dump", [src]) => cmd_dump(src),
        ("disasm", [src]) => cmd_disasm(src),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("xasm: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  xasm check  <walker.xw>            validate a walker program
  xasm build  <walker.xw> <out.bin>  assemble to binary microcode
  xasm dump   <walker.xw>            print routine table + microcode
  xasm disasm <walker.xw>            print canonical source";

fn load(path: &str) -> Result<WalkerProgram, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    assemble(&src).map_err(|e| format!("{path}: {e}"))
}

fn cmd_check(src: &str) -> Result<(), String> {
    let p = load(src)?;
    println!(
        "ok: walker `{}` — {} states, {} events, {} routines, {} microcode words, {} X-regs",
        p.name,
        p.state_names.len(),
        p.event_names.len(),
        p.routines().len(),
        p.microcode_words(),
        p.regs
    );
    Ok(())
}

fn cmd_build(src: &str, out: &str) -> Result<(), String> {
    let p = load(src)?;
    let mut image: Vec<u8> = Vec::new();
    // Header: routine count, then per-routine word offsets, then words.
    let mut offsets = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    for r in p.routines() {
        offsets.push(words.len() as u64);
        words.extend(encode(&r.actions).map_err(|e| e.to_string())?);
    }
    image.extend_from_slice(&(p.routines().len() as u64).to_le_bytes());
    for o in &offsets {
        image.extend_from_slice(&o.to_le_bytes());
    }
    for w in &words {
        image.extend_from_slice(&w.to_le_bytes());
    }
    std::fs::write(out, &image).map_err(|e| format!("{out}: {e}"))?;
    println!(
        "wrote {out}: {} bytes ({} routines, {} microinstructions)",
        image.len(),
        p.routines().len(),
        words.len() / 2
    );
    Ok(())
}

fn cmd_dump(src: &str) -> Result<(), String> {
    let p = load(src)?;
    println!("walker {}", p.name);
    println!(
        "\nroutine table ({} states x {} events):",
        p.table.states(),
        p.table.events()
    );
    print!("{:>12}", "");
    for e in 0..p.table.events() {
        print!(" {:>12}", p.event_names[e as usize]);
    }
    println!();
    for s in 0..p.table.states() {
        print!("{:>12}", p.state_names[s as usize]);
        for e in 0..p.table.events() {
            match p.table.lookup(StateId(s), EventId(e)) {
                Some(rid) => print!(" {:>12}", p.routines()[rid.0 as usize].name),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    println!("\nmicrocode:");
    for (i, r) in p.routines().iter().enumerate() {
        println!("  [{i}] {}:", r.name);
        for (pc, a) in r.actions.iter().enumerate() {
            println!("    {pc:>3}: {a}");
        }
    }
    Ok(())
}

fn cmd_disasm(src: &str) -> Result<(), String> {
    let p = load(src)?;
    print!("{}", disassemble(&p));
    Ok(())
}
