//! `xasm` — the X-Cache walker compiler CLI.
//!
//! The paper open-sources "a compiler to translate walkers to microcode";
//! this is that tool: assemble walker source to a binary microcode image,
//! disassemble it back, validate programs, and print the routine table.
//!
//! ```sh
//! xasm check  walker.xw           # validate, print a summary
//! xasm build  walker.xw out.bin   # assemble to the binary image
//! xasm dump   walker.xw           # routine table + microcode listing
//! xasm disasm walker.xw           # canonical round-trip source
//! ```
//!
//! `check` and `build` additionally accept `--verify` (run the static
//! verifier; its diagnostics go to stderr and a failure exits with code 2)
//! and `--deny-warnings` (with `--verify`, warnings also fail).

use std::process::ExitCode;

use xcache_isa::asm::{assemble, disassemble};
use xcache_isa::verify::verify;
use xcache_isa::{encode, EventId, StateId, WalkerProgram};

/// Exit code for load/parse/IO failures.
const EXIT_LOAD: u8 = 1;
/// Exit code for static-verifier rejections.
const EXIT_VERIFY: u8 = 2;

#[derive(Default, Clone, Copy)]
struct Flags {
    verify: bool,
    deny_warnings: bool,
}

enum CmdError {
    Load(String),
    Verify(String),
}

fn main() -> ExitCode {
    let mut flags = Flags::default();
    let args: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| match a.as_str() {
            "--verify" => {
                flags.verify = true;
                false
            }
            "--deny-warnings" => {
                flags.deny_warnings = true;
                false
            }
            _ => true,
        })
        .collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match (cmd, rest) {
        ("check", [src]) => cmd_check(src, flags),
        ("build", [src, out]) => cmd_build(src, out, flags),
        ("dump", [src]) => cmd_dump(src),
        ("disasm", [src]) => cmd_disasm(src),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(CmdError::Load(e)) => {
            eprintln!("xasm: {e}");
            ExitCode::from(EXIT_LOAD)
        }
        Err(CmdError::Verify(e)) => {
            eprintln!("xasm: {e}");
            ExitCode::from(EXIT_VERIFY)
        }
    }
}

const USAGE: &str = "usage:
  xasm check  [--verify] [--deny-warnings] <walker.xw>
                                     validate a walker program
  xasm build  [--verify] [--deny-warnings] <walker.xw> <out.bin>
                                     assemble to binary microcode
  xasm dump   <walker.xw>            print routine table + microcode
  xasm disasm <walker.xw>            print canonical source

  --verify         run the static verifier (exit code 2 on findings)
  --deny-warnings  treat verifier warnings as errors";

fn load(path: &str) -> Result<WalkerProgram, CmdError> {
    let src = std::fs::read_to_string(path).map_err(|e| CmdError::Load(format!("{path}: {e}")))?;
    assemble(&src).map_err(|e| CmdError::Load(format!("{path}: {e}")))
}

/// Runs the verifier when requested; prints every diagnostic to stderr and
/// converts failing reports into the exit-code-2 error.
fn run_verifier(path: &str, p: &WalkerProgram, flags: Flags) -> Result<(), CmdError> {
    if !flags.verify {
        return Ok(());
    }
    let report = verify(p);
    for d in &report.diagnostics {
        eprintln!("{path}: {d}");
    }
    report.check(flags.deny_warnings).map_err(|e| {
        CmdError::Verify(format!(
            "{path}: verification failed with {} finding(s)",
            e.diagnostics.len()
        ))
    })?;
    if !report.diagnostics.is_empty() {
        eprintln!(
            "{path}: verified with {} warning(s)",
            report.diagnostics.len()
        );
    }
    Ok(())
}

fn cmd_check(src: &str, flags: Flags) -> Result<(), CmdError> {
    let p = load(src)?;
    run_verifier(src, &p, flags)?;
    println!(
        "ok: walker `{}` — {} states, {} events, {} routines, {} microcode words, {} X-regs",
        p.name,
        p.state_names.len(),
        p.event_names.len(),
        p.routines().len(),
        p.microcode_words(),
        p.regs
    );
    Ok(())
}

fn cmd_build(src: &str, out: &str, flags: Flags) -> Result<(), CmdError> {
    let p = load(src)?;
    run_verifier(src, &p, flags)?;
    let mut image: Vec<u8> = Vec::new();
    // Header: routine count, then per-routine word offsets, then words.
    let mut offsets = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    for r in p.routines() {
        offsets.push(words.len() as u64);
        words.extend(encode(&r.actions).map_err(|e| CmdError::Load(e.to_string()))?);
    }
    image.extend_from_slice(&(p.routines().len() as u64).to_le_bytes());
    for o in &offsets {
        image.extend_from_slice(&o.to_le_bytes());
    }
    for w in &words {
        image.extend_from_slice(&w.to_le_bytes());
    }
    std::fs::write(out, &image).map_err(|e| CmdError::Load(format!("{out}: {e}")))?;
    println!(
        "wrote {out}: {} bytes ({} routines, {} microinstructions)",
        image.len(),
        p.routines().len(),
        words.len() / 2
    );
    Ok(())
}

fn cmd_dump(src: &str) -> Result<(), CmdError> {
    let p = load(src)?;
    println!("walker {}", p.name);
    println!(
        "\nroutine table ({} states x {} events):",
        p.table.states(),
        p.table.events()
    );
    print!("{:>12}", "");
    for e in 0..p.table.events() {
        print!(" {:>12}", p.event_names[e as usize]);
    }
    println!();
    for s in 0..p.table.states() {
        print!("{:>12}", p.state_names[s as usize]);
        for e in 0..p.table.events() {
            match p.table.lookup(StateId(s), EventId(e)) {
                Some(rid) => print!(" {:>12}", p.routines()[rid.0 as usize].name),
                None => print!(" {:>12}", "-"),
            }
        }
        println!();
    }
    println!("\nmicrocode:");
    for (i, r) in p.routines().iter().enumerate() {
        println!("  [{i}] {}:", r.name);
        for (pc, a) in r.actions.iter().enumerate() {
            println!("    {pc:>3}: {a}");
        }
    }
    Ok(())
}

fn cmd_disasm(src: &str) -> Result<(), CmdError> {
    let p = load(src)?;
    print!("{}", disassemble(&p));
    Ok(())
}
