//! Static routine→access-stream effect extraction.
//!
//! The analytical oracle (`xcache-oracle`) replays a pure access stream:
//! for each load it needs to know what the walker *would* install on a
//! miss. For walkers whose fill path is statically simple (the fuzz
//! generator's programs, the Widx chain walker) that answer is readable
//! off the microcode without executing it: find the retiring fill
//! routine, take its `allocD` immediate. [`extract`] performs that
//! analysis; the cross-validation harness (`xcache-bench/src/crossval.rs`)
//! uses it to build oracle streams instead of hard-coding per-walker
//! constants, and to refuse programs whose install size is genuinely
//! dynamic (the SpGEMM row walker sizes its `allocD` from a register, so
//! its stream must be derived from the workload instead).

use crate::{Action, EventId, Operand, StateId, WalkerProgram};

/// What a static scan of the routine table can say about a walker's
/// effect on the meta-tag array and data RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProgramEffects {
    /// Sectors every successful (respond+retire) fill path installs, when
    /// that is a static constant consistent across all such paths.
    /// `None` when any fill path sizes its allocation from a register or
    /// when no retiring fill path exists.
    pub install_sectors: Option<u64>,
    /// Whether the program handles `(Default, Update)` — i.e. accepts
    /// datapath stores.
    pub has_store_handler: bool,
    /// Whether the store handler (if any) performs a meta-tag or data-RAM
    /// allocation. The shipped handlers acknowledge without installing.
    pub store_installs: bool,
    /// Whether any routine can fault (not-found tails, guard branches).
    pub may_fault: bool,
    /// Whether any routine performs speculative side-inserts (`insertM`).
    pub has_side_inserts: bool,
}

/// Statically extracts [`ProgramEffects`] from `program`.
///
/// The analysis is intentionally syntactic: a routine "installs" when it
/// contains `allocD` + `updateM` + `respond` + `retire`. The sector count
/// is the `allocD` immediate, cross-checked against the `updateM` span
/// when that span is also immediate; a register-sized allocation yields
/// `install_sectors: None`.
#[must_use]
pub fn extract(program: &WalkerProgram) -> ProgramEffects {
    let mut install: Option<Option<u64>> = None; // None = no fill path seen
    let mut may_fault = false;
    let mut has_side_inserts = false;

    for routine in program.routines() {
        let mut alloc_imm: Option<Option<u64>> = None; // inner None = register-sized
        let mut responds = false;
        let mut retires = false;
        let mut updates_meta = false;
        for action in &routine.actions {
            match action {
                Action::AllocD { count, .. } => {
                    alloc_imm = Some(match count {
                        Operand::Imm(n) => Some(*n),
                        _ => None,
                    });
                }
                Action::UpdateM { .. } => updates_meta = true,
                Action::Respond => responds = true,
                Action::Retire => retires = true,
                Action::Fault => may_fault = true,
                Action::InsertM { .. } => has_side_inserts = true,
                _ => {}
            }
        }
        if responds && retires && updates_meta {
            let this = alloc_imm.unwrap_or(None);
            install = Some(match install {
                None => this,
                // Conflicting static sizes across fill paths: dynamic.
                Some(prev) if prev == this => prev,
                Some(_) => None,
            });
        }
    }

    let store = program.table.lookup(StateId::DEFAULT, EventId::UPDATE);
    let store_installs = store.is_some_and(|rid| {
        program.routines()[usize::from(rid.0)]
            .actions
            .iter()
            .any(|a| matches!(a, Action::AllocD { .. } | Action::InsertM { .. }))
    });

    ProgramEffects {
        install_sectors: install.flatten(),
        has_store_handler: store.is_some(),
        store_installs,
        may_fault,
        has_side_inserts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn fuzz_generated_programs_install_one_sector() {
        for seed in 0..64u64 {
            let p = crate::gen::generate(seed);
            let fx = extract(&p);
            assert_eq!(
                fx.install_sectors,
                Some(1),
                "seed {seed}: fuzz finish routines allocate exactly one sector"
            );
            assert!(!fx.store_installs, "fuzz store handlers only acknowledge");
            assert_eq!(
                fx.has_store_handler,
                p.table.lookup(StateId::DEFAULT, EventId::UPDATE).is_some()
            );
        }
    }

    #[test]
    fn register_sized_alloc_is_dynamic() {
        let p = assemble(
            r#"
            walker dyn
            states Default, Wait
            regs 3
            routine start {
                allocR
                allocM
                mov r0, key
                dram_read r0, 16
                yield Wait
            }
            routine fill {
                peek r1, 0
                allocD r2, r1
                filld r2, 4
                updatem r2, r2
                respond
                retire
            }
            on Default, Miss -> start
            on Wait, Fill -> fill
        "#,
        )
        .expect("valid");
        let fx = extract(&p);
        assert_eq!(fx.install_sectors, None);
        assert!(!fx.may_fault);
        assert!(!fx.has_side_inserts);
    }

    #[test]
    fn faults_and_side_inserts_are_detected() {
        let p = assemble(
            r#"
            walker spotted
            states Default, Wait
            regs 3
            routine start {
                allocR
                allocM
                mov r0, key
                dram_read r0, 16
                yield Wait
            }
            routine fill {
                peek r1, 0
                beq r1, 0, @notfound
                insertm r1, 2
                allocD r2, 1
                filld r2, 2
                updatem r2, r2
                respond
                retire
            notfound:
                fault
            }
            on Default, Miss -> start
            on Wait, Fill -> fill
        "#,
        )
        .expect("valid");
        let fx = extract(&p);
        assert_eq!(fx.install_sectors, Some(1));
        assert!(fx.may_fault);
        assert!(fx.has_side_inserts);
    }
}
