//! Fixed-width binary microcode encoding.
//!
//! Each [`Action`] encodes into one 128-bit microinstruction (two `u64`
//! words). The width is what the energy/area models charge for the routine
//! RAM: `microcode_words × 128 bits` — "when we compile them down and
//! encode them, we determine the number of entries required" (§7.1 ⑤).
//!
//! Layout (bit offsets within the little-endian 128-bit word):
//!
//! | field  | bits      | contents                                   |
//! |--------|-----------|--------------------------------------------|
//! | opcode | `[0,8)`   | action discriminant                        |
//! | subop  | `[8,16)`  | ALU op / branch condition                  |
//! | dst    | `[16,24)` | destination X-register                     |
//! | aux    | `[24,40)` | branch target / peek word / post delay ... |
//! | a      | `[40,68)` | operand A (4-bit kind + 24-bit value)      |
//! | b      | `[68,96)` | operand B                                  |
//! | c      | `[96,124)`| operand C                                  |
//!
//! Immediates are therefore capped at 24 bits in the binary form; larger
//! constants must come in through DSA parameters (which are full-width
//! runtime registers in the generated hardware), exactly as a real
//! microcode word would require.

use std::fmt;

use crate::{Action, AluOp, Cond, EventId, Operand, Reg, StateId};

/// Bits per encoded microinstruction.
pub const ACTION_BITS: u32 = 128;

/// Error produced by [`encode`] or [`decode`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// An immediate exceeded the 24-bit microcode field.
    ImmediateTooWide(u64),
    /// Unknown opcode byte during decode.
    BadOpcode(u8),
    /// Unknown sub-opcode during decode.
    BadSubop(u8),
    /// Unknown operand kind nibble during decode.
    BadOperandKind(u8),
    /// The word stream ended mid-instruction.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::ImmediateTooWide(v) => {
                write!(f, "immediate {v} exceeds the 24-bit microcode field")
            }
            DecodeError::BadOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            DecodeError::BadSubop(b) => write!(f, "unknown sub-opcode {b:#04x}"),
            DecodeError::BadOperandKind(b) => write!(f, "unknown operand kind {b:#03x}"),
            DecodeError::Truncated => write!(f, "word stream truncated mid-instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

const IMM_MAX: u64 = (1 << 24) - 1;

fn enc_operand(o: Operand) -> Result<u128, DecodeError> {
    let (kind, val): (u128, u64) = match o {
        Operand::Reg(Reg(r)) => (0, u64::from(r)),
        Operand::Imm(v) => {
            if v > IMM_MAX {
                return Err(DecodeError::ImmediateTooWide(v));
            }
            (1, v)
        }
        Operand::Key => (2, 0),
        Operand::MsgWord(w) => (3, u64::from(w)),
        Operand::Param(p) => (4, u64::from(p)),
        Operand::MetaSector => (5, 0),
    };
    Ok((kind << 24) | u128::from(val & IMM_MAX))
}

fn dec_operand(bits: u128) -> Result<Operand, DecodeError> {
    let kind = ((bits >> 24) & 0xf) as u8;
    let val = (bits & 0xff_ffff) as u64;
    Ok(match kind {
        0 => Operand::Reg(Reg(val as u8)),
        1 => Operand::Imm(val),
        2 => Operand::Key,
        3 => Operand::MsgWord(val as u8),
        4 => Operand::Param(val as u8),
        5 => Operand::MetaSector,
        k => return Err(DecodeError::BadOperandKind(k)),
    })
}

fn alu_subop(op: AluOp) -> u8 {
    match op {
        AluOp::Add => 0,
        AluOp::Sub => 1,
        AluOp::And => 2,
        AluOp::Or => 3,
        AluOp::Xor => 4,
        AluOp::Shl => 5,
        AluOp::Srl => 6,
        AluOp::Sra => 7,
        AluOp::Mul => 8,
    }
}

fn subop_alu(b: u8) -> Result<AluOp, DecodeError> {
    Ok(match b {
        0 => AluOp::Add,
        1 => AluOp::Sub,
        2 => AluOp::And,
        3 => AluOp::Or,
        4 => AluOp::Xor,
        5 => AluOp::Shl,
        6 => AluOp::Srl,
        7 => AluOp::Sra,
        8 => AluOp::Mul,
        other => return Err(DecodeError::BadSubop(other)),
    })
}

fn cond_subop(c: Cond) -> u8 {
    match c {
        Cond::Eq => 0,
        Cond::Ne => 1,
        Cond::Lt => 2,
        Cond::Ge => 3,
        Cond::Le => 4,
        Cond::Miss => 5,
        Cond::Hit => 6,
    }
}

fn subop_cond(b: u8) -> Result<Cond, DecodeError> {
    Ok(match b {
        0 => Cond::Eq,
        1 => Cond::Ne,
        2 => Cond::Lt,
        3 => Cond::Ge,
        4 => Cond::Le,
        5 => Cond::Miss,
        6 => Cond::Hit,
        other => return Err(DecodeError::BadSubop(other)),
    })
}

struct Fields {
    opcode: u8,
    subop: u8,
    dst: u8,
    aux: u16,
    a: Option<Operand>,
    b: Option<Operand>,
    c: Option<Operand>,
}

impl Fields {
    fn new(opcode: u8) -> Self {
        Fields {
            opcode,
            subop: 0,
            dst: 0,
            aux: 0,
            a: None,
            b: None,
            c: None,
        }
    }

    fn pack(self) -> Result<[u64; 2], DecodeError> {
        let mut w: u128 = u128::from(self.opcode)
            | (u128::from(self.subop) << 8)
            | (u128::from(self.dst) << 16)
            | (u128::from(self.aux) << 24);
        if let Some(a) = self.a {
            w |= enc_operand(a)? << 40;
        }
        if let Some(b) = self.b {
            w |= enc_operand(b)? << 68;
        }
        if let Some(c) = self.c {
            w |= enc_operand(c)? << 96;
        }
        Ok([(w & u128::from(u64::MAX)) as u64, (w >> 64) as u64])
    }
}

/// Encodes a sequence of actions into the binary microcode image.
///
/// # Errors
///
/// Returns [`DecodeError::ImmediateTooWide`] if any immediate exceeds the
/// 24-bit field.
pub fn encode(actions: &[Action]) -> Result<Vec<u64>, DecodeError> {
    let mut out = Vec::with_capacity(actions.len() * 2);
    for a in actions {
        let mut f;
        match *a {
            Action::Alu { op, dst, a, b } => {
                f = Fields::new(0x01);
                f.subop = alu_subop(op);
                f.dst = dst.0;
                f.a = Some(a);
                f.b = Some(b);
            }
            Action::Mov { dst, a } => {
                f = Fields::new(0x02);
                f.dst = dst.0;
                f.a = Some(a);
            }
            Action::AllocR => f = Fields::new(0x03),
            Action::Hash { done, a } => {
                f = Fields::new(0x04);
                f.aux = u16::from(done.0);
                f.a = Some(a);
            }
            Action::DramRead { addr, len } => {
                f = Fields::new(0x10);
                f.a = Some(addr);
                f.b = Some(len);
            }
            Action::DramWrite { addr, sector, len } => {
                f = Fields::new(0x11);
                f.a = Some(addr);
                f.b = Some(sector);
                f.c = Some(len);
            }
            Action::PostEvent {
                event,
                delay,
                payload,
            } => {
                f = Fields::new(0x12);
                f.subop = event.0;
                f.aux = delay;
                f.a = Some(payload);
            }
            Action::Peek { dst, word } => {
                f = Fields::new(0x13);
                f.dst = dst.0;
                f.aux = u16::from(word);
            }
            Action::Respond => f = Fields::new(0x14),
            Action::AllocM => f = Fields::new(0x20),
            Action::DeallocM => f = Fields::new(0x21),
            Action::PinM => f = Fields::new(0x23),
            Action::InsertM { key, words } => {
                f = Fields::new(0x24);
                f.a = Some(key);
                f.b = Some(words);
            }
            Action::UpdateM { start, end } => {
                f = Fields::new(0x22);
                f.a = Some(start);
                f.b = Some(end);
            }
            Action::Branch { cond, a, b, target } => {
                f = Fields::new(0x30);
                f.subop = cond_subop(cond);
                f.aux = u16::from(target);
                f.a = Some(a);
                f.b = Some(b);
            }
            Action::Yield { state } => {
                f = Fields::new(0x31);
                f.subop = state.0;
            }
            Action::Retire => f = Fields::new(0x32),
            Action::Fault => f = Fields::new(0x33),
            Action::AllocD { dst, count } => {
                f = Fields::new(0x40);
                f.dst = dst.0;
                f.a = Some(count);
            }
            Action::DeallocD => f = Fields::new(0x41),
            Action::ReadD { dst, sector, word } => {
                f = Fields::new(0x42);
                f.dst = dst.0;
                f.a = Some(sector);
                f.b = Some(word);
            }
            Action::WriteD {
                sector,
                word,
                value,
            } => {
                f = Fields::new(0x43);
                f.a = Some(sector);
                f.b = Some(word);
                f.c = Some(value);
            }
            Action::FillD { sector, words } => {
                f = Fields::new(0x44);
                f.a = Some(sector);
                f.b = Some(words);
            }
        }
        out.extend(f.pack()?);
    }
    Ok(out)
}

/// Decodes a binary microcode image back into actions.
///
/// # Errors
///
/// Returns a [`DecodeError`] on malformed input (unknown opcode, truncated
/// stream, bad operand kind).
pub fn decode(words: &[u64]) -> Result<Vec<Action>, DecodeError> {
    if !words.len().is_multiple_of(2) {
        return Err(DecodeError::Truncated);
    }
    let mut out = Vec::with_capacity(words.len() / 2);
    for pair in words.chunks_exact(2) {
        let w = u128::from(pair[0]) | (u128::from(pair[1]) << 64);
        let opcode = (w & 0xff) as u8;
        let subop = ((w >> 8) & 0xff) as u8;
        let dst = Reg(((w >> 16) & 0xff) as u8);
        let aux = ((w >> 24) & 0xffff) as u16;
        let a = dec_operand((w >> 40) & 0xfff_ffff)?;
        let b = dec_operand((w >> 68) & 0xfff_ffff)?;
        let c = dec_operand((w >> 96) & 0xfff_ffff)?;
        out.push(match opcode {
            0x01 => Action::Alu {
                op: subop_alu(subop)?,
                dst,
                a,
                b,
            },
            0x02 => Action::Mov { dst, a },
            0x03 => Action::AllocR,
            0x04 => Action::Hash {
                done: EventId(aux as u8),
                a,
            },
            0x10 => Action::DramRead { addr: a, len: b },
            0x11 => Action::DramWrite {
                addr: a,
                sector: b,
                len: c,
            },
            0x12 => Action::PostEvent {
                event: EventId(subop),
                delay: aux,
                payload: a,
            },
            0x13 => Action::Peek {
                dst,
                word: aux as u8,
            },
            0x14 => Action::Respond,
            0x20 => Action::AllocM,
            0x21 => Action::DeallocM,
            0x23 => Action::PinM,
            0x24 => Action::InsertM { key: a, words: b },
            0x22 => Action::UpdateM { start: a, end: b },
            0x30 => Action::Branch {
                cond: subop_cond(subop)?,
                a,
                b,
                target: aux as u8,
            },
            0x31 => Action::Yield {
                state: StateId(subop),
            },
            0x32 => Action::Retire,
            0x33 => Action::Fault,
            0x40 => Action::AllocD { dst, count: a },
            0x41 => Action::DeallocD,
            0x42 => Action::ReadD {
                dst,
                sector: a,
                word: b,
            },
            0x43 => Action::WriteD {
                sector: a,
                word: b,
                value: c,
            },
            0x44 => Action::FillD {
                sector: a,
                words: b,
            },
            other => return Err(DecodeError::BadOpcode(other)),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_actions() -> Vec<Action> {
        vec![
            Action::AllocR,
            Action::AllocM,
            Action::Mov {
                dst: Reg(0),
                a: Operand::Key,
            },
            Action::Alu {
                op: AluOp::Mul,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Param(1),
            },
            Action::Hash {
                done: EventId(3),
                a: Operand::Key,
            },
            Action::DramRead {
                addr: Operand::Reg(Reg(1)),
                len: Operand::Imm(64),
            },
            Action::DramWrite {
                addr: Operand::Reg(Reg(1)),
                sector: Operand::Reg(Reg(2)),
                len: Operand::Imm(32),
            },
            Action::PostEvent {
                event: EventId(4),
                delay: 60,
                payload: Operand::MsgWord(0),
            },
            Action::Peek {
                dst: Reg(2),
                word: 1,
            },
            Action::Respond,
            Action::UpdateM {
                start: Operand::Reg(Reg(3)),
                end: Operand::Reg(Reg(3)),
            },
            Action::Branch {
                cond: Cond::Eq,
                a: Operand::Reg(Reg(2)),
                b: Operand::Key,
                target: 9,
            },
            Action::Branch {
                cond: Cond::Miss,
                a: Operand::Imm(0),
                b: Operand::Imm(0),
                target: 2,
            },
            Action::AllocD {
                dst: Reg(3),
                count: Operand::Imm(2),
            },
            Action::ReadD {
                dst: Reg(0),
                sector: Operand::Reg(Reg(3)),
                word: Operand::Imm(1),
            },
            Action::WriteD {
                sector: Operand::Reg(Reg(3)),
                word: Operand::Imm(0),
                value: Operand::MsgWord(2),
            },
            Action::FillD {
                sector: Operand::Reg(Reg(3)),
                words: Operand::Imm(8),
            },
            Action::DeallocD,
            Action::DeallocM,
            Action::PinM,
            Action::InsertM {
                key: Operand::Reg(Reg(2)),
                words: Operand::Imm(4),
            },
            Action::ReadD {
                dst: Reg(1),
                sector: Operand::MetaSector,
                word: Operand::Imm(0),
            },
            Action::Yield { state: StateId(2) },
            Action::Retire,
            Action::Fault,
        ]
    }

    #[test]
    fn round_trips_every_action_kind() {
        let actions = sample_actions();
        let words = encode(&actions).unwrap();
        assert_eq!(words.len(), actions.len() * 2);
        let back = decode(&words).unwrap();
        assert_eq!(back, actions);
    }

    #[test]
    fn immediate_limit_enforced() {
        let err = encode(&[Action::Mov {
            dst: Reg(0),
            a: Operand::Imm(1 << 24),
        }])
        .unwrap_err();
        assert_eq!(err, DecodeError::ImmediateTooWide(1 << 24));
        // Boundary value is fine.
        assert!(encode(&[Action::Mov {
            dst: Reg(0),
            a: Operand::Imm((1 << 24) - 1),
        }])
        .is_ok());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            decode(&[0xff, 0]).unwrap_err(),
            DecodeError::BadOpcode(0xff)
        );
        assert_eq!(decode(&[1]).unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn bits_per_action_is_stable() {
        assert_eq!(ACTION_BITS, 128);
        let words = encode(&[Action::Retire]).unwrap();
        assert_eq!(words.len() * 64, ACTION_BITS as usize);
    }
}
