//! Seeded generation of random-but-verifier-valid walker programs.
//!
//! The fuzz/differential harness in `xcache-bench` needs an open-ended
//! supply of walker programs that (a) pass the static verifier with zero
//! findings — errors *and* warnings — and (b) run to completion on an
//! arbitrary key stream against a zero-filled memory. [`generate`] builds
//! such programs correct-by-construction, deterministically from a `u64`
//! seed:
//!
//! * a launch entry (`allocR; allocM; …`) that masks the key into a
//!   bounded address, optionally via a hash prologue, issues one DRAM
//!   read, and yields;
//! * 1–3 chained hop routines dispatched on `Fill`, each recomputing a
//!   masked address (mixing in the fill payload via `peek`), optionally
//!   guarded by a forward branch to a `fault` tail, issuing the next read
//!   and yielding;
//! * a final routine that allocates a data sector, fills it from the DRAM
//!   response, publishes it via `updatem`, responds, and retires;
//! * optionally a store handler on `(Default, Update)`.
//!
//! Every address a generated program can compute is `base + masked ⋅
//! stride`, so any key stream is safe; every `yield` leaves exactly one
//! completion outstanding with a handler in the yielded-to state. The
//! generator asserts its own output clean under
//! [`verify`](crate::verify::verify) with warnings denied.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::verify::verify;
use crate::{
    Action, AluOp, Cond, EventId, Operand, Reg, Routine, RoutineId, RoutineTable, StateId,
    WalkerProgram,
};

/// Register assignments used by every generated program (`regs = 4`).
const R_SCRATCH: Reg = Reg(0); // peek target / guard operand
const R_ADDR: Reg = Reg(1); // address under construction
const R_TMP: Reg = Reg(2); // extra ALU traffic
const R_SECTOR: Reg = Reg(3); // allocD result

/// Generates a verifier-clean walker program from `seed`.
///
/// The same seed always yields the same program (the generator draws from
/// the vendored deterministic `StdRng`). The produced program declares one
/// parameter, `base`: instantiate it with the base address of whatever
/// memory region the driver considers safe — all generated accesses land
/// in `[base, base + 64 KiB)`.
#[must_use]
pub fn generate(seed: u64) -> WalkerProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let hops = rng.gen_range(1..4usize);
    let hashed = rng.gen_bool(0.4);
    let with_store = rng.gen_bool(0.5);

    // States: Default, optionally Hashed, then one Wait state per DRAM
    // issue (entry + each non-final hop).
    let mut state_names = vec!["Default".to_string()];
    let hash_state = hashed.then(|| {
        state_names.push("Hashed".into());
        StateId(u8::try_from(state_names.len() - 1).expect("few states"))
    });
    let mut wait_states = Vec::new();
    for i in 0..hops {
        state_names.push(format!("Wait{i}"));
        wait_states.push(StateId(
            u8::try_from(state_names.len() - 1).expect("few states"),
        ));
    }

    let mut event_names: Vec<String> = vec!["Miss".into(), "Fill".into(), "Update".into()];
    let hash_done = hashed.then(|| {
        event_names.push("HashDone".into());
        EventId(u8::try_from(event_names.len() - 1).expect("few events"))
    });

    let mut routines = Vec::new();
    let mut table = RoutineTable::new(
        u8::try_from(state_names.len()).expect("few states"),
        u8::try_from(event_names.len()).expect("few events"),
    );

    // Launch entry: claim resources, then either hash the key and wait for
    // the digest, or go straight to the first address.
    let mut entry = vec![Action::AllocR, Action::AllocM];
    if let (Some(done), Some(hs)) = (hash_done, hash_state) {
        entry.push(Action::Hash {
            done,
            a: Operand::Key,
        });
        entry.push(Action::Yield { state: hs });
        let rid = push_routine(&mut routines, "start", entry);
        table.set(StateId::DEFAULT, EventId::MISS, rid);
        // The digest arrives as msg word 0; the address hop consumes it.
        let mut addr = vec![Action::Peek {
            dst: R_SCRATCH,
            word: 0,
        }];
        addr.extend(address_from(&mut rng, Operand::Reg(R_SCRATCH)));
        addr.push(dram_read(&mut rng));
        addr.push(Action::Yield {
            state: wait_states[0],
        });
        let rid = push_routine(&mut routines, "hashed", addr);
        table.set(hs, done, rid);
    } else {
        entry.extend(address_from(&mut rng, Operand::Key));
        entry.push(dram_read(&mut rng));
        entry.push(Action::Yield {
            state: wait_states[0],
        });
        let rid = push_routine(&mut routines, "start", entry);
        table.set(StateId::DEFAULT, EventId::MISS, rid);
    }

    // Chained hops: each consumes the previous fill and issues the next
    // read. The last Fill dispatch lands in the finishing routine instead.
    for hop in 0..hops.saturating_sub(1) {
        let mut actions = vec![Action::Peek {
            dst: R_SCRATCH,
            word: 0,
        }];
        actions.extend(address_from(&mut rng, Operand::Reg(R_SCRATCH)));
        let guarded = rng.gen_bool(0.5);
        if guarded {
            // Forward branch to a fault tail appended after the yield —
            // the same not-found idiom the shipped hash walkers use. The
            // sentinel is the widest encodable immediate (24 bits).
            actions.push(Action::Branch {
                cond: Cond::Eq,
                a: Operand::Reg(R_SCRATCH),
                b: Operand::Imm((1 << 24) - 1),
                target: u8::try_from(actions.len() + 3).expect("short routine"),
            });
        }
        actions.push(dram_read(&mut rng));
        actions.push(Action::Yield {
            state: wait_states[hop + 1],
        });
        if guarded {
            actions.push(Action::Fault);
        }
        let rid = push_routine(&mut routines, &format!("hop{hop}"), actions);
        table.set(wait_states[hop], EventId::FILL, rid);
    }

    // Finish: install 1–4 words of the final fill and answer the datapath.
    let words = rng.gen_range(1..5u64);
    let finish = vec![
        Action::AllocD {
            dst: R_SECTOR,
            count: Operand::Imm(1),
        },
        Action::FillD {
            sector: Operand::Reg(R_SECTOR),
            words: Operand::Imm(words),
        },
        Action::UpdateM {
            start: Operand::Reg(R_SECTOR),
            end: Operand::Reg(R_SECTOR),
        },
        Action::Respond,
        Action::Retire,
    ];
    let rid = push_routine(&mut routines, "finish", finish);
    table.set(wait_states[hops - 1], EventId::FILL, rid);

    if with_store {
        // Stores acknowledge without walking (retire auto-acks).
        let rid = push_routine(&mut routines, "store", vec![Action::AllocR, Action::Retire]);
        table.set(StateId::DEFAULT, EventId::UPDATE, rid);
    }

    let program = WalkerProgram {
        name: format!("fuzz_{seed:016x}"),
        state_names,
        event_names,
        regs: 4,
        param_names: vec!["base".into()],
        routines,
        table,
    };
    debug_assert_eq!(program.validate(), Ok(()), "generator broke validate()");
    debug_assert!(
        verify(&program).check(true).is_ok(),
        "generator produced verifier findings for seed {seed}: {:?}",
        verify(&program)
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    program
}

fn push_routine(routines: &mut Vec<Routine>, name: &str, actions: Vec<Action>) -> RoutineId {
    routines.push(Routine {
        name: name.into(),
        actions,
    });
    RoutineId(u16::try_from(routines.len() - 1).expect("few routines"))
}

/// Address construction: `R_ADDR = base + ((src ⊕/±/… mix) & mask) ⋅
/// stride`, with masks and strides bounded so every result stays within
/// 64 KiB of `base` regardless of `src`.
fn address_from(rng: &mut StdRng, src: Operand) -> Vec<Action> {
    let mask = [0x3F, 0xFF, 0x3FF][rng.gen_range(0..3usize)];
    let stride = [8u64, 16, 32, 64][rng.gen_range(0..4usize)];
    debug_assert!((mask + 1) * stride <= 64 * 1024);
    let mut v = vec![Action::Mov {
        dst: R_ADDR,
        a: src,
    }];
    // Optional extra ALU traffic: a self-contained mix on a scratch reg
    // (defined here, so def-before-use holds on every path).
    if rng.gen_bool(0.5) {
        v.push(Action::Mov {
            dst: R_TMP,
            a: Operand::Imm(rng.gen_range(1..1024u64)),
        });
        let op = [AluOp::Add, AluOp::Xor, AluOp::Or][rng.gen_range(0..3usize)];
        v.push(Action::Alu {
            op,
            dst: R_ADDR,
            a: Operand::Reg(R_ADDR),
            b: Operand::Reg(R_TMP),
        });
    }
    v.push(Action::Alu {
        op: AluOp::And,
        dst: R_ADDR,
        a: Operand::Reg(R_ADDR),
        b: Operand::Imm(mask),
    });
    v.push(Action::Alu {
        op: AluOp::Mul,
        dst: R_ADDR,
        a: Operand::Reg(R_ADDR),
        b: Operand::Imm(stride),
    });
    v.push(Action::Alu {
        op: AluOp::Add,
        dst: R_ADDR,
        a: Operand::Reg(R_ADDR),
        b: Operand::Param(0),
    });
    v
}

fn dram_read(rng: &mut StdRng) -> Action {
    Action::DramRead {
        addr: Operand::Reg(R_ADDR),
        len: Operand::Imm([8u64, 16, 32][rng.gen_range(0..3usize)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(generate(7), generate(7));
        assert_ne!(generate(7), generate(8));
    }

    #[test]
    fn first_256_seeds_are_verifier_clean() {
        for seed in 0..256u64 {
            let p = generate(seed);
            let report = verify(&p);
            assert!(
                report.check(true).is_ok(),
                "seed {seed}: {:?}",
                report
                    .diagnostics
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
            );
            assert_eq!(p.validate(), Ok(()), "seed {seed}");
        }
    }

    #[test]
    fn seeds_cover_the_shape_space() {
        let mut hashed = 0usize;
        let mut stores = 0usize;
        let mut max_routines = 0usize;
        for seed in 0..64u64 {
            let p = generate(seed);
            hashed += usize::from(p.event_names.iter().any(|e| e == "HashDone"));
            stores += usize::from(p.table.lookup(StateId::DEFAULT, EventId::UPDATE).is_some());
            max_routines = max_routines.max(p.routines.len());
        }
        assert!(hashed > 5, "hash prologues too rare: {hashed}/64");
        assert!(stores > 10, "store handlers too rare: {stores}/64");
        assert!(
            max_routines >= 4,
            "chains never exceed {max_routines} routines"
        );
    }
}
