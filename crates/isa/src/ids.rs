//! Walker state and event identifiers.

use std::fmt;

/// A walker coroutine state (a row of the routine table).
///
/// State 0 is always `Default`, "the starting state for misses, i.e., no
/// entry in the meta-tag array" (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u8);

impl StateId {
    /// The miss-entry state every walker starts in.
    pub const DEFAULT: StateId = StateId(0);

    /// Raw table row index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// An event (a column of the routine table).
///
/// Events 0–3 are architectural — every X-Cache instance generates them —
/// and the remainder are walker-defined (hash-done, pointer-ready, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u8);

impl EventId {
    /// A meta access missed: a new walker is launched in `Default` state.
    pub const MISS: EventId = EventId(0);
    /// A DRAM response for this walker arrived.
    pub const FILL: EventId = EventId(1);
    /// A meta store wants to merge/insert (GraphPulse-style update).
    pub const UPDATE: EventId = EventId(2);
    /// First walker-defined event id.
    pub const FIRST_CUSTOM: EventId = EventId(3);

    /// Raw table column index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is one of the architectural events.
    #[must_use]
    pub fn is_architectural(self) -> bool {
        self.0 < Self::FIRST_CUSTOM.0
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            EventId::MISS => write!(f, "Miss"),
            EventId::FILL => write!(f, "Fill"),
            EventId::UPDATE => write!(f, "Update"),
            EventId(n) => write!(f, "E{n}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architectural_events_are_low_ids() {
        assert!(EventId::MISS.is_architectural());
        assert!(EventId::FILL.is_architectural());
        assert!(EventId::UPDATE.is_architectural());
        assert!(!EventId::FIRST_CUSTOM.is_architectural());
    }

    #[test]
    fn default_state_is_zero() {
        assert_eq!(StateId::DEFAULT.index(), 0);
    }

    #[test]
    fn display_names() {
        assert_eq!(EventId::MISS.to_string(), "Miss");
        assert_eq!(EventId(7).to_string(), "E7");
        assert_eq!(StateId(2).to_string(), "S2");
    }
}
