//! # xcache-isa
//!
//! The X-Cache microcode ISA (Sedaghati et al., ISCA 2022, §4).
//!
//! X-Cache's controller is programmable: each DSA's *walker* is expressed
//! as a table-driven coroutine. A `(state, event)` pair indexes the
//! [`RoutineTable`] and yields a pointer into the microcode RAM; the
//! [`Routine`] found there is a short, run-to-completion sequence of
//! single-cycle [`Action`]s ending in a terminator that either updates the
//! walker's state and yields (waiting for the next event) or retires the
//! walker.
//!
//! This crate is pure data + tooling:
//!
//! * [`Action`], [`Operand`], [`Cond`], [`AluOp`] — the action set of
//!   Figure 8 (five categories: address generation, message queues,
//!   meta-tags, control flow, data RAM).
//! * [`Routine`], [`RoutineTable`], [`WalkerProgram`] — the compiled form,
//!   with structural validation.
//! * [`asm`] — the textual walker language and its compiler, the analogue
//!   of the paper's "table-driven template" the designer fills in.
//! * [`encode`]/[`decode`] — a fixed-width binary encoding, used to size
//!   the routine RAM for the energy/area models.
//!
//! Execution semantics (the interpreter/pipeline) live in `xcache-core`;
//! this crate defines *what* a walker says, not *how* the hardware runs it.
//!
//! ```
//! use xcache_isa::asm::assemble;
//!
//! let program = assemble(r#"
//!     walker demo
//!     states Default, Wait
//!     events Miss, Fill
//!     regs 2
//!
//!     routine on_miss {
//!         allocR
//!         allocM
//!         mov r0, key
//!         dram_read r0, 64
//!         yield Wait
//!     }
//!     routine on_fill {
//!         allocD r1, 1
//!         filld r1, 8
//!         updatem r1, r1
//!         respond
//!         retire
//!     }
//!
//!     on Default, Miss -> on_miss
//!     on Wait, Fill -> on_fill
//! "#).expect("valid walker");
//! assert_eq!(program.routines().len(), 2);
//! ```

pub mod asm;
pub mod effects;
pub mod gen;
pub mod predecode;
pub mod verify;

mod action;
mod encode;
mod ids;
mod program;

pub use action::{Action, ActionCategory, AluOp, Cond, Operand, Reg};
pub use encode::{decode, encode, DecodeError, ACTION_BITS};
pub use ids::{EventId, StateId};
pub use program::{ProgramError, Routine, RoutineId, RoutineTable, WalkerProgram};
