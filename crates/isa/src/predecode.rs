//! Pre-decoded ("direct-threaded") form of a verified walker program.
//!
//! The executor's hot loop would otherwise re-match the full [`Action`]
//! enum — nested operand enums included — for every executed action, every
//! cycle. Pre-decoding flattens each routine once at build time:
//!
//! * one [`DecKind`] per *specialised* operation — each ALU op and each
//!   branch condition gets its own opcode, so the engine never matches on
//!   an inner `AluOp`/`Cond` at run time;
//! * [`Operand::Param`] folded to an immediate (parameters are fixed at
//!   configuration time);
//! * `MsgWord` indices pre-masked to the message width, removing the
//!   per-access modulo.
//!
//! The execution engine (`xcache-core`) maps each `DecKind` to a handler
//! function pointer, so dispatch becomes one indexed load plus an indirect
//! call — the software analogue of the decoded-µop RAM a hardware
//! controller would use. Decoding happens *after* verification; the
//! decoded program is semantically identical to the [`Action`] form by
//! construction (see the round-trip tests below).

use crate::{Action, ActionCategory, AluOp, Cond, EventId, Operand, StateId, WalkerProgram};

/// A decoded operand: like [`Operand`] but with `Param` folded away and
/// `MsgWord` pre-masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecOperand {
    /// X-register index (the raw `Reg.0`).
    Reg(u8),
    /// Immediate (literal, or a folded configuration parameter).
    Imm(u64),
    /// The walker's access key.
    Key,
    /// Message payload word, already reduced modulo the message width.
    MsgWord(u8),
    /// First data-RAM sector of the walker's meta entry.
    MetaSector,
    /// Operand slot unused by this operation.
    None,
}

/// Specialised opcode: one variant per (action, inner-op) combination the
/// engine must distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecKind {
    AluAdd,
    AluSub,
    AluAnd,
    AluOr,
    AluXor,
    AluShl,
    AluSrl,
    AluSra,
    AluMul,
    Mov,
    AllocR,
    Hash,
    DramRead,
    DramWrite,
    PostEvent,
    Peek,
    Respond,
    AllocM,
    DeallocM,
    PinM,
    InsertM,
    UpdateM,
    BrEq,
    BrNe,
    BrLt,
    BrGe,
    BrLe,
    BrMiss,
    BrHit,
    Yield,
    Retire,
    Fault,
    AllocD,
    DeallocD,
    ReadD,
    WriteD,
    FillD,
}

/// One decoded microcode word. All fields are flat and `Copy`; operations
/// that need fewer operands leave the rest as [`DecOperand::None`] /
/// zero.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecOp {
    /// Specialised opcode.
    pub kind: DecKind,
    /// Stat category of the source action (Figure 8 grouping).
    pub category: ActionCategory,
    /// First operand (addr / key / payload / condition LHS / sector …).
    pub a: DecOperand,
    /// Second operand (len / words / condition RHS / word index …).
    pub b: DecOperand,
    /// Third operand (`DramWrite` len, `WriteD` value).
    pub c: DecOperand,
    /// Destination X-register, for ops that write one.
    pub dst: u8,
    /// Branch target (action index), `PostEvent` delay, or the pre-masked
    /// `Peek` word index.
    pub aux: u32,
    /// Event id for `Hash`/`PostEvent`.
    pub event: EventId,
    /// Target state for `Yield`.
    pub state: StateId,
    /// Superinstruction run length: the number of ops starting here
    /// (inclusive) that form one verifier-proven straight-line fusible run
    /// — always ≥ 1, and 1 for any op that is not a run of several.
    /// Computed by the [`fuse_runs`] post-pass; the macro-step executor
    /// dispatches all `fuse` ops in one handler round-trip, while the
    /// micro reference path ignores the field entirely.
    pub fuse: u16,
}

impl DecOp {
    fn new(kind: DecKind, category: ActionCategory) -> Self {
        DecOp {
            kind,
            category,
            a: DecOperand::None,
            b: DecOperand::None,
            c: DecOperand::None,
            dst: 0,
            aux: 0,
            event: EventId(0),
            state: StateId(0),
            fuse: 1,
        }
    }
}

/// Whether `op` may join a fused superinstruction run.
///
/// The fusible set is deliberately conservative — an op qualifies only if,
/// for a live walker holding a lane, it is *infallible* (always advances,
/// never stalls/faults/yields) and touches nothing but per-walker state
/// (X-registers and the latched message payload). That is what makes
/// executing the whole run at the cycle its first op dispatched
/// byte-equivalent to one-op-per-cycle execution:
///
/// * the nine ALU kinds, `Mov`, `Peek` and `AllocR` (a no-op at execution
///   time — registers are allocated at launch) qualify;
/// * anything that can branch, yield, retire, fault, stall, or touch a
///   shared structure (meta-tags, data RAM, DRAM queues, the event wheel)
///   does not — their effects are ordered against other walkers and
///   against simulated time;
/// * `Hash`/`PostEvent` schedule wheel events relative to `now`, so early
///   execution would shift due cycles — excluded;
/// * any op reading [`DecOperand::MetaSector`] is excluded even when its
///   kind qualifies: that operand can fault (no meta entry), and a fault
///   timestamp must not move.
fn fusible(op: &DecOp) -> bool {
    let kind_ok = matches!(
        op.kind,
        DecKind::AluAdd
            | DecKind::AluSub
            | DecKind::AluAnd
            | DecKind::AluOr
            | DecKind::AluXor
            | DecKind::AluShl
            | DecKind::AluSrl
            | DecKind::AluSra
            | DecKind::AluMul
            | DecKind::Mov
            | DecKind::Peek
            | DecKind::AllocR
    );
    kind_ok
        && !matches!(op.a, DecOperand::MetaSector)
        && !matches!(op.b, DecOperand::MetaSector)
        && !matches!(op.c, DecOperand::MetaSector)
}

/// The superinstruction-fusion post-pass: stamps every op's [`DecOp::fuse`]
/// with the length of the longest straight-line fusible run starting there.
///
/// A run never crosses a non-fusible op (see [`fusible`]) and never crosses
/// a *branch target* — a pc some branch in the routine can jump to. Each
/// position carries its own (suffix) run length, so execution entering at
/// any pc — sequentially or via a jump — sees exactly the ops it would
/// have executed one per cycle.
fn fuse_runs(routine: &mut [DecOp]) {
    // Collect branch targets; runs must not extend across them.
    let mut is_target = vec![false; routine.len()];
    for op in routine.iter() {
        if matches!(
            op.kind,
            DecKind::BrEq
                | DecKind::BrNe
                | DecKind::BrLt
                | DecKind::BrGe
                | DecKind::BrLe
                | DecKind::BrMiss
                | DecKind::BrHit
        ) {
            if let Some(t) = is_target.get_mut(op.aux as usize) {
                *t = true;
            }
        }
    }
    for i in (0..routine.len()).rev() {
        let mut run: u16 = 1;
        if fusible(&routine[i]) && i + 1 < routine.len() && !is_target[i + 1] {
            let next = &routine[i + 1];
            if fusible(next) {
                run = next.fuse.saturating_add(1);
            }
        }
        routine[i].fuse = run;
    }
}

/// A fully pre-decoded program: routine `r`, action `pc` is
/// `routines[r][pc]`, with the same indexing as
/// [`WalkerProgram::routines`] (branch targets carry over unchanged).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodedProgram {
    /// Decoded routines in microcode-RAM order.
    pub routines: Vec<Box<[DecOp]>>,
}

fn dec_operand(op: Operand, params: &[u64], msg_words: usize) -> DecOperand {
    match op {
        Operand::Reg(r) => DecOperand::Reg(r.0),
        Operand::Imm(v) => DecOperand::Imm(v),
        Operand::Key => DecOperand::Key,
        Operand::MsgWord(i) => DecOperand::MsgWord((usize::from(i) % msg_words) as u8),
        // Parameters are configuration-time constants; core validates that
        // every referenced index exists before decoding.
        Operand::Param(i) => DecOperand::Imm(params.get(usize::from(i)).copied().unwrap_or(0)),
        Operand::MetaSector => DecOperand::MetaSector,
    }
}

#[allow(clippy::too_many_lines)]
fn dec_action(action: Action, params: &[u64], msg_words: usize) -> DecOp {
    let cat = action.category();
    let ev = |o: Operand| dec_operand(o, params, msg_words);
    match action {
        Action::Alu { op, dst, a, b } => {
            let kind = match op {
                AluOp::Add => DecKind::AluAdd,
                AluOp::Sub => DecKind::AluSub,
                AluOp::And => DecKind::AluAnd,
                AluOp::Or => DecKind::AluOr,
                AluOp::Xor => DecKind::AluXor,
                AluOp::Shl => DecKind::AluShl,
                AluOp::Srl => DecKind::AluSrl,
                AluOp::Sra => DecKind::AluSra,
                AluOp::Mul => DecKind::AluMul,
            };
            DecOp {
                a: ev(a),
                b: ev(b),
                dst: dst.0,
                ..DecOp::new(kind, cat)
            }
        }
        Action::Mov { dst, a } => DecOp {
            a: ev(a),
            dst: dst.0,
            ..DecOp::new(DecKind::Mov, cat)
        },
        Action::AllocR => DecOp::new(DecKind::AllocR, cat),
        Action::Hash { done, a } => DecOp {
            a: ev(a),
            event: done,
            ..DecOp::new(DecKind::Hash, cat)
        },
        Action::DramRead { addr, len } => DecOp {
            a: ev(addr),
            b: ev(len),
            ..DecOp::new(DecKind::DramRead, cat)
        },
        Action::DramWrite { addr, sector, len } => DecOp {
            a: ev(addr),
            b: ev(sector),
            c: ev(len),
            ..DecOp::new(DecKind::DramWrite, cat)
        },
        Action::PostEvent {
            event,
            delay,
            payload,
        } => DecOp {
            a: ev(payload),
            aux: u32::from(delay),
            event,
            ..DecOp::new(DecKind::PostEvent, cat)
        },
        Action::Peek { dst, word } => DecOp {
            dst: dst.0,
            aux: (usize::from(word) % msg_words) as u32,
            ..DecOp::new(DecKind::Peek, cat)
        },
        Action::Respond => DecOp::new(DecKind::Respond, cat),
        Action::AllocM => DecOp::new(DecKind::AllocM, cat),
        Action::DeallocM => DecOp::new(DecKind::DeallocM, cat),
        Action::PinM => DecOp::new(DecKind::PinM, cat),
        Action::InsertM { key, words } => DecOp {
            a: ev(key),
            b: ev(words),
            ..DecOp::new(DecKind::InsertM, cat)
        },
        Action::UpdateM { start, end } => DecOp {
            a: ev(start),
            b: ev(end),
            ..DecOp::new(DecKind::UpdateM, cat)
        },
        Action::Branch { cond, a, b, target } => {
            let kind = match cond {
                Cond::Eq => DecKind::BrEq,
                Cond::Ne => DecKind::BrNe,
                Cond::Lt => DecKind::BrLt,
                Cond::Ge => DecKind::BrGe,
                Cond::Le => DecKind::BrLe,
                Cond::Miss => DecKind::BrMiss,
                Cond::Hit => DecKind::BrHit,
            };
            DecOp {
                a: ev(a),
                b: ev(b),
                aux: u32::from(target),
                ..DecOp::new(kind, cat)
            }
        }
        Action::Yield { state } => DecOp {
            state,
            ..DecOp::new(DecKind::Yield, cat)
        },
        Action::Retire => DecOp::new(DecKind::Retire, cat),
        Action::Fault => DecOp::new(DecKind::Fault, cat),
        Action::AllocD { dst, count } => DecOp {
            a: ev(count),
            dst: dst.0,
            ..DecOp::new(DecKind::AllocD, cat)
        },
        Action::DeallocD => DecOp::new(DecKind::DeallocD, cat),
        Action::ReadD { dst, sector, word } => DecOp {
            a: ev(sector),
            b: ev(word),
            dst: dst.0,
            ..DecOp::new(DecKind::ReadD, cat)
        },
        Action::WriteD {
            sector,
            word,
            value,
        } => DecOp {
            a: ev(sector),
            b: ev(word),
            c: ev(value),
            ..DecOp::new(DecKind::WriteD, cat)
        },
        Action::FillD { sector, words } => DecOp {
            a: ev(sector),
            b: ev(words),
            ..DecOp::new(DecKind::FillD, cat)
        },
    }
}

/// Pre-decodes `program` against a concrete parameter block and message
/// width. Call after validation/verification; indexing mirrors
/// `program.routines` exactly.
#[must_use]
pub fn predecode(program: &WalkerProgram, params: &[u64], msg_words: usize) -> DecodedProgram {
    assert!(msg_words > 0, "message width must be nonzero");
    DecodedProgram {
        routines: program
            .routines
            .iter()
            .map(|r| {
                let mut ops: Vec<DecOp> = r
                    .actions
                    .iter()
                    .map(|&a| dec_action(a, params, msg_words))
                    .collect();
                fuse_runs(&mut ops);
                ops.into_boxed_slice()
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn params_fold_to_immediates() {
        let op = dec_action(
            Action::Mov {
                dst: Reg(0),
                a: Operand::Param(1),
            },
            &[10, 77],
            4,
        );
        assert_eq!(op.kind, DecKind::Mov);
        assert_eq!(op.a, DecOperand::Imm(77));
    }

    #[test]
    fn msgword_premasked() {
        let op = dec_action(
            Action::Peek {
                dst: Reg(2),
                word: 9,
            },
            &[],
            4,
        );
        assert_eq!(op.aux, 1);
        assert_eq!(op.dst, 2);
        let op = dec_action(
            Action::Mov {
                dst: Reg(0),
                a: Operand::MsgWord(6),
            },
            &[],
            4,
        );
        assert_eq!(op.a, DecOperand::MsgWord(2));
    }

    #[test]
    fn alu_and_branch_specialise() {
        let op = dec_action(
            Action::Alu {
                op: AluOp::Xor,
                dst: Reg(1),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(3),
            },
            &[],
            4,
        );
        assert_eq!(op.kind, DecKind::AluXor);
        assert_eq!(op.a, DecOperand::Reg(0));
        assert_eq!(op.b, DecOperand::Imm(3));
        let op = dec_action(
            Action::Branch {
                cond: Cond::Miss,
                a: Operand::Imm(0),
                b: Operand::Imm(0),
                target: 5,
            },
            &[],
            4,
        );
        assert_eq!(op.kind, DecKind::BrMiss);
        assert_eq!(op.aux, 5);
    }

    #[test]
    fn categories_carry_over() {
        let op = dec_action(Action::AllocM, &[], 4);
        assert_eq!(op.category, Action::AllocM.category());
    }

    /// A bare op of `kind` for fusion-shape tests (operands unused).
    fn bare(kind: DecKind) -> DecOp {
        DecOp::new(kind, ActionCategory::Agen)
    }

    fn branch_to(target: u32) -> DecOp {
        DecOp {
            aux: target,
            ..DecOp::new(DecKind::BrEq, ActionCategory::Control)
        }
    }

    fn fuses(ops: &mut [DecOp]) -> Vec<u16> {
        fuse_runs(ops);
        ops.iter().map(|o| o.fuse).collect()
    }

    use crate::ActionCategory;

    #[test]
    fn straight_line_runs_fuse_with_suffix_lengths() {
        let mut ops = vec![
            bare(DecKind::Peek),
            bare(DecKind::AluAnd),
            bare(DecKind::AluMul),
            bare(DecKind::AluAdd),
            bare(DecKind::DramRead),
            bare(DecKind::Yield),
        ];
        // Every position in the run carries its own suffix length, so a
        // jump landing mid-run still executes exactly its remaining ops.
        assert_eq!(fuses(&mut ops), vec![4, 3, 2, 1, 1, 1]);
    }

    #[test]
    fn fusion_never_crosses_yield_branch_or_queue_op() {
        // The boundary op itself never joins a run, and ops before it
        // cannot fuse across it.
        for boundary in [
            DecKind::Yield,
            DecKind::BrNe,
            DecKind::DramRead,
            DecKind::DramWrite,
            DecKind::Hash,
            DecKind::PostEvent,
            DecKind::Respond,
            DecKind::AllocM,
            DecKind::InsertM,
            DecKind::AllocD,
            DecKind::ReadD,
            DecKind::WriteD,
            DecKind::Retire,
        ] {
            let mut ops = vec![
                bare(DecKind::AluAdd),
                bare(boundary),
                bare(DecKind::AluSub),
                bare(DecKind::Retire),
            ];
            assert_eq!(fuses(&mut ops), vec![1, 1, 1, 1], "boundary {boundary:?}");
        }
    }

    #[test]
    fn fusion_never_crosses_a_branch_target() {
        let mut ops = vec![
            bare(DecKind::AluAdd), // 0: cannot extend into the target at 1
            bare(DecKind::AluSub), // 1: branch target — starts its own run
            bare(DecKind::AluMul), // 2
            branch_to(1),          // 3
            bare(DecKind::Retire), // 4
        ];
        assert_eq!(fuses(&mut ops), vec![1, 2, 1, 1, 1]);
    }

    #[test]
    fn metasector_operand_blocks_fusion() {
        let mut ops = vec![
            bare(DecKind::AluAdd),
            DecOp {
                a: DecOperand::MetaSector,
                ..DecOp::new(DecKind::Mov, ActionCategory::Agen)
            },
            bare(DecKind::AluSub),
            bare(DecKind::Retire),
        ];
        // The MetaSector read can fault, so it must execute at its own
        // micro-timestamp: no run includes it.
        assert_eq!(fuses(&mut ops), vec![1, 1, 1, 1]);
    }

    #[test]
    fn predecode_stamps_fuse_lengths() {
        use crate::{Reg, Routine, RoutineTable, WalkerProgram};
        let program = WalkerProgram {
            name: "fusetest".into(),
            state_names: vec!["Default".into()],
            event_names: vec!["START".into()],
            regs: 4,
            param_names: vec![],
            routines: vec![Routine {
                name: "start".into(),
                actions: vec![
                    Action::Peek {
                        dst: Reg(0),
                        word: 0,
                    },
                    Action::Alu {
                        op: AluOp::Add,
                        dst: Reg(1),
                        a: Operand::Reg(Reg(0)),
                        b: Operand::Imm(1),
                    },
                    Action::Retire,
                ],
            }],
            table: RoutineTable::new(1, 1),
        };
        let dec = predecode(&program, &[], 4);
        assert_eq!(
            dec.routines[0].iter().map(|o| o.fuse).collect::<Vec<_>>(),
            vec![2, 1, 1]
        );
    }
}
