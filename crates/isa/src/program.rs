//! Compiled walker programs: routines, the routine table, and validation.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Action, EventId, StateId};

/// Index of a routine in the microcode RAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RoutineId(pub u16);

impl fmt::Display for RoutineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rtn#{}", self.0)
    }
}

/// A named, run-to-completion sequence of actions.
#[derive(Debug, Clone, PartialEq)]
pub struct Routine {
    /// Human-readable name (from the assembler source).
    pub name: String,
    /// Actions in program order; the last reachable action on every path
    /// must be a terminator.
    pub actions: Vec<Action>,
}

impl Routine {
    /// Number of actions (microcode words).
    #[must_use]
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// Whether the routine has no actions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }
}

/// The two-dimensional `(state, event) → routine` dispatch table (§4.1 ③).
///
/// "The rows of the routine table correspond to the coroutine states; the
/// columns correspond to the events that can occur. Each entry is a pointer
/// to a routine in the microcode RAM."
#[derive(Debug, Clone, PartialEq)]
pub struct RoutineTable {
    states: u8,
    events: u8,
    entries: Vec<Option<RoutineId>>, // states × events, row-major
}

impl RoutineTable {
    /// Creates an empty table with `states` rows and `events` columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(states: u8, events: u8) -> Self {
        assert!(states > 0 && events > 0, "table dimensions must be nonzero");
        RoutineTable {
            states,
            events,
            entries: vec![None; states as usize * events as usize],
        }
    }

    /// Number of state rows.
    #[must_use]
    pub fn states(&self) -> u8 {
        self.states
    }

    /// Number of event columns.
    #[must_use]
    pub fn events(&self) -> u8 {
        self.events
    }

    fn idx(&self, state: StateId, event: EventId) -> Option<usize> {
        (state.0 < self.states && event.0 < self.events)
            .then(|| state.index() * self.events as usize + event.index())
    }

    /// Installs `routine` at `(state, event)`, replacing any previous entry.
    ///
    /// # Panics
    ///
    /// Panics if `state`/`event` are outside the table dimensions.
    pub fn set(&mut self, state: StateId, event: EventId, routine: RoutineId) {
        let i = self
            .idx(state, event)
            .unwrap_or_else(|| panic!("({state}, {event}) outside table"));
        self.entries[i] = Some(routine);
    }

    /// The routine triggered by `event` in `state`, if any.
    ///
    /// A `None` means the event is not expected in that state — the
    /// hardware equivalent is a protocol error, which the controller
    /// reports as a fault.
    #[must_use]
    pub fn lookup(&self, state: StateId, event: EventId) -> Option<RoutineId> {
        self.idx(state, event).and_then(|i| self.entries[i])
    }

    /// Number of populated cells.
    #[must_use]
    pub fn populated(&self) -> usize {
        self.entries.iter().filter(|e| e.is_some()).count()
    }
}

/// Structural error in a [`WalkerProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A routine has no actions.
    EmptyRoutine(String),
    /// A routine can run past its final action.
    MissingTerminator(String),
    /// A terminator appears before the end yet nothing branches past it —
    /// the trailing actions can never execute.
    UnreachableTail(String, usize),
    /// A branch targets an action index outside the routine.
    BranchOutOfRange(String, usize, u8),
    /// An action names an X-register ≥ the declared register count.
    RegisterOutOfRange(String, u8),
    /// A `Yield` names a state ≥ the declared state count.
    StateOutOfRange(String, u8),
    /// The table references a routine id that does not exist.
    DanglingRoutine(StateId, EventId, RoutineId),
    /// No routine handles `(Default, Miss)` — the walker can never start.
    NoMissHandler,
    /// An event id used by `Hash`/`PostEvent` is outside the declared
    /// event count.
    EventOutOfRange(String, u8),
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::EmptyRoutine(n) => write!(f, "routine `{n}` is empty"),
            ProgramError::MissingTerminator(n) => {
                write!(f, "routine `{n}` can fall off its end without a terminator")
            }
            ProgramError::UnreachableTail(n, i) => {
                write!(f, "routine `{n}`: actions after index {i} are unreachable")
            }
            ProgramError::BranchOutOfRange(n, i, t) => {
                write!(
                    f,
                    "routine `{n}` action {i}: branch target @{t} out of range"
                )
            }
            ProgramError::RegisterOutOfRange(n, r) => {
                write!(
                    f,
                    "routine `{n}` uses r{r} beyond the declared register count"
                )
            }
            ProgramError::StateOutOfRange(n, s) => {
                write!(f, "routine `{n}` yields to undeclared state S{s}")
            }
            ProgramError::DanglingRoutine(s, e, r) => {
                write!(f, "table entry ({s}, {e}) points at missing {r}")
            }
            ProgramError::NoMissHandler => {
                write!(
                    f,
                    "no routine handles (Default, Miss); the walker can never start"
                )
            }
            ProgramError::EventOutOfRange(n, e) => {
                write!(f, "routine `{n}` posts undeclared event E{e}")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A complete, validated walker: routines + dispatch table + declarations.
///
/// This is what the assembler produces and what the controller in
/// `xcache-core` loads into its routine RAM.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkerProgram {
    /// Walker name (from the `walker` directive).
    pub name: String,
    /// State names, indexed by [`StateId`]. Index 0 is `Default`.
    pub state_names: Vec<String>,
    /// Event names, indexed by [`EventId`]. Indices 0..3 are the
    /// architectural `Miss`, `Fill`, `Update`.
    pub event_names: Vec<String>,
    /// Number of X-registers each walker instance needs.
    pub regs: u8,
    /// DSA-specific parameter names, indexed by `Operand::Param`.
    pub param_names: Vec<String>,
    /// Microcode RAM contents.
    pub routines: Vec<Routine>,
    /// Dispatch table.
    pub table: RoutineTable,
}

impl WalkerProgram {
    /// The microcode RAM image (all routines, in id order).
    #[must_use]
    pub fn routines(&self) -> &[Routine] {
        &self.routines
    }

    /// Total number of microcode words (actions) across all routines —
    /// "the structures implicitly scale up or down based on walker FSM
    /// complexity" (§7.1 ⑤).
    #[must_use]
    pub fn microcode_words(&self) -> usize {
        self.routines.iter().map(Routine::len).sum()
    }

    /// Resolves a state name to its id.
    #[must_use]
    pub fn state(&self, name: &str) -> Option<StateId> {
        self.state_names
            .iter()
            .position(|n| n == name)
            .map(|i| StateId(i as u8))
    }

    /// Resolves an event name to its id.
    #[must_use]
    pub fn event(&self, name: &str) -> Option<EventId> {
        self.event_names
            .iter()
            .position(|n| n == name)
            .map(|i| EventId(i as u8))
    }

    /// Resolves a parameter name to its `Operand::Param` index.
    #[must_use]
    pub fn param(&self, name: &str) -> Option<u8> {
        self.param_names
            .iter()
            .position(|n| n == name)
            .map(|i| i as u8)
    }

    /// Validates every structural invariant; returns all errors found.
    ///
    /// # Errors
    ///
    /// Returns the (nonempty) list of problems when the program is not
    /// well-formed.
    pub fn validate(&self) -> Result<(), Vec<ProgramError>> {
        let mut errs = Vec::new();
        for r in &self.routines {
            if r.actions.is_empty() {
                errs.push(ProgramError::EmptyRoutine(r.name.clone()));
                continue;
            }
            // Control-flow scan: compute reachability and check the final
            // reachable instruction set.
            let n = r.actions.len();
            let mut reachable = vec![false; n];
            let mut stack = vec![0usize];
            let mut falls_off = false;
            while let Some(i) = stack.pop() {
                if i >= n {
                    falls_off = true;
                    continue;
                }
                if reachable[i] {
                    continue;
                }
                reachable[i] = true;
                match &r.actions[i] {
                    Action::Branch { target, .. } => {
                        if (*target as usize) >= n {
                            errs.push(ProgramError::BranchOutOfRange(r.name.clone(), i, *target));
                        } else {
                            stack.push(*target as usize);
                        }
                        stack.push(i + 1);
                    }
                    a if a.is_terminator() => {}
                    _ => stack.push(i + 1),
                }
            }
            if falls_off {
                errs.push(ProgramError::MissingTerminator(r.name.clone()));
            }
            if let Some(first_dead) = reachable.iter().position(|x| !x) {
                errs.push(ProgramError::UnreachableTail(r.name.clone(), first_dead));
            }
            // Per-action operand checks.
            for a in &r.actions {
                for reg in a.reads().into_iter().chain(a.writes()) {
                    if reg.0 >= self.regs {
                        errs.push(ProgramError::RegisterOutOfRange(r.name.clone(), reg.0));
                    }
                }
                match a {
                    Action::Yield { state } if state.0 as usize >= self.state_names.len() => {
                        errs.push(ProgramError::StateOutOfRange(r.name.clone(), state.0));
                    }
                    Action::Hash { done, .. } | Action::PostEvent { event: done, .. }
                        if done.0 as usize >= self.event_names.len() =>
                    {
                        errs.push(ProgramError::EventOutOfRange(r.name.clone(), done.0));
                    }
                    _ => {}
                }
            }
        }
        // Table entries must point at real routines.
        for s in 0..self.table.states() {
            for e in 0..self.table.events() {
                if let Some(rid) = self.table.lookup(StateId(s), EventId(e)) {
                    if rid.0 as usize >= self.routines.len() {
                        errs.push(ProgramError::DanglingRoutine(StateId(s), EventId(e), rid));
                    }
                }
            }
        }
        if self.table.lookup(StateId::DEFAULT, EventId::MISS).is_none() {
            errs.push(ProgramError::NoMissHandler);
        }
        // Dedup (register errors repeat per action).
        let mut seen = BTreeMap::new();
        errs.retain(|e| seen.insert(format!("{e}"), ()).is_none());
        if errs.is_empty() {
            Ok(())
        } else {
            Err(errs)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Operand, Reg};

    fn minimal_program() -> WalkerProgram {
        let mut table = RoutineTable::new(2, 3);
        table.set(StateId::DEFAULT, EventId::MISS, RoutineId(0));
        table.set(StateId(1), EventId::FILL, RoutineId(1));
        WalkerProgram {
            name: "test".into(),
            state_names: vec!["Default".into(), "Wait".into()],
            event_names: vec!["Miss".into(), "Fill".into(), "Update".into()],
            regs: 2,
            param_names: vec!["base".into()],
            routines: vec![
                Routine {
                    name: "start".into(),
                    actions: vec![
                        Action::AllocR,
                        Action::AllocM,
                        Action::Mov {
                            dst: Reg(0),
                            a: Operand::Key,
                        },
                        Action::DramRead {
                            addr: Operand::Reg(Reg(0)),
                            len: Operand::Imm(64),
                        },
                        Action::Yield { state: StateId(1) },
                    ],
                },
                Routine {
                    name: "finish".into(),
                    actions: vec![
                        Action::AllocD {
                            dst: Reg(1),
                            count: Operand::Imm(1),
                        },
                        Action::FillD {
                            sector: Operand::Reg(Reg(1)),
                            words: Operand::Imm(8),
                        },
                        Action::UpdateM {
                            start: Operand::Reg(Reg(1)),
                            end: Operand::Reg(Reg(1)),
                        },
                        Action::Respond,
                        Action::Retire,
                    ],
                },
            ],
            table,
        }
    }

    #[test]
    fn minimal_program_validates() {
        assert_eq!(minimal_program().validate(), Ok(()));
    }

    #[test]
    fn lookup_resolves_and_misses() {
        let p = minimal_program();
        assert_eq!(
            p.table.lookup(StateId::DEFAULT, EventId::MISS),
            Some(RoutineId(0))
        );
        assert_eq!(p.table.lookup(StateId::DEFAULT, EventId::FILL), None);
        assert_eq!(p.table.lookup(StateId(9), EventId::MISS), None);
        assert_eq!(p.table.populated(), 2);
    }

    #[test]
    fn name_resolution() {
        let p = minimal_program();
        assert_eq!(p.state("Wait"), Some(StateId(1)));
        assert_eq!(p.event("Fill"), Some(EventId::FILL));
        assert_eq!(p.param("base"), Some(0));
        assert_eq!(p.state("nope"), None);
        assert_eq!(p.microcode_words(), 10);
    }

    #[test]
    fn missing_terminator_detected() {
        let mut p = minimal_program();
        p.routines[0].actions.pop(); // drop the Yield
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::MissingTerminator(_))));
    }

    #[test]
    fn empty_routine_detected() {
        let mut p = minimal_program();
        p.routines[0].actions.clear();
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::EmptyRoutine(_))));
    }

    #[test]
    fn branch_out_of_range_detected() {
        let mut p = minimal_program();
        p.routines[0].actions.insert(
            0,
            Action::Branch {
                cond: crate::Cond::Miss,
                a: Operand::Imm(0),
                b: Operand::Imm(0),
                target: 99,
            },
        );
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::BranchOutOfRange(..))));
    }

    #[test]
    fn register_overflow_detected() {
        let mut p = minimal_program();
        p.routines[0].actions.insert(
            2,
            Action::Mov {
                dst: Reg(7),
                a: Operand::Key,
            },
        );
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::RegisterOutOfRange(_, 7))));
    }

    #[test]
    fn dangling_routine_detected() {
        let mut p = minimal_program();
        p.table.set(StateId(1), EventId::UPDATE, RoutineId(9));
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::DanglingRoutine(..))));
    }

    #[test]
    fn missing_miss_handler_detected() {
        let mut p = minimal_program();
        p.table = RoutineTable::new(2, 3);
        p.table.set(StateId(1), EventId::FILL, RoutineId(1));
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::NoMissHandler)));
    }

    #[test]
    fn unreachable_tail_detected() {
        let mut p = minimal_program();
        p.routines[1].actions.push(Action::Respond); // after Retire
        let errs = p.validate().unwrap_err();
        assert!(errs
            .iter()
            .any(|e| matches!(e, ProgramError::UnreachableTail(..))));
    }

    #[test]
    fn conditional_next_state_both_paths_validate() {
        // "the match condition determines the next state" — a routine with
        // two terminators reached via a branch.
        let mut p = minimal_program();
        p.routines[1].actions = vec![
            Action::Peek {
                dst: Reg(0),
                word: 0,
            },
            Action::Branch {
                cond: crate::Cond::Eq,
                a: Operand::Reg(Reg(0)),
                b: Operand::Key,
                target: 4,
            },
            Action::Alu {
                op: AluOp::Add,
                dst: Reg(0),
                a: Operand::Reg(Reg(0)),
                b: Operand::Imm(8),
            },
            Action::Yield { state: StateId(1) },
            Action::Retire,
        ];
        assert_eq!(p.validate(), Ok(()));
    }

    #[test]
    #[should_panic(expected = "outside table")]
    fn table_set_out_of_range_panics() {
        let mut t = RoutineTable::new(1, 1);
        t.set(StateId(1), EventId(0), RoutineId(0));
    }
}
