//! Static verification of walker programs.
//!
//! [`WalkerProgram::validate`] guarantees a program is *structurally*
//! well-formed; this module proves the deeper coroutine discipline of §4.2
//! before the controller ever runs an action:
//!
//! 1. **Table integrity** — every `(state, event)` entry points at a real
//!    routine, the table dimensions match the declared state/event names,
//!    and `(Default, Miss)` is populated.
//! 2. **Terminator coverage** — every path through every reachable routine
//!    ends in `yield`/`retire`/`fault` (no fall-off-the-end, no dead tail,
//!    no branch outside the routine).
//! 3. **X-Reg def-before-use** — a register read must be dominated by a
//!    definition on *every* path, including values carried across
//!    yield/wake boundaries (the analysis walks the whole state machine,
//!    intersecting definitely-defined sets at routine entries).
//! 4. **Stage legality** — `allocR` claims the register file and may only
//!    open a launch entry; `filld`/`insertm` consume a DRAM fill payload
//!    and are only legal in routines dispatched by `Fill`.
//! 5. **Yield-before-long-latency** — after a DRAM issue, no AGEN or
//!    data-RAM action may run in the same routine activation; the routine
//!    must yield and let the completion event resume it.
//! 6. **Queue push/pop balance** — per-activation DRAM issues and posted
//!    events are bounded by the declared capacities in [`VerifyLimits`],
//!    cumulative data-RAM allocation cannot exceed the sector capacity,
//!    every completion event pending at a `yield` has a handler in the
//!    yielded-to state (else the walker parks forever), and a `yield` with
//!    nothing outstanding can never be woken.
//! 7. **Reachability** — routines the state machine can never dispatch are
//!    reported as warnings.
//!
//! The verifier is conservative: it rejects only programs with a path it
//! can prove defective under the model above, and every diagnostic carries
//! its source location (routine name, action index, rendered action).

use std::collections::BTreeSet;
use std::fmt;

use crate::{Action, ActionCategory, EventId, Operand, Routine, StateId, WalkerProgram};

/// How bad a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but runnable (e.g. dead routines).
    Warning,
    /// The program is rejected.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The defect classes the verifier distinguishes (one negative test each).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DefectClass {
    /// Dispatch-table defects: dangling routine ids, dimension mismatches,
    /// missing `(Default, Miss)` handler.
    TableIntegrity,
    /// A reachable path can run past the routine's end, or actions can
    /// never execute.
    Terminator,
    /// A register, state, event, or parameter id outside the declared
    /// range.
    Bounds,
    /// An X-register may be read before any definition on some path
    /// (across yield/wake boundaries included).
    UseBeforeDef,
    /// An action is placed in a pipeline stage where it is not legal
    /// (`allocR` outside a launch entry, fill consumers outside a `Fill`
    /// dispatch).
    StageLegality,
    /// An AGEN or data-RAM action follows a DRAM issue in the same
    /// routine activation without an intervening yield.
    MissedYield,
    /// Queue pushes outrun the declared capacities (DRAM issues, posted
    /// events, data-RAM sectors).
    QueueImbalance,
    /// A completion event cannot be consumed: the yielded-to state has no
    /// handler for it, or a yield has nothing outstanding to wake it.
    UnhandledCompletion,
    /// The state machine can never dispatch this routine.
    Unreachable,
}

impl DefectClass {
    /// Stable kebab-case code, used in rendered diagnostics.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            DefectClass::TableIntegrity => "table-integrity",
            DefectClass::Terminator => "terminator",
            DefectClass::Bounds => "bounds",
            DefectClass::UseBeforeDef => "use-before-def",
            DefectClass::StageLegality => "stage-legality",
            DefectClass::MissedYield => "missed-yield",
            DefectClass::QueueImbalance => "queue-imbalance",
            DefectClass::UnhandledCompletion => "unhandled-completion",
            DefectClass::Unreachable => "unreachable",
        }
    }
}

/// One verifier finding, located at `routine`/`pc` when it concerns a
/// specific action (table-level findings have no location).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Defect class.
    pub class: DefectClass,
    /// Error or warning.
    pub severity: Severity,
    /// Routine name, if the finding is inside a routine.
    pub routine: Option<String>,
    /// Action index within the routine, if applicable.
    pub pc: Option<usize>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.class.code())?;
        match (&self.routine, self.pc) {
            (Some(r), Some(pc)) => write!(f, " routine `{r}` @{pc}")?,
            (Some(r), None) => write!(f, " routine `{r}`")?,
            _ => {}
        }
        write!(f, ": {}", self.message)
    }
}

/// Declared capacities the balance checks verify against. The controller
/// passes its geometry here; standalone tools use the defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyLimits {
    /// DRAM requests one routine activation may leave outstanding
    /// (the coroutine discipline: issue, then yield).
    pub dram_per_activation: u32,
    /// Internal events (hash results, posted events) one activation may
    /// leave outstanding.
    pub events_per_activation: u32,
    /// Total data-RAM sectors (the declared capacity a single walk's
    /// cumulative `allocD` must fit in).
    pub data_sectors: u32,
}

impl Default for VerifyLimits {
    fn default() -> Self {
        VerifyLimits {
            dram_per_activation: 1,
            events_per_activation: 4,
            data_sectors: 16 * 1024,
        }
    }
}

/// The verdict: all diagnostics, in discovery order, deduplicated.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Everything found.
    pub diagnostics: Vec<Diagnostic>,
}

impl VerifyReport {
    /// The error-severity findings.
    #[must_use]
    pub fn errors(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .collect()
    }

    /// The warning-severity findings.
    #[must_use]
    pub fn warnings(&self) -> Vec<&Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .collect()
    }

    /// Whether any error-severity finding exists.
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Whether a given defect class was reported (any severity).
    #[must_use]
    pub fn has_class(&self, class: DefectClass) -> bool {
        self.diagnostics.iter().any(|d| d.class == class)
    }

    /// Converts the report into a pass/fail result.
    ///
    /// # Errors
    ///
    /// Returns a [`VerifyError`] carrying the offending diagnostics when
    /// any error (or, with `deny_warnings`, any finding at all) exists.
    pub fn check(&self, deny_warnings: bool) -> Result<(), VerifyError> {
        let bad: Vec<Diagnostic> = self
            .diagnostics
            .iter()
            .filter(|d| deny_warnings || d.severity == Severity::Error)
            .cloned()
            .collect();
        if bad.is_empty() {
            Ok(())
        } else {
            Err(VerifyError { diagnostics: bad })
        }
    }
}

/// A rejected program: the typed error the controller and `xasm` surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The findings that caused the rejection.
    pub diagnostics: Vec<Diagnostic>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} verifier finding(s)", self.diagnostics.len())?;
        for d in &self.diagnostics {
            write!(f, "; {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// Verifies `program` under the default [`VerifyLimits`].
#[must_use]
pub fn verify(program: &WalkerProgram) -> VerifyReport {
    verify_with(program, &VerifyLimits::default())
}

/// Verifies `program` against explicit declared capacities.
#[must_use]
pub fn verify_with(program: &WalkerProgram, limits: &VerifyLimits) -> VerifyReport {
    Verifier::new(program, limits).run()
}

/// A dataflow fact at one program point of one routine activation.
///
/// `defs` is a *must* set (meet = intersection); everything else is a
/// *may*/max summary (meet = union / maximum), so the checks stay
/// conservative in the rejecting direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Fact {
    /// Bit `i` set ⇒ `r_i` is defined on every path here.
    defs: u64,
    /// Bit `e` set ⇒ completion event `e` may be outstanding.
    pending: u64,
    /// Max DRAM issues so far in this activation (saturating).
    dram: u32,
    /// Max posted internal events so far in this activation (saturating).
    posted: u32,
    /// A DRAM issue may have happened earlier in this activation.
    issued: bool,
    /// Max cumulative data-RAM sectors allocated over the whole walk
    /// (saturating at the capacity + 1).
    sectors: u32,
}

impl Fact {
    fn entry(defs: u64, sectors: u32) -> Self {
        Fact {
            defs,
            pending: 0,
            dram: 0,
            posted: 0,
            issued: false,
            sectors,
        }
    }

    fn meet(self, other: Fact) -> Fact {
        Fact {
            defs: self.defs & other.defs,
            pending: self.pending | other.pending,
            dram: self.dram.max(other.dram),
            posted: self.posted.max(other.posted),
            issued: self.issued || other.issued,
            sectors: self.sectors.max(other.sectors),
        }
    }
}

/// The launch events the trigger stage can start a walker with: loads
/// launch with `Miss`, stores with `Update` (entries rest in `Default`).
const LAUNCH_EVENTS: [EventId; 2] = [EventId::MISS, EventId::UPDATE];

struct Verifier<'p> {
    program: &'p WalkerProgram,
    limits: VerifyLimits,
    diags: Vec<Diagnostic>,
    /// Per-routine structural soundness (dataflow only runs on sound CFGs).
    sound: Vec<bool>,
    /// Per-routine entry fact, `None` until proven reachable.
    entry: Vec<Option<Fact>>,
}

impl<'p> Verifier<'p> {
    fn new(program: &'p WalkerProgram, limits: &VerifyLimits) -> Self {
        Verifier {
            program,
            limits: limits.clone(),
            diags: Vec::new(),
            sound: vec![false; program.routines.len()],
            entry: vec![None; program.routines.len()],
        }
    }

    fn run(mut self) -> VerifyReport {
        self.check_table();
        for i in 0..self.program.routines.len() {
            self.sound[i] = self.check_structure(i);
        }
        self.check_stage_legality();
        self.propagate();
        self.check_dataflow();
        self.check_reachability();
        // Deduplicate (fixpoint passes can revisit a program point).
        let mut seen = BTreeSet::new();
        self.diags.retain(|d| seen.insert(d.to_string()));
        VerifyReport {
            diagnostics: self.diags,
        }
    }

    fn diag(
        &mut self,
        class: DefectClass,
        severity: Severity,
        routine: Option<usize>,
        pc: Option<usize>,
        message: String,
    ) {
        self.diags.push(Diagnostic {
            class,
            severity,
            routine: routine.map(|r| self.program.routines[r].name.clone()),
            pc,
            message,
        });
    }

    /// Located error with the offending action rendered into the message.
    fn action_error(&mut self, class: DefectClass, r: usize, pc: usize, what: &str) {
        let a = self.program.routines[r].actions[pc];
        self.diag(
            class,
            Severity::Error,
            Some(r),
            Some(pc),
            format!("`{a}`: {what}"),
        );
    }

    // ---- check 1 & 5: table integrity + id bounds -----------------------

    fn check_table(&mut self) {
        let p = self.program;
        if usize::from(p.table.states()) != p.state_names.len() {
            self.diag(
                DefectClass::TableIntegrity,
                Severity::Error,
                None,
                None,
                format!(
                    "table has {} state rows but {} states are declared",
                    p.table.states(),
                    p.state_names.len()
                ),
            );
        }
        if usize::from(p.table.events()) != p.event_names.len() {
            self.diag(
                DefectClass::TableIntegrity,
                Severity::Error,
                None,
                None,
                format!(
                    "table has {} event columns but {} events are declared",
                    p.table.events(),
                    p.event_names.len()
                ),
            );
        }
        for s in 0..p.table.states() {
            for e in 0..p.table.events() {
                if let Some(rid) = p.table.lookup(StateId(s), EventId(e)) {
                    if usize::from(rid.0) >= p.routines.len() {
                        self.diag(
                            DefectClass::TableIntegrity,
                            Severity::Error,
                            None,
                            None,
                            format!(
                                "table entry ({}, {}) points at missing routine {rid}",
                                self.state_name(StateId(s)),
                                self.event_name(EventId(e)),
                            ),
                        );
                    }
                }
            }
        }
        if p.table.lookup(StateId::DEFAULT, EventId::MISS).is_none() {
            self.diag(
                DefectClass::TableIntegrity,
                Severity::Error,
                None,
                None,
                "no routine handles (Default, Miss); the walker can never start".into(),
            );
        }
    }

    fn state_name(&self, s: StateId) -> String {
        self.program
            .state_names
            .get(s.index())
            .cloned()
            .unwrap_or_else(|| format!("S{}", s.0))
    }

    fn event_name(&self, e: EventId) -> String {
        self.program
            .event_names
            .get(e.index())
            .cloned()
            .unwrap_or_else(|| format!("E{}", e.0))
    }

    // ---- check 2: terminator coverage + operand bounds ------------------

    /// Returns whether the routine's CFG is sound enough for dataflow.
    fn check_structure(&mut self, r: usize) -> bool {
        let routine = &self.program.routines[r];
        let n = routine.actions.len();
        if n == 0 {
            self.diag(
                DefectClass::Terminator,
                Severity::Error,
                Some(r),
                None,
                "routine is empty".into(),
            );
            return false;
        }
        let mut sound = true;
        let mut reachable = vec![false; n];
        let mut stack = vec![0usize];
        while let Some(pc) = stack.pop() {
            if pc >= n {
                continue;
            }
            if std::mem::replace(&mut reachable[pc], true) {
                continue;
            }
            let a = &routine.actions[pc];
            if let Action::Branch { target, .. } = a {
                if usize::from(*target) >= n {
                    self.action_error(
                        DefectClass::Terminator,
                        r,
                        pc,
                        "branch target outside the routine",
                    );
                    sound = false;
                } else {
                    stack.push(usize::from(*target));
                }
            }
            if a.is_terminator() {
                continue;
            }
            if pc + 1 >= n {
                self.action_error(
                    DefectClass::Terminator,
                    r,
                    pc,
                    "a path can run past the routine's end without a terminator",
                );
                sound = false;
            } else {
                stack.push(pc + 1);
            }
        }
        if let Some(dead) = reachable.iter().position(|x| !x) {
            self.diag(
                DefectClass::Terminator,
                Severity::Error,
                Some(r),
                Some(dead),
                format!("actions from index {dead} can never execute"),
            );
        }
        // Operand bounds (check 5).
        let p = self.program;
        let (regs, states, events, params) = (
            p.regs,
            p.state_names.len(),
            p.event_names.len(),
            p.param_names.len(),
        );
        for (pc, a) in routine.actions.iter().enumerate() {
            for reg in a.reads().into_iter().chain(a.writes()) {
                if reg.0 >= regs {
                    self.action_error(
                        DefectClass::Bounds,
                        r,
                        pc,
                        &format!("references {reg} but only {regs} register(s) are declared"),
                    );
                }
            }
            for op in operands(a) {
                if let Operand::Param(i) = op {
                    if usize::from(i) >= params {
                        self.action_error(
                            DefectClass::Bounds,
                            r,
                            pc,
                            &format!("references p{i} but only {params} parameter(s) are declared"),
                        );
                    }
                }
            }
            match a {
                Action::Yield { state } if state.index() >= states => {
                    self.action_error(
                        DefectClass::Bounds,
                        r,
                        pc,
                        &format!("yields to undeclared state S{}", state.0),
                    );
                    sound = false; // its table row does not exist
                }
                Action::Hash { done: e, .. } | Action::PostEvent { event: e, .. }
                    if e.index() >= events =>
                {
                    self.action_error(
                        DefectClass::Bounds,
                        r,
                        pc,
                        &format!("posts undeclared event E{}", e.0),
                    );
                }
                _ => {}
            }
        }
        sound
    }

    // ---- check 4: action-category legality per stage --------------------

    /// The dispatch events each routine can be entered with, per the table
    /// (launch entries additionally dispatch on `Miss`/`Update`).
    fn dispatch_events(&self) -> Vec<Vec<EventId>> {
        let p = self.program;
        let mut by_routine: Vec<Vec<EventId>> = vec![Vec::new(); p.routines.len()];
        for s in 0..p.table.states() {
            for e in 0..p.table.events() {
                if let Some(rid) = p.table.lookup(StateId(s), EventId(e)) {
                    if let Some(v) = by_routine.get_mut(usize::from(rid.0)) {
                        if !v.contains(&EventId(e)) {
                            v.push(EventId(e));
                        }
                    }
                }
            }
        }
        by_routine
    }

    fn launch_entries(&self) -> Vec<usize> {
        let mut v = Vec::new();
        for e in LAUNCH_EVENTS {
            if let Some(rid) = self.program.table.lookup(StateId::DEFAULT, e) {
                if usize::from(rid.0) < self.program.routines.len()
                    && !v.contains(&(rid.0 as usize))
                {
                    v.push(usize::from(rid.0));
                }
            }
        }
        v
    }

    fn check_stage_legality(&mut self) {
        let entries = self.launch_entries();
        let dispatch = self.dispatch_events();
        for (r, disp) in dispatch.iter().enumerate() {
            if !self.sound[r] || self.program.routines[r].is_empty() {
                continue;
            }
            let is_entry = entries.contains(&r);
            if is_entry && self.program.routines[r].actions[0] != Action::AllocR {
                self.diag(
                    DefectClass::StageLegality,
                    Severity::Error,
                    Some(r),
                    Some(0),
                    "launch entry must begin with `allocR` (the register-file claim)".into(),
                );
            }
            let fill_only = !is_entry && disp.iter().all(|e| *e == EventId::FILL);
            for (pc, a) in self.program.routines[r].actions.iter().enumerate() {
                match a {
                    Action::AllocR if !(is_entry && pc == 0) => {
                        self.action_error(
                            DefectClass::StageLegality,
                            r,
                            pc,
                            "only legal as the first action of a launch entry",
                        );
                    }
                    Action::FillD { .. } | Action::InsertM { .. }
                        if !fill_only && !disp.is_empty() =>
                    {
                        self.action_error(
                            DefectClass::StageLegality,
                            r,
                            pc,
                            "consumes a DRAM fill payload but the routine can be \
                             dispatched by a non-Fill event",
                        );
                    }
                    _ => {}
                }
            }
        }
    }

    // ---- interprocedural dataflow (checks 3, 5, 6) ----------------------

    /// Intra-routine forward dataflow from `entry`; returns the fact *at*
    /// each pc (before the action executes), or `None` for unreachable pcs.
    fn flow(&self, r: usize, entry: Fact) -> Vec<Option<Fact>> {
        let routine = &self.program.routines[r];
        let n = routine.actions.len();
        let mut facts: Vec<Option<Fact>> = vec![None; n];
        facts[0] = Some(entry);
        let mut work = vec![0usize];
        while let Some(pc) = work.pop() {
            let fact = facts[pc].expect("queued pcs have facts");
            let out = self.transfer(&routine.actions[pc], fact);
            for succ in successors(routine, pc) {
                let merged = match facts[succ] {
                    Some(prev) => prev.meet(out),
                    None => out,
                };
                if facts[succ] != Some(merged) {
                    facts[succ] = Some(merged);
                    work.push(succ);
                }
            }
        }
        facts
    }

    fn transfer(&self, a: &Action, mut f: Fact) -> Fact {
        let cap = |v: u32, limit: u32| v.min(limit.saturating_add(1));
        match a {
            Action::DramRead { .. } | Action::DramWrite { .. } => {
                f.dram = cap(f.dram + 1, self.limits.dram_per_activation);
                f.issued = true;
                f.pending |= event_bit(EventId::FILL);
            }
            Action::Hash { done: e, .. } | Action::PostEvent { event: e, .. } => {
                f.posted = cap(f.posted + 1, self.limits.events_per_activation);
                f.pending |= event_bit(*e);
            }
            Action::AllocD { count, .. } => {
                f.sectors = cap(
                    f.sectors.saturating_add(alloc_sectors(count)),
                    self.limits.data_sectors,
                );
            }
            // Both release every sector recorded in the walker's entry.
            Action::DeallocD | Action::DeallocM => f.sectors = 0,
            _ => {}
        }
        if let Some(dst) = a.writes() {
            if u32::from(dst.0) < 64 {
                f.defs |= 1u64 << dst.0;
            }
        }
        f
    }

    /// Fixpoint over the routine graph: launch entries seed the analysis;
    /// every yield propagates its defined set (and sector usage) to the
    /// routines its pending completion events can dispatch.
    fn propagate(&mut self) {
        let p = self.program;
        for r in self.launch_entries() {
            if self.sound[r] {
                self.entry[r] = Some(Fact::entry(0, 0));
            }
        }
        let mut work: Vec<usize> = self
            .entry
            .iter()
            .enumerate()
            .filter_map(|(i, e)| e.map(|_| i))
            .collect();
        while let Some(r) = work.pop() {
            let Some(entry) = self.entry[r] else { continue };
            let facts = self.flow(r, entry);
            for (pc, fact) in facts.iter().enumerate() {
                let (Some(fact), Action::Yield { state }) = (fact, &p.routines[r].actions[pc])
                else {
                    continue;
                };
                let out = self.transfer(&p.routines[r].actions[pc], *fact);
                for e in pending_events(out.pending) {
                    let Some(rid) = p.table.lookup(*state, e) else {
                        continue;
                    };
                    let succ = usize::from(rid.0);
                    if succ >= p.routines.len() || !self.sound[succ] {
                        continue;
                    }
                    let seed = Fact::entry(out.defs, out.sectors);
                    let merged = match self.entry[succ] {
                        Some(prev) => Fact {
                            defs: prev.defs & seed.defs,
                            sectors: prev.sectors.max(seed.sectors),
                            ..prev
                        },
                        None => seed,
                    };
                    if self.entry[succ] != Some(merged) {
                        self.entry[succ] = Some(merged);
                        work.push(succ);
                    }
                }
            }
        }
    }

    /// Emits the dataflow-dependent diagnostics for every reachable
    /// routine, using the post-fixpoint entry facts.
    fn check_dataflow(&mut self) {
        for r in 0..self.program.routines.len() {
            let Some(entry) = self.entry[r] else { continue };
            if !self.sound[r] {
                continue;
            }
            let facts = self.flow(r, entry);
            for (pc, fact) in facts.iter().enumerate() {
                let Some(fact) = *fact else { continue };
                self.check_action(r, pc, fact);
            }
        }
    }

    #[allow(clippy::too_many_lines)]
    fn check_action(&mut self, r: usize, pc: usize, fact: Fact) {
        let a = self.program.routines[r].actions[pc];
        // Check 3: def-before-use (must-defined set, carried across yields).
        for reg in a.reads() {
            if reg.0 < self.program.regs && u32::from(reg.0) < 64 && fact.defs & (1 << reg.0) == 0 {
                self.action_error(
                    DefectClass::UseBeforeDef,
                    r,
                    pc,
                    &format!("{reg} may be read before any definition"),
                );
            }
        }
        // Check 5: yield-before-long-latency discipline.
        if fact.issued && matches!(a.category(), ActionCategory::Agen | ActionCategory::DataRam) {
            self.action_error(
                DefectClass::MissedYield,
                r,
                pc,
                "runs after a DRAM issue in the same routine without an \
                 intervening yield",
            );
        }
        // Check 6: queue push/pop balance against declared capacities.
        match a {
            Action::DramRead { .. } | Action::DramWrite { .. }
                if fact.dram + 1 > self.limits.dram_per_activation =>
            {
                let cap = self.limits.dram_per_activation;
                self.action_error(
                    DefectClass::QueueImbalance,
                    r,
                    pc,
                    &format!(
                        "more than {cap} outstanding DRAM request(s) in one \
                         routine activation"
                    ),
                );
            }
            Action::Hash { .. } | Action::PostEvent { .. }
                if fact.posted + 1 > self.limits.events_per_activation =>
            {
                let cap = self.limits.events_per_activation;
                self.action_error(
                    DefectClass::QueueImbalance,
                    r,
                    pc,
                    &format!("more than {cap} posted event(s) in one routine activation"),
                );
            }
            Action::AllocD { count, .. }
                if fact.sectors.saturating_add(alloc_sectors(&count))
                    > self.limits.data_sectors =>
            {
                let cap = self.limits.data_sectors;
                self.action_error(
                    DefectClass::QueueImbalance,
                    r,
                    pc,
                    &format!(
                        "cumulative data-RAM allocation exceeds the declared \
                         capacity of {cap} sector(s)"
                    ),
                );
            }
            Action::Yield { state } => {
                let out = self.transfer(&a, fact);
                if out.pending == 0 {
                    self.action_error(
                        DefectClass::UnhandledCompletion,
                        r,
                        pc,
                        "yields with no outstanding completion; nothing can \
                         ever wake this walker",
                    );
                }
                for e in pending_events(out.pending) {
                    if state.index() < self.program.state_names.len()
                        && self.program.table.lookup(state, e).is_none()
                    {
                        let (sn, en) = (self.state_name(state), self.event_name(e));
                        self.action_error(
                            DefectClass::UnhandledCompletion,
                            r,
                            pc,
                            &format!(
                                "outstanding `{en}` completion has no handler in \
                                 state `{sn}`; the walker would park forever"
                            ),
                        );
                    }
                }
            }
            Action::Retire | Action::Fault if fact.pending != 0 => {
                let names: Vec<String> = pending_events(fact.pending)
                    .map(|e| self.event_name(e))
                    .collect();
                let what = format!(
                    "terminates with outstanding completion(s) [{}] that will \
                     be discarded",
                    names.join(", ")
                );
                self.diag(
                    DefectClass::UnhandledCompletion,
                    Severity::Warning,
                    Some(r),
                    Some(pc),
                    format!("`{a}`: {what}"),
                );
            }
            _ => {}
        }
    }

    // ---- check 7: reachability ------------------------------------------

    fn check_reachability(&mut self) {
        for r in 0..self.program.routines.len() {
            if self.entry[r].is_none() && self.sound[r] {
                self.diag(
                    DefectClass::Unreachable,
                    Severity::Warning,
                    Some(r),
                    None,
                    "the state machine can never dispatch this routine".into(),
                );
            }
        }
    }
}

/// CFG successors of `pc` within `routine` (indices past the end are
/// dropped; the structural pass has already reported them).
fn successors(routine: &Routine, pc: usize) -> Vec<usize> {
    let n = routine.actions.len();
    let a = &routine.actions[pc];
    if a.is_terminator() {
        return Vec::new();
    }
    let mut v = Vec::with_capacity(2);
    if let Action::Branch { target, .. } = a {
        if usize::from(*target) < n {
            v.push(usize::from(*target));
        }
    }
    if pc + 1 < n {
        v.push(pc + 1);
    }
    v
}

fn event_bit(e: EventId) -> u64 {
    if e.0 < 64 {
        1u64 << e.0
    } else {
        0
    }
}

fn pending_events(mask: u64) -> impl Iterator<Item = EventId> {
    (0..64u8).filter_map(move |i| (mask & (1 << i) != 0).then_some(EventId(i)))
}

/// Statically-known sector count of an `allocD` (unknown counts are
/// assumed minimal — the verifier never rejects what it cannot prove).
fn alloc_sectors(count: &Operand) -> u32 {
    match count {
        Operand::Imm(v) => u32::try_from(*v).unwrap_or(u32::MAX),
        _ => 1,
    }
}

/// All operands of an action (register and non-register alike).
fn operands(a: &Action) -> Vec<Operand> {
    match a {
        Action::Alu { a, b, .. }
        | Action::UpdateM { start: a, end: b }
        | Action::InsertM { key: a, words: b }
        | Action::Branch { a, b, .. } => vec![*a, *b],
        Action::Mov { a, .. } | Action::Hash { a, .. } | Action::PostEvent { payload: a, .. } => {
            vec![*a]
        }
        Action::DramRead { addr, len } => vec![*addr, *len],
        Action::DramWrite { addr, sector, len } => vec![*addr, *sector, *len],
        Action::AllocD { count, .. } => vec![*count],
        Action::ReadD { sector, word, .. } => vec![*sector, *word],
        Action::WriteD {
            sector,
            word,
            value,
        } => vec![*sector, *word, *value],
        Action::FillD { sector, words } => vec![*sector, *words],
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn clean(src: &str) {
        let p = assemble(src).expect("assembles");
        let report = verify(&p);
        assert!(
            report.diagnostics.is_empty(),
            "expected a clean report, got: {:?}",
            report
                .diagnostics
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn array_walker_is_clean() {
        clean(
            r#"
            walker array
            states Default, Wait
            regs 2
            params base
            routine start {
                allocR
                allocM
                mul r0, key, 32
                add r0, r0, base
                dram_read r0, 32
                yield Wait
            }
            routine fill {
                allocD r1, 1
                filld r1, 4
                updatem r1, r1
                respond
                retire
            }
            on Default, Miss -> start
            on Wait, Fill -> fill
        "#,
        );
    }

    #[test]
    fn cross_yield_defs_are_carried() {
        // `fill` reads r0, defined only in `start` before the yield: the
        // interprocedural pass must carry the definition across the
        // yield/wake boundary.
        clean(
            r#"
            walker carry
            states Default, Wait
            regs 2
            params base
            routine start {
                allocR
                allocM
                mul r0, key, 8
                add r0, r0, base
                dram_read r0, 8
                yield Wait
            }
            routine fill {
                allocD r1, 1
                filld r1, 1
                writed r1, 1, r0
                updatem r1, r1
                respond
                retire
            }
            on Default, Miss -> start
            on Wait, Fill -> fill
        "#,
        );
    }

    #[test]
    fn loops_converge_with_intersection() {
        // A chain chase re-enters `check` through its own yield; the meet
        // over both predecessors must converge and keep r0 defined.
        clean(
            r#"
            walker chase
            states Default, Probe
            regs 3
            params base
            routine start {
                allocR
                allocM
                mul r0, key, 8
                add r0, r0, base
                dram_read r0, 8
                yield Probe
            }
            routine check {
                peek r1, 0
                beq r1, 0, @done
                add r0, r0, 8
                dram_read r0, 8
                yield Probe
            done:
                allocD r2, 1
                filld r2, 1
                updatem r2, r2
                respond
                retire
            }
            on Default, Miss -> start
            on Probe, Fill -> check
        "#,
        );
    }

    #[test]
    fn use_before_def_flagged_per_path() {
        // r1 is defined on the fallthrough path only; the merged read
        // must be flagged.
        let p = assemble(
            r#"
            walker bad
            states Default
            regs 2
            routine start {
                allocR
                beq key, 0, @skip
                mov r1, 7
            skip:
                mov r0, r1
                fault
            }
            on Default, Miss -> start
        "#,
        )
        .expect("assembles");
        let report = verify(&p);
        assert!(report.has_class(DefectClass::UseBeforeDef));
        assert!(report.has_errors());
    }

    #[test]
    fn report_check_respects_deny_warnings() {
        // An unreachable routine is a warning: ok normally, an error under
        // deny-warnings.
        let p = assemble(
            r#"
            walker warn
            states Default
            regs 1
            routine start {
                allocR
                fault
            }
            routine orphan {
                retire
            }
            on Default, Miss -> start
        "#,
        )
        .expect("assembles");
        let report = verify(&p);
        assert!(!report.has_errors());
        assert!(report.has_class(DefectClass::Unreachable));
        assert!(report.check(false).is_ok());
        let err = report.check(true).expect_err("deny-warnings fails");
        assert_eq!(err.diagnostics.len(), 1);
        assert!(err.to_string().contains("unreachable"));
    }

    #[test]
    fn diagnostics_render_with_location() {
        let d = Diagnostic {
            class: DefectClass::UseBeforeDef,
            severity: Severity::Error,
            routine: Some("check".into()),
            pc: Some(3),
            message: "`mov r0, r1`: r1 may be read before any definition".into(),
        };
        assert_eq!(
            d.to_string(),
            "error[use-before-def] routine `check` @3: `mov r0, r1`: r1 may be read before any definition"
        );
    }
}
