//! Golden-snapshot tests of the binary encoding.
//!
//! Each shipped walker assembles to a microcode image that must stay
//! byte-identical to the committed fixture — any encoding drift (field
//! widths, opcode numbering, image layout) fails here before it can
//! silently invalidate the energy/area model's RAM sizing. Regenerate the
//! fixtures after an *intentional* format change with:
//!
//! ```sh
//! XCACHE_BLESS=1 cargo test -p xcache-isa --test golden_walkers
//! ```
//!
//! The roundtrip property closes the other direction: whatever the
//! generator can emit, `decode(encode(x)) == x`.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use xcache_isa::asm::assemble;
use xcache_isa::{decode, encode, gen, WalkerProgram};

fn walkers_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../walkers")
}

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// The same image layout `xasm build` writes: routine count, per-routine
/// word offsets, then the encoded words, all little-endian u64.
fn image(p: &WalkerProgram) -> Vec<u8> {
    let mut offsets = Vec::new();
    let mut words: Vec<u64> = Vec::new();
    for r in p.routines() {
        offsets.push(words.len() as u64);
        words.extend(encode(&r.actions).expect("encodes"));
    }
    let mut image = Vec::new();
    image.extend_from_slice(&(p.routines().len() as u64).to_le_bytes());
    for o in &offsets {
        image.extend_from_slice(&o.to_le_bytes());
    }
    for w in &words {
        image.extend_from_slice(&w.to_le_bytes());
    }
    image
}

/// Hex with 32 bytes per line — fixture diffs localize to the routine
/// that changed instead of rewriting one giant line.
fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::new();
    for chunk in bytes.chunks(32) {
        for b in chunk {
            s.push_str(&format!("{b:02x}"));
        }
        s.push('\n');
    }
    s
}

fn bless_mode() -> bool {
    std::env::var("XCACHE_BLESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

#[test]
fn shipped_walker_images_match_fixtures() {
    let mut sources: Vec<_> = std::fs::read_dir(walkers_dir())
        .expect("walkers/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "xw"))
        .collect();
    sources.sort();
    assert_eq!(sources.len(), 6, "expected the six shipped walkers");
    for src_path in sources {
        let stem = src_path
            .file_stem()
            .expect("has stem")
            .to_str()
            .expect("utf8")
            .to_string();
        let src = std::fs::read_to_string(&src_path).expect("readable");
        let program = assemble(&src).unwrap_or_else(|e| panic!("{stem}: {e}"));
        let hex = to_hex(&image(&program));
        let fixture = fixtures_dir().join(format!("{stem}.hex"));
        if bless_mode() {
            std::fs::create_dir_all(fixtures_dir()).expect("fixtures dir");
            std::fs::write(&fixture, &hex).expect("bless fixture");
            continue;
        }
        let want = std::fs::read_to_string(&fixture).unwrap_or_else(|e| {
            panic!(
                "{}: {e}\nfixture missing — run with XCACHE_BLESS=1 to create it",
                fixture.display()
            )
        });
        assert_eq!(
            hex, want,
            "`{stem}` encodes differently than its committed fixture; if the \
             encoding change is intentional, re-bless with XCACHE_BLESS=1"
        );
    }
}

#[test]
fn fixture_set_has_no_strays() {
    if bless_mode() {
        return;
    }
    let mut fixtures: Vec<String> = std::fs::read_dir(fixtures_dir())
        .expect("fixtures dir committed")
        .map(|e| {
            e.expect("dir entry")
                .file_name()
                .to_str()
                .expect("utf8")
                .to_string()
        })
        .filter(|n| n.ends_with(".hex"))
        .collect();
    fixtures.sort();
    let mut walkers: Vec<String> = std::fs::read_dir(walkers_dir())
        .expect("walkers/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "xw"))
        .map(|p| {
            format!(
                "{}.hex",
                p.file_stem().expect("stem").to_str().expect("utf8")
            )
        })
        .collect();
    walkers.sort();
    assert_eq!(
        fixtures, walkers,
        "fixtures and shipped walkers must correspond one-to-one"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every program the fuzz generator can emit survives an
    /// encode→decode roundtrip action-for-action.
    #[test]
    fn generated_programs_roundtrip_through_encoding(seed in any::<u64>()) {
        let program = gen::generate(seed);
        for r in program.routines() {
            let words = encode(&r.actions).expect("encodes");
            let back = decode(&words).expect("decodes");
            prop_assert_eq!(&back, &r.actions);
        }
    }
}
