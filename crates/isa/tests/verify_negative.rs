//! One failing program per verifier defect class, plus the proof that all
//! six shipped walkers verify clean under `--deny-warnings`.
//!
//! Structural classes (table integrity, terminators, bounds) are built by
//! hand because [`assemble`] already rejects them at compile time; the
//! semantic classes assemble fine and only the verifier catches them.

use xcache_isa::asm::assemble;
use xcache_isa::verify::{verify, verify_with, DefectClass, Severity, VerifyLimits};
use xcache_isa::{
    Action, EventId, Operand, Reg, Routine, RoutineId, RoutineTable, StateId, WalkerProgram,
};

/// Assembles `src` and asserts the verifier reports `class` at error
/// severity.
fn assert_error(src: &str, class: DefectClass) {
    let p = assemble(src).expect("program assembles; only the verifier rejects it");
    let report = verify(&p);
    assert!(
        report
            .diagnostics
            .iter()
            .any(|d| d.class == class && d.severity == Severity::Error),
        "expected an `{}` error, got: {:?}",
        class.code(),
        report
            .diagnostics
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
}

/// A hand-built skeleton the structural tests mutate: one launch entry
/// (`allocR; fault`) and a 1×3 table dispatching `(Default, Miss)` to it.
fn skeleton() -> WalkerProgram {
    let mut table = RoutineTable::new(1, 3);
    table.set(StateId::DEFAULT, EventId::MISS, RoutineId(0));
    WalkerProgram {
        name: "skeleton".into(),
        state_names: vec!["Default".into()],
        event_names: vec!["Miss".into(), "Fill".into(), "Update".into()],
        regs: 1,
        param_names: Vec::new(),
        routines: vec![Routine {
            name: "start".into(),
            actions: vec![Action::AllocR, Action::Fault],
        }],
        table,
    }
}

// ---- class 1: table-integrity -------------------------------------------

#[test]
fn dangling_table_entry() {
    let mut p = skeleton();
    p.table.set(StateId::DEFAULT, EventId::FILL, RoutineId(7));
    let report = verify(&p);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.class == DefectClass::TableIntegrity
            && d.severity == Severity::Error
            && d.message.contains("rtn#7")));
}

#[test]
fn missing_miss_handler() {
    let mut p = skeleton();
    p.table = RoutineTable::new(1, 3); // wipe the launch entry
    let report = verify(&p);
    assert!(report.has_class(DefectClass::TableIntegrity));
    assert!(report.has_errors());
}

#[test]
fn table_dimension_mismatch() {
    let mut p = skeleton();
    p.state_names.push("Phantom".into()); // 2 declared, table has 1 row
    let report = verify(&p);
    assert!(report.has_class(DefectClass::TableIntegrity));
}

// ---- class 2: terminator ------------------------------------------------

#[test]
fn path_runs_past_routine_end() {
    let mut p = skeleton();
    p.routines[0].actions.pop(); // drop the Fault
    let report = verify(&p);
    assert!(report.has_class(DefectClass::Terminator));
    assert!(report.has_errors());
}

#[test]
fn dead_tail_after_terminator() {
    let mut p = skeleton();
    p.routines[0].actions.push(Action::Retire); // after Fault
    let report = verify(&p);
    assert!(report.has_class(DefectClass::Terminator));
}

#[test]
fn branch_outside_routine() {
    let mut p = skeleton();
    p.routines[0].actions.insert(
        1,
        Action::Branch {
            cond: xcache_isa::Cond::Miss,
            a: Operand::Imm(0),
            b: Operand::Imm(0),
            target: 42,
        },
    );
    let report = verify(&p);
    assert!(report.has_class(DefectClass::Terminator));
}

// ---- class 3: bounds ----------------------------------------------------

#[test]
fn register_out_of_declared_range() {
    let mut p = skeleton();
    p.routines[0].actions.insert(
        1,
        Action::Mov {
            dst: Reg(5),
            a: Operand::Key,
        },
    );
    let report = verify(&p);
    assert!(report.has_class(DefectClass::Bounds));
    assert!(report.has_errors());
}

#[test]
fn param_out_of_declared_range() {
    let mut p = skeleton();
    p.routines[0].actions.insert(
        1,
        Action::Mov {
            dst: Reg(0),
            a: Operand::Param(3),
        },
    );
    let report = verify(&p);
    assert!(report.has_class(DefectClass::Bounds));
}

#[test]
fn yield_to_undeclared_state() {
    let mut p = skeleton();
    p.routines[0].actions = vec![
        Action::AllocR,
        Action::DramRead {
            addr: Operand::Key,
            len: Operand::Imm(8),
        },
        Action::Yield { state: StateId(9) },
    ];
    let report = verify(&p);
    assert!(report.has_class(DefectClass::Bounds));
}

// ---- class 4: use-before-def --------------------------------------------

#[test]
fn read_with_no_definition() {
    assert_error(
        r"
        walker bad
        states Default
        regs 2
        routine start {
            allocR
            add r0, r1, 1
            fault
        }
        on Default, Miss -> start
        ",
        DefectClass::UseBeforeDef,
    );
}

#[test]
fn definition_missing_on_one_path() {
    assert_error(
        r"
        walker bad
        states Default
        regs 2
        routine start {
            allocR
            beq key, 0, @skip
            mov r1, 7
        skip:
            mov r0, r1
            fault
        }
        on Default, Miss -> start
        ",
        DefectClass::UseBeforeDef,
    );
}

#[test]
fn definition_not_carried_when_absent_before_yield() {
    // r1 is only defined in the *fill* routine; the launch entry reads it
    // defined-nowhere. The cross-yield carry must not invent definitions.
    assert_error(
        r"
        walker bad
        states Default, Wait
        regs 2
        routine start {
            allocR
            allocM
            dram_read key, 8
            yield Wait
        }
        routine fill {
            add r0, r1, 1
            mov r1, 0
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
        ",
        DefectClass::UseBeforeDef,
    );
}

// ---- class 5: stage-legality --------------------------------------------

#[test]
fn alloc_r_not_first_in_launch_entry() {
    assert_error(
        r"
        walker bad
        states Default
        regs 1
        routine start {
            mov r0, key
            allocR
            fault
        }
        on Default, Miss -> start
        ",
        DefectClass::StageLegality,
    );
}

#[test]
fn alloc_r_outside_launch_entry() {
    assert_error(
        r"
        walker bad
        states Default, Wait
        regs 1
        routine start {
            allocR
            dram_read key, 8
            yield Wait
        }
        routine fill {
            allocR
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
        ",
        DefectClass::StageLegality,
    );
}

#[test]
fn fill_consumer_in_miss_routine() {
    // `filld` consumes the DRAM fill payload; a Miss dispatch has none.
    assert_error(
        r"
        walker bad
        states Default
        regs 1
        routine start {
            allocR
            allocD r0, 1
            filld r0, 4
            fault
        }
        on Default, Miss -> start
        ",
        DefectClass::StageLegality,
    );
}

// ---- class 6: missed-yield ----------------------------------------------

#[test]
fn agen_after_dram_issue() {
    assert_error(
        r"
        walker bad
        states Default, Wait
        regs 1
        routine start {
            allocR
            mov r0, key
            dram_read r0, 8
            add r0, r0, 8
            yield Wait
        }
        routine fill {
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
        ",
        DefectClass::MissedYield,
    );
}

#[test]
fn data_ram_read_after_dram_issue() {
    assert_error(
        r"
        walker bad
        states Default, Wait
        regs 2
        routine start {
            allocR
            allocD r1, 1
            dram_read key, 8
            readd r0, r1, 0
            yield Wait
        }
        routine fill {
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
        ",
        DefectClass::MissedYield,
    );
}

// ---- class 7: queue-imbalance -------------------------------------------

#[test]
fn two_dram_issues_in_one_activation() {
    assert_error(
        r"
        walker bad
        states Default, Wait
        regs 1
        routine start {
            allocR
            dram_read key, 8
            dram_read key, 16
            yield Wait
        }
        routine fill {
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
        ",
        DefectClass::QueueImbalance,
    );
}

#[test]
fn data_ram_allocation_over_capacity() {
    let p = assemble(
        r"
        walker bad
        states Default
        regs 1
        routine start {
            allocR
            allocD r0, 64
            fault
        }
        on Default, Miss -> start
        ",
    )
    .expect("assembles");
    let tight = VerifyLimits {
        data_sectors: 16,
        ..VerifyLimits::default()
    };
    let report = verify_with(&p, &tight);
    assert!(report.has_class(DefectClass::QueueImbalance));
    assert!(report.has_errors());
    // The same program is fine under the default (much larger) capacity.
    assert!(!verify(&p).has_class(DefectClass::QueueImbalance));
}

#[test]
fn posted_events_over_capacity() {
    let p = assemble(
        r"
        walker bad
        states Default, Wait
        events Tick
        regs 1
        routine start {
            allocR
            post Tick, 1, 0
            post Tick, 2, 0
            yield Wait
        }
        routine tick {
            retire
        }
        on Default, Miss -> start
        on Wait, Tick -> tick
        ",
    )
    .expect("assembles");
    let tight = VerifyLimits {
        events_per_activation: 1,
        ..VerifyLimits::default()
    };
    let report = verify_with(&p, &tight);
    assert!(report.has_class(DefectClass::QueueImbalance));
}

// ---- class 8: unhandled-completion --------------------------------------

#[test]
fn fill_arrives_in_state_with_no_handler() {
    // The yielded-to state handles a custom event but not the Fill the
    // DRAM read will deliver: the walker parks forever.
    assert_error(
        r"
        walker bad
        states Default, Wait
        events Custom
        regs 1
        routine start {
            allocR
            dram_read key, 8
            yield Wait
        }
        routine other {
            retire
        }
        on Default, Miss -> start
        on Wait, Custom -> other
        ",
        DefectClass::UnhandledCompletion,
    );
}

#[test]
fn yield_with_nothing_outstanding() {
    assert_error(
        r"
        walker bad
        states Default, Wait
        regs 1
        routine start {
            allocR
            yield Wait
        }
        routine fill {
            retire
        }
        on Default, Miss -> start
        on Wait, Fill -> fill
        ",
        DefectClass::UnhandledCompletion,
    );
}

#[test]
fn retire_with_outstanding_completion_warns() {
    let p = assemble(
        r"
        walker sloppy
        states Default
        regs 1
        routine start {
            allocR
            dram_read key, 8
            retire
        }
        on Default, Miss -> start
        ",
    )
    .expect("assembles");
    let report = verify(&p);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.class == DefectClass::UnhandledCompletion && d.severity == Severity::Warning));
    assert!(!report.has_errors());
}

// ---- class 9: unreachable (warning) -------------------------------------

#[test]
fn orphan_routine_warns() {
    let p = assemble(
        r"
        walker orphaned
        states Default
        regs 1
        routine start {
            allocR
            fault
        }
        routine dead {
            retire
        }
        on Default, Miss -> start
        ",
    )
    .expect("assembles");
    let report = verify(&p);
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.class == DefectClass::Unreachable && d.severity == Severity::Warning));
    assert!(!report.has_errors());
    assert!(report.check(true).is_err());
}

// ---- shipped walkers are clean ------------------------------------------

#[test]
fn all_shipped_walkers_verify_clean() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../walkers");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("walkers/ exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "xw"))
        .collect();
    entries.sort();
    for path in entries {
        let src = std::fs::read_to_string(&path).expect("readable");
        let program = assemble(&src).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = verify(&program);
        assert!(
            report.check(true).is_ok(),
            "{} has findings: {:?}",
            path.display(),
            report
                .diagnostics
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
        );
        checked += 1;
    }
    assert_eq!(checked, 6, "expected the six shipped walkers in {dir:?}");
}
