//! Integration tests of the `xasm` CLI binary.

use std::process::Command;

const XASM: &str = env!("CARGO_BIN_EXE_xasm");

const VALID: &str = r"
walker t
states Default
regs 1
routine r {
    allocR
    retire
}
on Default, Miss -> r
";

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xasm-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let p = dir.join(name);
    std::fs::write(&p, content).expect("write");
    p
}

#[test]
fn check_accepts_valid_walker() {
    let src = write_tmp("valid.xw", VALID);
    let out = Command::new(XASM)
        .args(["check", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("walker `t`"));
    assert!(stdout.contains("2 microcode words"));
}

#[test]
fn check_rejects_invalid_walker() {
    let src = write_tmp(
        "invalid.xw",
        "walker t\nstates Default\nroutine r {\n allocR\n}\non Default, Miss -> r\n",
    );
    let out = Command::new(XASM)
        .args(["check", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("terminator"), "stderr: {stderr}");
}

#[test]
fn build_produces_decodable_image() {
    let src = write_tmp("build.xw", VALID);
    let out_path = write_tmp("build.bin", "");
    let out = Command::new(XASM)
        .args([
            "build",
            src.to_str().expect("utf8"),
            out_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let image = std::fs::read(&out_path).expect("image written");
    // Header: routine count (1), offset (0), then 2 actions x 2 words.
    let count = u64::from_le_bytes(image[0..8].try_into().expect("count"));
    assert_eq!(count, 1);
    let words: Vec<u64> = image[16..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("word")))
        .collect();
    let actions = xcache_isa::decode(&words).expect("decodes");
    assert_eq!(actions.len(), 2);
    assert!(actions[1].is_terminator());
}

#[test]
fn disasm_round_trips_through_check() {
    let src = write_tmp("rt.xw", VALID);
    let out = Command::new(XASM)
        .args(["disasm", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let canonical = String::from_utf8_lossy(&out.stdout).into_owned();
    let src2 = write_tmp("rt2.xw", &canonical);
    let out2 = Command::new(XASM)
        .args(["check", src2.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out2.status.success());
}

#[test]
fn dump_shows_routine_table() {
    let src = write_tmp("dump.xw", VALID);
    let out = Command::new(XASM)
        .args(["dump", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("routine table"));
    assert!(stdout.contains("allocR"));
    assert!(stdout.contains("retire"));
}

#[test]
fn usage_on_bad_invocation() {
    let out = Command::new(XASM).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

// ---- error-path exit codes: 1 = load/parse, 2 = verify ------------------

#[test]
fn missing_file_exits_one() {
    let out = Command::new(XASM)
        .args(["check", "/nonexistent/nope.xw"])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("nope.xw"), "stderr: {stderr}");
}

#[test]
fn parse_error_exits_one() {
    let src = write_tmp("garbage.xw", "walker t\nroutine { this is not xasm\n");
    let out = Command::new(XASM)
        .args(["check", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(1));
}

/// Assembles (validate passes) but trips the verifier: the launch entry
/// issues a DRAM read and then retires, never consuming the fill, and an
/// AGEN action follows the issue without a yield.
const VERIFY_BAD: &str = r"
walker t
states Default
regs 1
routine r {
    allocR
    mov r0, key
    dram_read r0, 8
    add r0, r0, 1
    fault
}
on Default, Miss -> r
";

#[test]
fn verify_failure_exits_two_with_located_diagnostics() {
    let src = write_tmp("vbad.xw", VERIFY_BAD);
    let out = Command::new(XASM)
        .args(["check", "--verify", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("error[missed-yield]"), "stderr: {stderr}");
    assert!(stderr.contains("routine `r` @3"), "stderr: {stderr}");
    assert!(stderr.contains("verification failed"), "stderr: {stderr}");
}

#[test]
fn without_verify_flag_the_same_program_passes() {
    let src = write_tmp("vbad2.xw", VERIFY_BAD);
    let out = Command::new(XASM)
        .args(["check", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out.status.success());
}

/// Clean except for an unreachable routine — a warning, so `--verify`
/// passes and `--verify --deny-warnings` exits 2.
const VERIFY_WARN: &str = r"
walker t
states Default
regs 1
routine r {
    allocR
    fault
}
routine orphan {
    retire
}
on Default, Miss -> r
";

#[test]
fn deny_warnings_escalates_warnings_to_exit_two() {
    let src = write_tmp("vwarn.xw", VERIFY_WARN);
    let ok = Command::new(XASM)
        .args(["check", "--verify", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        ok.status.success(),
        "{}",
        String::from_utf8_lossy(&ok.stderr)
    );
    let stderr = String::from_utf8_lossy(&ok.stderr);
    assert!(stderr.contains("warning[unreachable]"), "stderr: {stderr}");

    let deny = Command::new(XASM)
        .args([
            "check",
            "--verify",
            "--deny-warnings",
            src.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert_eq!(deny.status.code(), Some(2));
}

#[test]
fn build_respects_verify_and_writes_nothing_on_failure() {
    let src = write_tmp("vbuild.xw", VERIFY_BAD);
    let out_path = std::env::temp_dir().join("xasm-tests/vbuild-should-not-exist.bin");
    let _ = std::fs::remove_file(&out_path);
    let out = Command::new(XASM)
        .args([
            "build",
            "--verify",
            src.to_str().expect("utf8"),
            out_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(!out_path.exists(), "no image may be written on failure");
}

#[test]
fn shipped_walkers_pass_verify_deny_warnings() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../walkers");
    let mut checked = 0usize;
    for entry in std::fs::read_dir(&dir).expect("walkers/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|x| x != "xw") {
            continue;
        }
        let out = Command::new(XASM)
            .args([
                "check",
                "--verify",
                "--deny-warnings",
                path.to_str().expect("utf8"),
            ])
            .output()
            .expect("runs");
        assert!(
            out.status.success(),
            "{}: {}",
            path.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        checked += 1;
    }
    assert_eq!(checked, 6);
}
