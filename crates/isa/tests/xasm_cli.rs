//! Integration tests of the `xasm` CLI binary.

use std::process::Command;

const XASM: &str = env!("CARGO_BIN_EXE_xasm");

const VALID: &str = r"
walker t
states Default
regs 1
routine r {
    allocR
    retire
}
on Default, Miss -> r
";

fn write_tmp(name: &str, content: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("xasm-tests");
    std::fs::create_dir_all(&dir).expect("tmp dir");
    let p = dir.join(name);
    std::fs::write(&p, content).expect("write");
    p
}

#[test]
fn check_accepts_valid_walker() {
    let src = write_tmp("valid.xw", VALID);
    let out = Command::new(XASM)
        .args(["check", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("walker `t`"));
    assert!(stdout.contains("2 microcode words"));
}

#[test]
fn check_rejects_invalid_walker() {
    let src = write_tmp(
        "invalid.xw",
        "walker t\nstates Default\nroutine r {\n allocR\n}\non Default, Miss -> r\n",
    );
    let out = Command::new(XASM)
        .args(["check", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("terminator"), "stderr: {stderr}");
}

#[test]
fn build_produces_decodable_image() {
    let src = write_tmp("build.xw", VALID);
    let out_path = write_tmp("build.bin", "");
    let out = Command::new(XASM)
        .args([
            "build",
            src.to_str().expect("utf8"),
            out_path.to_str().expect("utf8"),
        ])
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let image = std::fs::read(&out_path).expect("image written");
    // Header: routine count (1), offset (0), then 2 actions x 2 words.
    let count = u64::from_le_bytes(image[0..8].try_into().expect("count"));
    assert_eq!(count, 1);
    let words: Vec<u64> = image[16..]
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("word")))
        .collect();
    let actions = xcache_isa::decode(&words).expect("decodes");
    assert_eq!(actions.len(), 2);
    assert!(actions[1].is_terminator());
}

#[test]
fn disasm_round_trips_through_check() {
    let src = write_tmp("rt.xw", VALID);
    let out = Command::new(XASM)
        .args(["disasm", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let canonical = String::from_utf8_lossy(&out.stdout).into_owned();
    let src2 = write_tmp("rt2.xw", &canonical);
    let out2 = Command::new(XASM)
        .args(["check", src2.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out2.status.success());
}

#[test]
fn dump_shows_routine_table() {
    let src = write_tmp("dump.xw", VALID);
    let out = Command::new(XASM)
        .args(["dump", src.to_str().expect("utf8")])
        .output()
        .expect("runs");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("routine table"));
    assert!(stdout.contains("allocR"));
    assert!(stdout.contains("retire"));
}

#[test]
fn usage_on_bad_invocation() {
    let out = Command::new(XASM).output().expect("runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}
